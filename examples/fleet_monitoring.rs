//! Fleet monitoring: the paper's §1 scenario end to end.
//!
//! Ten vehicles stream GPS fixes into a moving-object store that
//! compresses on ingest with a 30 m error budget. We then answer the
//! questions the paper motivates — "which vehicles passed through this
//! area during rush hour?", "where was vehicle 3 at 12:05?", "who was
//! closest to the incident?" — on the compressed history, and compare
//! the storage bill against a raw store.
//!
//! ```text
//! cargo run --release --example fleet_monitoring
//! ```

use trajc::geom::Point2;
use trajc::model::Timestamp;
use trajc::store::{
    knn_at, position_of, DurableOptions, DurableStore, GridIndex, IngestMode,
    MovingObjectStore, QueryWindow,
};

fn main() {
    let fleet = trajc::gen::paper_dataset(42);

    // Two stores: raw, and compressed-on-ingest (OPW-TR, 30 m budget).
    let mut raw = MovingObjectStore::new(IngestMode::Raw);
    let mut compressed = MovingObjectStore::new(IngestMode::Compressed {
        epsilon: 30.0,
        speed_epsilon: None,
        max_window: 512,
    });
    for (id, trip) in fleet.iter().enumerate() {
        raw.insert_trajectory(id as u64, trip).expect("valid trip");
        compressed.insert_trajectory(id as u64, trip).expect("valid trip");
    }
    let (rs, cs) = (raw.stats(), compressed.stats());
    println!(
        "storage: raw {} fixes, compressed {} fixes ({:.1}% saved)",
        rs.stored_points,
        cs.stored_points,
        cs.compression_pct()
    );

    // Where was vehicle 3 at t = 600 s? Compare both stores.
    let t = Timestamp::from_secs(600.0);
    if let (Some(p_raw), Some(p_c)) = (position_of(&raw, 3, t), position_of(&compressed, 3, t)) {
        println!(
            "vehicle 3 at t=600s: raw ({:.0}, {:.0}), compressed ({:.0}, {:.0}) — {:.1} m apart",
            p_raw.x,
            p_raw.y,
            p_c.x,
            p_c.y,
            p_raw.distance(p_c)
        );
    }

    // Which vehicles entered the city-centre square between t=300 and
    // t=1200? Use the spatiotemporal grid index over the compressed
    // store.
    let index = GridIndex::build(&compressed, 500.0, 300.0);
    let centre = QueryWindow::new(
        Point2::new(6_000.0, 6_000.0),
        Point2::new(13_000.0, 13_000.0),
        300.0,
        1200.0,
    );
    let inside = index.objects_in_window(&centre);
    println!("vehicles in the centre during [300s, 1200s]: {inside:?}");

    // Cross-check through the R-tree path (both indexes are exact, so
    // they must agree).
    let rtree = trajc::store::query::build_segment_rtree(&compressed);
    let inside_rtree = trajc::store::query::rtree_objects_in_window(&rtree, &centre);
    assert_eq!(inside, inside_rtree, "grid and R-tree answers must match");

    // Who was nearest to an incident at (9000, 9000) at t = 900 s?
    let incident = Point2::new(9_000.0, 9_000.0);
    let nearest = knn_at(&compressed, Timestamp::from_secs(900.0), incident, 3);
    println!("3 nearest to the incident at t=900s:");
    for (id, d) in nearest {
        println!("  vehicle {id}: {:.0} m away", d);
    }

    // Nightly compaction: re-run the *batch* TD-TR over the online-
    // compressed history (the paper: batch algorithms consistently beat
    // online ones). Same 30 m budget per pass.
    let removed = compressed.compact(&trajc::compress::TdTr::new(30.0));
    println!(
        "nightly compaction removed {removed} more fixes → {} stored ({:.1}% total saving)",
        compressed.stats().stored_points,
        compressed.stats().compression_pct()
    );

    // A fleet server must not lose acknowledged fixes when it crashes.
    // The durable ingest path writes every fix to a checksummed
    // write-ahead log before acknowledging it; reopening the directory
    // replays the log over the latest snapshot. Simulate a restart by
    // dropping the store mid-stream.
    let db = std::env::temp_dir().join("fleet_monitoring_db");
    std::fs::remove_dir_all(&db).ok();
    let trip0 = &fleet[0];
    {
        let (mut durable, _) = DurableStore::open(
            &db,
            IngestMode::Compressed { epsilon: 30.0, speed_epsilon: None, max_window: 512 },
            DurableOptions::default(),
        )
        .expect("open durable store");
        for fix in trip0.fixes() {
            durable.append(0, *fix).expect("acknowledged");
        }
        // Process "crashes" here: no snapshot, no clean shutdown.
    }
    let (mut durable, report) = DurableStore::open(
        &db,
        IngestMode::Compressed { epsilon: 30.0, speed_epsilon: None, max_window: 512 },
        DurableOptions::default(),
    )
    .expect("recover");
    println!(
        "\ncrash recovery: {} fixes replayed from {} WAL segment(s), {} — latest fix at t={:.0}s",
        report.replayed,
        report.wal_segments,
        if report.clean() { "log intact" } else { "torn tail tolerated" },
        durable.store().latest(0).expect("vehicle 0 recovered").t.as_secs()
    );
    // A snapshot compacts the recovered state and truncates the log.
    let files = durable.snapshot().expect("snapshot");
    println!("snapshotted {files} file(s); write-ahead log truncated");
    std::fs::remove_dir_all(&db).ok();

    // Everything above was instrumented as it ran: ingest volume,
    // per-kind queries, R-tree node visits, compaction, compressor
    // internals. Dump the live registry.
    println!("\n— session metrics (traj-obs) —");
    print!(
        "{}",
        trajc::obs::sink::render_table(&trajc::obs::registry().snapshot())
    );
}
