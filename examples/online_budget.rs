//! Online compression under a hard memory bound.
//!
//! A tracking device (or ingest node) cannot buffer an unbounded open
//! window. This example streams a long stop-and-go commute through
//! OPW-SP with a 25 m error budget and a 64-fix window valve, and
//! reports: points kept, the worst synchronized error actually committed
//! at the original sample instants, and the peak buffer size — the three
//! numbers an operator provisions against.
//!
//! ```text
//! cargo run --release --example online_budget
//! ```

use trajc::compress::error::sed_at_samples;
use trajc::compress::streaming::{OwStream, StreamingCompressor};
use trajc::gen::simple::stop_and_go;
use trajc::model::Trajectory;

fn main() {
    // 2-hour stop-and-go commute sampled every 10 s: cruise 2 min at
    // 14 m/s, stand 1 min, repeat.
    let trip = stop_and_go(60, 12, 6, 10.0, 14.0);
    println!("raw stream: {} fixes over {}", trip.len(), trip.duration());

    let budget_m = 25.0;
    let speed_budget = 5.0;
    let mut stream = OwStream::opw_sp(budget_m, speed_budget).with_max_window(64);

    let mut kept = Vec::new();
    let mut peak_window = 0usize;
    for fix in trip.fixes() {
        kept.extend(stream.push(*fix).expect("ordered, finite fixes"));
        peak_window = peak_window.max(stream.window_len());
    }
    kept.extend(stream.finish());

    let stored = Trajectory::new(kept).expect("stream output is ordered");
    let (mean_sed, max_sed) = sed_at_samples(&trip, &stored);
    println!(
        "kept {} of {} fixes ({:.1}% compression)",
        stored.len(),
        trip.len(),
        100.0 * (trip.len() - stored.len()) as f64 / trip.len() as f64
    );
    println!("error at sample instants: mean {mean_sed:.2} m, max {max_sed:.2} m (budget {budget_m} m)");
    println!("peak buffered fixes: {peak_window} (valve 64)");
    assert!(
        max_sed <= budget_m + 1e-6,
        "the committed history must honour the error budget"
    );
}
