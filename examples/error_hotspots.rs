//! Where does compression error concentrate?
//!
//! The paper evaluates compression with a single time-averaged number,
//! `α(p, a)`. Operationally you also want to know *when* the
//! approximation was bad: this example compresses a trip two ways —
//! classic Douglas–Peucker and TD-TR at the same threshold — and prints
//! the per-interval synchronous-error profile side by side. The
//! perpendicular algorithm's error spikes line up with dwells and slow
//! segments (the exact failure mode of §3.1); TD-TR's profile is flat.
//!
//! ```text
//! cargo run --release --example error_hotspots
//! ```

use trajc::compress::error::error_profile;
use trajc::compress::{Compressor, DouglasPeucker, TdTr};

fn main() {
    let trip = trajc::gen::paper_dataset(42).remove(3);
    let eps = 50.0;

    let ndp = DouglasPeucker::new(eps).compress(&trip).apply(&trip);
    let tdtr = TdTr::new(eps).compress(&trip).apply(&trip);
    let profile_ndp = error_profile(&trip, &ndp);
    let profile_tdtr = error_profile(&trip, &tdtr);

    // Aggregate into one-minute buckets for readability.
    let bucket_s = 60.0;
    let start = trip.start_time().as_secs();
    let buckets = trip.duration().bucket_count(bucket_s);
    let mut ndp_mean = vec![0.0f64; buckets];
    let mut tdtr_mean = vec![0.0f64; buckets];
    let mut weight = vec![0.0f64; buckets];
    for (profile, sink) in [(&profile_ndp, &mut ndp_mean), (&profile_tdtr, &mut tdtr_mean)] {
        for seg in profile.iter() {
            let mid = 0.5 * (seg.from.as_secs() + seg.to.as_secs());
            let b = (((mid - start) / bucket_s) as usize).min(buckets - 1);
            let w = (seg.to - seg.from).as_secs();
            sink[b] += seg.mean_m * w;
        }
    }
    for seg in &profile_ndp {
        let mid = 0.5 * (seg.from.as_secs() + seg.to.as_secs());
        let b = (((mid - start) / bucket_s) as usize).min(buckets - 1);
        weight[b] += (seg.to - seg.from).as_secs();
    }

    println!("per-minute mean synchronous error, ε = {eps} m\n");
    println!("{:>6} {:>12} {:>12}  NDP profile", "min", "NDP (m)", "TD-TR (m)");
    for b in 0..buckets {
        if traj_geom::numeric::approx_zero(weight[b], 0.0) {
            continue;
        }
        let n = ndp_mean[b] / weight[b];
        let t = tdtr_mean[b] / weight[b];
        let bar = "#".repeat((n / 20.0).min(40.0) as usize);
        println!("{:>6} {:>12.1} {:>12.1}  {}", b, n, t, bar);
    }

    let worst_ndp = profile_ndp.iter().map(|s| s.max_m).fold(0.0f64, f64::max);
    let worst_tdtr = profile_tdtr.iter().map(|s| s.max_m).fold(0.0f64, f64::max);
    println!("\nworst instant: NDP {worst_ndp:.1} m vs TD-TR {worst_tdtr:.1} m");
}
