//! Quickstart: compress one GPS trajectory and measure what it cost you.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use trajc::compress::error::average_synchronous_error;
use trajc::compress::streaming::{OwStream, StreamingCompressor};
use trajc::compress::{evaluate, Compressor, DouglasPeucker, OpeningWindow, TdTr};
use trajc::model::stats::TrajectoryStats;

fn main() {
    // 1. Get a trajectory. Here: one synthetic car trip from the
    //    paper-calibrated dataset. With real data you would use
    //    `trajc::model::io::read_csv` on a `t,x,y` file.
    let trip = trajc::gen::paper_dataset(42).remove(5);
    let stats = TrajectoryStats::of(&trip);
    println!(
        "trip: {} fixes, {:.1} km in {}, avg {:.1} km/h",
        stats.n_points,
        stats.length_km(),
        stats.duration,
        stats.avg_speed_kmh()
    );

    // 2. Compress with a 30 m error budget, three ways.
    let budget_m = 30.0;
    for compressor in [
        Box::new(DouglasPeucker::new(budget_m)) as Box<dyn Compressor>,
        Box::new(TdTr::new(budget_m)),
        Box::new(OpeningWindow::opw_tr(budget_m)),
    ] {
        let result = compressor.compress(&trip);
        let eval = evaluate(&trip, &result);
        println!(
            "{:<28} kept {:>4}/{} fixes ({:>5.1}% compression), avg sync error {:>7.2} m",
            compressor.name(),
            result.kept_len(),
            trip.len(),
            eval.compression_pct,
            eval.avg_sync_err_m
        );
    }

    // 3. The same opening-window algorithm, online: feed fixes as they
    //    "arrive" and collect the kept ones immediately.
    let mut stream = OwStream::opw_tr(budget_m);
    let mut kept = Vec::new();
    for fix in trip.fixes() {
        kept.extend(stream.push(*fix).expect("fixes are valid and ordered"));
    }
    kept.extend(stream.finish());
    let online = trajc::model::Trajectory::new(kept).expect("stream preserves order");
    println!(
        "online OPW-TR: {} fixes kept, avg sync error {:.2} m",
        online.len(),
        average_synchronous_error(&trip, &online)
    );
}
