//! Threshold tuning: the paper's parting problem, made operational.
//!
//! "Obtained results strongly depend on the chosen threshold values.
//! Choosing a proper threshold is not easy and is application-dependent."
//! (paper §5.) This example sweeps the trade-off surface for one
//! trajectory and answers the operational question directly: *what is
//! the largest threshold whose measured average synchronous error stays
//! under my application's tolerance?*
//!
//! ```text
//! cargo run --release --example threshold_tuning [tolerance_m]
//! ```

use trajc::compress::{evaluate, Compressor, TdTr};

fn main() {
    let tolerance_m: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);

    let trip = trajc::gen::paper_dataset(42).remove(6);
    println!("tuning TD-TR on a {}-fix trip, error tolerance {tolerance_m} m\n", trip.len());
    println!("{:>11} {:>12} {:>14}", "threshold m", "compression%", "avg sync err m");

    let mut best: Option<(f64, f64, f64)> = None;
    for i in 0..=20 {
        let eps = 10.0 + 10.0 * i as f64; // 10–210 m
        let result = TdTr::new(eps).compress(&trip);
        let e = evaluate(&trip, &result);
        println!("{:>11.0} {:>12.1} {:>14.2}", eps, e.compression_pct, e.avg_sync_err_m);
        if e.avg_sync_err_m <= tolerance_m {
            best = Some((eps, e.compression_pct, e.avg_sync_err_m));
        }
    }

    match best {
        Some((eps, comp, err)) => println!(
            "\n→ pick ε = {eps:.0} m: {comp:.1}% compression at {err:.2} m average error \
             (within the {tolerance_m} m tolerance)"
        ),
        None => println!(
            "\n→ no swept threshold meets the {tolerance_m} m tolerance; \
             lower the sweep floor or accept more error"
        ),
    }
}
