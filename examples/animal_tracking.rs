//! Wildlife telemetry: compressing tracks of a different nature.
//!
//! The paper's closing question (§5) — how do the techniques behave for
//! "moving objects of different nature"? — played out on a two-state
//! animal track (transit vs foraging, the standard movement-ecology
//! model). Collars are battery-bound, so the online OPW-SP stream is the
//! realistic deployment: the collar transmits only the kept fixes. We
//! compare thresholds, then archive the compressed track to disk via the
//! store.
//!
//! ```text
//! cargo run --release --example animal_tracking
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajc::compress::{evaluate, Compressor, OpeningWindow, TdTr};
use trajc::gen::{animal_track, AnimalParams};
use trajc::model::stats::TrajectoryStats;
use trajc::store::{save_dir, IngestMode, MovingObjectStore};

fn main() {
    // A day of 30 s fixes from a collared animal.
    let params = AnimalParams { steps: 2880, ..AnimalParams::default() };
    let track = animal_track(&params, &mut StdRng::seed_from_u64(11));
    let s = TrajectoryStats::of(&track);
    println!(
        "track: {} fixes over {}, {:.1} km, avg {:.2} m/s",
        s.n_points,
        s.duration,
        s.length_km(),
        s.avg_speed_ms
    );

    // Threshold guidance per the paper: sweep and look at the knee.
    println!("\n{:>8} {:>22} {:>22}", "ε (m)", "TD-TR comp%/err", "OPW-SP comp%/err");
    for eps in [5.0, 10.0, 25.0, 50.0] {
        let td = evaluate(&track, &TdTr::new(eps).compress(&track));
        let ow = evaluate(&track, &OpeningWindow::opw_sp(eps, 1.0).compress(&track));
        println!(
            "{:>8.0} {:>13.1}% {:>6.2}m {:>13.1}% {:>6.2}m",
            eps, td.compression_pct, td.avg_sync_err_m, ow.compression_pct, ow.avg_sync_err_m
        );
    }

    // Archive: ingest through the store with a 10 m budget and persist.
    let mut store = MovingObjectStore::new(IngestMode::Compressed {
        epsilon: 10.0,
        speed_epsilon: Some(1.0),
        max_window: 128,
    });
    store.insert_trajectory(1, &track).expect("valid track");
    let stats = store.stats();
    println!(
        "\narchived {} of {} fixes ({:.1}% saved)",
        stats.stored_points,
        stats.ingested_points,
        stats.compression_pct()
    );
    let dir = std::env::temp_dir().join("trajc_animal_archive");
    let written = save_dir(&store, &dir).expect("writable temp dir");
    println!("persisted {written} object file(s) under {}", dir.display());
}
