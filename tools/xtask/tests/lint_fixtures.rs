//! Fixture self-tests for the lint gate.
//!
//! Every file under `tests/fixtures/fail/` must produce *exactly* the
//! advertised number of findings for its lint and zero for the others;
//! every file under `tests/fixtures/pass/` must be clean. On top of the
//! per-file checks, an end-to-end suite builds a miniature repo in a
//! temp directory and exercises the allowlist semantics: exact-match
//! suppression, failure on removed entries, failure on stale entries,
//! the budget ratchet, and `--fix-allowlist` regeneration.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::allowlist::parse;
use xtask::lints::{check_file, Lint};
use xtask::{fix_allowlist, load_config, run};

/// The lint config as committed — fixtures are checked against the
/// real configuration, so config drift shows up here.
fn repo_config() -> xtask::lints::Config {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let text = fs::read_to_string(manifest.join("lint.toml")).expect("read lint.toml");
    parse(&text).expect("parse lint.toml").config
}

fn fixture(kind: &str, name: &str) -> String {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let path = manifest.join("tests/fixtures").join(kind).join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Counts findings per lint for a fixture, under a library-crate path
/// (so no path-based exemption applies).
fn counts(kind: &str, name: &str) -> [usize; 5] {
    let source = fixture(kind, name);
    let cfg = repo_config();
    let violations = check_file("crates/fixture/src/lib.rs", &source, &cfg);
    let mut out = [0usize; 5];
    for v in violations {
        let idx = match v.lint {
            Lint::FloatEq => 0,
            Lint::Panic => 1,
            Lint::Safety => 2,
            Lint::Ordering => 3,
            Lint::TimeCast => 4,
        };
        out[idx] += 1;
    }
    out
}

#[test]
fn fail_fixtures_produce_exact_counts() {
    assert_eq!(counts("fail", "float_eq.rs"), [4, 0, 0, 0, 0]);
    assert_eq!(counts("fail", "panic.rs"), [0, 6, 0, 0, 0]);
    assert_eq!(counts("fail", "safety.rs"), [0, 0, 2, 0, 0]);
    assert_eq!(counts("fail", "ordering.rs"), [0, 0, 0, 3, 0]);
    assert_eq!(counts("fail", "time_cast.rs"), [0, 0, 0, 0, 3]);
}

#[test]
fn pass_fixtures_are_clean() {
    for name in ["float_eq.rs", "panic.rs", "safety.rs", "ordering.rs", "time_cast.rs"] {
        assert_eq!(counts("pass", name), [0; 5], "pass fixture {name} is not clean");
    }
}

// ---------------------------------------------------------------------
// End-to-end allowlist semantics over a miniature repo
// ---------------------------------------------------------------------

/// A throwaway repo containing one library file with two panic findings
/// and one float_eq finding.
struct MiniRepo {
    root: PathBuf,
}

const MINI_LIB: &str = "\
fn lib(x: Option<u32>, y: f64) -> u32 {
    let a = x.unwrap();
    let b = x.expect(\"present\");
    if y == 0.0 {
        return 0;
    }
    a + b
}
";

const MINI_TOML: &str = r#"
[config]
exclude = ["vendor/"]
panic_exempt = []
float_eq_allow = []
time_cast_allow = []
float_methods = [".as_secs()"]
time_patterns = [".as_secs()"]

[budget]
float_eq = 1
panic = 2
safety = 0
ordering = 0
time_cast = 0

[[allow]]
lint = "float_eq"
path = "crates/mini/src/lib.rs"
count = 1

[[allow]]
lint = "panic"
path = "crates/mini/src/lib.rs"
count = 2
"#;

impl MiniRepo {
    fn new(test_name: &str) -> MiniRepo {
        let root = std::env::temp_dir()
            .join(format!("xtask-e2e-{}-{test_name}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/mini/src")).expect("mkdir src");
        fs::create_dir_all(root.join("tools/xtask")).expect("mkdir xtask");
        fs::write(root.join("crates/mini/src/lib.rs"), MINI_LIB).expect("write lib");
        fs::write(root.join("tools/xtask/lint.toml"), MINI_TOML).expect("write toml");
        MiniRepo { root }
    }

    fn with_toml(test_name: &str, toml: &str) -> MiniRepo {
        let repo = MiniRepo::new(test_name);
        fs::write(repo.root.join("tools/xtask/lint.toml"), toml).expect("write toml");
        repo
    }

    fn lint(&self) -> xtask::Outcome {
        let file = load_config(&self.root).expect("load config");
        run(&self.root, &file).expect("run lint")
    }
}

impl Drop for MiniRepo {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn exact_allowlist_is_clean() {
    let repo = MiniRepo::new("clean");
    let out = repo.lint();
    assert_eq!(out.violations.len(), 3);
    assert!(out.report.is_clean(), "problems: {:?}", out.report.problems);
}

#[test]
fn removing_an_entry_for_a_live_violation_fails() {
    // Drop the float_eq entry while the comparison is still present.
    let toml = {
        let start = MINI_TOML.find("[[allow]]").expect("entry");
        let end = MINI_TOML[start..].find("\n\n").expect("gap") + start;
        format!("{}{}", &MINI_TOML[..start], &MINI_TOML[end + 2..])
    };
    assert!(!toml.contains("float_eq\"\npath"), "float_eq entry removed");
    let repo = MiniRepo::with_toml("removed-entry", &toml);
    let out = repo.lint();
    assert!(!out.report.is_clean());
    assert_eq!(out.report.new.len(), 1, "the un-allowlisted finding resurfaces");
    assert_eq!(out.report.new[0].lint, Lint::FloatEq);
}

#[test]
fn stale_entry_for_fixed_violation_fails() {
    let repo = MiniRepo::new("stale");
    // Fix the float comparison; its allowlist entry is now stale.
    let lib = MINI_LIB.replace("y == 0.0", "y.abs() < 1e-12");
    fs::write(repo.root.join("crates/mini/src/lib.rs"), lib).expect("rewrite lib");
    let out = repo.lint();
    assert!(!out.report.is_clean());
    assert!(out.report.problems.iter().any(|p| p.contains("stale allowlist entry")));
}

#[test]
fn new_violation_fails_even_under_budget_slack() {
    let repo = MiniRepo::with_toml(
        "new-violation",
        &MINI_TOML.replace("panic = 2", "panic = 10"),
    );
    let extra = format!("{MINI_LIB}\nfn more(z: Option<u32>) -> u32 {{ z.unwrap() }}\n");
    fs::write(repo.root.join("crates/mini/src/lib.rs"), extra).expect("rewrite lib");
    let out = repo.lint();
    assert!(!out.report.is_clean());
    assert!(out.report.problems.iter().any(|p| p.contains("grew")));
}

#[test]
fn fix_allowlist_ratchets_down_after_paying_debt() {
    let repo = MiniRepo::new("ratchet");
    // Pay off the two panics; keep the float comparison.
    let lib = MINI_LIB
        .replace("x.unwrap()", "x.ok_or(0u32).unwrap_or(0)")
        .replace("x.expect(\"present\")", "x.unwrap_or(1)");
    fs::write(repo.root.join("crates/mini/src/lib.rs"), lib).expect("rewrite lib");

    let file = load_config(&repo.root).expect("load");
    let out = run(&repo.root, &file).expect("run");
    fix_allowlist(&repo.root, &file, &out.violations).expect("regenerate");

    let regenerated = load_config(&repo.root).expect("reload");
    assert_eq!(regenerated.budget["panic"], 0, "panic budget ratcheted to zero");
    assert_eq!(regenerated.budget["float_eq"], 1);
    assert_eq!(regenerated.allows.len(), 1);
    assert!(run(&repo.root, &regenerated).expect("rerun").report.is_clean());
}

#[test]
fn fix_allowlist_refuses_to_grow() {
    let repo = MiniRepo::new("refuse-growth");
    let extra = format!("{MINI_LIB}\nfn more(z: Option<u32>) -> u32 {{ z.unwrap() }}\n");
    fs::write(repo.root.join("crates/mini/src/lib.rs"), extra).expect("rewrite lib");
    let file = load_config(&repo.root).expect("load");
    let out = run(&repo.root, &file).expect("run");
    let err = fix_allowlist(&repo.root, &file, &out.violations).unwrap_err();
    assert!(err.contains("never grows"), "got: {err}");
}

// ---------------------------------------------------------------------
// The real repository must satisfy its own gate.
// ---------------------------------------------------------------------

#[test]
fn repo_gate_is_clean() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root: &Path = manifest.parent().and_then(Path::parent).expect("workspace root");
    let file = load_config(root).expect("load repo lint.toml");
    let out = run(root, &file).expect("lint the repo");
    let mut msg = String::new();
    for v in out.report.new.iter().take(20) {
        msg.push_str(&format!("\n  {}:{} [{}] {}", v.path, v.line, v.lint.name(), v.excerpt));
    }
    for p in out.report.problems.iter().take(20) {
        msg.push_str(&format!("\n  allowlist: {p}"));
    }
    assert!(out.report.is_clean(), "the repo fails its own lint gate:{msg}");
}
