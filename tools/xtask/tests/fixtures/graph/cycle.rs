//! Known call graph: a two-node cycle that stays clean, and a
//! self-recursive function tainted through an indexing seed.

pub fn ping(n: u32) -> u32 {
    if n == 0 {
        0
    } else {
        pong(n - 1)
    }
}

pub fn pong(n: u32) -> u32 {
    ping(n)
}

pub fn lookup(xs: &[u32], i: usize) -> u32 {
    xs[i]
}

pub fn spiral(xs: &[u32], i: usize) -> u32 {
    if i == 0 {
        lookup(xs, 0)
    } else {
        spiral(xs, i - 1)
    }
}
