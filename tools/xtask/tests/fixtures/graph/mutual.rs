//! Mutual recursion: the allocation in `odd` must reach `even` through
//! the cycle, and the fixpoint must converge.

pub fn even(n: u32, out: &mut Vec<u32>) -> bool {
    if n == 0 {
        true
    } else {
        odd(n - 1, out)
    }
}

pub fn odd(n: u32, out: &mut Vec<u32>) -> bool {
    out.push(n);
    if n == 0 {
        false
    } else {
        even(n - 1, out)
    }
}
