//! Shadowed method names: two types expose `go`; only one can panic.
//! A qualified call pins its impl, an unknown-receiver call unions both.

pub struct Safe;
pub struct Risky;

impl Safe {
    pub fn go(&self, x: Option<u32>) -> u32 {
        x.unwrap_or(0)
    }
}

impl Risky {
    pub fn go(&self, x: Option<u32>) -> u32 {
        x.unwrap()
    }
}

pub fn qualified_safe(s: &Safe, x: Option<u32>) -> u32 {
    Safe::go(s, x)
}

pub fn unknown_receiver(s: &Safe, x: Option<u32>) -> u32 {
    s.go(x)
}
