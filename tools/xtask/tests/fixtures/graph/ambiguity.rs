//! Method-vs-function ambiguity: a free `tick` and a method `tick`
//! coexist. A bare call resolves to the free fn; a `.tick()` call can
//! only dispatch to the receiver-taking method.

pub fn tick() -> u32 {
    1
}

pub struct Clock;

impl Clock {
    pub fn tick(&self) -> u32 {
        panic!("no time source")
    }
}

pub fn free_call() -> u32 {
    tick()
}

pub fn method_call(c: &Clock) -> u32 {
    c.tick()
}
