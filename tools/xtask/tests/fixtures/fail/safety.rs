//! Known-bad `unsafe` without justification. Expected findings:
//! exactly 2.

fn bad(ptr: *const u8) -> u8 {
    let a = unsafe { *ptr }; // finding 1: missing justification
    // A nearby comment that is not a justification does not count.
    let b = unsafe { *ptr.add(1) }; // finding 2
    a + b
}
