//! Known-bad float comparisons. Expected findings: exactly 4.

fn bad(x: f64, span: f64, d: Vec2) -> bool {
    let a = x == 0.0; // finding 1: literal RHS
    let b = 1.5 != span; // finding 2: literal LHS
    let c = d.norm_sq() == 0.0; // finding 3: float method
    let e = x == f64::EPSILON; // finding 4: f64:: constant
    a && b && c && e
}
