//! Known-bad atomic orderings without justification. Expected
//! findings: exactly 3.

use std::sync::atomic::{AtomicU64, Ordering};

fn bad(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed); // finding 1
    let v = c.load(Ordering::Acquire); // finding 2
    c.store(v, Ordering::SeqCst); // finding 3
    v
}
