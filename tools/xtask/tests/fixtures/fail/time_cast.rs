//! Known-bad timestamp/duration casts. Expected findings: exactly 3.

fn bad(t: Timestamp, d: TimeDelta, bucket: f64) -> i64 {
    let a = t.as_secs() as i64; // finding 1: silent truncation
    let b = d.as_mins() as u32; // finding 2
    let c = (t.as_secs() / bucket).floor() as i64; // finding 3: bucketing
    a + i64::from(b) + c
}
