//! Known-bad panicking calls in library code. Expected findings:
//! exactly 6 (two on the `both` line).

fn bad(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap(); // finding 1
    let b = r.expect("present"); // finding 2
    let both = x.unwrap() + r.unwrap(); // findings 3 and 4
    if a == 0 {
        panic!("zero"); // finding 5
    }
    if b == 1 {
        todo!() // finding 6
    }
    both
}

// An escape hatch without a reason is still a finding — covered by the
// unit tests, not this fixture, to keep the count here stable.
