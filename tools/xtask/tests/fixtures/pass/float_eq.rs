//! Known-good float handling. Expected findings: 0.

fn good(x: f64, span: f64, d: Vec2, n: usize) -> bool {
    let a = approx_zero(x, 1e-12); // epsilon-aware helper
    let b = approx_eq(span, 1.5, 1e-9, 1e-9);
    let c = !(d.norm_sq() > 0.0); // NaN-safe zero guard, no `==`
    let e = n == 0; // integer equality is fine
    let f = x <= 0.5; // ordered comparison is fine
    let s = "x == 0.0"; // inside a string
    // x == 0.0 inside a comment
    a && b && c && e && f && !s.is_empty()
}
