//! Known-good panic handling. Expected findings: 0.

fn good(x: Option<u32>, r: Result<u32, ()>) -> Result<u32, ()> {
    let a = x.ok_or(())?; // propagation, not panic
    let b = r.unwrap_or(0); // non-panicking relative
    let c = r.unwrap_or_else(|_| 1);
    // lint: allow(panic) invariant: caller checked is_some() above
    let d = x.unwrap();
    let e = x.expect("checked"); // lint: allow(panic) same-line escape
    Ok(a + b + c + d + e)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        v.expect("test code is exempt");
        panic!("even this is fine in tests");
    }
}
