//! Known-good `unsafe` with justification. Expected findings: 0.

fn good(ptr: *const u8, len: usize) -> u8 {
    // SAFETY: caller guarantees `ptr` is valid for `len` bytes and
    // `len >= 2`; both indices below are in bounds.
    let a = unsafe { *ptr };
    let b = unsafe { *ptr.add(1) }; // SAFETY: in bounds, len >= 2 checked by caller
    let _ = len;
    a + b
}
