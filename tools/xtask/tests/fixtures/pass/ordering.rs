//! Known-good atomic orderings with justification. Expected
//! findings: 0. `std::cmp::Ordering` never matches.

use std::cmp::Ordering as Cmp;
use std::sync::atomic::{AtomicU64, Ordering};

fn good(c: &AtomicU64, a: u64, b: u64) -> u64 {
    // Relaxed ordering: advisory counter, no happens-before needed.
    c.fetch_add(1, Ordering::Relaxed);
    let v = c.load(Ordering::Acquire); // ordering: pairs with the Release store below
    c.store(v, Ordering::Release); // Ordering: publishes v to the reader above
    match a.cmp(&b) {
        Cmp::Less | Cmp::Greater => v,
        Cmp::Equal => 0,
    }
}
