//! Known-good time conversions. Expected findings: 0.

fn good(t: Timestamp, d: TimeDelta, i: usize, buf: &[u8]) -> Result<i64, TimeError> {
    let a = t.whole_secs()?; // checked conversion from model::time
    let b = d.whole_mins()?;
    let c = i as f64; // int -> float is construction, not truncation
    let n = buf.len() as u64; // non-time expressions cast freely
    Ok(a + b + c as i64 + n as i64)
}
