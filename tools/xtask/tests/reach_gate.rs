//! Gate and fixture tests for `cargo xtask reach`.
//!
//! The fixture crates under `tests/fixtures/graph/` have known call
//! graphs (cycles, mutual recursion, shadowed names, method-vs-function
//! ambiguity); their verdicts and evidence chains are pinned here. A
//! miniature repo exercises the `[[contract_allow]]` ratchet end to
//! end, and `repo_contracts_hold` runs the analysis on this repository
//! itself so `cargo test --workspace` fails when a change breaks a
//! declared contract. Property tests pin that the fixpoint is monotone
//! under adding edges or local effects.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use xtask::load_config;
use xtask::reach::{self, Analysis, ALLOC, PANIC};

fn fixture(name: &str) -> String {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let path = manifest.join("tests/fixtures/graph").join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// A throwaway repo holding the graph fixtures plus a custom lint.toml.
struct MiniRepo {
    root: PathBuf,
}

impl MiniRepo {
    fn new(test_name: &str, toml: &str) -> MiniRepo {
        let root = std::env::temp_dir()
            .join(format!("xtask-reach-{}-{test_name}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/graph/src")).expect("mkdir src");
        fs::create_dir_all(root.join("crates/graph/tests")).expect("mkdir tests");
        fs::create_dir_all(root.join("tools/xtask")).expect("mkdir xtask");
        for name in ["cycle.rs", "mutual.rs", "shadow.rs", "ambiguity.rs"] {
            fs::write(root.join("crates/graph/src").join(name), fixture(name))
                .expect("write fixture");
        }
        // A panicking integration test: harness code must never taint
        // library verdicts (it is a separate compilation unit).
        fs::write(
            root.join("crates/graph/tests/harness.rs"),
            "fn main() { Option::<u32>::None.unwrap(); }\n",
        )
        .expect("write harness");
        fs::write(root.join("tools/xtask/lint.toml"), toml).expect("write toml");
        MiniRepo { root }
    }

    fn analyze(&self) -> Analysis {
        let file = load_config(&self.root).expect("load config");
        reach::analyze(&self.root, &file).expect("analyze")
    }
}

impl Drop for MiniRepo {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn toml_with(roots: &str, rest: &str) -> String {
    format!(
        r#"
[config]
exclude = []
panic_exempt = []
float_eq_allow = []
time_cast_allow = []
float_methods = []
time_patterns = []

[budget]
float_eq = 0
panic = 0
safety = 0
ordering = 0
time_cast = 0

[contracts]
roots = [{roots}]
assume_clean = []
int_div_patterns = [".len()"]
{rest}
"#
    )
}

fn root_effects(a: &Analysis, spec: &str) -> u8 {
    a.roots
        .iter()
        .find(|r| r.spec == spec)
        .unwrap_or_else(|| panic!("no root {spec}"))
        .effects
}

#[test]
fn fixture_verdicts_are_pinned() {
    let toml = toml_with(
        r#""ping", "pong", "spiral", "even", "qualified_safe", "unknown_receiver", "free_call", "method_call""#,
        "budget_panic = 3\nbudget_alloc = 2\n",
    );
    let repo = MiniRepo::new("verdicts", &toml);
    let a = repo.analyze();

    // Clean two-node cycle: the fixpoint converges without effects.
    assert_eq!(root_effects(&a, "ping"), 0);
    assert_eq!(root_effects(&a, "pong"), 0);
    // Self-recursion reaching an indexing seed through a callee.
    assert_eq!(root_effects(&a, "spiral"), PANIC);
    // Mutual recursion: `odd`'s push taints `even` through the cycle.
    assert_eq!(root_effects(&a, "even"), ALLOC);
    // Qualified call pins the safe impl; unknown receiver unions both.
    assert_eq!(root_effects(&a, "qualified_safe"), 0);
    assert_eq!(root_effects(&a, "unknown_receiver"), PANIC);
    // Bare call resolves to the free fn, not the panicking method.
    assert_eq!(root_effects(&a, "free_call"), 0);
    assert_eq!(root_effects(&a, "method_call"), PANIC);
}

#[test]
fn evidence_chain_is_shortest_and_complete() {
    let toml = toml_with(r#""spiral""#, "budget_panic = 1\nbudget_alloc = 0\n");
    let repo = MiniRepo::new("evidence", &toml);
    let a = repo.analyze();

    assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
    let f = &a.findings[0];
    assert_eq!(f.path, "crates/graph/src/cycle.rs");
    assert!(f.what.contains("indexing"), "{}", f.what);
    // Shortest chain: spiral calls lookup directly — two hops, not a
    // detour around the self-recursive edge.
    assert_eq!(f.chain.len(), 2, "{:?}", f.chain);
    assert!(f.chain[0].contains("spiral"), "{:?}", f.chain);
    assert!(f.chain[1].contains("lookup"), "{:?}", f.chain);
}

#[test]
fn harness_code_never_taints_library_verdicts() {
    // The tests/harness.rs file in the mini repo panics unconditionally;
    // `ping` stays clean because harness paths are not linkable from
    // library roots.
    let toml = toml_with(r#""ping""#, "budget_panic = 0\nbudget_alloc = 0\n");
    let repo = MiniRepo::new("harness", &toml);
    let a = repo.analyze();
    assert_eq!(root_effects(&a, "ping"), 0);
    assert!(a.report.is_clean(), "{:?}", a.report.problems);
}

#[test]
fn contract_allow_covers_exact_counts() {
    let allow = r#"budget_panic = 1
budget_alloc = 0

[[contract_allow]]
path = "crates/graph/src/shadow.rs"
kind = "panic"
count = 1
reason = "receiver union includes the risky impl by design"
"#;
    let toml = toml_with(r#""unknown_receiver""#, allow);
    let repo = MiniRepo::new("allow-clean", &toml);
    let a = repo.analyze();
    assert!(a.report.is_clean(), "{:?}", a.report.problems);

    // Overstated count: the entry is stale and must fail the gate.
    let stale = toml.replace("count = 1", "count = 2");
    let repo = MiniRepo::new("allow-stale", &stale);
    let a = repo.analyze();
    assert!(!a.report.is_clean());
    assert!(
        a.report.problems.iter().any(|p| p.contains("stale")),
        "{:?}",
        a.report.problems
    );
}

#[test]
fn uncovered_findings_and_stale_roots_fail() {
    let toml = toml_with(r#""unknown_receiver""#, "budget_panic = 0\nbudget_alloc = 0\n");
    let repo = MiniRepo::new("uncovered", &toml);
    let a = repo.analyze();
    assert!(!a.report.is_clean());
    assert_eq!(a.report.new.len(), 1, "the unwrap surfaces as a new finding");

    let toml = toml_with(r#""no_such_fn""#, "budget_panic = 0\nbudget_alloc = 0\n");
    let repo = MiniRepo::new("stale-root", &toml);
    let a = repo.analyze();
    assert!(
        a.report.problems.iter().any(|p| p.contains("no_such_fn")),
        "{:?}",
        a.report.problems
    );
}

// ---------------------------------------------------------------------
// The real repository must satisfy its own contracts.
// ---------------------------------------------------------------------

#[test]
fn repo_contracts_hold() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root: &Path = manifest.parent().and_then(Path::parent).expect("workspace root");
    let file = load_config(root).expect("load repo lint.toml");
    let a = reach::analyze(root, &file).expect("analyze the repo");
    let mut msg = String::new();
    for f in a.report.new.iter().take(10) {
        msg.push_str(&format!("\n  {}:{} [{}] {}", f.path, f.line, f.kind.name(), f.what));
        for hop in &f.chain {
            msg.push_str(&format!("\n      {hop}"));
        }
    }
    for p in a.report.problems.iter().take(20) {
        msg.push_str(&format!("\n  contract: {p}"));
    }
    assert!(
        a.report.is_clean(),
        "the repo breaks its reachability contracts \
         (run `cargo xtask reach` for the full report):{msg}"
    );
}

// ---------------------------------------------------------------------
// Fixpoint properties: verdicts are monotone.
// ---------------------------------------------------------------------

const N: usize = 10;

fn edge_list() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..N, 0..N), 0..25)
}

fn to_adj(pairs: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); N];
    for &(a, b) in pairs {
        adj[a].push(b);
    }
    adj
}

proptest! {
    #[test]
    fn propagate_is_monotone_under_adding_edges(
        pairs in edge_list(),
        local in proptest::collection::vec(0u8..4, N..=N),
        extra in (0..N, 0..N),
    ) {
        let base = reach::propagate(&to_adj(&pairs), &local);
        let mut grown = pairs.clone();
        grown.push(extra);
        let more = reach::propagate(&to_adj(&grown), &local);
        for i in 0..N {
            prop_assert_eq!(
                more[i] & base[i],
                base[i],
                "adding an edge lost effect bits at fn {}", i
            );
        }
    }

    #[test]
    fn propagate_is_monotone_under_adding_local_effects(
        pairs in edge_list(),
        local in proptest::collection::vec(0u8..4, N..=N),
        at in 0..N,
        bit in 0u8..2,
    ) {
        let base = reach::propagate(&to_adj(&pairs), &local);
        let mut stronger = local.clone();
        stronger[at] |= 1 << bit;
        let more = reach::propagate(&to_adj(&pairs), &stronger);
        for i in 0..N {
            prop_assert_eq!(more[i] & base[i], base[i]);
        }
    }

    #[test]
    fn propagate_reaches_a_fixpoint(
        pairs in edge_list(),
        local in proptest::collection::vec(0u8..4, N..=N),
    ) {
        let adj = to_adj(&pairs);
        let eff = reach::propagate(&adj, &local);
        // Re-running from the result changes nothing, and every edge
        // inequality effects[caller] ⊇ effects[callee] holds.
        prop_assert_eq!(reach::propagate(&adj, &eff), eff.clone());
        for (i, callees) in adj.iter().enumerate() {
            for &t in callees {
                prop_assert_eq!(eff[i] & eff[t], eff[t]);
            }
        }
    }
}
