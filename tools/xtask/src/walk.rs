//! Repository walker: every `.rs` file under the workspace root, minus
//! exclusions.
//!
//! Always skipped: `.git`, any directory named `target`, and the
//! xtask fixture tree (fixtures are deliberately-bad code, exercised
//! directly by the fixture tests). Further prefixes come from
//! `[config] exclude` in `lint.toml` — notably `vendor/`, whose shims
//! are API stand-ins, not production code.

use std::fs;
use std::path::Path;

/// Collects repo-relative (forward-slash) paths of all lintable `.rs`
/// files under `root`, sorted for stable output.
pub fn rust_files(root: &Path, exclude: &[String]) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir)
            .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?;
            let path = entry.path();
            let rel = relative(root, &path);
            if excluded(&rel, exclude) {
                continue;
            }
            let ty = entry
                .file_type()
                .map_err(|e| format!("cannot stat {}: {e}", path.display()))?;
            if ty.is_dir() {
                let name = entry.file_name();
                if name == ".git" || name == "target" {
                    continue;
                }
                stack.push(path);
            } else if ty.is_file() && rel.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Root-relative path with forward slashes.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Prefix match against the exclude list, plus the built-in fixture
/// exclusion.
fn excluded(rel: &str, exclude: &[String]) -> bool {
    if rel.starts_with("tools/xtask/tests/fixtures/") {
        return true;
    }
    exclude.iter().any(|p| rel.starts_with(p.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_tree_is_always_excluded() {
        assert!(excluded("tools/xtask/tests/fixtures/fail/panic.rs", &[]));
        assert!(!excluded("tools/xtask/src/main.rs", &[]));
    }

    #[test]
    fn exclude_prefixes_apply() {
        let ex = vec!["vendor/".to_string()];
        assert!(excluded("vendor/rand/src/lib.rs", &ex));
        assert!(!excluded("crates/geom/src/lib.rs", &ex));
    }
}
