//! The custom lints behind `cargo xtask lint`.
//!
//! All four lints are *textual* analyses over the comment/string-aware
//! code view produced by [`crate::scan`] — deliberately so: they run in
//! milliseconds with zero dependencies, and the patterns they police
//! (NaN-unsafe `==`, panicking calls, missing `SAFETY:`/ordering
//! comments, truncating time casts) are all lexically visible. The
//! price is that type-driven cases (`a == b` where both sides are `f64`
//! variables with no literal or known float method in sight) are out of
//! reach; `clippy::float_cmp`-style type analysis is explicitly not a
//! goal. Fixture tests under `tests/fixtures/` pin exactly what each
//! lint catches.
//!
//! Every lint honours the escape hatch — a comment
//! `// lint: allow(<name>) <reason>` on the offending line or in the
//! contiguous comment block directly above it. The reason is mandatory:
//! an escape without one is itself reported.

use crate::scan::{lex, Line};

/// The lints, in the order they are reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// NaN-unsafe `==`/`!=` on floating-point expressions.
    FloatEq,
    /// Panicking calls (`unwrap`, `expect`, `panic!`, `todo!`,
    /// `unimplemented!`) in library code.
    Panic,
    /// `unsafe` without a `// SAFETY:` justification.
    Safety,
    /// Atomic `Ordering::*` without an ordering justification comment.
    Ordering,
    /// Bare `as` cast from a timestamp/duration expression to an
    /// integer type.
    TimeCast,
}

/// Every lint, for iteration and budget bookkeeping.
pub const ALL_LINTS: [Lint; 5] =
    [Lint::FloatEq, Lint::Panic, Lint::Safety, Lint::Ordering, Lint::TimeCast];

impl Lint {
    /// The stable machine-readable name used in `lint.toml` and the
    /// escape hatch.
    pub fn name(self) -> &'static str {
        match self {
            Lint::FloatEq => "float_eq",
            Lint::Panic => "panic",
            Lint::Safety => "safety",
            Lint::Ordering => "ordering",
            Lint::TimeCast => "time_cast",
        }
    }

    /// Parses a lint name.
    pub fn from_name(name: &str) -> Option<Lint> {
        ALL_LINTS.into_iter().find(|l| l.name() == name)
    }

    /// Whether `#[cfg(test)]` regions are exempt from this lint.
    ///
    /// Test code may compare exact expected floats, `unwrap()` freely
    /// and cast loop counters; missing `SAFETY:`/ordering comments are
    /// *not* excused anywhere.
    pub fn exempts_tests(self) -> bool {
        matches!(self, Lint::FloatEq | Lint::Panic | Lint::TimeCast)
    }
}

/// One finding: `lint` fired at `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which lint fired.
    pub lint: Lint,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Extra context (e.g. "escape hatch is missing its reason").
    pub note: Option<String>,
}

/// Tunable patterns, loaded from the `[config]` section of `lint.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes excluded from every lint (vendored shims, fixture
    /// trees, generated output).
    pub exclude: Vec<String>,
    /// Extra path prefixes exempt from the `panic` lint only
    /// (benchmarks, examples, integration-test trees).
    pub panic_exempt: Vec<String>,
    /// Files allowed to use raw float `==` (the approx-comparison
    /// module itself).
    pub float_eq_allow: Vec<String>,
    /// Files allowed to use bare time casts (the checked-conversion
    /// module itself).
    pub time_cast_allow: Vec<String>,
    /// Method-call suffixes treated as float-valued for `float_eq`.
    pub float_methods: Vec<String>,
    /// Substrings marking an expression as a timestamp/duration for
    /// `time_cast`.
    pub time_patterns: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            exclude: vec!["target/".into(), "vendor/".into()],
            panic_exempt: vec!["tests/".into(), "examples/".into(), "benches/".into()],
            float_eq_allow: vec![],
            time_cast_allow: vec![],
            float_methods: vec![
                ".as_secs()".into(),
                ".as_mins()".into(),
                ".norm()".into(),
                ".norm_sq()".into(),
            ],
            time_patterns: vec![
                ".as_secs()".into(),
                ".as_mins()".into(),
                "time_bucket".into(),
                "elapsed_ns()".into(),
            ],
        }
    }
}

/// Runs every applicable lint over one file.
pub fn check_file(path: &str, source: &str, cfg: &Config) -> Vec<Violation> {
    let lines = lex(source);
    let mut out = Vec::new();
    let panic_exempt = cfg.panic_exempt.iter().any(|p| path.starts_with(p.as_str()))
        || path_component_exempt(path);
    let float_allowed = cfg.float_eq_allow.iter().any(|p| path == p);
    let cast_allowed = cfg.time_cast_allow.iter().any(|p| path == p);
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        if !float_allowed && !line.in_test {
            float_eq_line(&line.code, cfg).then(|| {
                push(&mut out, Lint::FloatEq, path, lineno, &lines, idx);
            });
        }
        if !panic_exempt && !line.in_test {
            for _ in 0..panic_calls(&line.code) {
                push(&mut out, Lint::Panic, path, lineno, &lines, idx);
            }
        }
        if has_unsafe_token(&line.code) && !has_justification(&lines, idx, "SAFETY:") {
            push(&mut out, Lint::Safety, path, lineno, &lines, idx);
        }
        if has_atomic_ordering(&line.code) && !has_justification_ci(&lines, idx, "ordering") {
            push(&mut out, Lint::Ordering, path, lineno, &lines, idx);
        }
        if !cast_allowed && !line.in_test && time_cast_line(&line.code, cfg) {
            push(&mut out, Lint::TimeCast, path, lineno, &lines, idx);
        }
    }
    out
}

/// `tests/`, `examples/` or `benches/` anywhere in the path exempts the
/// panic lint (crate-local `crates/foo/tests/…` trees).
fn path_component_exempt(path: &str) -> bool {
    path.split('/').any(|c| matches!(c, "tests" | "examples" | "benches"))
}

/// Records a violation unless the escape hatch suppresses it; an escape
/// hatch without a reason is recorded *with a note* instead.
fn push(out: &mut Vec<Violation>, lint: Lint, path: &str, lineno: usize, lines: &[Line], idx: usize) {
    match escape_hatch(lines, idx, lint) {
        Escape::Allowed => {}
        Escape::MissingReason => out.push(Violation {
            lint,
            path: path.to_string(),
            line: lineno,
            excerpt: lines[idx].raw.trim().to_string(),
            note: Some(format!(
                "`lint: allow({})` needs a reason after the closing parenthesis",
                lint.name()
            )),
        }),
        Escape::None => out.push(Violation {
            lint,
            path: path.to_string(),
            line: lineno,
            excerpt: lines[idx].raw.trim().to_string(),
            note: None,
        }),
    }
}

enum Escape {
    None,
    Allowed,
    MissingReason,
}

/// Looks for `lint: allow(<name>)` in the line's own comment or the
/// contiguous comment block immediately above it.
fn escape_hatch(lines: &[Line], idx: usize, lint: Lint) -> Escape {
    let needle = format!("lint: allow({})", lint.name());
    let mut best = Escape::None;
    let mut check = |comment: &str| {
        if let Some(pos) = comment.find(&needle) {
            let rest = comment[pos + needle.len()..].trim();
            if rest.is_empty() {
                best = Escape::MissingReason;
            } else {
                best = Escape::Allowed;
            }
            true
        } else {
            false
        }
    };
    if check(&lines[idx].comment) {
        return best;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        let comment_only = l.code.trim().is_empty() && !l.comment.trim().is_empty();
        if !comment_only {
            break;
        }
        if check(&l.comment) {
            return best;
        }
    }
    Escape::None
}

/// Same-line or contiguous-comment-block-above justification search
/// (exact substring).
fn has_justification(lines: &[Line], idx: usize, needle: &str) -> bool {
    justified_by(lines, idx, |c| c.contains(needle))
}

/// Case-insensitive variant for the ordering lint.
fn has_justification_ci(lines: &[Line], idx: usize, needle: &str) -> bool {
    let lower = needle.to_ascii_lowercase();
    justified_by(lines, idx, |c| c.to_ascii_lowercase().contains(&lower))
}

fn justified_by(lines: &[Line], idx: usize, pred: impl Fn(&str) -> bool) -> bool {
    if pred(&lines[idx].comment) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        let comment_only = l.code.trim().is_empty() && !l.comment.trim().is_empty();
        if !comment_only {
            return false;
        }
        if pred(&l.comment) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------
// float_eq
// ---------------------------------------------------------------------

/// Whether the line contains a NaN-unsafe float comparison.
fn float_eq_line(code: &str, cfg: &Config) -> bool {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i + 1 < chars.len() {
        let is_eq = chars[i] == '=' && chars[i + 1] == '=';
        let is_ne = chars[i] == '!' && chars[i + 1] == '=';
        if (is_eq || is_ne)
            && chars.get(i + 2) != Some(&'=')
            && (i == 0 || !matches!(chars[i - 1], '=' | '!' | '<' | '>'))
        {
            let left = operand_left(&chars, i);
            let right = operand_right(&chars, i + 2);
            if is_floaty(&left, cfg) || is_floaty(&right, cfg) {
                return true;
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    false
}

/// The token run ending just before position `end` (exclusive):
/// identifiers, field/method chains, balanced call parentheses and
/// index brackets, `::` paths, and a leading unary minus.
pub(crate) fn operand_left(chars: &[char], end: usize) -> String {
    let mut i = end;
    while i > 0 && chars[i - 1] == ' ' {
        i -= 1;
    }
    let stop = i;
    while i > 0 {
        let c = chars[i - 1];
        match c {
            ')' | ']' => {
                let open = if c == ')' { '(' } else { '[' };
                let mut depth = 1;
                i -= 1;
                while i > 0 && depth > 0 {
                    i -= 1;
                    if chars[i] == c {
                        depth += 1;
                    } else if chars[i] == open {
                        depth -= 1;
                    }
                }
            }
            _ if c.is_alphanumeric() || matches!(c, '_' | '.' | ':') => i -= 1,
            // Exponent sign inside a float literal: `1e-9`.
            '-' | '+'
                if i >= 2
                    && matches!(chars[i - 2], 'e' | 'E')
                    && i >= 3
                    && chars[i - 3].is_ascii_digit() =>
            {
                i -= 1
            }
            _ => break,
        }
    }
    // A single leading `-` binds to a literal.
    if i > 0 && chars[i - 1] == '-' {
        i -= 1;
    }
    chars[i..stop].iter().collect()
}

/// The token run starting at `start`: mirror image of [`operand_left`].
pub(crate) fn operand_right(chars: &[char], start: usize) -> String {
    let mut i = start;
    while i < chars.len() && chars[i] == ' ' {
        i += 1;
    }
    let begin = i;
    if i < chars.len() && chars[i] == '-' {
        i += 1;
    }
    while i < chars.len() {
        let c = chars[i];
        match c {
            '(' | '[' => {
                let close = if c == '(' { ')' } else { ']' };
                let mut depth = 1;
                i += 1;
                while i < chars.len() && depth > 0 {
                    if chars[i] == c {
                        depth += 1;
                    } else if chars[i] == close {
                        depth -= 1;
                    }
                    i += 1;
                }
            }
            _ if c.is_alphanumeric() || matches!(c, '_' | '.' | ':') => i += 1,
            // Exponent sign inside a float literal: `1e-9`.
            '-' | '+'
                if i >= 1
                    && matches!(chars[i - 1], 'e' | 'E')
                    && i >= 2
                    && chars[i - 2].is_ascii_digit() =>
            {
                i += 1
            }
            _ => break,
        }
    }
    chars[begin..i].iter().collect()
}

/// Whether an operand is lexically float-valued: a float literal, an
/// `f64::`/`f32::` associated constant, or a configured float method.
fn is_floaty(operand: &str, cfg: &Config) -> bool {
    if operand.contains("f64::") || operand.contains("f32::") {
        return true;
    }
    if cfg.float_methods.iter().any(|m| operand.ends_with(m.as_str())) {
        return true;
    }
    has_float_literal(operand)
}

/// Detects `1.0`, `.5`? (no — Rust has no leading-dot floats), `1e-3`,
/// `1f64`, `2.5f32` inside a token run.
fn has_float_literal(s: &str) -> bool {
    let chars: Vec<char> = s.chars().collect();
    let n = chars.len();
    let mut i = 0;
    while i < n {
        if chars[i].is_ascii_digit() {
            // A literal must not be the tail of an identifier.
            if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
                i += 1;
                continue;
            }
            let start = i;
            while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
            // `1.5`, `1.` followed by non-identifier; exclude `1..2`
            // ranges and `2.method()` calls.
            if i < n && chars[i] == '.' {
                if i + 1 < n && chars[i + 1].is_ascii_digit() {
                    return true;
                }
                if i + 1 == n || !(chars[i + 1].is_alphabetic() || chars[i + 1] == '.') {
                    return true;
                }
            }
            // Exponent or typed suffix: `1e9`, `3f64`, `7f32`.
            let rest: String = chars[i..].iter().collect();
            if rest.starts_with('e') || rest.starts_with('E') {
                let tail = &rest[1..];
                let tail = tail.strip_prefix(['+', '-']).unwrap_or(tail);
                if tail.starts_with(|c: char| c.is_ascii_digit()) {
                    return true;
                }
            }
            if rest.starts_with("f64") || rest.starts_with("f32") {
                return true;
            }
            let _ = start;
        }
        i += 1;
    }
    false
}

// ---------------------------------------------------------------------
// panic
// ---------------------------------------------------------------------

/// Counts panicking calls on the line.
fn panic_calls(code: &str) -> usize {
    let mut count = 0;
    for pat in [".unwrap()", ".unwrap_err()", ".expect(", ".expect_err("] {
        count += occurrences(code, pat, false);
    }
    for pat in ["panic!", "todo!", "unimplemented!"] {
        count += occurrences(code, pat, true);
    }
    count
}

/// Occurrences of `pat`; with `word_start`, the match must not be
/// preceded by an identifier character (so `my_panic!` does not count).
fn occurrences(code: &str, pat: &str, word_start: bool) -> usize {
    let mut count = 0;
    let mut from = 0;
    while let Some(pos) = code[from..].find(pat) {
        let at = from + pos;
        let ok = !word_start
            || at == 0
            || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if ok {
            count += 1;
        }
        from = at + pat.len();
    }
    count
}

// ---------------------------------------------------------------------
// safety
// ---------------------------------------------------------------------

/// Whether the line contains the `unsafe` keyword as a token.
fn has_unsafe_token(code: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find("unsafe") {
        let at = from + pos;
        let before_ok =
            at == 0 || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[at + 6..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + 6;
    }
    false
}

// ---------------------------------------------------------------------
// ordering
// ---------------------------------------------------------------------

/// Whether the line uses an atomic memory ordering. `std::cmp::Ordering`
/// variants (`Less`/`Equal`/`Greater`) do not match.
fn has_atomic_ordering(code: &str) -> bool {
    ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"]
        .iter()
        .any(|v| code.contains(&format!("Ordering::{v}")))
}

// ---------------------------------------------------------------------
// time_cast
// ---------------------------------------------------------------------

/// Whether the line casts a timestamp/duration expression to an integer
/// with bare `as`.
fn time_cast_line(code: &str, cfg: &Config) -> bool {
    const INT_TYPES: [&str; 12] = [
        "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
    ];
    let chars: Vec<char> = code.chars().collect();
    let mut from = 0;
    while let Some(pos) = code[from..].find(" as ") {
        let at = from + pos;
        let target: String = code[at + 4..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if INT_TYPES.contains(&target.as_str()) {
            let source = operand_left(&chars, at);
            if cfg.time_patterns.iter().any(|p| source.contains(p.as_str())) {
                return true;
            }
        }
        from = at + 4;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Violation> {
        check_file("crates/x/src/lib.rs", src, &Config::default())
    }

    fn count(src: &str, lint: Lint) -> usize {
        check(src).into_iter().filter(|v| v.lint == lint).count()
    }

    #[test]
    fn float_eq_catches_literals_and_methods() {
        assert_eq!(count("if x == 0.0 { }", Lint::FloatEq), 1);
        assert_eq!(count("if 1.5 != y { }", Lint::FloatEq), 1);
        assert_eq!(count("if d.norm_sq() == 0.0 { }", Lint::FloatEq), 1);
        assert_eq!(count("if t.as_secs() == u { }", Lint::FloatEq), 1);
        assert_eq!(count("if x == f64::NAN { }", Lint::FloatEq), 1);
        assert_eq!(count("if x == 1e-9 { }", Lint::FloatEq), 1);
        assert_eq!(count("if x == 3f64 { }", Lint::FloatEq), 1);
    }

    #[test]
    fn float_eq_ignores_ints_ranges_and_strings() {
        assert_eq!(count("if x == 1 { }", Lint::FloatEq), 0);
        assert_eq!(count("for i in 0..10 { }", Lint::FloatEq), 0);
        assert_eq!(count("if n == len - 1 { }", Lint::FloatEq), 0);
        assert_eq!(count(r#"let s = "x == 0.0";"#, Lint::FloatEq), 0);
        assert_eq!(count("// x == 0.0", Lint::FloatEq), 0);
        assert_eq!(count("if a <= 0.5 { }", Lint::FloatEq), 0);
        assert_eq!(count("x += 1.0;", Lint::FloatEq), 0);
        assert_eq!(count("let c = v2.max(1);", Lint::FloatEq), 0);
    }

    #[test]
    fn panic_catches_each_call_once() {
        let src = "let a = x.unwrap();\nlet b = y.expect(\"msg\");\npanic!(\"boom\");\ntodo!()\nunimplemented!()";
        assert_eq!(count(src, Lint::Panic), 5);
        // Two on one line are two findings.
        assert_eq!(count("a.unwrap(); b.unwrap();", Lint::Panic), 2);
    }

    #[test]
    fn panic_ignores_nonpanicking_relatives() {
        assert_eq!(count("x.unwrap_or(0);", Lint::Panic), 0);
        assert_eq!(count("x.unwrap_or_else(|| 0);", Lint::Panic), 0);
        assert_eq!(count("x.unwrap_or_default();", Lint::Panic), 0);
        assert_eq!(count("my_panic!(x);", Lint::Panic), 0);
        assert_eq!(count("core::panic!(\"x\");", Lint::Panic), 1);
    }

    #[test]
    fn test_regions_are_exempt_for_panic_and_float() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); assert!(a == 0.0); }\n}";
        assert_eq!(count(src, Lint::Panic), 0);
        assert_eq!(count(src, Lint::FloatEq), 0);
    }

    #[test]
    fn safety_requires_comment() {
        assert_eq!(count("unsafe { do_it() }", Lint::Safety), 1);
        assert_eq!(count("// SAFETY: checked above\nunsafe { do_it() }", Lint::Safety), 0);
        assert_eq!(count("unsafe { do_it() } // SAFETY: inline", Lint::Safety), 0);
        // A non-SAFETY comment does not count.
        assert_eq!(count("// fast path\nunsafe { do_it() }", Lint::Safety), 1);
        // Identifier containing "unsafe" is not the keyword.
        assert_eq!(count("let unsafe_count = 1;", Lint::Safety), 0);
    }

    #[test]
    fn ordering_requires_comment_and_skips_cmp() {
        assert_eq!(count("x.load(Ordering::Relaxed);", Lint::Ordering), 1);
        assert_eq!(
            count("// ordering: advisory counter\nx.load(Ordering::Relaxed);", Lint::Ordering),
            0
        );
        assert_eq!(count("x.store(1, Ordering::SeqCst); // Ordering: handoff", Lint::Ordering), 0);
        assert_eq!(count("match o { Ordering::Less => {} _ => {} }", Lint::Ordering), 0);
    }

    #[test]
    fn time_cast_flags_int_targets_only() {
        assert_eq!(count("let b = t.as_secs() as i64;", Lint::TimeCast), 1);
        assert_eq!(count("let b = (a.t.as_secs() / self.time_bucket).floor() as i64;", Lint::TimeCast), 1);
        assert_eq!(count("let s = d.as_mins() as u32;", Lint::TimeCast), 1);
        // Int → float is construction, not truncation.
        assert_eq!(count("let t = i as f64;", Lint::TimeCast), 0);
        // Non-time expressions cast freely.
        assert_eq!(count("let n = buf.len() as u64;", Lint::TimeCast), 0);
    }

    #[test]
    fn escape_hatch_with_reason_suppresses() {
        let src = "// lint: allow(panic) worker panics are propagated deliberately\nh.join().expect(\"worker\");";
        assert_eq!(count(src, Lint::Panic), 0);
        let inline = "h.join().expect(\"worker\"); // lint: allow(panic) propagated deliberately";
        assert_eq!(count(inline, Lint::Panic), 0);
    }

    #[test]
    fn escape_hatch_without_reason_is_flagged_with_note() {
        let src = "// lint: allow(panic)\nx.unwrap();";
        let v = check(src);
        assert_eq!(v.len(), 1);
        assert!(v[0].note.as_deref().is_some_and(|n| n.contains("reason")));
    }

    #[test]
    fn escape_hatch_is_lint_specific() {
        let src = "// lint: allow(float_eq) exact sentinel\nlet b = x == 0.0 && y.unwrap();";
        assert_eq!(count(src, Lint::FloatEq), 0);
        assert_eq!(count(src, Lint::Panic), 1);
    }

    #[test]
    fn allowlisted_module_may_use_raw_compares() {
        let cfg = Config {
            float_eq_allow: vec!["crates/geom/src/numeric.rs".into()],
            ..Config::default()
        };
        let v = check_file("crates/geom/src/numeric.rs", "if a == b * 1.0 { }", &cfg);
        assert!(v.is_empty());
    }

    #[test]
    fn panic_exempt_paths() {
        let cfg = Config::default();
        let v = check_file("crates/core/tests/props.rs", "x.unwrap();", &cfg);
        assert!(v.is_empty());
        let v = check_file("examples/quickstart.rs", "x.unwrap();", &cfg);
        assert!(v.is_empty());
    }
}
