//! `cargo xtask` — workspace task runner: `lint` and `reach`.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{fix_allowlist, load_config, reach, run};

const USAGE: &str = "\
usage: cargo xtask lint  [--fix-allowlist] [--root <path>]
       cargo xtask reach [--format text|json] [--all] [--root <path>]

lint   runs the workspace static-analysis gate (float_eq, panic,
       safety, ordering, time_cast) and reconciles findings against
       tools/xtask/lint.toml.
reach  builds the workspace call graph and proves the [contracts]
       roots in lint.toml panic-free and allocation-free, printing
       the shortest offending call chain for each violation.
See tools/xtask/README.md.

options:
    --fix-allowlist   regenerate lint.toml from current findings
                      (budgets only ratchet down, never up; entries
                      for deleted files are pruned)
    --format <fmt>    reach output: text (default) or json
    --all             reach: list every workspace function's verdict
    --root <path>     workspace root (default: auto-detected)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fix = false;
    let mut all = false;
    let mut format = String::from("text");
    let mut root: Option<PathBuf> = None;
    let mut cmd: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fix-allowlist" => fix = true,
            "--all" => all = true,
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                Some(f) => return usage_error(&format!("unknown format `{f}`")),
                None => return usage_error("--format needs text or json"),
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if cmd.is_none() && !other.starts_with('-') => cmd = Some(other.to_string()),
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    // `cargo xtask …` runs from the workspace root; fall back to the
    // manifest's grandparent when invoked directly.
    let root = root.unwrap_or_else(|| {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        here.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(here)
    });

    let result = match cmd.as_deref() {
        Some("lint") => lint(&root, fix),
        Some("reach") => run_reach(&root, &format, all),
        Some(other) => return usage_error(&format!("unknown task `{other}`")),
        None => return usage_error("no task given"),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_reach(root: &std::path::Path, format: &str, all: bool) -> Result<ExitCode, String> {
    let file = load_config(root)?;
    let analysis = reach::analyze(root, &file)?;
    if format == "json" {
        println!("{}", reach::render_json(&analysis));
    } else {
        print!("{}", reach::render_text(&analysis, all));
    }
    Ok(if analysis.report.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn lint(root: &std::path::Path, fix: bool) -> Result<ExitCode, String> {
    let file = load_config(root)?;
    let outcome = run(root, &file)?;

    if fix {
        fix_allowlist(root, &file, &outcome.violations)?;
        println!(
            "lint.toml regenerated: {} finding(s) across {} file(s) grandfathered",
            outcome.violations.len(),
            outcome.files
        );
        return Ok(ExitCode::SUCCESS);
    }

    let report = &outcome.report;
    for v in &report.new {
        println!("{}:{}: [{}] {}", v.path, v.line, v.lint.name(), v.excerpt);
        if let Some(note) = &v.note {
            println!("    note: {note}");
        }
    }
    for p in &report.problems {
        println!("allowlist: {p}");
    }
    if report.is_clean() {
        println!(
            "lint clean: {} file(s) scanned, {} grandfathered finding(s) within budget",
            outcome.files,
            outcome.violations.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "lint failed: {} new violation(s), {} allowlist problem(s)",
            report.new.len(),
            report.problems.len()
        );
        Ok(ExitCode::FAILURE)
    }
}
