//! `lint.toml`: configuration, per-lint budgets, and the ratcheting
//! allowlist.
//!
//! The file has five parts:
//!
//! * `[config]` — tunable patterns and path exemptions ([`Config`]).
//! * `[budget]` — one integer per lint: the maximum total number of
//!   allowlisted findings. `--fix-allowlist` refuses to raise a budget;
//!   lowering it (or deleting entries) is always fine. This is the
//!   ratchet: debt goes down, never up.
//! * `[[allow]]` — one entry per (lint, file) pair with the *exact*
//!   number of findings being grandfathered. A count that no longer
//!   matches reality — higher or lower — is an error, so stale entries
//!   cannot linger and new violations cannot hide behind old ones.
//! * `[contracts]` — the reachability contracts for `cargo xtask
//!   reach` ([`Contracts`]): root functions that must be panic-free
//!   and allocation-free, names vouched clean, and per-kind budgets.
//! * `[[contract_allow]]` — grandfathered reachability findings, per
//!   (file, kind), each with a **mandatory** `reason`. Same ratchet
//!   semantics as `[[allow]]`.
//!
//! The parser below handles exactly the TOML subset this file uses
//! (comments, `[section]` / `[[section]]` headers, `key = "string"`,
//! `key = integer`, `key = [ "string", ... ]` possibly spanning lines).
//! Zero dependencies, same philosophy as the rest of the workspace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::lints::{Config, Lint, Violation, ALL_LINTS};

/// One grandfathered (lint, file) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Lint name, e.g. `"panic"`.
    pub lint: String,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Exact number of findings being allowed in that file.
    pub count: u64,
}

/// The `[contracts]` section: what `cargo xtask reach` must prove.
#[derive(Debug, Clone)]
pub struct Contracts {
    /// Root functions that must be panic-free and allocation-free.
    /// Syntax per entry: `name`, `Type::name`, or either form pinned
    /// to a file with `@path-suffix` (`push@crates/core/src/streaming.rs`).
    /// A root matching no workspace function is an error — stale
    /// contracts cannot linger.
    pub roots: Vec<String>,
    /// Call-site names (macros keep their `!`) vouched clean by review:
    /// the analysis treats every call to them as no-panic/no-alloc.
    /// Part of the trusted base; defend additions in review.
    pub assume_clean: Vec<String>,
    /// Right-operand substrings marking a division as integer-typed —
    /// see [`crate::callgraph::ExtractOptions::int_div_patterns`].
    pub int_div_patterns: Vec<String>,
    /// Max total may-panic findings reachable from the roots.
    pub budget_panic: u64,
    /// Max total may-allocate findings reachable from the roots.
    pub budget_alloc: u64,
}

impl Default for Contracts {
    fn default() -> Self {
        Contracts {
            roots: Vec::new(),
            assume_clean: Vec::new(),
            int_div_patterns: crate::callgraph::ExtractOptions::default().int_div_patterns,
            budget_panic: 0,
            budget_alloc: 0,
        }
    }
}

/// One grandfathered reachability finding group: `count` findings of
/// `kind` (`"panic"` / `"alloc"`) whose cause sits in `path`, each
/// justified by `reason`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractAllow {
    /// Repo-relative path of the file containing the cause sites.
    pub path: String,
    /// `"panic"` or `"alloc"`.
    pub kind: String,
    /// Exact number of findings being allowed.
    pub count: u64,
    /// Why this is acceptable. Mandatory — an unexplained exception is
    /// a parse error, not a lint finding.
    pub reason: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone)]
pub struct LintFile {
    /// The `[config]` section.
    pub config: Config,
    /// The `[budget]` section: lint name → max allowlisted findings.
    pub budget: BTreeMap<String, u64>,
    /// The `[[allow]]` entries, in file order.
    pub allows: Vec<AllowEntry>,
    /// The `[contracts]` section (defaults to no roots).
    pub contracts: Contracts,
    /// The `[[contract_allow]]` entries, in file order.
    pub contract_allows: Vec<ContractAllow>,
}

/// A raw `key = value` read by the parser.
#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Int(u64),
    List(Vec<String>),
}

/// Parses `lint.toml`. Errors carry the 1-based line number.
pub fn parse(source: &str) -> Result<LintFile, String> {
    let mut config = Config::default();
    let mut budget = BTreeMap::new();
    let mut allows: Vec<AllowEntry> = Vec::new();
    let mut contracts = Contracts::default();
    let mut contract_allows: Vec<ContractAllow> = Vec::new();
    let mut section = String::new();

    // Join multi-line arrays first so the main loop sees one logical
    // line per key.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (no, raw) in source.lines().enumerate() {
        let line = strip_comment(raw);
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(line.trim());
                if balanced(&acc) {
                    logical.push((start, acc));
                } else {
                    pending = Some((start, acc));
                }
            }
            None => {
                let t = line.trim();
                if t.is_empty() {
                    continue;
                }
                if balanced(t) {
                    logical.push((no + 1, t.to_string()));
                } else {
                    pending = Some((no + 1, t.to_string()));
                }
            }
        }
    }
    if let Some((start, _)) = pending {
        return Err(format!("lint.toml:{start}: unterminated array"));
    }

    for (no, line) in logical {
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            match name {
                "allow" => {
                    allows.push(AllowEntry { lint: String::new(), path: String::new(), count: 0 });
                }
                "contract_allow" => {
                    contract_allows.push(ContractAllow {
                        path: String::new(),
                        kind: String::new(),
                        count: 0,
                        reason: String::new(),
                    });
                }
                _ => return Err(format!("lint.toml:{no}: unknown table array [[{name}]]")),
            }
            section = name.into();
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            if !matches!(name, "config" | "budget" | "contracts") {
                return Err(format!("lint.toml:{no}: unknown section [{name}]"));
            }
            section = name.into();
            continue;
        }
        let (key, value) = parse_kv(&line).map_err(|e| format!("lint.toml:{no}: {e}"))?;
        match (section.as_str(), key.as_str()) {
            ("config", "exclude") => config.exclude = want_list(value, no)?,
            ("config", "panic_exempt") => config.panic_exempt = want_list(value, no)?,
            ("config", "float_eq_allow") => config.float_eq_allow = want_list(value, no)?,
            ("config", "time_cast_allow") => config.time_cast_allow = want_list(value, no)?,
            ("config", "float_methods") => config.float_methods = want_list(value, no)?,
            ("config", "time_patterns") => config.time_patterns = want_list(value, no)?,
            ("config", other) => {
                return Err(format!("lint.toml:{no}: unknown config key `{other}`"));
            }
            ("budget", lint) => {
                if Lint::from_name(lint).is_none() {
                    return Err(format!("lint.toml:{no}: unknown lint `{lint}` in [budget]"));
                }
                budget.insert(lint.to_string(), want_int(value, no)?);
            }
            ("allow", "lint") => {
                let name = want_str(value, no)?;
                if Lint::from_name(&name).is_none() {
                    return Err(format!("lint.toml:{no}: unknown lint `{name}` in [[allow]]"));
                }
                last_mut(&mut allows, no)?.lint = name;
            }
            ("allow", "path") => last_mut(&mut allows, no)?.path = want_str(value, no)?,
            ("allow", "count") => last_mut(&mut allows, no)?.count = want_int(value, no)?,
            ("allow", other) => {
                return Err(format!("lint.toml:{no}: unknown allow key `{other}`"));
            }
            ("contracts", "roots") => contracts.roots = want_list(value, no)?,
            ("contracts", "assume_clean") => contracts.assume_clean = want_list(value, no)?,
            ("contracts", "int_div_patterns") => contracts.int_div_patterns = want_list(value, no)?,
            ("contracts", "budget_panic") => contracts.budget_panic = want_int(value, no)?,
            ("contracts", "budget_alloc") => contracts.budget_alloc = want_int(value, no)?,
            ("contracts", other) => {
                return Err(format!("lint.toml:{no}: unknown contracts key `{other}`"));
            }
            ("contract_allow", "path") => {
                last_contract(&mut contract_allows, no)?.path = want_str(value, no)?;
            }
            ("contract_allow", "kind") => {
                let kind = want_str(value, no)?;
                if crate::callgraph::SeedKind::from_name(&kind).is_none() {
                    return Err(format!(
                        "lint.toml:{no}: unknown kind `{kind}` in [[contract_allow]] \
                         (expected \"panic\" or \"alloc\")"
                    ));
                }
                last_contract(&mut contract_allows, no)?.kind = kind;
            }
            ("contract_allow", "count") => {
                last_contract(&mut contract_allows, no)?.count = want_int(value, no)?;
            }
            ("contract_allow", "reason") => {
                last_contract(&mut contract_allows, no)?.reason = want_str(value, no)?;
            }
            ("contract_allow", other) => {
                return Err(format!("lint.toml:{no}: unknown contract_allow key `{other}`"));
            }
            (_, _) => return Err(format!("lint.toml:{no}: key `{key}` outside any section")),
        }
    }

    for (i, a) in allows.iter().enumerate() {
        if a.lint.is_empty() || a.path.is_empty() {
            return Err(format!("lint.toml: [[allow]] entry #{} is missing lint or path", i + 1));
        }
        if a.count == 0 {
            return Err(format!(
                "lint.toml: [[allow]] entry for {} / {} has count 0 — delete it instead",
                a.lint, a.path
            ));
        }
    }
    for l in ALL_LINTS {
        if !budget.contains_key(l.name()) {
            return Err(format!("lint.toml: [budget] is missing an entry for `{}`", l.name()));
        }
    }
    for (i, a) in contract_allows.iter().enumerate() {
        if a.path.is_empty() || a.kind.is_empty() {
            return Err(format!(
                "lint.toml: [[contract_allow]] entry #{} is missing path or kind",
                i + 1
            ));
        }
        if a.count == 0 {
            return Err(format!(
                "lint.toml: [[contract_allow]] entry for {} / {} has count 0 — delete it instead",
                a.kind, a.path
            ));
        }
        if a.reason.trim().is_empty() {
            return Err(format!(
                "lint.toml: [[contract_allow]] entry for {} / {} has no reason — every \
                 contract exception must be justified",
                a.kind, a.path
            ));
        }
    }
    Ok(LintFile { config, budget, allows, contracts, contract_allows })
}

fn last_mut(allows: &mut [AllowEntry], no: usize) -> Result<&mut AllowEntry, String> {
    allows.last_mut().ok_or_else(|| format!("lint.toml:{no}: key before any [[allow]] header"))
}

fn last_contract(
    allows: &mut [ContractAllow],
    no: usize,
) -> Result<&mut ContractAllow, String> {
    allows
        .last_mut()
        .ok_or_else(|| format!("lint.toml:{no}: key before any [[contract_allow]] header"))
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Whether brackets and quotes are balanced (logical line complete).
fn balanced(s: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0 && !in_str
}

fn parse_kv(line: &str) -> Result<(String, Value), String> {
    let (key, rest) =
        line.split_once('=').ok_or_else(|| format!("expected `key = value`, got `{line}`"))?;
    let key = key.trim().to_string();
    let rest = rest.trim();
    if let Some(body) = rest.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or("array is not closed on its logical line")?;
        let mut items = Vec::new();
        for part in split_top(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(unquote(part)?);
        }
        return Ok((key, Value::List(items)));
    }
    if rest.starts_with('"') {
        return Ok((key, Value::Str(unquote(rest)?)));
    }
    let n: u64 = rest.parse().map_err(|_| format!("expected integer or string, got `{rest}`"))?;
    Ok((key, Value::Int(n)))
}

/// Splits an array body on commas outside quotes.
fn split_top(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => out.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

fn unquote(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a double-quoted string, got `{s}`"))
}

fn want_list(v: Value, no: usize) -> Result<Vec<String>, String> {
    match v {
        Value::List(l) => Ok(l),
        _ => Err(format!("lint.toml:{no}: expected an array of strings")),
    }
}

fn want_str(v: Value, no: usize) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s),
        _ => Err(format!("lint.toml:{no}: expected a string")),
    }
}

fn want_int(v: Value, no: usize) -> Result<u64, String> {
    match v {
        Value::Int(n) => Ok(n),
        _ => Err(format!("lint.toml:{no}: expected an integer")),
    }
}

// ---------------------------------------------------------------------
// Reconciliation
// ---------------------------------------------------------------------

/// The verdict of comparing current findings against the allowlist.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by any allowlist entry (or in excess of an
    /// entry's count). These are *new* violations.
    pub new: Vec<Violation>,
    /// Structural problems: stale entries, shrunken files whose counts
    /// no longer match, exceeded budgets. Each is one printable line.
    pub problems: Vec<String>,
}

impl Report {
    /// Gate outcome.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.problems.is_empty()
    }
}

/// Compares findings against the allowlist and budgets.
pub fn reconcile(file: &LintFile, violations: &[Violation]) -> Report {
    let mut report = Report::default();

    // Group findings by (lint, path).
    let mut actual: BTreeMap<(String, String), Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        actual.entry((v.lint.name().to_string(), v.path.clone())).or_default().push(v);
    }

    let mut allowed: BTreeMap<(String, String), u64> = BTreeMap::new();
    for a in &file.allows {
        let key = (a.lint.clone(), a.path.clone());
        if allowed.insert(key, a.count).is_some() {
            report
                .problems
                .push(format!("duplicate [[allow]] entry for {} / {}", a.lint, a.path));
        }
    }

    for ((lint, path), found) in &actual {
        let have = found.len() as u64;
        match allowed.get(&(lint.clone(), path.clone())) {
            None => report.new.extend(found.iter().map(|v| (*v).clone())),
            Some(&cap) if have > cap => {
                report.problems.push(format!(
                    "{path}: {lint} findings grew from {cap} to {have} — fix the new ones \
                     (the allowlist never grows)"
                ));
                report.new.extend(found.iter().skip(cap as usize).map(|v| (*v).clone()));
            }
            Some(&cap) if have < cap => {
                report.problems.push(format!(
                    "{path}: stale allowlist count for {lint} ({cap} listed, {have} present) — \
                     run `cargo xtask lint --fix-allowlist` to ratchet down"
                ));
            }
            Some(_) => {}
        }
    }

    for ((lint, path), &cap) in &allowed {
        if !actual.contains_key(&(lint.clone(), path.clone())) {
            report.problems.push(format!(
                "{path}: stale allowlist entry for {lint} ({cap} listed, 0 present) — \
                 delete it or run `cargo xtask lint --fix-allowlist`"
            ));
        }
    }

    // Budgets bound the *total* findings per lint (allowlisted or not),
    // so even a regenerated allowlist cannot mask growth.
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for v in violations {
        *totals.entry(v.lint.name()).or_default() += 1;
    }
    for l in ALL_LINTS {
        let total = totals.get(l.name()).copied().unwrap_or(0);
        let cap = file.budget.get(l.name()).copied().unwrap_or(0);
        if total > cap {
            report.problems.push(format!(
                "budget exceeded for {}: {} findings, budget {}",
                l.name(),
                total,
                cap
            ));
        }
    }

    report
}

/// Regenerates the `[budget]`, `[[allow]]`, and `[[contract_allow]]`
/// sections from current findings, keeping `[config]` and `[contracts]`
/// as parsed. Budgets only ratchet down; if current findings exceed a
/// budget the regeneration *fails* — the debt must be fixed, or the
/// budget raised by hand in review.
///
/// `contract_actual` maps (path, kind) to the current number of
/// reachability findings, as produced by [`crate::reach`]. Reasons on
/// surviving `[[contract_allow]]` entries are preserved; genuinely new
/// entries get a `FIXME` reason that review must replace.
pub fn regenerate(
    file: &LintFile,
    violations: &[Violation],
    contract_actual: &BTreeMap<(String, String), u64>,
) -> Result<String, String> {
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    let mut per_file: BTreeMap<(String, String), u64> = BTreeMap::new();
    for v in violations {
        *totals.entry(v.lint.name()).or_default() += 1;
        *per_file.entry((v.lint.name().to_string(), v.path.clone())).or_default() += 1;
    }

    let mut over = Vec::new();
    for l in ALL_LINTS {
        let total = totals.get(l.name()).copied().unwrap_or(0);
        let cap = file.budget.get(l.name()).copied().unwrap_or(0);
        if total > cap {
            over.push(format!("{} ({} findings, budget {})", l.name(), total, cap));
        }
    }
    let mut contract_totals: BTreeMap<&str, u64> = BTreeMap::new();
    for ((_, kind), n) in contract_actual {
        *contract_totals.entry(kind.as_str()).or_default() += n;
    }
    for (kind, cap) in [
        ("panic", file.contracts.budget_panic),
        ("alloc", file.contracts.budget_alloc),
    ] {
        let total = contract_totals.get(kind).copied().unwrap_or(0);
        if total > cap {
            over.push(format!("contract {kind} ({total} findings, budget {cap})"));
        }
    }
    if !over.is_empty() {
        return Err(format!(
            "refusing to regenerate: the allowlist never grows. Over budget: {}. \
             Fix the new findings, or raise [budget] by hand and defend it in review.",
            over.join(", ")
        ));
    }

    let mut out = String::new();
    out.push_str(HEADER);
    out.push_str("\n[config]\n");
    write_list(&mut out, "exclude", &file.config.exclude);
    write_list(&mut out, "panic_exempt", &file.config.panic_exempt);
    write_list(&mut out, "float_eq_allow", &file.config.float_eq_allow);
    write_list(&mut out, "time_cast_allow", &file.config.time_cast_allow);
    write_list(&mut out, "float_methods", &file.config.float_methods);
    write_list(&mut out, "time_patterns", &file.config.time_patterns);

    out.push_str("\n# Ratchet: max total findings per lint. Down is progress; up is a review.\n");
    out.push_str("[budget]\n");
    for l in ALL_LINTS {
        let total = totals.get(l.name()).copied().unwrap_or(0);
        let old = file.budget.get(l.name()).copied().unwrap_or(0);
        let _ = writeln!(out, "{} = {}", l.name(), total.min(old));
    }

    out.push_str("\n# Reachability contracts for `cargo xtask reach`: these functions\n");
    out.push_str("# must be panic-free and allocation-free (see tools/xtask/README.md).\n");
    out.push_str("[contracts]\n");
    write_list(&mut out, "roots", &file.contracts.roots);
    write_list(&mut out, "assume_clean", &file.contracts.assume_clean);
    write_list(&mut out, "int_div_patterns", &file.contracts.int_div_patterns);
    for (kind, cap) in [
        ("panic", file.contracts.budget_panic),
        ("alloc", file.contracts.budget_alloc),
    ] {
        let total = contract_totals.get(kind).copied().unwrap_or(0);
        let _ = writeln!(out, "budget_{kind} = {}", total.min(cap));
    }

    out.push_str("\n# Grandfathered findings, exact counts. Regenerate with\n");
    out.push_str("# `cargo xtask lint --fix-allowlist` after paying debt down.\n");
    for ((lint, path), count) in &per_file {
        out.push('\n');
        out.push_str("[[allow]]\n");
        let _ = writeln!(out, "lint = \"{lint}\"");
        let _ = writeln!(out, "path = \"{path}\"");
        let _ = writeln!(out, "count = {count}");
    }

    for ((path, kind), count) in contract_actual {
        let reason = file
            .contract_allows
            .iter()
            .find(|a| &a.path == path && &a.kind == kind)
            .map(|a| a.reason.clone())
            .unwrap_or_else(|| "FIXME: justify this entry".to_string());
        out.push('\n');
        out.push_str("[[contract_allow]]\n");
        let _ = writeln!(out, "path = \"{path}\"");
        let _ = writeln!(out, "kind = \"{kind}\"");
        let _ = writeln!(out, "count = {count}");
        let _ = writeln!(out, "reason = \"{reason}\"");
    }
    Ok(out)
}

/// Drops allowlist entries and config path references that point at
/// files which no longer exist, so `--fix-allowlist` cannot re-emit
/// debt for deleted code. `exists` answers "is this repo-relative path
/// still present?" (for directory prefixes, with the trailing `/`
/// trimmed). Returns one printable line per pruned item.
pub fn prune_missing(file: &mut LintFile, exists: &dyn Fn(&str) -> bool) -> Vec<String> {
    let mut pruned = Vec::new();
    let keep_list = |key: &str, items: &mut Vec<String>, pruned: &mut Vec<String>| {
        items.retain(|p| {
            let ok = exists(p.trim_end_matches('/'));
            if !ok {
                pruned.push(format!("config {key}: dropped missing path `{p}`"));
            }
            ok
        });
    };
    keep_list("exclude", &mut file.config.exclude, &mut pruned);
    keep_list("panic_exempt", &mut file.config.panic_exempt, &mut pruned);
    keep_list("float_eq_allow", &mut file.config.float_eq_allow, &mut pruned);
    keep_list("time_cast_allow", &mut file.config.time_cast_allow, &mut pruned);
    file.allows.retain(|a| {
        let ok = exists(&a.path);
        if !ok {
            pruned.push(format!(
                "[[allow]] {} / {}: file no longer exists, entry dropped",
                a.lint, a.path
            ));
        }
        ok
    });
    file.contract_allows.retain(|a| {
        let ok = exists(&a.path);
        if !ok {
            pruned.push(format!(
                "[[contract_allow]] {} / {}: file no longer exists, entry dropped",
                a.kind, a.path
            ));
        }
        ok
    });
    pruned
}

const HEADER: &str = "\
# Static-analysis gate configuration for `cargo xtask lint`.
# See tools/xtask/README.md for the lint catalog and escape hatch.
";

fn write_list(out: &mut String, key: &str, items: &[String]) {
    let _ = write!(out, "{key} = [");
    if items.is_empty() {
        out.push_str("]\n");
        return;
    }
    out.push('\n');
    for item in items {
        let _ = writeln!(out, "    \"{item}\",");
    }
    out.push_str("]\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Lint;

    const SAMPLE: &str = r#"
# comment
[config]
exclude = ["vendor/", "target/"]
panic_exempt = []
float_eq_allow = ["crates/geom/src/numeric.rs"]
time_cast_allow = []
float_methods = [
    ".as_secs()",
    ".norm()",
]
time_patterns = [".as_secs()"]

[budget]
float_eq = 0
panic = 3
safety = 0
ordering = 0
time_cast = 1

[[allow]]
lint = "panic"
path = "crates/core/src/parallel.rs"
count = 2

[[allow]]
lint = "panic"
path = "crates/store/src/wal.rs"
count = 1
"#;

    fn v(lint: Lint, path: &str, line: usize) -> Violation {
        Violation { lint, path: path.into(), line, excerpt: String::new(), note: None }
    }

    #[test]
    fn parses_sample() {
        let f = parse(SAMPLE).unwrap();
        assert_eq!(f.config.exclude, vec!["vendor/", "target/"]);
        assert_eq!(f.config.float_methods, vec![".as_secs()", ".norm()"]);
        assert_eq!(f.budget["panic"], 3);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].count, 2);
    }

    #[test]
    fn rejects_unknown_lint_and_missing_budget() {
        let bad = SAMPLE.replace("lint = \"panic\"", "lint = \"pancakes\"");
        assert!(parse(&bad).unwrap_err().contains("unknown lint"));
        let bad = SAMPLE.replace("safety = 0\n", "");
        assert!(parse(&bad).unwrap_err().contains("missing an entry for `safety`"));
    }

    #[test]
    fn exact_match_is_clean() {
        let f = parse(SAMPLE).unwrap();
        let found = vec![
            v(Lint::Panic, "crates/core/src/parallel.rs", 10),
            v(Lint::Panic, "crates/core/src/parallel.rs", 20),
            v(Lint::Panic, "crates/store/src/wal.rs", 5),
        ];
        assert!(reconcile(&f, &found).is_clean());
    }

    #[test]
    fn new_violation_fails() {
        let f = parse(SAMPLE).unwrap();
        let found = vec![v(Lint::FloatEq, "crates/eval/src/lib.rs", 3)];
        let r = reconcile(&f, &found);
        assert_eq!(r.new.len(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn growth_within_file_fails() {
        let f = parse(SAMPLE).unwrap();
        let found = vec![
            v(Lint::Panic, "crates/store/src/wal.rs", 5),
            v(Lint::Panic, "crates/store/src/wal.rs", 9),
        ];
        let r = reconcile(&f, &found);
        assert!(r.problems.iter().any(|p| p.contains("grew")));
    }

    #[test]
    fn stale_entry_fails() {
        let f = parse(SAMPLE).unwrap();
        // wal.rs entry lists 1 but nothing is present.
        let found = vec![
            v(Lint::Panic, "crates/core/src/parallel.rs", 10),
            v(Lint::Panic, "crates/core/src/parallel.rs", 20),
        ];
        let r = reconcile(&f, &found);
        assert!(r.problems.iter().any(|p| p.contains("stale allowlist entry")));
    }

    #[test]
    fn stale_count_fails() {
        let f = parse(SAMPLE).unwrap();
        let found = vec![
            v(Lint::Panic, "crates/core/src/parallel.rs", 10),
            v(Lint::Panic, "crates/store/src/wal.rs", 5),
        ];
        let r = reconcile(&f, &found);
        assert!(r.problems.iter().any(|p| p.contains("stale allowlist count")));
    }

    #[test]
    fn budget_bounds_total_even_if_allowlisted() {
        let mut f = parse(SAMPLE).unwrap();
        f.budget.insert("panic".into(), 1);
        let found = vec![
            v(Lint::Panic, "crates/core/src/parallel.rs", 10),
            v(Lint::Panic, "crates/core/src/parallel.rs", 20),
        ];
        let r = reconcile(&f, &found);
        assert!(r.problems.iter().any(|p| p.contains("budget exceeded")));
    }

    #[test]
    fn regenerate_ratchets_down_and_refuses_growth() {
        let f = parse(SAMPLE).unwrap();
        // One finding left: budget must drop to 1, entries collapse.
        let found = vec![v(Lint::Panic, "crates/store/src/wal.rs", 5)];
        let text = regenerate(&f, &found, &BTreeMap::new()).unwrap();
        let again = parse(&text).unwrap();
        assert_eq!(again.budget["panic"], 1);
        assert_eq!(again.allows.len(), 1);
        assert!(reconcile(&again, &found).is_clean());

        // Over budget: refuse.
        let many: Vec<_> = (0..5).map(|i| v(Lint::Panic, "crates/store/src/wal.rs", i)).collect();
        assert!(regenerate(&f, &many, &BTreeMap::new()).unwrap_err().contains("never grows"));
    }

    #[test]
    fn roundtrip_preserves_config() {
        let f = parse(SAMPLE).unwrap();
        let text = regenerate(&f, &[], &BTreeMap::new()).unwrap();
        let again = parse(&text).unwrap();
        assert_eq!(again.config.float_methods, f.config.float_methods);
        assert_eq!(again.config.exclude, f.config.exclude);
    }

    const CONTRACT_SAMPLE: &str = r#"
[config]
exclude = []
panic_exempt = []
float_eq_allow = []
time_cast_allow = []
float_methods = []
time_patterns = []

[budget]
float_eq = 0
panic = 0
safety = 0
ordering = 0
time_cast = 0

[contracts]
roots = ["compress_into", "push@crates/core/src/streaming.rs"]
assume_clean = ["span!", "counter!"]
int_div_patterns = [".len()"]
budget_panic = 1
budget_alloc = 2

[[contract_allow]]
path = "crates/core/src/one_pass.rs"
kind = "alloc"
count = 2
reason = "pushes into capacity-reserved workspace buffers"
"#;

    #[test]
    fn parses_contracts() {
        let f = parse(CONTRACT_SAMPLE).unwrap();
        assert_eq!(f.contracts.roots.len(), 2);
        assert_eq!(f.contracts.assume_clean, vec!["span!", "counter!"]);
        assert_eq!(f.contracts.budget_panic, 1);
        assert_eq!(f.contracts.budget_alloc, 2);
        assert_eq!(f.contract_allows.len(), 1);
        assert_eq!(f.contract_allows[0].kind, "alloc");
        assert_eq!(f.contract_allows[0].count, 2);
    }

    #[test]
    fn contract_allow_requires_reason_and_valid_kind() {
        let bad = CONTRACT_SAMPLE.replace(
            "reason = \"pushes into capacity-reserved workspace buffers\"",
            "reason = \"  \"",
        );
        assert!(parse(&bad).unwrap_err().contains("no reason"));
        let bad = CONTRACT_SAMPLE.replace("kind = \"alloc\"", "kind = \"segfault\"");
        assert!(parse(&bad).unwrap_err().contains("unknown kind"));
    }

    #[test]
    fn missing_contracts_section_defaults_to_no_roots() {
        let f = parse(SAMPLE).unwrap();
        assert!(f.contracts.roots.is_empty());
        assert!(f.contract_allows.is_empty());
    }

    #[test]
    fn regenerate_preserves_contracts_and_reasons() {
        let f = parse(CONTRACT_SAMPLE).unwrap();
        let mut actual = BTreeMap::new();
        actual.insert(("crates/core/src/one_pass.rs".to_string(), "alloc".to_string()), 1u64);
        let text = regenerate(&f, &[], &actual).unwrap();
        let again = parse(&text).unwrap();
        assert_eq!(again.contracts.roots, f.contracts.roots);
        assert_eq!(again.contracts.assume_clean, f.contracts.assume_clean);
        // Budget ratchets down to the new total; reason survives.
        assert_eq!(again.contracts.budget_alloc, 1);
        assert_eq!(again.contract_allows.len(), 1);
        assert_eq!(again.contract_allows[0].count, 1);
        assert!(again.contract_allows[0].reason.contains("capacity-reserved"));
    }

    #[test]
    fn regenerate_refuses_contract_budget_growth() {
        let f = parse(CONTRACT_SAMPLE).unwrap();
        let mut actual = BTreeMap::new();
        actual.insert(("crates/core/src/one_pass.rs".to_string(), "panic".to_string()), 3u64);
        let err = regenerate(&f, &[], &actual).unwrap_err();
        assert!(err.contains("contract panic"), "{err}");
    }

    #[test]
    fn prune_missing_drops_dead_paths_everywhere() {
        let mut f = parse(CONTRACT_SAMPLE).unwrap();
        f.config.float_eq_allow = vec!["gone.rs".into(), "kept.rs".into()];
        f.config.exclude = vec!["vendor/".into()];
        f.allows.push(AllowEntry { lint: "panic".into(), path: "gone.rs".into(), count: 1 });
        let pruned = prune_missing(&mut f, &|p| p == "kept.rs" || p == "vendor" || p == "crates/core/src/one_pass.rs");
        assert_eq!(f.config.float_eq_allow, vec!["kept.rs"]);
        assert_eq!(f.config.exclude, vec!["vendor/"]);
        assert!(f.allows.is_empty());
        assert_eq!(f.contract_allows.len(), 1, "existing file stays");
        assert_eq!(pruned.len(), 2, "{pruned:?}");
    }
}
