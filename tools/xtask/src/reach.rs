//! Call-graph reachability: prove contract roots panic-free and
//! allocation-free.
//!
//! Built on [`crate::callgraph::extract`], this module assembles the
//! whole-workspace call graph, resolves every call site to workspace
//! functions, a vouched builtin table, or the conservative "unknown
//! callee may do anything" fallback, propagates *may-panic* and
//! *may-allocate* to a fixpoint, and reconciles what is reachable from
//! the `[contracts]` roots in `lint.toml` against the ratcheting
//! `[[contract_allow]]` list.
//!
//! Soundness shape (DESIGN.md §2f): every call site either contributes
//! graph edges (workspace candidates, over-approximated by name when
//! the receiver type is unknown), a vouched effect from the builtin
//! table, or the dirty fallback. Nothing is silently dropped, so a
//! clean verdict means no lexically visible path from a root to a
//! panic/allocation site — up to the trusted base (the builtin table,
//! `assume_clean`, and the documented macro-expansion blind spot).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::allowlist::{Contracts, LintFile};
use crate::callgraph::{extract, CallSite, ExtractOptions, FnDef, Seed, SeedKind};
use crate::walk;

/// Bit flag: may panic.
pub const PANIC: u8 = 1;
/// Bit flag: may allocate.
pub const ALLOC: u8 = 2;

/// The assembled workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All non-test function definitions, workspace-wide.
    pub fns: Vec<FnDef>,
    /// Call sites per function (parallel to `fns`).
    pub calls: Vec<Vec<CallSite>>,
    /// Pattern seeds per function (parallel to `fns`).
    pub seeds: Vec<Vec<Seed>>,
}

/// A concrete panic/allocation capability with its location.
#[derive(Debug, Clone)]
pub struct Cause {
    /// Index of the function containing the cause.
    pub fn_idx: usize,
    /// Which fact it establishes.
    pub kind: SeedKind,
    /// Human-readable description.
    pub what: String,
    /// 1-based line number.
    pub line: usize,
}

/// The resolved graph: edges, per-function local effects, and the
/// concrete causes behind those local effects.
#[derive(Debug, Default)]
pub struct Resolved {
    /// Workspace call edges per function (callee indices, deduped).
    pub edges: Vec<Vec<usize>>,
    /// Local effect bits per function (seeds + non-workspace calls).
    pub local: Vec<u8>,
    /// Concrete causes per function.
    pub causes: Vec<Vec<Cause>>,
}

/// One reachable violation of a contract, with evidence.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File containing the cause.
    pub path: String,
    /// 1-based line of the cause.
    pub line: usize,
    /// `panic` or `alloc`.
    pub kind: SeedKind,
    /// What the cause is.
    pub what: String,
    /// Shortest call chain from a contract root to the cause, as
    /// `display-name (file:line)` strings; the last element contains
    /// the cause.
    pub chain: Vec<String>,
}

/// Verdict for one declared root.
#[derive(Debug, Clone)]
pub struct RootReport {
    /// The root spec as written in `lint.toml`.
    pub spec: String,
    /// Matched functions, as `display (file:line)`.
    pub matches: Vec<String>,
    /// Propagated effect bits over all matches.
    pub effects: u8,
}

/// Reconciliation of findings against `[[contract_allow]]` + budgets.
#[derive(Debug, Default)]
pub struct ContractReport {
    /// Findings not covered by any entry (or in excess of its count).
    pub new: Vec<Finding>,
    /// Structural problems: stale entries/counts, exceeded budgets,
    /// unmatched roots. One printable line each.
    pub problems: Vec<String>,
}

impl ContractReport {
    /// Gate outcome.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.problems.is_empty()
    }
}

/// Full analysis output.
pub struct Analysis {
    /// The workspace graph (for `--all` listings).
    pub graph: Graph,
    /// Fixpoint effect bits per function.
    pub effects: Vec<u8>,
    /// Per-root verdicts.
    pub roots: Vec<RootReport>,
    /// All reachable causes, deduped, sorted by (path, line, kind).
    pub findings: Vec<Finding>,
    /// Reconciliation against the allowlist.
    pub report: ContractReport,
    /// Number of files scanned.
    pub files: usize,
}

/// Directories whose code is not linkable from library roots: separate
/// compilation units (integration tests, benches, examples) would only
/// add name-resolution noise.
fn is_harness_path(path: &str) -> bool {
    ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| path.starts_with(d) || path.contains(&format!("/{d}")))
}

/// Walks the workspace and assembles the call graph.
pub fn build_graph(root: &Path, exclude: &[String], opts: &ExtractOptions) -> Result<(Graph, usize), String> {
    let paths = walk::rust_files(root, exclude)?;
    let mut graph = Graph::default();
    let mut files = 0usize;
    for rel in &paths {
        if is_harness_path(rel) {
            continue;
        }
        files += 1;
        let abs = root.join(rel);
        let source = fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let fg = extract(&source, opts);
        for (i, mut f) in fg.fns.into_iter().enumerate() {
            if f.in_test {
                continue;
            }
            f.file = rel.clone();
            graph.fns.push(f);
            graph.calls.push(fg.calls[i].clone());
            graph.seeds.push(fg.seeds[i].clone());
        }
    }
    Ok((graph, files))
}

/// Effects of a vouched standard-library name, or `None` when the name
/// is not in the trusted table. The table is deliberately small and
/// curated: anything absent falls back to "may do anything".
fn builtin_effects(qual: Option<&str>, name: &str) -> Option<u8> {
    if let Some(q) = qual {
        for (tq, tn, e) in QUALIFIED {
            if *tq == q && *tn == name {
                return Some(*e);
            }
        }
    }
    for (tn, e) in BUILTIN {
        if *tn == name {
            return Some(*e);
        }
    }
    None
}

/// Vouched `Type::name` entries consulted before the bare-name table.
const QUALIFIED: &[(&str, &str, u8)] = &[
    ("Vec", "new", 0),
    ("String", "new", 0),
    ("Vec", "with_capacity", ALLOC),
    ("String", "with_capacity", ALLOC),
    ("Vec", "from", ALLOC),
    ("String", "from", ALLOC),
    ("Box", "new", ALLOC),
    ("Rc", "new", ALLOC),
    ("Arc", "new", ALLOC),
    ("Instant", "now", 0),
    ("Duration", "from_secs", 0),
    ("Duration", "from_secs_f64", PANIC),
    ("Ordering", "then", 0),
    ("f64", "from_bits", 0),
    ("f64", "to_bits", 0),
    ("AtomicU64", "new", 0),
    ("AtomicU32", "new", 0),
    ("AtomicUsize", "new", 0),
    ("AtomicBool", "new", 0),
    ("OnceLock", "new", 0),
    ("Mutex", "new", 0),
    ("Cell", "new", 0),
    ("RefCell", "new", 0),
    // std collections allocate lazily: `new` itself is allocation-free.
    ("HashMap", "new", 0),
    ("HashSet", "new", 0),
    ("BTreeMap", "new", 0),
    ("BTreeSet", "new", 0),
    ("VecDeque", "new", 0),
    // io::Error construction boxes its payload: failure paths allocate.
    ("Error", "other", ALLOC),
    ("Error", "new", ALLOC),
    // Opening a file converts the path to a CString.
    ("File", "open", ALLOC),
    ("File", "create", ALLOC),
    // Lossless numeric conversions.
    ("u64", "from", 0),
    ("u32", "from", 0),
    ("i64", "from", 0),
    ("f64", "from", 0),
    ("usize", "from", 0),
    ("u64", "try_from", 0),
    ("usize", "try_from", 0),
    ("i64", "try_from", 0),
];

/// Vouched bare names: methods, free functions, and macros (`!`).
/// Effects: 0 = clean, PANIC, ALLOC, or both. Documented blind spot:
/// panics on constant arguments (`windows(0)`) are out of scope — the
/// analysis targets data-dependent failure on the per-record path.
const BUILTIN: &[(&str, u8)] = &[
    // -- accessors, predicates, arithmetic: clean ---------------------
    ("len", 0), ("is_empty", 0), ("get", 0), ("get_mut", 0),
    ("first", 0), ("last", 0), ("first_mut", 0), ("last_mut", 0),
    ("split_first", 0), ("split_last", 0),
    ("iter", 0), ("iter_mut", 0), ("into_iter", 0), ("drain", PANIC),
    ("as_ref", 0), ("as_mut", 0), ("as_str", 0), ("as_slice", 0),
    ("as_mut_slice", 0), ("as_bytes", 0), ("as_deref", 0),
    ("abs", 0), ("sqrt", 0), ("hypot", 0), ("powi", 0), ("powf", 0),
    ("floor", 0), ("ceil", 0), ("round", 0), ("trunc", 0), ("fract", 0),
    ("signum", 0), ("recip", 0), ("mul_add", 0), ("copysign", 0),
    ("to_radians", 0), ("to_degrees", 0), ("sin", 0), ("cos", 0),
    ("tan", 0), ("asin", 0), ("acos", 0), ("atan", 0), ("atan2", 0),
    ("sin_cos", 0), ("exp", 0), ("ln", 0), ("log2", 0), ("log10", 0),
    ("min", 0), ("max", 0), ("clamp", 0), ("min_by", 0), ("max_by", 0),
    ("min_by_key", 0), ("max_by_key", 0),
    ("is_finite", 0), ("is_nan", 0), ("is_infinite", 0),
    ("is_sign_negative", 0), ("is_sign_positive", 0),
    ("to_bits", 0), ("from_bits", 0), ("total_cmp", 0),
    ("cmp", 0), ("partial_cmp", 0), ("eq", 0), ("ne", 0),
    ("lt", 0), ("le", 0), ("gt", 0), ("ge", 0),
    ("then", 0), ("then_some", 0), ("then_with", 0), ("reverse", 0),
    ("saturating_add", 0), ("saturating_sub", 0), ("saturating_mul", 0),
    ("wrapping_add", 0), ("wrapping_sub", 0), ("wrapping_mul", 0),
    ("checked_add", 0), ("checked_sub", 0), ("checked_mul", 0),
    ("checked_div", 0), ("checked_rem", 0), ("pow", 0),
    ("leading_zeros", 0), ("trailing_zeros", 0),
    ("rotate_left", 0), ("rotate_right", 0), ("count_ones", 0),
    ("to_le_bytes", 0), ("to_be_bytes", 0),
    ("from_le_bytes", 0), ("from_be_bytes", 0),
    ("is_ascii_digit", 0), ("is_ascii_alphabetic", 0),
    ("is_ascii_alphanumeric", 0), ("is_uppercase", 0),
    ("size_of", 0), ("align_of", 0), ("drop", 0), ("min_positive", 0),
    ("asinh", 0), ("sinh", 0), ("cosh", 0), ("tanh", 0), ("cbrt", 0),
    // Atomics: lock-free reads/writes/RMWs neither panic nor allocate.
    ("load", 0), ("store", 0), ("fetch_add", 0), ("fetch_sub", 0),
    ("fetch_or", 0), ("fetch_and", 0), ("fetch_xor", 0),
    ("fetch_min", 0), ("fetch_max", 0), ("compare_exchange", 0),
    ("compare_exchange_weak", 0), ("fetch_update", 0),
    // Derived `Default` bottoms out in empty std containers, which do
    // not allocate; hand-written workspace impls resolve before this.
    ("default", 0), ("from_fn", 0),
    ("capacity", 0), ("as_ptr", 0), ("as_mut_ptr", 0),
    ("dedup_by", 0), ("dedup_by_key", 0), ("into_inner", 0),
    ("get_or_init", 0), ("to_path_buf", ALLOC),
    // File I/O on an open handle fails via Result, not panic.
    ("write_all", 0), ("flush", 0), ("sync_all", 0), ("sync_data", 0),
    ("read_exact", 0), ("seek", 0), ("stream_position", 0),
    // -- Option / Result plumbing: clean ------------------------------
    ("map", 0), ("map_or", 0), ("map_or_else", 0), ("map_err", 0),
    ("and_then", 0), ("or_else", 0), ("or", 0), ("and", 0),
    ("unwrap_or", 0), ("unwrap_or_else", 0), ("unwrap_or_default", 0),
    ("ok", 0), ("err", 0), ("ok_or", 0), ("ok_or_else", 0),
    ("is_some", 0), ("is_none", 0), ("is_ok", 0), ("is_err", 0),
    ("is_some_and", 0), ("is_none_or", 0),
    ("take", 0), ("replace", 0), ("copied", 0), ("as_opt", 0),
    ("filter", 0), ("flatten", 0), ("transpose", 0), ("inspect", 0),
    // -- iterator adapters and slice scans: clean ---------------------
    ("filter_map", 0), ("flat_map", 0), ("rev", 0), ("zip", 0),
    ("enumerate", 0), ("skip", 0), ("step_by", 0), ("chain", 0),
    ("windows", 0), ("chunks", 0), ("chunks_exact", 0),
    ("fold", 0), ("try_fold", 0), ("sum", 0), ("product", 0),
    ("count", 0), ("all", 0), ("any", 0), ("find", 0), ("find_map", 0),
    ("position", 0), ("rposition", 0), ("take_while", 0),
    ("skip_while", 0), ("by_ref", 0), ("peekable", 0), ("peek", 0),
    ("next", 0), ("next_back", 0), ("nth", 0), ("once", 0),
    ("binary_search", 0), ("binary_search_by", 0),
    ("binary_search_by_key", 0), ("contains", 0), ("contains_key", 0),
    ("starts_with", 0), ("ends_with", 0), ("sort_unstable", 0),
    ("sort_unstable_by", 0), ("sort_unstable_by_key", 0),
    ("fill", 0), ("fill_with", 0), ("rotate_left", 0),
    ("retain", 0), ("dedup", 0), ("truncate", 0), ("clear", 0),
    ("trim", 0), ("trim_end", 0), ("trim_start", 0),
    ("trim_end_matches", 0), ("trim_start_matches", 0),
    ("strip_prefix", 0), ("strip_suffix", 0), ("split_once", 0),
    ("char_indices", 0), ("chars", 0), ("bytes", 0), ("lines", 0),
    ("parse", 0), ("keys", 0), ("values", 0), ("values_mut", 0),
    ("get_or_insert_with", 0), ("pop", 0), ("swap_remove", PANIC),
    // -- panic-capable ------------------------------------------------
    ("unwrap", PANIC), ("expect", PANIC),
    ("unwrap_err", PANIC), ("expect_err", PANIC),
    ("split_at", PANIC), ("split_at_mut", PANIC),
    ("copy_from_slice", PANIC), ("clone_from_slice", PANIC),
    ("copy_within", PANIC), ("swap", PANIC), ("remove", PANIC),
    ("insert", PANIC | ALLOC), ("div_euclid", PANIC),
    ("rem_euclid", PANIC), ("elapsed", 0),
    ("panic!", PANIC), ("unreachable!", PANIC), ("todo!", PANIC),
    ("unimplemented!", PANIC), ("assert!", PANIC),
    ("assert_eq!", PANIC), ("assert_ne!", PANIC),
    // debug_assert compiles out of release builds; the contract covers
    // the release hot path, and the `panic` lint still polices misuse.
    ("debug_assert!", 0), ("debug_assert_eq!", 0),
    ("debug_assert_ne!", 0),
    // -- allocation-capable -------------------------------------------
    ("push", ALLOC), ("push_str", ALLOC), ("extend", ALLOC),
    ("extend_from_slice", ALLOC), ("append", ALLOC), ("resize", ALLOC),
    ("reserve", ALLOC), ("reserve_exact", ALLOC),
    ("with_capacity", ALLOC), ("collect", ALLOC),
    ("to_string", ALLOC), ("to_owned", ALLOC), ("to_vec", ALLOC),
    ("clone", ALLOC), ("cloned", ALLOC), ("join", ALLOC),
    ("concat", ALLOC), ("repeat", ALLOC), ("entry", ALLOC),
    ("or_insert", ALLOC), ("or_insert_with", ALLOC),
    ("or_default", ALLOC), ("sort", ALLOC), ("sort_by", ALLOC),
    ("sort_by_key", ALLOC), ("into_boxed_slice", ALLOC),
    ("into_vec", ALLOC), ("to_uppercase", ALLOC),
    ("to_lowercase", ALLOC), ("split_off", PANIC | ALLOC),
    ("insert_str", PANIC | ALLOC), ("splice", PANIC | ALLOC),
    ("format!", ALLOC), ("vec!", ALLOC),
    ("write!", ALLOC), ("writeln!", ALLOC),
    ("println!", PANIC | ALLOC), ("print!", PANIC | ALLOC),
    ("eprintln!", PANIC | ALLOC), ("eprint!", PANIC | ALLOC),
    // -- clean macros -------------------------------------------------
    ("matches!", 0), ("cfg!", 0), ("stringify!", 0), ("concat!", 0),
    ("line!", 0), ("file!", 0), ("column!", 0), ("env!", 0),
    ("option_env!", 0), ("include_str!", 0), ("compile_error!", 0),
];

/// Resolves every call site: workspace candidates become edges,
/// builtin/vouched effects become local causes, everything else hits
/// the conservative fallback.
pub fn resolve(graph: &Graph, contracts: &Contracts) -> Resolved {
    // Indexes: by bare name, split by "has a qualifier". The methods
    // index admits only fns with a `self` receiver: `.name(…)` call
    // sites can only dispatch to those, so free-fn and associated-fn
    // homonyms (`fn drain()` vs `VecDeque::drain`) stay out of the
    // union.
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut qualified: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if f.has_self {
            methods.entry(f.name.as_str()).or_default().push(i);
        }
        match &f.qual {
            Some(q) => {
                qualified.entry((q.as_str(), f.name.as_str())).or_default().push(i);
            }
            None => free.entry(f.name.as_str()).or_default().push(i),
        }
    }

    let mut out = Resolved {
        edges: vec![Vec::new(); graph.fns.len()],
        local: vec![0; graph.fns.len()],
        causes: vec![Vec::new(); graph.fns.len()],
    };

    for (i, f) in graph.fns.iter().enumerate() {
        for s in &graph.seeds[i] {
            let bit = match s.kind {
                SeedKind::Panic => PANIC,
                SeedKind::Alloc => ALLOC,
            };
            out.local[i] |= bit;
            out.causes[i].push(Cause { fn_idx: i, kind: s.kind, what: s.what.clone(), line: s.line });
        }
        let mut targets: BTreeSet<usize> = BTreeSet::new();
        for c in &graph.calls[i] {
            resolve_call(c, f, contracts, &free, &methods, &qualified, graph, i, &mut targets, &mut out);
        }
        out.edges[i] = targets.into_iter().collect();
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn resolve_call(
    c: &CallSite,
    caller: &FnDef,
    contracts: &Contracts,
    free: &BTreeMap<&str, Vec<usize>>,
    methods: &BTreeMap<&str, Vec<usize>>,
    qualified: &BTreeMap<(&str, &str), Vec<usize>>,
    graph: &Graph,
    i: usize,
    targets: &mut BTreeSet<usize>,
    out: &mut Resolved,
) {
    let dirty = |out: &mut Resolved, what: String| {
        out.local[i] |= PANIC | ALLOC;
        out.causes[i].push(Cause { fn_idx: i, kind: SeedKind::Panic, what: what.clone(), line: c.line });
        out.causes[i].push(Cause { fn_idx: i, kind: SeedKind::Alloc, what, line: c.line });
    };
    let vouched = |out: &mut Resolved, effects: u8| {
        if effects & PANIC != 0 {
            out.local[i] |= PANIC;
            out.causes[i].push(Cause {
                fn_idx: i,
                kind: SeedKind::Panic,
                what: format!("call to `{}` (vouched may-panic)", c.name),
                line: c.line,
            });
        }
        if effects & ALLOC != 0 {
            out.local[i] |= ALLOC;
            out.causes[i].push(Cause {
                fn_idx: i,
                kind: SeedKind::Alloc,
                what: format!("call to `{}` (vouched may-allocate)", c.name),
                line: c.line,
            });
        }
    };

    // Review-vouched names short-circuit everything.
    if contracts.assume_clean.iter().any(|n| n == &c.name) {
        return;
    }

    if c.name.ends_with('!') {
        // Macros: either builtin or unknowable (macro_rules! bodies are
        // not expanded — vouch workspace macros via assume_clean).
        match builtin_effects(None, &c.name) {
            Some(e) => vouched(out, e),
            None => dirty(out, format!("call to unvouched macro `{}`", c.name)),
        }
        return;
    }

    let mut candidates: Vec<usize> = Vec::new();
    if let Some(q) = &c.qual {
        if let Some(v) = qualified.get(&(q.as_str(), c.name.as_str())) {
            candidates.extend(v);
        }
        // A lowercase qualifier is a module path, not a type:
        // `numeric::approx_zero(…)` targets the free fn.
        if candidates.is_empty() && q.chars().next().is_some_and(char::is_lowercase) {
            if let Some(v) = free.get(c.name.as_str()) {
                candidates.extend(v);
            }
        }
        if candidates.is_empty() {
            match builtin_effects(Some(q), &c.name) {
                Some(e) => vouched(out, e),
                None => dirty(out, format!("call to unresolved `{q}::{}`", c.name)),
            }
            return;
        }
    } else if c.method {
        // Receiver type unknown: union every workspace method of this
        // name AND the builtin homonym (`.push(` could be `Vec::push`
        // or a workspace `push`). Sound over-approximation.
        if let Some(v) = methods.get(c.name.as_str()) {
            candidates.extend(v);
        }
        match builtin_effects(None, &c.name) {
            Some(e) => vouched(out, e),
            None if candidates.is_empty() => {
                dirty(out, format!("method call to unresolved `.{}()`", c.name));
                return;
            }
            None => {}
        }
    } else {
        if let Some(v) = free.get(c.name.as_str()) {
            candidates.extend(v);
        }
        if candidates.is_empty() {
            match builtin_effects(None, &c.name) {
                Some(e) => vouched(out, e),
                None => dirty(out, format!("call to unresolved `{}`", c.name)),
            }
            return;
        }
    }

    // A bodyless candidate is a trait method declaration: the call may
    // dispatch to any same-named impl in the workspace, so widen. An
    // impl of a trait item always lives in an `impl` block (qualified),
    // so free-fn homonyms stay out of the widened set.
    if candidates.iter().any(|&t| !graph.fns[t].has_body) {
        if let Some(v) = methods.get(c.name.as_str()) {
            candidates.extend(v);
        }
        candidates.extend(graph.fns.iter().enumerate().filter_map(|(t, f)| {
            (f.qual.is_some() && !f.has_self && f.name == c.name).then_some(t)
        }));
    }
    let _ = caller;
    targets.extend(candidates);
}

/// Propagates effect bits over the call graph to a fixpoint. Pure:
/// `effects[f] = local[f] | union(effects[callee])`. Monotone in both
/// `local` and `edges` — the proptests pin that.
pub fn propagate(edges: &[Vec<usize>], local: &[u8]) -> Vec<u8> {
    let mut eff = local.to_vec();
    loop {
        let mut changed = false;
        for i in 0..edges.len() {
            let mut bits = eff[i];
            for &t in &edges[i] {
                bits |= eff[t];
            }
            if bits != eff[i] {
                eff[i] = bits;
                changed = true;
            }
        }
        if !changed {
            return eff;
        }
    }
}

/// Matches one root spec (`name`, `Type::name`, optionally `@file`)
/// against the graph. Only bodied, non-test functions qualify.
pub fn match_root(graph: &Graph, spec: &str) -> Vec<usize> {
    let (name_part, file_part) = match spec.split_once('@') {
        Some((n, f)) => (n, Some(f)),
        None => (spec, None),
    };
    let (qual, name) = match name_part.rsplit_once("::") {
        Some((q, n)) => (Some(q), n),
        None => (None, name_part),
    };
    graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.has_body
                && f.name == name
                && qual.is_none_or(|q| f.qual.as_deref() == Some(q))
                && file_part.is_none_or(|p| f.file.ends_with(p))
        })
        .map(|(i, _)| i)
        .collect()
}

/// BFS from the given roots; returns per-function predecessor indices
/// (usize::MAX for roots/unreached) and the reached set in BFS order.
fn bfs(edges: &[Vec<usize>], roots: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut parent = vec![usize::MAX; edges.len()];
    let mut seen = vec![false; edges.len()];
    let mut order = Vec::new();
    let mut q = VecDeque::new();
    for &r in roots {
        if !seen[r] {
            seen[r] = true;
            q.push_back(r);
        }
    }
    while let Some(u) = q.pop_front() {
        order.push(u);
        for &v in &edges[u] {
            if !seen[v] {
                seen[v] = true;
                parent[v] = u;
                q.push_back(v);
            }
        }
    }
    (parent, order)
}

fn loc(f: &FnDef) -> String {
    format!("{} ({}:{})", f.display(), f.file, f.line)
}

/// Runs the full analysis for the repo at `root` against `lint.toml`.
pub fn analyze(root: &Path, file: &LintFile) -> Result<Analysis, String> {
    let opts = ExtractOptions { int_div_patterns: file.contracts.int_div_patterns.clone() };
    let (graph, files) = build_graph(root, &file.config.exclude, &opts)?;
    let resolved = resolve(&graph, &file.contracts);
    let effects = propagate(&resolved.edges, &resolved.local);

    let mut report = ContractReport::default();
    let mut roots = Vec::new();
    let mut root_idxs = Vec::new();
    for spec in &file.contracts.roots {
        let matches = match_root(&graph, spec);
        if matches.is_empty() {
            report.problems.push(format!(
                "contract root `{spec}` matches no workspace function — \
                 fix the spec or delete the stale root"
            ));
            roots.push(RootReport { spec: spec.clone(), matches: Vec::new(), effects: 0 });
            continue;
        }
        let mut bits = 0;
        let mut names = Vec::new();
        for &m in &matches {
            bits |= effects[m];
            names.push(loc(&graph.fns[m]));
        }
        roots.push(RootReport { spec: spec.clone(), matches: names, effects: bits });
        root_idxs.extend(matches);
    }
    root_idxs.sort_unstable();
    root_idxs.dedup();

    // Evidence: BFS gives shortest chains; collect each reachable cause
    // once, keyed by (file, line, kind).
    let (parent, order) = bfs(&resolved.edges, &root_idxs);
    let mut seen: BTreeSet<(String, usize, SeedKind)> = BTreeSet::new();
    let mut findings = Vec::new();
    for &u in &order {
        for cause in &resolved.causes[u] {
            let key = (graph.fns[u].file.clone(), cause.line, cause.kind);
            if !seen.insert(key) {
                continue;
            }
            let mut chain = Vec::new();
            let mut cur = u;
            loop {
                chain.push(loc(&graph.fns[cur]));
                if parent[cur] == usize::MAX {
                    break;
                }
                cur = parent[cur];
            }
            chain.reverse();
            findings.push(Finding {
                path: graph.fns[u].file.clone(),
                line: cause.line,
                kind: cause.kind,
                what: cause.what.clone(),
                chain,
            });
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.kind).cmp(&(&b.path, b.line, b.kind)));

    reconcile_contracts(file, &findings, &mut report);
    Ok(Analysis { graph, effects, roots, findings, report, files })
}

/// Groups findings by (path, kind) for allowlist reconciliation.
pub fn group_findings(findings: &[Finding]) -> BTreeMap<(String, String), u64> {
    let mut m: BTreeMap<(String, String), u64> = BTreeMap::new();
    for f in findings {
        *m.entry((f.path.clone(), f.kind.name().to_string())).or_default() += 1;
    }
    m
}

/// Same ratchet semantics as the lint allowlist: exact counts, stale
/// entries are errors, budgets bound totals per kind.
fn reconcile_contracts(file: &LintFile, findings: &[Finding], report: &mut ContractReport) {
    let actual = group_findings(findings);

    let mut allowed: BTreeMap<(String, String), u64> = BTreeMap::new();
    for a in &file.contract_allows {
        if allowed.insert((a.path.clone(), a.kind.clone()), a.count).is_some() {
            report
                .problems
                .push(format!("duplicate [[contract_allow]] entry for {} / {}", a.kind, a.path));
        }
    }

    for ((path, kind), &have) in &actual {
        let subset = || {
            findings
                .iter()
                .filter(|f| &f.path == path && f.kind.name() == kind)
                .cloned()
        };
        match allowed.get(&(path.clone(), kind.clone())) {
            None => report.new.extend(subset()),
            Some(&cap) if have > cap => {
                report.problems.push(format!(
                    "{path}: reachable {kind} findings grew from {cap} to {have} — fix the \
                     new ones (the allowlist never grows)"
                ));
                report.new.extend(subset().skip(cap as usize));
            }
            Some(&cap) if have < cap => {
                report.problems.push(format!(
                    "{path}: stale contract_allow count for {kind} ({cap} listed, {have} \
                     present) — run `cargo xtask lint --fix-allowlist` to ratchet down"
                ));
            }
            Some(_) => {}
        }
    }
    for ((path, kind), &cap) in &allowed {
        if !actual.contains_key(&(path.clone(), kind.clone())) {
            report.problems.push(format!(
                "{path}: stale contract_allow entry for {kind} ({cap} listed, 0 present) — \
                 delete it or run `cargo xtask lint --fix-allowlist`"
            ));
        }
    }

    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for f in findings {
        *totals.entry(f.kind.name()).or_default() += 1;
    }
    for (kind, cap) in [
        ("panic", file.contracts.budget_panic),
        ("alloc", file.contracts.budget_alloc),
    ] {
        let total = totals.get(kind).copied().unwrap_or(0);
        if total > cap {
            report.problems.push(format!(
                "contract budget exceeded for {kind}: {total} reachable findings, budget {cap}"
            ));
        }
    }
}

fn effects_str(bits: u8) -> &'static str {
    match (bits & PANIC != 0, bits & ALLOC != 0) {
        (false, false) => "clean",
        (true, false) => "may-panic",
        (false, true) => "may-allocate",
        (true, true) => "may-panic, may-allocate",
    }
}

/// Human-readable report. With `all`, lists every workspace function's
/// verdict after the per-root summary.
pub fn render_text(a: &Analysis, all: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "reach: {} fns in {} files, {} contract root spec(s)",
        a.graph.fns.len(),
        a.files,
        a.roots.len()
    );
    for r in &a.roots {
        let _ = writeln!(out, "\nroot `{}` — {}", r.spec, effects_str(r.effects));
        for m in &r.matches {
            let _ = writeln!(out, "    {m}");
        }
    }
    if !a.findings.is_empty() {
        let _ = writeln!(out, "\n{} reachable finding(s):", a.findings.len());
        for f in &a.findings {
            let _ = writeln!(out, "\n  [{}] {}:{} — {}", f.kind.name(), f.path, f.line, f.what);
            for (i, link) in f.chain.iter().enumerate() {
                let _ = writeln!(out, "      {}{}", "  ".repeat(i), link);
            }
        }
    }
    if !a.report.problems.is_empty() {
        let _ = writeln!(out, "\nproblems:");
        for p in &a.report.problems {
            let _ = writeln!(out, "  {p}");
        }
    }
    if !a.report.new.is_empty() {
        let _ = writeln!(out, "\n{} finding(s) not covered by [[contract_allow]]", a.report.new.len());
    }
    if all {
        let _ = writeln!(out, "\nper-function verdicts:");
        let mut idx: Vec<usize> = (0..a.graph.fns.len()).collect();
        idx.sort_by(|&x, &y| {
            (&a.graph.fns[x].file, a.graph.fns[x].line).cmp(&(&a.graph.fns[y].file, a.graph.fns[y].line))
        });
        for i in idx {
            let f = &a.graph.fns[i];
            let _ = writeln!(out, "  {:<24} {}:{} {}", effects_str(a.effects[i]), f.file, f.line, f.display());
        }
    }
    let _ = writeln!(
        out,
        "\nverdict: {}",
        if a.report.is_clean() { "contracts hold" } else { "CONTRACT VIOLATIONS" }
    );
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_finding(out: &mut String, f: &Finding) {
    let _ = write!(
        out,
        "{{\"path\":\"{}\",\"line\":{},\"kind\":\"{}\",\"what\":\"{}\",\"chain\":[",
        json_escape(&f.path),
        f.line,
        f.kind.name(),
        json_escape(&f.what)
    );
    for (i, link) in f.chain.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(link));
    }
    out.push_str("]}");
}

/// Machine-readable report for CI (`--format json`).
pub fn render_json(a: &Analysis) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"fns\":{},\"files\":{},", a.graph.fns.len(), a.files);
    let _ = write!(out, "\"clean\":{},", a.report.is_clean());

    out.push_str("\"roots\":[");
    for (i, r) in a.roots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"spec\":\"{}\",\"may_panic\":{},\"may_alloc\":{},\"matches\":[",
            json_escape(&r.spec),
            r.effects & PANIC != 0,
            r.effects & ALLOC != 0
        );
        for (j, m) in r.matches.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(m));
        }
        out.push_str("]}");
    }
    out.push_str("],");

    for (key, list) in [("findings", &a.findings), ("new", &a.report.new)] {
        let _ = write!(out, "\"{key}\":[");
        for (i, f) in list.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_finding(&mut out, f);
        }
        out.push_str("],");
    }

    out.push_str("\"problems\":[");
    for (i, p) in a.report.problems.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(p));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_graph(files: &[(&str, &str)]) -> Graph {
        let opts = ExtractOptions::default();
        let mut graph = Graph::default();
        for (path, src) in files {
            let fg = extract(src, &opts);
            for (i, mut f) in fg.fns.into_iter().enumerate() {
                if f.in_test {
                    continue;
                }
                f.file = (*path).to_string();
                graph.fns.push(f);
                graph.calls.push(fg.calls[i].clone());
                graph.seeds.push(fg.seeds[i].clone());
            }
        }
        graph
    }

    fn effects_of(graph: &Graph, contracts: &Contracts, name: &str) -> u8 {
        let r = resolve(graph, contracts);
        let eff = propagate(&r.edges, &r.local);
        let i = graph.fns.iter().position(|f| f.name == name).expect("fn exists");
        eff[i]
    }

    #[test]
    fn panic_propagates_through_calls() {
        let g = mini_graph(&[(
            "a.rs",
            "fn top(x: Option<u32>) -> u32 { mid(x) }\nfn mid(x: Option<u32>) -> u32 { x.unwrap() }\nfn safe(x: u32) -> u32 { x }",
        )]);
        let c = Contracts::default();
        assert_eq!(effects_of(&g, &c, "top"), PANIC);
        assert_eq!(effects_of(&g, &c, "safe"), 0);
    }

    #[test]
    fn alloc_propagates_and_is_distinct() {
        let g = mini_graph(&[(
            "a.rs",
            "fn top(n: usize) -> Vec<u32> { build(n) }\nfn build(n: usize) -> Vec<u32> { let mut v = Vec::new(); v.reserve(n); v }",
        )]);
        assert_eq!(effects_of(&g, &Contracts::default(), "top"), ALLOC);
    }

    #[test]
    fn unknown_call_is_conservatively_dirty() {
        let g = mini_graph(&[("a.rs", "fn top() { mystery_external_fn(); }")]);
        assert_eq!(effects_of(&g, &Contracts::default(), "top"), PANIC | ALLOC);
    }

    #[test]
    fn assume_clean_vouches_names() {
        let g = mini_graph(&[("a.rs", "fn top() { span!(\"x\"); }")]);
        assert_eq!(effects_of(&g, &Contracts::default(), "top"), PANIC | ALLOC);
        let c = Contracts { assume_clean: vec!["span!".into()], ..Contracts::default() };
        assert_eq!(effects_of(&g, &c, "top"), 0);
    }

    #[test]
    fn cycles_converge() {
        let g = mini_graph(&[(
            "a.rs",
            "fn even(n: u32) -> bool { if n == 0 { true } else { odd(n - 1) } }\nfn odd(n: u32) -> bool { if n == 0 { false } else { even(n - 1) } }",
        )]);
        let c = Contracts::default();
        assert_eq!(effects_of(&g, &c, "even"), 0);
        assert_eq!(effects_of(&g, &c, "odd"), 0);
    }

    #[test]
    fn cycle_with_a_seed_taints_both() {
        let g = mini_graph(&[(
            "a.rs",
            "fn ping(n: u32, xs: &[u32]) -> u32 { pong(n, xs) }\nfn pong(n: u32, xs: &[u32]) -> u32 { if n == 0 { xs[0] } else { ping(n - 1, xs) } }",
        )]);
        let c = Contracts::default();
        assert_eq!(effects_of(&g, &c, "ping"), PANIC);
        assert_eq!(effects_of(&g, &c, "pong"), PANIC);
    }

    #[test]
    fn qualified_resolution_does_not_cross_types() {
        // Alpha::make is dirty; Beta::make is clean. A call qualified
        // with Beta must not pick up Alpha's effects.
        let g = mini_graph(&[(
            "a.rs",
            "struct Alpha; struct Beta;\nimpl Alpha { fn make(x: Option<u32>) -> u32 { x.unwrap() } }\nimpl Beta { fn make(x: Option<u32>) -> u32 { x.unwrap_or(0) } }\nfn top(x: Option<u32>) -> u32 { Beta::make(x) }",
        )]);
        assert_eq!(effects_of(&g, &Contracts::default(), "top"), 0);
    }

    #[test]
    fn method_calls_union_homonyms() {
        // `.grow()` has two workspace impls; one is dirty, so the
        // unknown-receiver call inherits the union.
        let g = mini_graph(&[(
            "a.rs",
            "struct A; struct B;\nimpl A { fn grow(&self, x: Option<u32>) -> u32 { x.unwrap() } }\nimpl B { fn grow(&self, x: Option<u32>) -> u32 { x.unwrap_or(0) } }\nfn top(a: &A, x: Option<u32>) -> u32 { a.grow(x) }",
        )]);
        assert_eq!(effects_of(&g, &Contracts::default(), "top"), PANIC);
    }

    #[test]
    fn method_calls_skip_receiverless_homonyms() {
        // A free fn and an associated fn share the method's name; a
        // `.drain(…)` call site can only dispatch to a `self` receiver,
        // so neither homonym taints the builtin-clean resolution.
        let g = mini_graph(&[(
            "a.rs",
            "fn drain() -> Vec<u32> { vec![1] }\nstruct W;\nimpl W { fn last(n: u32) -> u32 { n.wrapping_add(1) } }\nfn top(x: &mut Vec<u32>) -> Option<u32> { let v = x.last().copied(); v }",
        )]);
        // `.last()` on the receiver resolves to the builtin (clean), not
        // to the associated fn `W::last`, and not through free `drain`.
        assert_eq!(effects_of(&g, &Contracts::default(), "top"), 0);
    }

    #[test]
    fn trait_declaration_widens_to_impls() {
        let g = mini_graph(&[(
            "a.rs",
            "trait Codec { fn encode(&self) -> u32; }\nstruct Bad;\nimpl Codec for Bad { fn encode(&self) -> u32 { panic!(\"boom\") } }\nfn top(c: &dyn Codec) -> u32 { Codec::encode(c) }",
        )]);
        assert_eq!(effects_of(&g, &Contracts::default(), "top") & PANIC, PANIC);
    }

    #[test]
    fn match_root_specs() {
        let g = mini_graph(&[
            ("crates/a/src/lib.rs", "impl K { fn run(&self) {} }\nfn run() {}"),
            ("crates/b/src/lib.rs", "fn run() {}"),
        ]);
        assert_eq!(match_root(&g, "run").len(), 3);
        assert_eq!(match_root(&g, "K::run").len(), 1);
        assert_eq!(match_root(&g, "run@crates/b/src/lib.rs").len(), 1);
        assert!(match_root(&g, "nonexistent").is_empty());
    }

    #[test]
    fn propagate_is_a_fixpoint_and_monotone_smoke() {
        let edges = vec![vec![1], vec![2], vec![]];
        let local = vec![0, 0, PANIC];
        let eff = propagate(&edges, &local);
        assert_eq!(eff, vec![PANIC, PANIC, PANIC]);
        // Adding an edge can only add bits.
        let more = vec![vec![1, 2], vec![2], vec![]];
        let eff2 = propagate(&more, &local);
        for (a, b) in eff.iter().zip(&eff2) {
            assert_eq!(b & a, *a);
        }
    }

    #[test]
    fn evidence_chain_is_shortest() {
        // top -> a -> b -> boom and top -> boom: chain must be the
        // 2-hop one.
        let src = "fn top(x: Option<u32>) { a(x); boom(x); }\nfn a(x: Option<u32>) { b(x); }\nfn b(x: Option<u32>) { boom(x); }\nfn boom(x: Option<u32>) { x.unwrap(); }";
        let g = mini_graph(&[("a.rs", src)]);
        let r = resolve(&g, &Contracts::default());
        let roots = match_root(&g, "top");
        let (parent, order) = bfs(&r.edges, &roots);
        let boom = g.fns.iter().position(|f| f.name == "boom").expect("fn exists");
        assert!(order.contains(&boom));
        // parent chain: boom <- top directly.
        assert_eq!(parent[boom], g.fns.iter().position(|f| f.name == "top").expect("fn exists"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
