//! Whole-workspace call-graph extraction over the lexed code view.
//!
//! [`extract`] walks one file's [`crate::scan::lex`] output and recovers
//! the three ingredients the reachability analysis in [`crate::reach`]
//! consumes:
//!
//! * **Function definitions** — every `fn name` item, with the
//!   enclosing `impl`/`trait` type (for qualified-call resolution and
//!   display), the 1-based definition line, whether it lies in a
//!   `#[cfg(test)]` region, and whether it has a body (trait method
//!   *declarations* are recorded but carry no effects).
//! * **Call sites** — free calls (`helper(`), qualified calls
//!   (`FitRegion::new(`, turbofish included), method calls
//!   (`.push(`), and macro invocations (`format!(`), each attributed to
//!   the innermost enclosing function.
//! * **Pattern seeds** — lexically visible panic/allocation capability
//!   that is not a call: slice/array indexing (`xs[i]`), division or
//!   remainder whose right operand matches a configured
//!   integer-division pattern, and indirect calls through a closure or
//!   function pointer (`)(`), which is the "unknown callee may do
//!   anything" fallback the analysis treats conservatively.
//!
//! The walk is a single pass with a small amount of cross-line state
//! (brace depth, a frame stack for `fn`/`impl`/`trait`/`macro_rules!`
//! bodies, attribute bracket depth). `macro_rules!` bodies are skipped
//! entirely: token trees are not code until expansion, and the
//! workspace's observability macros are vouched for via
//! `[contracts] assume_clean` instead — see `DESIGN.md` §2f for the
//! soundness discussion.

use crate::scan::{lex, Line};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name (`compress_into`).
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when the fn is a method or
    /// an associated function (`OnePassFit`, `StreamingCompressor`).
    pub qual: Option<String>,
    /// Repo-relative path with forward slashes (filled by the caller).
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the definition lies inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// `false` for bodyless trait method declarations.
    pub has_body: bool,
    /// Whether the signature takes a `self` receiver (`&self`,
    /// `&mut self`, `self`, `self: Box<Self>`). Method-call sites
    /// (`x.name(…)`) resolve only against fns with a receiver.
    pub has_self: bool,
}

impl FnDef {
    /// Display name: `Type::name` or `name`.
    pub fn display(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name: last path segment (`new` for `FitRegion::new`),
    /// with a trailing `!` for macro invocations (`format!`).
    pub name: String,
    /// Path qualifier when present (`FitRegion` for `FitRegion::new`);
    /// `Self` is resolved to the enclosing impl type during extraction.
    pub qual: Option<String>,
    /// Whether this is a `.name(` method call.
    pub method: bool,
    /// 1-based line number.
    pub line: usize,
}

/// Which capability a seed demonstrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeedKind {
    /// The construct can panic.
    Panic,
    /// The construct can allocate.
    Alloc,
}

impl SeedKind {
    /// Stable machine-readable name (`panic` / `alloc`).
    pub fn name(self) -> &'static str {
        match self {
            SeedKind::Panic => "panic",
            SeedKind::Alloc => "alloc",
        }
    }

    /// Parses a kind name.
    pub fn from_name(name: &str) -> Option<SeedKind> {
        match name {
            "panic" => Some(SeedKind::Panic),
            "alloc" => Some(SeedKind::Alloc),
            _ => None,
        }
    }
}

/// A non-call source of panic/allocation capability.
#[derive(Debug, Clone)]
pub struct Seed {
    /// Which fact the seed establishes.
    pub kind: SeedKind,
    /// Human-readable description.
    pub what: String,
    /// 1-based line number.
    pub line: usize,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileGraph {
    /// Function definitions, in source order.
    pub fns: Vec<FnDef>,
    /// Call sites per function (parallel to `fns`).
    pub calls: Vec<Vec<CallSite>>,
    /// Pattern seeds per function (parallel to `fns`).
    pub seeds: Vec<Vec<Seed>>,
}

/// Extraction tunables, from `[contracts]` in `lint.toml`.
#[derive(Debug, Clone)]
pub struct ExtractOptions {
    /// Substrings that mark a division's right operand as integer-typed
    /// (`.len()`): such divisions are flagged as possible
    /// divide-by-zero panics. Divisions whose operands do not match are
    /// assumed floating-point (which cannot panic). Same philosophy as
    /// the `time_cast` lint's pattern list: lexical, configurable,
    /// honest about its blind spots.
    pub int_div_patterns: Vec<String>,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            int_div_patterns: vec![".len()".into(), ".count()".into(), "_count".into()],
        }
    }
}

/// What kind of item a stack frame represents.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FrameKind {
    /// A function body; the index into [`FileGraph::fns`].
    Fn(usize),
    /// An `impl`/`trait` block with its subject type name.
    Holder(Option<String>),
    /// A `macro_rules!` body: skipped entirely.
    Macro,
}

#[derive(Debug)]
struct Frame {
    kind: FrameKind,
    /// Brace depth *after* the opening `{` of this frame.
    open_depth: i64,
}

/// A header whose body `{` has not opened yet.
#[derive(Debug)]
enum Pending {
    Fn {
        name: Option<String>,
        qual: Option<String>,
        line: usize,
        in_test: bool,
        has_self: bool,
    },
    Holder { last_ident: Option<String>, done: bool },
    Macro,
}

/// Extracts the per-file slice of the workspace call graph.
pub fn extract(source: &str, opts: &ExtractOptions) -> FileGraph {
    let lines = lex(source);
    Parser::new(opts).run(&lines)
}

struct Parser<'o> {
    opts: &'o ExtractOptions,
    out: FileGraph,
    /// Brace depth.
    depth: i64,
    /// Paren/bracket depth: `;` and `{` only delimit items at depth 0
    /// (so `[u8; 4]` in a signature does not end the item).
    paren: i64,
    /// Attribute bracket depth: inside `#[…]` nothing is code.
    attr: i64,
    frames: Vec<Frame>,
    pending: Option<Pending>,
    /// Angle-bracket depth while a `Holder` header is pending, so type
    /// parameters (`impl<T: Ord> Foo for Bar<T>`) do not pollute the
    /// subject-type capture.
    angle: i64,
}

impl<'o> Parser<'o> {
    fn new(opts: &'o ExtractOptions) -> Self {
        Parser {
            opts,
            out: FileGraph::default(),
            depth: 0,
            paren: 0,
            attr: 0,
            frames: Vec::new(),
            pending: None,
            angle: 0,
        }
    }

    fn run(mut self, lines: &[Line]) -> FileGraph {
        for (idx, line) in lines.iter().enumerate() {
            self.line(idx + 1, line);
        }
        self.out
    }

    /// Innermost enclosing function, if any.
    fn current_fn(&self) -> Option<usize> {
        self.frames.iter().rev().find_map(|f| match f.kind {
            FrameKind::Fn(i) => Some(i),
            _ => None,
        })
    }

    /// Innermost `impl`/`trait` subject type, if any.
    fn current_holder(&self) -> Option<String> {
        self.frames.iter().rev().find_map(|f| match &f.kind {
            FrameKind::Holder(q) => q.clone(),
            _ => None,
        })
    }

    fn in_macro(&self) -> bool {
        self.frames.iter().any(|f| f.kind == FrameKind::Macro)
    }

    #[allow(clippy::too_many_arguments)]
    fn push_fn(
        &mut self,
        name: Option<String>,
        qual: Option<String>,
        line: usize,
        in_test: bool,
        has_body: bool,
        has_self: bool,
    ) -> usize {
        let idx = self.out.fns.len();
        self.out.fns.push(FnDef {
            name: name.unwrap_or_default(),
            qual,
            file: String::new(),
            line,
            in_test,
            has_body,
            has_self,
        });
        self.out.calls.push(Vec::new());
        self.out.seeds.push(Vec::new());
        idx
    }

    fn push_call(&mut self, call: CallSite) {
        if let Some(f) = self.current_fn() {
            self.out.calls[f].push(call);
        }
    }

    fn push_seed(&mut self, kind: SeedKind, what: &str, line: usize) {
        if let Some(f) = self.current_fn() {
            self.out.seeds[f].push(Seed { kind, what: what.to_string(), line });
        }
    }

    fn line(&mut self, lineno: usize, line: &Line) {
        let chars: Vec<char> = line.code.chars().collect();
        let n = chars.len();
        let mut i = 0;
        // The previous significant character on this line. Calls and
        // index seeds look behind; a line break resets, which only
        // loses unidiomatic layouts like `xs\n[i]`. `'a'` stands in for
        // any operand-ending identifier, `','` for keyword tokens.
        let mut prev: Option<char> = None;
        // The previous identifier, and whether `::` directly followed
        // it — that pair is how `FitRegion::new(` resolves.
        let mut prev_ident: Option<String> = None;
        let mut after_colons = false;

        while i < n {
            let c = chars[i];
            if c == ' ' {
                i += 1;
                continue;
            }

            // Inside an attribute: only track its bracket balance.
            if self.attr > 0 {
                match c {
                    '[' => self.attr += 1,
                    ']' => self.attr -= 1,
                    _ => {}
                }
                i += 1;
                continue;
            }
            // `#[…]` / `#![…]`: enter attribute mode.
            if c == '#' {
                let mut j = i + 1;
                while chars.get(j) == Some(&' ') || chars.get(j) == Some(&'!') {
                    j += 1;
                }
                if chars.get(j) == Some(&'[') {
                    self.attr = 1;
                    i = j + 1;
                    prev = None;
                    continue;
                }
                // `r#ident` raw identifiers: the `#` is transparent.
                i += 1;
                continue;
            }

            // Identifier or keyword.
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // `'a` is a lifetime, not an expression token.
                if start > 0 && chars[start - 1] == '\'' {
                    prev = Some(',');
                    prev_ident = None;
                    after_colons = false;
                    continue;
                }
                let word: String = chars[start..i].iter().collect();
                let qual_in = if after_colons { prev_ident.take() } else { None };
                after_colons = false;
                let operand = self.word(&word, start, qual_in, &chars, &mut i, lineno, line, &mut prev_ident);
                prev = Some(if operand { 'a' } else { ',' });
                continue;
            }

            // Numeric literal: consume so `1e5` is not an identifier
            // and `1.max(…)` still yields a method call on the dot.
            if c.is_ascii_digit() {
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                prev = Some('0');
                prev_ident = None;
                after_colons = false;
                continue;
            }

            match c {
                '{' if self.paren == 0 => {
                    self.depth += 1;
                    let kind = match self.pending.take() {
                        Some(Pending::Fn { name, qual, line, in_test, has_self }) => {
                            Some(FrameKind::Fn(self.push_fn(name, qual, line, in_test, true, has_self)))
                        }
                        Some(Pending::Holder { last_ident, .. }) => {
                            Some(FrameKind::Holder(last_ident))
                        }
                        Some(Pending::Macro) => Some(FrameKind::Macro),
                        None => None,
                    };
                    if let Some(kind) = kind {
                        self.frames.push(Frame { kind, open_depth: self.depth });
                    }
                }
                '{' => self.depth += 1,
                '}' => {
                    if self.frames.last().is_some_and(|f| f.open_depth == self.depth) {
                        self.frames.pop();
                    }
                    self.depth -= 1;
                }
                ';' if self.paren == 0 => {
                    // A `;` before the body brace ends a bodyless item:
                    // trait method declaration, `extern` fn, etc.
                    if matches!(self.pending, Some(Pending::Fn { .. })) {
                        if let Some(Pending::Fn { name, qual, line, in_test, has_self }) =
                            self.pending.take()
                        {
                            self.push_fn(name, qual, line, in_test, false, has_self);
                        }
                    }
                }
                '(' => {
                    // `)(…)` / `](…)`: calling the result of an
                    // expression — a closure or function pointer. The
                    // callee is unknowable lexically; the analysis
                    // treats it as "may do anything".
                    if !self.in_macro() && !line.in_test && matches!(prev, Some(')' | ']')) {
                        let what = "indirect call through a closure or fn pointer";
                        self.push_seed(SeedKind::Panic, what, lineno);
                        self.push_seed(SeedKind::Alloc, what, lineno);
                    }
                    self.paren += 1;
                }
                ')' => self.paren -= 1,
                '[' => {
                    // Indexing: `xs[`, `call()[`, `xs[i][j]`. Types,
                    // literals and attributes (`&[Fix]`, `= [1, 2]`,
                    // `vec![`) are preceded by non-operand characters.
                    if !self.in_macro()
                        && !line.in_test
                        && matches!(prev, Some(p) if p.is_ascii_alphanumeric() || matches!(p, '_' | ')' | ']' | '?'))
                    {
                        self.push_seed(
                            SeedKind::Panic,
                            "slice/array indexing `[…]` can panic out of bounds",
                            lineno,
                        );
                    }
                    self.paren += 1;
                }
                ']' => self.paren -= 1,
                '<' if matches!(self.pending, Some(Pending::Holder { .. })) => self.angle += 1,
                '>' if matches!(self.pending, Some(Pending::Holder { .. })) => self.angle -= 1,
                // Comments are stripped from the code view, so `/`
                // here is division (or `/=`). Integer division and
                // remainder panic on zero; float forms cannot. The
                // right operand decides, via configured patterns.
                '/' | '%' if !self.in_macro() && !line.in_test => {
                    let op = if chars.get(i + 1) == Some(&'=') { i + 1 } else { i };
                    self.div_seed(&chars, op, lineno);
                }
                _ => {}
            }

            prev = Some(c);
            if c == ':' && chars.get(i + 1) == Some(&':') {
                after_colons = true;
                i += 1;
            } else {
                after_colons = false;
                prev_ident = None;
            }
            i += 1;
        }
    }

    /// Handles one identifier/keyword token. `i` sits just past the
    /// word; lookahead may advance it further (turbofish). Returns
    /// whether the token can end an operand (for `[` lookbehind).
    #[allow(clippy::too_many_arguments)]
    fn word(
        &mut self,
        word: &str,
        start: usize,
        qual_in: Option<String>,
        chars: &[char],
        i: &mut usize,
        lineno: usize,
        line: &Line,
        prev_ident: &mut Option<String>,
    ) -> bool {
        // Inside macro_rules! bodies nothing is real code.
        if self.in_macro() {
            return false;
        }

        match word {
            "fn" => {
                // `fn(` is a function-pointer type, not an item.
                if next_nonspace(chars, *i) != Some('(') && self.pending.is_none() {
                    // A fn nested inside another fn's body is a plain
                    // local item, not a method of the enclosing impl.
                    let qual = if self.current_fn().is_some() {
                        None
                    } else {
                        self.current_holder()
                    };
                    self.pending = Some(Pending::Fn {
                        name: None,
                        qual,
                        line: lineno,
                        in_test: line.in_test,
                        has_self: false,
                    });
                }
                *prev_ident = None;
                return false;
            }
            "impl" | "trait" => {
                // Only at item position: `impl Trait` inside a pending
                // fn signature is a type, not a block header.
                if self.pending.is_none() {
                    self.pending = Some(Pending::Holder { last_ident: None, done: false });
                    self.angle = 0;
                }
                *prev_ident = None;
                return false;
            }
            "macro_rules" => {
                self.pending = Some(Pending::Macro);
                *prev_ident = None;
                return false;
            }
            "where" => {
                // Stop capturing the impl subject at the where clause.
                if let Some(Pending::Holder { done, .. }) = &mut self.pending {
                    *done = true;
                }
                *prev_ident = None;
                return false;
            }
            "self" | "Self" => {
                // A lowercase `self` inside a pending fn's parameter
                // list marks the fn as a method (`&self`, `mut self`,
                // `self: Box<Self>`) — but `self::path` in a parameter
                // type is a module path, not a receiver.
                if word == "self" && self.paren > 0 && !is_module_path(chars, *i) {
                    if let Some(Pending::Fn { name: Some(_), has_self, .. }) = &mut self.pending {
                        *has_self = true;
                    }
                }
                *prev_ident = Some(word.to_string());
                return true;
            }
            // Keywords never form call sites and never end an operand.
            "if" | "else" | "while" | "for" | "loop" | "match" | "return" | "break"
            | "continue" | "in" | "as" | "let" | "mut" | "ref" | "move" | "dyn" | "pub"
            | "use" | "mod" | "struct" | "enum" | "type" | "const" | "static" | "crate"
            | "super" | "unsafe" | "async" | "await" | "extern" | "box" | "true" | "false" => {
                *prev_ident = None;
                return false;
            }
            _ => {}
        }

        // The identifier right after `fn` is the definition's name.
        if let Some(Pending::Fn { name, .. }) = &mut self.pending {
            if name.is_none() {
                *name = Some(word.to_string());
                *prev_ident = None;
                return false;
            }
        }
        // While an impl/trait header is pending, remember the last
        // top-level identifier as the subject type (`impl Tr for Ty`
        // → `Ty`; generic parameters are skipped via the angle count).
        if let Some(Pending::Holder { last_ident, done }) = &mut self.pending {
            if !*done && self.angle == 0 {
                *last_ident = Some(word.to_string());
            }
            *prev_ident = None;
            return false;
        }

        // Lookahead: `!` (macro), turbofish, or `(` (call).
        let mut j = *i;
        while chars.get(j) == Some(&' ') {
            j += 1;
        }
        if chars.get(j) == Some(&'!') && chars.get(j + 1) != Some(&'=') {
            let mut k = j + 1;
            while chars.get(k) == Some(&' ') {
                k += 1;
            }
            if matches!(chars.get(k), Some('(' | '[' | '{')) && !line.in_test {
                self.push_call(CallSite {
                    name: format!("{word}!"),
                    qual: None,
                    method: false,
                    line: lineno,
                });
            }
            *prev_ident = None;
            return false;
        }
        // Turbofish: `name::<…>(…)`.
        if chars.get(j) == Some(&':')
            && chars.get(j + 1) == Some(&':')
            && chars.get(j + 2) == Some(&'<')
        {
            let mut depth = 1i64;
            let mut k = j + 3;
            while k < chars.len() && depth > 0 {
                match chars[k] {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
            while chars.get(k) == Some(&' ') {
                k += 1;
            }
            if chars.get(k) == Some(&'(') {
                j = k;
            } else {
                *prev_ident = Some(word.to_string());
                return true;
            }
        }
        if chars.get(j) == Some(&'(') && !line.in_test {
            // Uppercase-initial names without a dot are tuple-struct /
            // enum-variant constructors (`Some(…)`, `Timestamp(…)`):
            // plain construction, never a fn item.
            let method = preceded_by_dot(chars, start);
            let ctor = word.chars().next().is_some_and(char::is_uppercase) && !method;
            if !ctor {
                let qual = match qual_in.as_deref() {
                    Some("Self") => self.current_holder(),
                    _ => qual_in,
                };
                self.push_call(CallSite { name: word.to_string(), qual, method, line: lineno });
            }
        }
        *prev_ident = Some(word.to_string());
        true
    }

    /// Division/remainder seed: flags `a / b` and `a % b` when the
    /// right operand matches a configured integer pattern.
    fn div_seed(&mut self, chars: &[char], op: usize, lineno: usize) {
        let rhs = crate::lints::operand_right(chars, op + 1);
        if rhs.is_empty() {
            return;
        }
        if self.opts.int_div_patterns.iter().any(|p| rhs.contains(p.as_str())) {
            self.push_seed(
                SeedKind::Panic,
                &format!("division/remainder by `{rhs}` can panic on zero"),
                lineno,
            );
        }
    }
}

/// Whether the character just before position `start` (skipping spaces)
/// is a `.` — i.e. the word at `start` is a method name.
fn preceded_by_dot(chars: &[char], start: usize) -> bool {
    let mut k = start;
    while k > 0 && chars[k - 1] == ' ' {
        k -= 1;
    }
    k > 0 && chars[k - 1] == '.'
}

fn next_nonspace(chars: &[char], from: usize) -> Option<char> {
    chars[from..].iter().copied().find(|c| *c != ' ')
}

/// Whether the token ending at `from` is followed by `::` (a module
/// path like `self::imp`, as opposed to `self: Box<Self>` ascription).
fn is_module_path(chars: &[char], from: usize) -> bool {
    let mut j = from;
    while chars.get(j) == Some(&' ') {
        j += 1;
    }
    chars.get(j) == Some(&':') && chars.get(j + 1) == Some(&':')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> FileGraph {
        extract(src, &ExtractOptions::default())
    }

    fn calls_of<'g>(g: &'g FileGraph, name: &str) -> &'g [CallSite] {
        let i = g.fns.iter().position(|f| f.name == name).unwrap_or_else(|| panic!("no fn {name}"));
        &g.calls[i]
    }

    fn seeds_of<'g>(g: &'g FileGraph, name: &str) -> &'g [Seed] {
        let i = g.fns.iter().position(|f| f.name == name).unwrap_or_else(|| panic!("no fn {name}"));
        &g.seeds[i]
    }

    #[test]
    fn finds_free_and_method_fns() {
        let g = graph("fn alpha() { beta(); }\nimpl Gamma { fn delta(&self) { self.epsilon(); } }");
        assert_eq!(g.fns.len(), 2);
        assert_eq!(g.fns[0].name, "alpha");
        assert_eq!(g.fns[0].qual, None);
        assert_eq!(g.fns[1].name, "delta");
        assert_eq!(g.fns[1].qual.as_deref(), Some("Gamma"));
        assert_eq!(calls_of(&g, "alpha")[0].name, "beta");
        let eps = &calls_of(&g, "delta")[0];
        assert_eq!(eps.name, "epsilon");
        assert!(eps.method);
    }

    #[test]
    fn impl_trait_for_type_takes_the_type() {
        let g = graph("impl<T: Ord> Region for ConeRegion<T> {\n    fn reset(&mut self) {}\n}");
        assert_eq!(g.fns[0].qual.as_deref(), Some("ConeRegion"));
    }

    #[test]
    fn trait_declarations_are_bodyless() {
        let g = graph(
            "trait S {\n    fn family(&self) -> &'static str;\n    fn go(&self) { self.family(); }\n}",
        );
        assert_eq!(g.fns.len(), 2);
        assert!(!g.fns[0].has_body);
        assert!(g.fns[1].has_body);
        assert_eq!(g.fns[1].qual.as_deref(), Some("S"));
    }

    #[test]
    fn array_type_semicolon_does_not_end_the_signature() {
        let g = graph("fn f(a: [f64; 2]) -> f64 { inner(a) }");
        assert_eq!(g.fns.len(), 1);
        assert!(g.fns[0].has_body);
        assert_eq!(calls_of(&g, "f")[0].name, "inner");
    }

    #[test]
    fn qualified_and_turbofish_calls() {
        let g = graph("fn f() { let v = FitRegion::new(); g::<u32>(v); }");
        let calls = calls_of(&g, "f");
        assert_eq!(calls[0].name, "new");
        assert_eq!(calls[0].qual.as_deref(), Some("FitRegion"));
        assert_eq!(calls[1].name, "g");
    }

    #[test]
    fn self_qualifier_resolves_to_impl_type() {
        let g = graph("impl Foo { fn a() { Self::b(); } }");
        assert_eq!(calls_of(&g, "a")[0].qual.as_deref(), Some("Foo"));
    }

    #[test]
    fn constructors_are_not_calls() {
        let g = graph("fn f() { let a = Some(1); let b = Timestamp(2.0); let c = Ok(()); lower(a); drop((b, c)); }");
        let names: Vec<&str> = calls_of(&g, "f").iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["lower", "drop"]);
    }

    #[test]
    fn macro_invocations_are_recorded() {
        let g = graph("fn f() { format!(\"x {}\", 1); my_macro![a]; }");
        let names: Vec<&str> = calls_of(&g, "f").iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["format!", "my_macro!"]);
    }

    #[test]
    fn negation_is_not_a_macro() {
        let g = graph("fn f(a: u32, b: u32) -> bool { a != b }");
        assert!(calls_of(&g, "f").is_empty());
    }

    #[test]
    fn indexing_seeds() {
        let g = graph("fn f(xs: &[f64], i: usize) -> f64 { xs[i] + xs[i + 1] }");
        let s = seeds_of(&g, "f");
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|s| s.kind == SeedKind::Panic));
    }

    #[test]
    fn types_attributes_and_literals_are_not_indexing() {
        let g = graph(
            "#[derive(Debug)]\nfn f(a: &[f64; 2], b: Vec<[u8; 4]>) {\n    #[allow(dead_code)]\n    let v = vec![0; 4];\n    let w = [1, 2];\n    drop((v, w, a, b));\n}",
        );
        assert!(seeds_of(&g, "f").iter().all(|s| !s.what.contains("indexing")), "{:?}", seeds_of(&g, "f"));
        // And attribute arguments are not calls.
        let names: Vec<&str> = calls_of(&g, "f").iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["vec!", "drop"]);
    }

    #[test]
    fn keyword_then_bracket_is_not_indexing() {
        let g = graph("fn f() -> [u32; 2] { return [1, 2]; }");
        assert!(seeds_of(&g, "f").is_empty());
    }

    #[test]
    fn int_division_uses_patterns() {
        let g = graph("fn f(xs: &[f64]) -> f64 { let k = 10 / xs.len(); (k as f64) / 2.0 }");
        let s = seeds_of(&g, "f");
        assert_eq!(s.len(), 1, "{s:?}");
        assert!(s[0].what.contains("xs.len()"));
    }

    #[test]
    fn indirect_calls_are_conservative_seeds() {
        let g = graph("fn f(g: impl Fn() -> u32) -> u32 { (g)() }");
        let s = seeds_of(&g, "f");
        assert_eq!(s.len(), 2);
        assert!(s.iter().any(|s| s.kind == SeedKind::Panic));
        assert!(s.iter().any(|s| s.kind == SeedKind::Alloc));
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let g = graph(
            "macro_rules! mk {\n    ($n:ident) => {\n        fn $n() { oops.unwrap(); danger(); }\n    };\n}\nfn real() { fine(); }",
        );
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "real");
        assert_eq!(calls_of(&g, "real")[0].name, "fine");
    }

    #[test]
    fn cfg_test_fns_are_marked_and_silent() {
        let g = graph("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) { x.unwrap(); }\n}");
        assert!(!g.fns[0].in_test);
        assert!(g.fns[1].in_test);
        assert!(calls_of(&g, "t").is_empty());
        assert!(seeds_of(&g, "t").is_empty());
    }

    #[test]
    fn nested_fns_attribute_to_the_inner_fn() {
        let g = graph("fn outer() {\n    fn inner() { deep(); }\n    shallow();\n}");
        assert_eq!(
            calls_of(&g, "outer").iter().map(|c| &c.name).collect::<Vec<_>>(),
            ["shallow"]
        );
        assert_eq!(calls_of(&g, "inner")[0].name, "deep");
    }

    #[test]
    fn closure_bodies_attribute_to_the_enclosing_fn() {
        let g = graph("fn f(xs: &[u32]) -> Vec<u32> { xs.iter().map(|x| helper(*x)).collect() }");
        let names: Vec<&str> = calls_of(&g, "f").iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"collect"));
    }

    #[test]
    fn strings_and_comments_never_produce_calls() {
        let g = graph(
            "fn f() {\n    // bad() in comment\n    let s = \"call() inside[0] string\";\n    drop(s);\n}",
        );
        let names: Vec<&str> = calls_of(&g, "f").iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["drop"]);
        assert!(seeds_of(&g, "f").is_empty());
    }

    #[test]
    fn fn_pointer_types_are_not_definitions() {
        let g = graph("fn real(cb: fn(u32) -> u32) -> u32 { cb(1) }");
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "real");
        assert_eq!(calls_of(&g, "real")[0].name, "cb");
    }

    #[test]
    fn lifetime_before_paren_is_not_a_call() {
        let g = graph("fn f<'a>(x: &'a (u32, u32)) -> u32 { x.0 }");
        assert!(calls_of(&g, "f").is_empty());
    }

    #[test]
    fn self_receiver_is_detected() {
        let g = graph(
            "impl A {\n    fn by_ref(&self) {}\n    fn by_mut(&mut self) {}\n    fn by_val(mut self) {}\n    fn boxed(self: Box<Self>) {}\n    fn assoc(n: u32) -> u32 { n }\n}\nfn free(x: self::imp::T) {}\nfn multiline(\n    &self,\n) {}",
        );
        let by_name = |n: &str| g.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("by_ref").has_self);
        assert!(by_name("by_mut").has_self);
        assert!(by_name("by_val").has_self);
        assert!(by_name("boxed").has_self, "`self: Box<Self>` ascription is a receiver");
        assert!(!by_name("assoc").has_self);
        assert!(!by_name("free").has_self, "`self::` module path is not a receiver");
        assert!(by_name("multiline").has_self, "receiver on its own line");
    }

    #[test]
    fn bodyless_trait_decl_keeps_receiver_flag() {
        let g = graph("trait T {\n    fn m(&self) -> u32;\n    fn assoc() -> u32;\n}");
        assert!(g.fns.iter().find(|f| f.name == "m").unwrap().has_self);
        assert!(!g.fns.iter().find(|f| f.name == "assoc").unwrap().has_self);
    }
}
