//! Workspace-native static analysis: the engine behind `cargo xtask
//! lint`.
//!
//! Four textual lints guard the invariants the SED/α(p, a) error
//! calculus and the durability layer rely on — NaN-safe float
//! comparison, panic-free library paths, justified `unsafe`/atomic
//! orderings, and checked timestamp conversions. Findings reconcile
//! against a ratcheting allowlist in `tools/xtask/lint.toml`; see
//! `tools/xtask/README.md` for the catalog.

pub mod allowlist;
pub mod callgraph;
pub mod lints;
pub mod reach;
pub mod scan;
pub mod walk;

use std::fs;
use std::path::Path;

use allowlist::{parse, reconcile, regenerate, LintFile, Report};
use lints::{check_file, Violation};

/// Where the gate's configuration lives, relative to the repo root.
pub const LINT_TOML: &str = "tools/xtask/lint.toml";

/// Outcome of a full lint run.
pub struct Outcome {
    /// Every finding, allowlisted or not.
    pub violations: Vec<Violation>,
    /// Reconciliation against the allowlist.
    pub report: Report,
    /// Number of files scanned.
    pub files: usize,
}

/// Loads `lint.toml` from `root`.
pub fn load_config(root: &Path) -> Result<LintFile, String> {
    let path = root.join(LINT_TOML);
    let text = fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&text)
}

/// Lints every Rust file in the workspace and reconciles against the
/// allowlist.
pub fn run(root: &Path, file: &LintFile) -> Result<Outcome, String> {
    let paths = walk::rust_files(root, &file.config.exclude)?;
    let mut violations = Vec::new();
    for rel in &paths {
        let abs = root.join(rel);
        let source = fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        violations.extend(check_file(rel, &source, &file.config));
    }
    violations.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    let report = reconcile(file, &violations);
    Ok(Outcome { violations, report, files: paths.len() })
}

/// `--fix-allowlist`: rewrites `lint.toml` from current findings,
/// ratcheting budgets down. Entries (and config path references) for
/// files that no longer exist are pruned first, so deleted code cannot
/// leave debt behind. Fails if any budget would need to grow.
pub fn fix_allowlist(root: &Path, file: &LintFile, violations: &[Violation]) -> Result<(), String> {
    let mut file = file.clone();
    let pruned = allowlist::prune_missing(&mut file, &|rel| root.join(rel).exists());
    for p in &pruned {
        println!("pruned: {p}");
    }
    // Re-run the reachability analysis so [[contract_allow]] counts
    // ratchet alongside the lint allowlist.
    let contract_actual = if file.contracts.roots.is_empty() {
        std::collections::BTreeMap::new()
    } else {
        let analysis = reach::analyze(root, &file)?;
        reach::group_findings(&analysis.findings)
    };
    let text = regenerate(&file, violations, &contract_actual)?;
    let path = root.join(LINT_TOML);
    fs::write(&path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}
