//! Comment- and string-aware source scanning.
//!
//! The lints in [`crate::lints`] are textual, but naive text matching
//! would flag `unwrap()` inside a string literal or a doc comment. This
//! module lexes a Rust source file line by line into a [`Line`] triple:
//! the raw text, the *code* content (comments removed, string/char
//! literal bodies blanked) and the *comment* content (everything the
//! code view dropped). Lints match against the code view and consult the
//! comment view for `// SAFETY:` / ordering justifications and the
//! `// lint: allow(...)` escape hatch.
//!
//! The lexer handles line comments, nested block comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//! depth, also `br`/`cr` forms), char literals and lifetimes (`'a` is
//! not a char literal). Strings and block comments may span lines.
//!
//! On top of the lexed lines, the internal `mark_test_regions` pass
//! flags every line
//! that belongs to an item annotated `#[cfg(test)]` — the panic and
//! float-equality lints exempt those regions.

/// One lexed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line exactly as it appears in the file.
    pub raw: String,
    /// Code content: comments stripped, literal bodies blanked with
    /// spaces (so column positions survive).
    pub code: String,
    /// Comment content of the line (line + block comments, doc
    /// comments), concatenated.
    pub comment: String,
    /// Whether the line lies inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// Lexer state carried across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Ordinary code.
    Code,
    /// Inside a block comment, with the current nesting depth.
    BlockComment(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string with the given number of `#`s.
    RawStr(u32),
}

/// Lexes a whole file into [`Line`]s and marks `#[cfg(test)]` regions.
pub fn lex(source: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = Vec::new();
    let mut state = State::Code;
    for raw in source.lines() {
        let (line, next) = lex_line(raw, state);
        state = next;
        lines.push(line);
    }
    mark_test_regions(&mut lines);
    lines
}

/// Lexes one line starting in `state`; returns the line and the state
/// the next line starts in.
fn lex_line(raw: &str, mut state: State) -> (Line, State) {
    let chars: Vec<char> = raw.chars().collect();
    let n = chars.len();
    let mut code = String::with_capacity(n);
    let mut comment = String::new();
    let mut i = 0;
    while i < n {
        let c = chars[i];
        match state {
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    comment.push_str("*/");
                    i += 2;
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    comment.push_str("/*");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    if i + 1 < n {
                        code.push(' ');
                    }
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    i += 1;
                    state = State::Code;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i + 1, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment (incl. doc comments) to end of line.
                    comment.push_str(&chars[i..].iter().collect::<String>());
                    i = n;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    comment.push_str("/*");
                    i += 2;
                    state = State::BlockComment(1);
                } else if c == '"' {
                    code.push('"');
                    i += 1;
                    state = State::Str;
                } else if let Some(hashes) = raw_string_start(&chars, i) {
                    // r"…" / r#"…"# / br#"…"# / cr"…": emit the prefix
                    // as spaces, enter the raw-string state.
                    let prefix = prefix_len(&chars, i) + 1 + hashes as usize;
                    code.push('r');
                    for _ in 1..prefix {
                        code.push(' ');
                    }
                    i += prefix;
                    state = State::RawStr(hashes);
                } else if c == '\'' {
                    // Char literal or lifetime. `'a` followed by a
                    // non-quote is a lifetime; `'x'`, `'\n'` are chars.
                    if let Some(len) = char_literal_len(&chars, i) {
                        code.push('\'');
                        for _ in 1..len {
                            code.push(' ');
                        }
                        i += len;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    // A `"` string literal does not span lines unless escaped; an
    // unterminated plain string at EOL only happens with `\` continuation,
    // which we conservatively keep as Str state.
    (Line { raw: raw.to_string(), code, comment, in_test: false }, state)
}

/// Number of chars in the `r`/`br`/`cr` prefix at `i`, 0 if none.
fn prefix_len(chars: &[char], i: usize) -> usize {
    match chars.get(i) {
        Some('r') => 1,
        Some('b' | 'c') if chars.get(i + 1) == Some(&'r') => 2,
        _ => 0,
    }
}

/// If a raw string starts at `i`, the number of `#`s it uses.
fn raw_string_start(chars: &[char], i: usize) -> Option<u32> {
    let p = prefix_len(chars, i);
    if p == 0 {
        return None;
    }
    // An identifier character before `r` means this is the tail of an
    // identifier (e.g. `foo_r"`, impossible) — guard anyway.
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return None;
    }
    let mut j = i + p;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Whether `hashes` `#`s follow position `i` (closing a raw string).
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Length of the char literal starting at `i`, or `None` for a lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    debug_assert_eq!(chars.get(i), Some(&'\''));
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: the character after the backslash is part
            // of the escape even when it is a quote (`'\''`), so the
            // closing-quote scan starts past it. Longer escapes
            // (`'\x41'`, `'\u{…}'`) scan on to their closing quote.
            let mut j = i + 3;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            (j < chars.len()).then_some(j - i + 1)
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(3),
        // `'a` with no closing quote: a lifetime (or `'static`).
        _ => None,
    }
}

/// Marks every line belonging to a `#[cfg(test)]` item.
///
/// After the attribute, the item extends to the matching `}` of its
/// first `{` (module, fn) or to the first `;` seen before any brace
/// (e.g. `#[cfg(test)] use …;`). Nested attributes between the cfg and
/// the item body are handled by simply scanning forward for the first
/// brace/semicolon.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("cfg(test") {
            i += 1;
            continue;
        }
        // Scan forward from the attribute for the item extent.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        'scan: while j < lines.len() {
            lines[j].in_test = true;
            // Work through this line's code chars.
            let code: Vec<char> = lines[j].code.chars().collect();
            let start = if j == i {
                // Skip past the `cfg(test…)` attribute itself so its
                // parentheses do not confuse the brace scan.
                lines[j].code.find("cfg(test").map_or(0, |p| p + 8)
            } else {
                0
            };
            for &c in code.iter().skip(start) {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            break 'scan;
                        }
                    }
                    ';' if !opened => break 'scan,
                    _ => {}
                }
            }
            j += 1;
        }
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_and_doc_comments() {
        let c = code_of("let x = 1; // unwrap()\n/// docs with unwrap()\nlet y = 2;");
        assert_eq!(c[0].trim_end(), "let x = 1;");
        assert_eq!(c[1].trim_end(), "");
        assert_eq!(c[2], "let y = 2;");
    }

    #[test]
    fn blanks_string_bodies_but_keeps_quotes() {
        let c = code_of(r#"let s = "a == 0.0 unwrap()"; let t = 1;"#);
        assert!(!c[0].contains("unwrap"));
        assert!(!c[0].contains("=="));
        assert!(c[0].contains("let t = 1;"));
    }

    #[test]
    fn handles_nested_block_comments_across_lines() {
        let c = code_of("a /* one /* two */ still */ b\nc");
        assert!(c[0].starts_with("a "));
        assert!(c[0].ends_with(" b"));
        assert_eq!(c[1], "c");
    }

    #[test]
    fn raw_strings_and_hashes() {
        let c = code_of(r###"let s = r#"x == 0.0 "inner" unwrap()"#; done()"###);
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("done()"));
    }

    #[test]
    fn multiline_raw_string() {
        let c = code_of("let s = r#\"line one == 0.0\nline two unwrap()\"#;\nnext");
        assert!(!c[0].contains("=="));
        assert!(!c[1].contains("unwrap"));
        assert_eq!(c[2], "next");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = code_of("fn f<'a>(x: &'a str, c: char) { let y = 'y'; }");
        assert!(c[0].contains("fn f<'a>(x: &'a str"));
        assert!(!c[0].contains("'y'"), "char body blanked: {}", c[0]);
    }

    #[test]
    fn escaped_char_literal() {
        let c = code_of(r"let nl = '\n'; let q = '\''; after()");
        assert!(c[0].contains("after()"));
    }

    #[test]
    fn escaped_quote_char_literal_leaves_no_stray_quote() {
        // `'\''` is four chars; a scan that stops at the escaped quote
        // leaves a dangling `'` in the code view.
        let c = code_of(r"let q = '\''; let s = 'x'; tail()");
        // Blanking keeps the opening quote only: one per literal. The
        // buggy length-3 scan left the escaped literal's closing quote
        // behind as a third quote.
        let quotes = c[0].matches('\'').count();
        assert_eq!(quotes, 2, "one opening quote per literal: {}", c[0]);
        assert!(c[0].contains("tail()"));
    }

    #[test]
    fn long_escapes_scan_to_their_closing_quote() {
        let c = code_of(r"let a = '\x41'; let u = '\u{1F600}'; end()");
        assert!(c[0].contains("end()"), "{}", c[0]);
        assert!(!c[0].contains("x41"), "escape body blanked: {}", c[0]);
        assert!(!c[0].contains("1F600"), "escape body blanked: {}", c[0]);
    }

    #[test]
    fn multihash_raw_string_spans_lines() {
        // `r##"…"##` containing a `"#` that must NOT close it.
        let src = "let s = r##\"has \"# inside == 0.0\nstill raw unwrap()\"##; done()\nnext";
        let c = code_of(src);
        assert!(!c[0].contains("=="), "{}", c[0]);
        assert!(!c[1].contains("unwrap"), "{}", c[1]);
        assert!(c[1].contains("done()"), "{}", c[1]);
        assert_eq!(c[2], "next");
    }

    #[test]
    fn deeply_nested_block_comments() {
        let src = "a /* 1 /* 2 /* 3 unwrap() */ 2 */ 1 */ b\n/* open /* deep\nstill */ closing */ c";
        let c = code_of(src);
        assert!(c[0].starts_with("a "), "{}", c[0]);
        assert!(c[0].ends_with(" b"), "{}", c[0]);
        assert!(!c[0].contains("unwrap"));
        assert_eq!(c[1].trim(), "");
        assert_eq!(c[2].trim(), "c");
    }

    #[test]
    fn labeled_loops_are_lifetimes_not_chars() {
        let src = "'outer: for x in xs { break 'outer; }\nlet c = 'o';";
        let c = code_of(src);
        assert!(c[0].contains("'outer: for"), "label survives: {}", c[0]);
        assert!(c[0].contains("break 'outer;"), "{}", c[0]);
        assert!(!c[1].contains("'o'"), "char body blanked: {}", c[1]);
    }

    #[test]
    fn comment_text_is_captured() {
        let l = lex("unsafe { x } // SAFETY: justified");
        assert!(l[0].comment.contains("SAFETY: justified"));
        assert!(l[0].code.contains("unsafe {"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn real() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn after() {}";
        let l = lex(src);
        assert!(!l[0].in_test);
        assert!(l[1].in_test && l[2].in_test && l[3].in_test && l[4].in_test);
        assert!(!l[5].in_test);
    }

    #[test]
    fn cfg_test_single_item_and_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}";
        let l = lex(src);
        assert!(l[0].in_test && l[1].in_test);
        assert!(!l[2].in_test);
    }

    #[test]
    fn cfg_test_fn_with_more_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() {\n    body();\n}\nfn real() {}";
        let l = lex(src);
        assert!(l[0].in_test && l[2].in_test && l[3].in_test && l[4].in_test);
        assert!(!l[5].in_test);
    }
}
