//! The `trajc` command-line tool: compress, evaluate and generate
//! trajectory files without writing a line of Rust.
//!
//! ```text
//! trajc info <file.csv>
//! trajc compress <file.csv> --algo td-tr --eps 30 [--speed-eps 5] [-o out.csv]
//!       [--stats] [--metrics-out m.json] [--metrics-format json|csv]
//! trajc evaluate <original.csv> <approx.csv>
//! trajc generate [--seed 42] [--trip 0..9] -o <file.csv>
//! trajc store recover <dir> [--snapshot]
//! ```
//!
//! Files are the `t,x,y` format of [`traj_model::io`]. The command logic
//! lives here (unit-testable); `src/bin/trajc.rs` is the thin entry
//! point.

use std::fmt::Write as _;
use std::path::PathBuf;

use traj_compress::{
    evaluate_with, BottomUp, CompressionResultBuf, Compressor, DeadReckoning, DistanceThreshold,
    DouglasPeucker, EvalWorkspace, OpeningWindow, SlidingWindow, TdSp, TdTr, UniformSample,
    Workspace,
};
use traj_model::stats::TrajectoryStats;
use traj_model::{io, Trajectory};
use traj_serve::{
    loadgen, CodecSpec, LoadGenConfig, ReportConfig, ServeConfig, ServeReport, Service, SyncMode,
};
use traj_store::{DurableOptions, DurableStore, GroupCommitOptions, IngestMode};

/// Output format for the metrics sidecar written by
/// `compress --metrics-out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// One JSON object per line ([`traj_obs::sink::to_json_lines`]).
    Json,
    /// RFC-4180 CSV ([`traj_obs::sink::to_csv`]).
    Csv,
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `info <file>` — print statistics of a trajectory file.
    Info {
        /// Input `t,x,y` file.
        file: PathBuf,
    },
    /// `compress <file> --algo A --eps E [--speed-eps V] [-o OUT]`.
    Compress {
        /// Input `t,x,y` file.
        file: PathBuf,
        /// Algorithm name (see [`make_compressor`]).
        algo: String,
        /// Distance threshold, metres.
        eps: f64,
        /// Speed-difference threshold, m/s (SP algorithms only).
        speed_eps: Option<f64>,
        /// Output path for the compressed trajectory.
        out: Option<PathBuf>,
        /// Print the metrics table after the report (`--stats`).
        stats: bool,
        /// Write a metrics sidecar file (`--metrics-out`).
        metrics_out: Option<PathBuf>,
        /// Sidecar format (`--metrics-format`), default JSON lines.
        metrics_format: MetricsFormat,
        /// Worker threads for batch compression (`--threads`);
        /// `0` = one per available core.
        threads: usize,
        /// Write a trace timeline of the run (`--trace-out`); `.folded`
        /// extension selects flamegraph folded stacks, anything else
        /// Chrome Trace Event JSON.
        trace_out: Option<PathBuf>,
    },
    /// `evaluate <original> <approx>` — error figures between two files.
    Evaluate {
        /// Original trajectory file.
        original: PathBuf,
        /// Approximation trajectory file.
        approx: PathBuf,
    },
    /// `generate [--seed S] [--trip K] -o OUT` — write a calibrated trip.
    Generate {
        /// Dataset seed.
        seed: u64,
        /// Trip index 0..=9.
        trip: usize,
        /// Output path.
        out: PathBuf,
    },
    /// `obs merge <sidecar>... [-o OUT]` — merge metrics sidecars
    /// (JSON lines or CSV, as written by `compress --metrics-out`) into
    /// one side-by-side comparison table, optionally written as CSV.
    ObsMerge {
        /// Sidecar files to merge (format auto-detected per file).
        files: Vec<PathBuf>,
        /// Output CSV path; the table always goes to the report.
        out: Option<PathBuf>,
    },
    /// `store recover <dir> [--snapshot]` — replay a durable store's
    /// write-ahead log over its latest snapshot and report what was
    /// found (torn tails, corrupt records, replayed fixes).
    StoreRecover {
        /// The durable store directory (holds `snapshot/` and `wal/`).
        dir: PathBuf,
        /// After recovery, write a fresh snapshot and truncate the log.
        snapshot: bool,
    },
    /// `serve <dir> --load-gen [...]` — run the sharded ingest service
    /// against an open-loop synthetic fleet (see [`ServeArgs`]).
    Serve(ServeArgs),
}

/// The `trajc serve` flag surface (wide enough to deserve its own
/// struct): service shape, durability mode, session codec, load
/// generator schedule and output sidecars.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Service root; shard stores live in `dir/shard-K/`.
    pub dir: PathBuf,
    /// Store shards = worker threads (`--shards`, default 2).
    pub shards: usize,
    /// Durability mode (`--sync`, default group-commit).
    pub sync: SyncMode,
    /// Per-mover session codec (`--algo` + `--eps` [+ `--speed-eps`],
    /// default op-cone at 30 m).
    pub codec: CodecSpec,
    /// The SED tolerance echoed into reports.
    pub eps: f64,
    /// Group commit batch bound (`--max-batch`, default 256).
    pub max_batch: usize,
    /// Group commit delay bound in µs (`--max-delay-us`, default 500).
    pub max_delay_us: u64,
    /// Per-shard queue capacity (`--queue-cap`, default 4096).
    pub queue_cap: usize,
    /// Drive the service from the synthetic fleet (`--load-gen`;
    /// required — this build has no network listener).
    pub load_gen: bool,
    /// Fleet size (`--movers`, default 1000).
    pub movers: u64,
    /// Fixes per mover (`--fixes`, default 10).
    pub fixes: u64,
    /// Offered rate, fixes/s over the fleet; 0 = unthrottled
    /// (`--rate`, default 0).
    pub rate: f64,
    /// Fleet seed (`--seed`, default 42).
    pub seed: u64,
    /// Load-gen submitter threads (`--threads`, default 1).
    pub threads: usize,
    /// Write the machine-readable run report (`--report-json`).
    pub report_json: Option<PathBuf>,
    /// Write a metrics sidecar (`--metrics-out`).
    pub metrics_out: Option<PathBuf>,
    /// Sidecar format (`--metrics-format`), default JSON lines.
    pub metrics_format: MetricsFormat,
    /// Write a trace timeline with one lane per shard worker
    /// (`--trace-out`).
    pub trace_out: Option<PathBuf>,
}

/// Parses command-line arguments (without the program name).
///
/// # Errors
/// Returns a usage/diagnostic string on malformed input.
pub fn parse(args: &[String]) -> Result<Command, String> {
    const USAGE: &str = "usage: trajc <info|compress|evaluate|generate|obs|store|serve> ...\n\
        \n  trajc info <file.csv>\
        \n  trajc compress <file.csv> --algo <name> --eps <m> [--speed-eps <m/s>] [-o out.csv]\
        \n                 [--stats] [--metrics-out FILE] [--metrics-format json|csv]\
        \n                 [--threads N]  (0 = one worker per available core)\
        \n                 [--trace-out FILE]  (.folded = flamegraph stacks, else Chrome trace JSON)\
        \n  trajc evaluate <original.csv> <approx.csv>\
        \n  trajc generate [--seed N] [--trip 0..9] -o <file.csv>\
        \n  trajc obs merge <sidecar>... [-o merged.csv]\
        \n  trajc store recover <dir> [--snapshot]\
        \n  trajc serve <dir> --load-gen [--shards N] [--sync group-commit|every-append]\
        \n              [--algo raw|op-cone|op-fit|opw-tr|opw-sp] [--eps <m>] [--speed-eps <m/s>]\
        \n              [--max-batch N] [--max-delay-us U] [--queue-cap N]\
        \n              [--movers N] [--fixes N] [--rate F/S] [--seed N] [--threads N]\
        \n              [--report-json FILE] [--metrics-out FILE] [--metrics-format json|csv]\
        \n              [--trace-out FILE]\
        \n\nalgorithms: uniform dist ndp ndp-hull td-tr td-sp nopw bopw opw-tr opw-sp \
        dead-reckoning bottom-up sliding-window op-fit op-cone\
        \n(see ALGORITHMS.md for criteria, error bounds and complexity)\
        \n\n--stats prints the instrumentation table (points in/out, SED evaluations,\
        \nrecursion depth, per-phase wall time); --metrics-out writes the same snapshot\
        \nto FILE as JSON lines (default) or CSV; obs merge reads those sidecars back\
        \ninto one side-by-side table.";
    let mut it = args.iter();
    let sub = it.next().ok_or(USAGE)?;
    match sub.as_str() {
        "info" => {
            let file = it.next().ok_or("info: missing <file>")?;
            Ok(Command::Info { file: PathBuf::from(file) })
        }
        "compress" => {
            let file = PathBuf::from(it.next().ok_or("compress: missing <file>")?);
            let mut algo = None;
            let mut eps = None;
            let mut speed_eps = None;
            let mut out = None;
            let mut stats = false;
            let mut metrics_out = None;
            let mut metrics_format = MetricsFormat::Json;
            let mut threads = 0usize;
            let mut trace_out = None;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    it.next().ok_or(format!("compress: {name} needs a value"))
                };
                match flag.as_str() {
                    "--algo" => algo = Some(value("--algo")?.clone()),
                    "--eps" => {
                        eps = Some(parse_f64(value("--eps")?, "--eps")?);
                    }
                    "--speed-eps" => {
                        speed_eps = Some(parse_f64(value("--speed-eps")?, "--speed-eps")?);
                    }
                    "-o" | "--out" => out = Some(PathBuf::from(value("-o")?)),
                    "--stats" => stats = true,
                    "--metrics-out" => {
                        metrics_out = Some(PathBuf::from(value("--metrics-out")?));
                    }
                    "--trace-out" => {
                        trace_out = Some(PathBuf::from(value("--trace-out")?));
                    }
                    "--threads" => {
                        let v = value("--threads")?;
                        threads = v
                            .parse()
                            .map_err(|e| format!("compress: bad --threads {v:?}: {e}"))?;
                    }
                    "--metrics-format" => {
                        metrics_format = match value("--metrics-format")?.as_str() {
                            "json" => MetricsFormat::Json,
                            "csv" => MetricsFormat::Csv,
                            other => {
                                return Err(format!(
                                    "compress: --metrics-format must be json or csv, got {other:?}"
                                ))
                            }
                        };
                    }
                    other => return Err(format!("compress: unknown flag {other:?}")),
                }
            }
            Ok(Command::Compress {
                file,
                algo: algo.ok_or("compress: --algo is required")?,
                eps: eps.ok_or("compress: --eps is required")?,
                speed_eps,
                out,
                stats,
                metrics_out,
                metrics_format,
                threads,
                trace_out,
            })
        }
        "evaluate" => {
            let original = PathBuf::from(it.next().ok_or("evaluate: missing <original>")?);
            let approx = PathBuf::from(it.next().ok_or("evaluate: missing <approx>")?);
            Ok(Command::Evaluate { original, approx })
        }
        "generate" => {
            let mut seed = 42u64;
            let mut trip = 0usize;
            let mut out = None;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    it.next().ok_or(format!("generate: {name} needs a value"))
                };
                match flag.as_str() {
                    "--seed" => {
                        seed = value("--seed")?
                            .parse()
                            .map_err(|e| format!("generate: bad --seed: {e}"))?;
                    }
                    "--trip" => {
                        trip = value("--trip")?
                            .parse()
                            .map_err(|e| format!("generate: bad --trip: {e}"))?;
                    }
                    "-o" | "--out" => out = Some(PathBuf::from(value("-o")?)),
                    other => return Err(format!("generate: unknown flag {other:?}")),
                }
            }
            if trip > 9 {
                return Err("generate: --trip must be 0..=9".into());
            }
            Ok(Command::Generate { seed, trip, out: out.ok_or("generate: -o is required")? })
        }
        "obs" => {
            match it.next().map(String::as_str) {
                Some("merge") => {}
                Some(other) => {
                    return Err(format!("obs: unknown action {other:?} (expected merge)"))
                }
                None => return Err("obs: missing action (expected merge)".into()),
            }
            let mut files = Vec::new();
            let mut out = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "-o" | "--out" => {
                        out = Some(PathBuf::from(
                            it.next().ok_or("obs merge: -o needs a value")?,
                        ));
                    }
                    other if other.starts_with('-') => {
                        return Err(format!("obs merge: unknown flag {other:?}"));
                    }
                    file => files.push(PathBuf::from(file)),
                }
            }
            if files.is_empty() {
                return Err("obs merge: needs at least one sidecar file".into());
            }
            Ok(Command::ObsMerge { files, out })
        }
        "store" => {
            match it.next().map(String::as_str) {
                Some("recover") => {}
                Some(other) => {
                    return Err(format!("store: unknown action {other:?} (expected recover)"))
                }
                None => return Err("store: missing action (expected recover)".into()),
            }
            let dir = PathBuf::from(it.next().ok_or("store recover: missing <dir>")?);
            let mut snapshot = false;
            for flag in it {
                match flag.as_str() {
                    "--snapshot" => snapshot = true,
                    other => return Err(format!("store recover: unknown flag {other:?}")),
                }
            }
            Ok(Command::StoreRecover { dir, snapshot })
        }
        "serve" => {
            let dir = PathBuf::from(it.next().ok_or("serve: missing <dir>")?);
            let mut shards = 2usize;
            let mut sync = SyncMode::GroupCommit;
            let mut algo = "op-cone".to_string();
            let mut eps = 30.0f64;
            let mut speed_eps = None;
            let mut max_batch = 256usize;
            let mut max_delay_us = 500u64;
            let mut queue_cap = 4096usize;
            let mut load_gen = false;
            let mut movers = 1_000u64;
            let mut fixes = 10u64;
            let mut rate = 0.0f64;
            let mut seed = 42u64;
            let mut threads = 1usize;
            let mut report_json = None;
            let mut metrics_out = None;
            let mut metrics_format = MetricsFormat::Json;
            let mut trace_out = None;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    it.next().ok_or(format!("serve: {name} needs a value"))
                };
                let parse_int = |v: &String, name: &str| -> Result<u64, String> {
                    v.parse().map_err(|e| format!("serve: bad {name} {v:?}: {e}"))
                };
                match flag.as_str() {
                    "--shards" => {
                        shards = usize::try_from(parse_int(value("--shards")?, "--shards")?)
                            .map_err(|e| format!("serve: bad --shards: {e}"))?;
                    }
                    "--sync" => sync = SyncMode::parse(value("--sync")?)?,
                    "--algo" => algo = value("--algo")?.clone(),
                    "--eps" => eps = parse_f64(value("--eps")?, "--eps")?,
                    "--speed-eps" => {
                        speed_eps = Some(parse_f64(value("--speed-eps")?, "--speed-eps")?);
                    }
                    "--max-batch" => {
                        max_batch =
                            usize::try_from(parse_int(value("--max-batch")?, "--max-batch")?)
                                .map_err(|e| format!("serve: bad --max-batch: {e}"))?;
                    }
                    "--max-delay-us" => {
                        max_delay_us = parse_int(value("--max-delay-us")?, "--max-delay-us")?;
                    }
                    "--queue-cap" => {
                        queue_cap =
                            usize::try_from(parse_int(value("--queue-cap")?, "--queue-cap")?)
                                .map_err(|e| format!("serve: bad --queue-cap: {e}"))?;
                    }
                    "--load-gen" => load_gen = true,
                    "--movers" => movers = parse_int(value("--movers")?, "--movers")?,
                    "--fixes" => fixes = parse_int(value("--fixes")?, "--fixes")?,
                    "--rate" => rate = parse_f64(value("--rate")?, "--rate")?,
                    "--seed" => seed = parse_int(value("--seed")?, "--seed")?,
                    "--threads" => {
                        threads = usize::try_from(parse_int(value("--threads")?, "--threads")?)
                            .map_err(|e| format!("serve: bad --threads: {e}"))?;
                        if threads == 0 {
                            return Err("serve: --threads must be >= 1".into());
                        }
                    }
                    "--report-json" => {
                        report_json = Some(PathBuf::from(value("--report-json")?));
                    }
                    "--metrics-out" => {
                        metrics_out = Some(PathBuf::from(value("--metrics-out")?));
                    }
                    "--metrics-format" => {
                        metrics_format = match value("--metrics-format")?.as_str() {
                            "json" => MetricsFormat::Json,
                            "csv" => MetricsFormat::Csv,
                            other => {
                                return Err(format!(
                                    "serve: --metrics-format must be json or csv, got {other:?}"
                                ))
                            }
                        };
                    }
                    "--trace-out" => trace_out = Some(PathBuf::from(value("--trace-out")?)),
                    other => return Err(format!("serve: unknown flag {other:?}")),
                }
            }
            if shards == 0 {
                return Err("serve: --shards must be >= 1".into());
            }
            let codec = CodecSpec::parse(&algo, eps, speed_eps)?;
            Ok(Command::Serve(ServeArgs {
                dir,
                shards,
                sync,
                codec,
                eps,
                max_batch,
                max_delay_us,
                queue_cap,
                load_gen,
                movers,
                fixes,
                rate,
                seed,
                threads,
                report_json,
                metrics_out,
                metrics_format,
                trace_out,
            }))
        }
        "--help" | "-h" => Err(USAGE.to_string()),
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    }
}

/// Parses one metrics sidecar, auto-detecting the format: bodies
/// opening with `{` are JSON lines, anything else is the CSV layout of
/// [`traj_obs::sink::to_csv`].
///
/// # Errors
/// Propagates the underlying parser's diagnostic.
pub fn parse_sidecar(body: &str) -> Result<Vec<traj_obs::MetricSample>, String> {
    if body.trim().is_empty() {
        // A sidecar from a no-instrumentation build is legitimately empty.
        Ok(Vec::new())
    } else if body.trim_start().starts_with('{') {
        traj_obs::sink::parse_json_lines(body)
    } else {
        traj_obs::sink::parse_csv(body)
    }
}

/// Quotes `field` per RFC 4180 when it contains a comma, quote or
/// newline.
fn csv_field(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders parsed sidecars side by side as long-format CSV: one row per
/// `(metric, stat)` with one value column per input file. Counters and
/// gauges contribute a single `value` row; histograms contribute
/// `count`/`sum`/`min`/`max`/`p50`/`p90`/`p99` rows. Metrics missing
/// from a file leave that cell empty.
pub fn merged_sidecar_csv(columns: &[(String, Vec<traj_obs::MetricSample>)]) -> String {
    // Histogram stats after the scalar `value`, in summary order.
    const STATS: [&str; 8] = ["value", "count", "sum", "min", "max", "p50", "p90", "p99"];
    let stat_index = |stat: &str| STATS.iter().position(|s| *s == stat).unwrap_or(STATS.len());
    // (metric path, kind, stat rank, stat) → one cell per column.
    let mut rows: std::collections::BTreeMap<(String, &str, usize, &str), Vec<String>> =
        std::collections::BTreeMap::new();
    for (j, (_, samples)) in columns.iter().enumerate() {
        for s in samples {
            let stats: Vec<(&str, String)> = match &s.histogram {
                Some(h) => vec![
                    ("count", h.count.to_string()),
                    ("sum", h.sum.to_string()),
                    ("min", h.min.to_string()),
                    ("max", h.max.to_string()),
                    ("p50", h.p50.to_string()),
                    ("p90", h.p90.to_string()),
                    ("p99", h.p99.to_string()),
                ],
                None => vec![("value", s.value.to_string())],
            };
            for (stat, cell) in stats {
                rows.entry((s.path(), s.kind.as_str(), stat_index(stat), stat))
                    .or_insert_with(|| vec![String::new(); columns.len()])[j] = cell;
            }
        }
    }
    let mut out = String::from("metric,kind,stat");
    for (label, _) in columns {
        out.push(',');
        out.push_str(&csv_field(label));
    }
    out.push('\n');
    for ((metric, kind, _, stat), cells) in rows {
        out.push_str(&csv_field(&metric));
        out.push(',');
        out.push_str(kind);
        out.push(',');
        out.push_str(stat);
        for cell in cells {
            out.push(',');
            out.push_str(&csv_field(&cell));
        }
        out.push('\n');
    }
    out
}

/// Stops an armed trace session on scope exit, discarding the trace.
/// The success path disarms it and exports the trace instead.
struct TraceSessionGuard {
    armed: bool,
}

impl Drop for TraceSessionGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = traj_obs::trace::stop();
        }
    }
}

fn parse_f64(s: &str, flag: &str) -> Result<f64, String> {
    let v: f64 = s.parse().map_err(|e| format!("bad {flag} value {s:?}: {e}"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("{flag} must be finite and >= 0, got {s}"));
    }
    Ok(v)
}

/// Builds a compressor by CLI name.
///
/// # Errors
/// Returns a diagnostic for unknown names, missing speed thresholds and
/// invalid parameter combinations.
pub fn make_compressor(
    algo: &str,
    eps: f64,
    speed_eps: Option<f64>,
) -> Result<Box<dyn Compressor + Sync>, String> {
    let need_speed = || {
        speed_eps.ok_or_else(|| format!("algorithm {algo:?} needs --speed-eps"))
    };
    Ok(match algo {
        "uniform" => {
            let step = eps.round().max(1.0) as usize;
            Box::new(UniformSample::new(step))
        }
        "dist" => Box::new(DistanceThreshold::new(eps)),
        "ndp" | "dp" | "douglas-peucker" => Box::new(DouglasPeucker::new(eps)),
        "ndp-hull" => Box::new(traj_compress::HullDouglasPeucker::new(eps)),
        "td-tr" => Box::new(TdTr::new(eps)),
        "td-sp" => {
            let v = need_speed()?;
            if v <= 0.0 {
                return Err("td-sp: --speed-eps must be > 0".into());
            }
            Box::new(TdSp::new(eps, v))
        }
        "nopw" => Box::new(OpeningWindow::nopw(eps)),
        "bopw" => Box::new(OpeningWindow::bopw(eps)),
        "opw-tr" => Box::new(OpeningWindow::opw_tr(eps)),
        "opw-sp" => Box::new(OpeningWindow::opw_sp(eps, need_speed()?)),
        "dead-reckoning" | "dr" => Box::new(DeadReckoning::new(eps)),
        "bottom-up" => Box::new(BottomUp::time_ratio(eps)),
        "sliding-window" => Box::new(SlidingWindow::time_ratio(eps, 32)),
        "op-fit" => Box::new(traj_compress::OnePassFit::new(eps)),
        "op-cone" => Box::new(traj_compress::OnePassCone::new(eps)),
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

/// Executes a parsed command, returning its human-readable report.
///
/// # Errors
/// Propagates I/O, parse and validation failures as strings.
pub fn run(cmd: &Command) -> Result<String, String> {
    let load = |path: &PathBuf| -> Result<Trajectory, String> {
        io::read_csv(path).map_err(|e| format!("{}: {e}", path.display()))
    };
    let mut report = String::new();
    match cmd {
        Command::Info { file } => {
            let t = load(file)?;
            let s = TrajectoryStats::of(&t);
            let _ = writeln!(report, "file:          {}", file.display());
            let _ = writeln!(report, "data points:   {}", s.n_points);
            let _ = writeln!(report, "duration:      {}", s.duration);
            let _ = writeln!(report, "length:        {:.3} km", s.length_km());
            let _ = writeln!(report, "displacement:  {:.3} km", s.displacement_km());
            let _ = writeln!(report, "avg speed:     {:.2} km/h", s.avg_speed_kmh());
            let _ = writeln!(report, "max speed:     {:.2} km/h", s.max_speed_ms * 3.6);
            let _ = writeln!(report, "mean interval: {:.2} s", s.mean_interval_s);
        }
        Command::Compress {
            file,
            algo,
            eps,
            speed_eps,
            out,
            stats,
            metrics_out,
            metrics_format,
            threads,
            trace_out,
        } => {
            // Stop the recorder even on early error returns, so a failed
            // run never leaks an active session into the next command.
            let mut trace_session = TraceSessionGuard { armed: trace_out.is_some() };
            if trace_session.armed {
                traj_obs::trace::start();
                traj_obs::trace::set_track_label("main");
            }
            let total = traj_obs::Timer::start();
            let t = {
                let _phase = traj_obs::span!("cli.read_input");
                load(file)?
            };
            if t.len() < 2 {
                return Err(format!(
                    "{}: needs at least 2 fixes to compress, got {}",
                    file.display(),
                    t.len()
                ));
            }
            let compressor = make_compressor(algo, *eps, *speed_eps)?;
            let compress_timer = traj_obs::Timer::start();
            // An explicit workspace (rather than the fleet path, which a
            // single trajectory runs inline anyway — `--threads` only
            // matters for batches) so the columnar copy built during
            // compression can be handed to the evaluation below instead
            // of being de-interleaved a second time.
            let mut cws = Workspace::new();
            let result = {
                let _phase = traj_obs::span!("cli.compress", points = t.len() as u64);
                let _ = threads; // batch-only knob; kept for the fleet path
                let mut buf = CompressionResultBuf::new();
                compressor.compress_into(&t, &mut cws, &mut buf);
                buf.take()
            };
            let compress_ns = compress_timer.elapsed_ns();
            let evaluate_timer = traj_obs::Timer::start();
            let e = {
                let _phase = traj_obs::span!("cli.evaluate");
                let mut ews = EvalWorkspace::new();
                ews.seed_columns(cws.take_columns());
                evaluate_with(&t, &result, &mut ews)
            };
            let evaluate_ns = evaluate_timer.elapsed_ns();
            let _ = writeln!(report, "algorithm:        {}", compressor.name());
            let _ = writeln!(report, "kept points:      {} of {}", result.kept_len(), t.len());
            let _ = writeln!(report, "compression:      {:.2} %", e.compression_pct);
            let _ = writeln!(report, "avg sync error:   {:.3} m", e.avg_sync_err_m);
            let _ = writeln!(report, "max sync error:   {:.3} m", e.max_sync_err_m);
            let _ = writeln!(report, "mean/max SED:     {:.3} / {:.3} m", e.mean_sed_m, e.max_sed_m);
            let _ = writeln!(report, "mean/max perp:    {:.3} / {:.3} m", e.mean_perp_m, e.max_perp_m);
            if let Some(out) = out {
                let _phase = traj_obs::span!("cli.write_output");
                let approx = result.apply(&t);
                io::write_csv(&approx, out).map_err(|e| format!("{}: {e}", out.display()))?;
                let _ = writeln!(report, "wrote:            {}", out.display());
            }
            traj_obs::histogram!("cli", "total_ns").record(total.elapsed_ns());
            if *stats {
                // Compression vs evaluation cost per run, at a glance
                // (the full span table below has the same data per phase).
                let _ = writeln!(
                    report,
                    "timing:           compress {:.3} ms · evaluate {:.3} ms",
                    compress_ns as f64 / 1e6,
                    evaluate_ns as f64 / 1e6,
                );
                let _ = writeln!(report);
                report.push_str(&traj_obs::sink::render_table(
                    &traj_obs::registry().snapshot(),
                ));
            }
            if let Some(path) = metrics_out {
                let snapshot = traj_obs::registry().snapshot();
                let body = match metrics_format {
                    MetricsFormat::Json => traj_obs::sink::to_json_lines(&snapshot),
                    MetricsFormat::Csv => traj_obs::sink::to_csv(&snapshot),
                };
                std::fs::write(path, body).map_err(|e| format!("{}: {e}", path.display()))?;
                let _ = writeln!(report, "metrics:          {}", path.display());
            }
            if let Some(path) = trace_out {
                trace_session.armed = false;
                let trace = traj_obs::trace::stop();
                let body = if path.extension().is_some_and(|e| e == "folded") {
                    trace.to_folded()
                } else {
                    trace.to_chrome_json()
                };
                std::fs::write(path, body).map_err(|e| format!("{}: {e}", path.display()))?;
                let _ = writeln!(
                    report,
                    "trace:            {} ({} events, {} dropped)",
                    path.display(),
                    trace.event_count(),
                    trace.dropped_total()
                );
            }
        }
        Command::Evaluate { original, approx } => {
            let p = load(original)?;
            let a = load(approx)?;
            let alpha = traj_compress::error::average_synchronous_error(&p, &a);
            let max = traj_compress::error::max_synchronous_error(&p, &a);
            let (mean_sed, max_sed) = traj_compress::error::sed_at_samples(&p, &a);
            let _ = writeln!(report, "points:           {} vs {}", p.len(), a.len());
            let _ = writeln!(
                report,
                "compression:      {:.2} %",
                100.0 * (p.len().saturating_sub(a.len())) as f64 / p.len() as f64
            );
            let _ = writeln!(report, "avg sync error:   {alpha:.3} m");
            let _ = writeln!(report, "max sync error:   {max:.3} m");
            let _ = writeln!(report, "mean/max SED:     {mean_sed:.3} / {max_sed:.3} m");
        }
        Command::Generate { seed, trip, out } => {
            let t = traj_gen::paper_dataset(*seed)
                .into_iter()
                .nth(*trip)
                .ok_or_else(|| format!("trip index {trip} out of range (dataset has 10 trips)"))?;
            io::write_csv(&t, out).map_err(|e| format!("{}: {e}", out.display()))?;
            let s = TrajectoryStats::of(&t);
            let _ = writeln!(
                report,
                "wrote trip {trip} (seed {seed}): {} fixes, {:.2} km, {} → {}",
                s.n_points,
                s.length_km(),
                s.duration,
                out.display()
            );
        }
        Command::ObsMerge { files, out } => {
            let mut columns = Vec::with_capacity(files.len());
            for path in files {
                let body = std::fs::read_to_string(path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                let samples = parse_sidecar(&body)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                let label = path
                    .file_name()
                    .map_or_else(|| path.display().to_string(), |n| n.to_string_lossy().into_owned());
                columns.push((label, samples));
            }
            let csv = merged_sidecar_csv(&columns);
            if let Some(path) = out {
                std::fs::write(path, &csv).map_err(|e| format!("{}: {e}", path.display()))?;
                let _ = writeln!(report, "wrote: {}", path.display());
            }
            report.push_str(&csv);
        }
        Command::StoreRecover { dir, snapshot } => {
            if !dir.is_dir() {
                return Err(format!("{}: not a directory", dir.display()));
            }
            let (mut store, r) =
                DurableStore::open(dir, IngestMode::Raw, DurableOptions::default())
                    .map_err(|e| e.to_string())?;
            let s = store.store().stats();
            let _ = writeln!(report, "store:            {}", dir.display());
            let _ = writeln!(
                report,
                "snapshot:         {} objects, {} fixes",
                r.snapshot_objects, r.snapshot_fixes
            );
            let _ = writeln!(report, "wal segments:     {}", r.wal_segments);
            let _ = writeln!(report, "replayed:         {} records", r.replayed);
            let _ = writeln!(report, "skipped covered:  {} records", r.skipped_covered);
            let _ = writeln!(report, "skipped corrupt:  {} records", r.skipped_corrupt);
            let _ = writeln!(report, "torn tail:        {}", if r.torn_tail { "yes" } else { "no" });
            let _ = writeln!(
                report,
                "health:           {}",
                if r.clean() { "clean" } else { "recovered from crash/corruption" }
            );
            let _ = writeln!(report, "recovered state:  {} objects, {} fixes", s.objects, s.stored_points);
            if *snapshot {
                let files = store.snapshot().map_err(|e| e.to_string())?;
                let _ = writeln!(report, "snapshotted:      {files} files, log truncated");
            }
        }
        Command::Serve(args) => {
            if !args.load_gen {
                return Err(
                    "serve: this build ingests from --load-gen only (no network listener); \
                     pass --load-gen"
                        .into(),
                );
            }
            let mut trace_session = TraceSessionGuard { armed: args.trace_out.is_some() };
            if trace_session.armed {
                traj_obs::trace::start();
                traj_obs::trace::set_track_label("serve-main");
            }
            let cfg = ServeConfig {
                shards: args.shards,
                queue_cap: args.queue_cap,
                codec: args.codec,
                sync: args.sync,
                group: GroupCommitOptions {
                    max_batch: args.max_batch,
                    max_delay: std::time::Duration::from_micros(args.max_delay_us),
                },
                durable: DurableOptions::default(),
            };
            std::fs::create_dir_all(&args.dir)
                .map_err(|e| format!("{}: {e}", args.dir.display()))?;
            let start = std::time::Instant::now();
            let service = Service::start(&args.dir, cfg)?;
            let outcome = loadgen::run(
                &service,
                &LoadGenConfig {
                    movers: args.movers,
                    fixes_per_mover: args.fixes,
                    rate: args.rate,
                    seed: args.seed,
                    threads: args.threads,
                    report_dt: 10.0,
                },
            );
            let stats = service.shutdown()?;
            let duration_s = start.elapsed().as_secs_f64();
            if !stats.errors.is_empty() {
                return Err(format!("serve: storage failure: {}", stats.errors.join("; ")));
            }
            let wal_bytes = shard_wal_bytes(&args.dir, args.shards);
            let serve_report = ServeReport {
                config: ReportConfig {
                    shards: args.shards,
                    sync: args.sync.name().into(),
                    algo: args.codec.name().into(),
                    eps: args.eps,
                    max_batch: args.max_batch,
                    max_delay_us: args.max_delay_us,
                    queue_cap: args.queue_cap,
                    movers: args.movers,
                    fixes_per_mover: args.fixes,
                    rate: args.rate,
                    threads: args.threads,
                },
                duration_s,
                submitted: outcome.submitted,
                rejected: outcome.rejected,
                invalid: stats.invalid,
                acked: stats.acked,
                emitted: stats.emitted,
                commits: stats.commits,
                wal_bytes: Some(wal_bytes),
                ack: stats.ack,
            };
            let us = |ns: u64| ns as f64 / 1e3;
            let _ = writeln!(report, "service:          {}", args.dir.display());
            let _ = writeln!(
                report,
                "shards:           {} ({} sync, {} sessions)",
                args.shards,
                args.sync.name(),
                stats.sessions
            );
            let _ = writeln!(
                report,
                "codec:            {} (eps {} m)",
                args.codec.name(),
                args.eps
            );
            let _ = writeln!(report, "duration:         {duration_s:.3} s");
            let _ = writeln!(
                report,
                "submitted:        {} fixes ({} shed by backpressure, {} invalid)",
                outcome.submitted, outcome.rejected, stats.invalid
            );
            let _ = writeln!(
                report,
                "acked:            {} fixes · {:.0} acks/s",
                stats.acked,
                serve_report.acks_per_sec()
            );
            let _ = writeln!(
                report,
                "durability:       {} commits · {:.1} fixes/fsync · {} WAL bytes",
                stats.commits,
                serve_report.mean_group_size(),
                wal_bytes
            );
            let _ = writeln!(
                report,
                "wal reduction:    {} points logged of {} acked",
                stats.emitted, stats.acked
            );
            let _ = writeln!(
                report,
                "ack latency:      p50 {:.1} µs · p90 {:.1} µs · p99 {:.1} µs · p999 {:.1} µs · max {:.1} µs",
                us(serve_report.ack.quantile(0.50)),
                us(serve_report.ack.quantile(0.90)),
                us(serve_report.ack.quantile(0.99)),
                us(serve_report.ack.quantile(0.999)),
                us(serve_report.ack.quantile(1.0)),
            );
            if let Some(path) = &args.report_json {
                std::fs::write(path, serve_report.to_json())
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                let _ = writeln!(report, "report:           {}", path.display());
            }
            if let Some(path) = &args.metrics_out {
                let snapshot = traj_obs::registry().snapshot();
                let body = match args.metrics_format {
                    MetricsFormat::Json => traj_obs::sink::to_json_lines(&snapshot),
                    MetricsFormat::Csv => traj_obs::sink::to_csv(&snapshot),
                };
                std::fs::write(path, body).map_err(|e| format!("{}: {e}", path.display()))?;
                let _ = writeln!(report, "metrics:          {}", path.display());
            }
            if let Some(path) = &args.trace_out {
                trace_session.armed = false;
                let trace = traj_obs::trace::stop();
                let body = if path.extension().is_some_and(|e| e == "folded") {
                    trace.to_folded()
                } else {
                    trace.to_chrome_json()
                };
                std::fs::write(path, body).map_err(|e| format!("{}: {e}", path.display()))?;
                let _ = writeln!(
                    report,
                    "trace:            {} ({} events, {} dropped)",
                    path.display(),
                    trace.event_count(),
                    trace.dropped_total()
                );
            }
        }
    }
    Ok(report)
}

/// Sums the on-disk WAL bytes across `dir/shard-K/wal/` (best-effort:
/// unreadable entries count 0).
fn shard_wal_bytes(dir: &std::path::Path, shards: usize) -> u64 {
    let mut total = 0u64;
    for k in 0..shards {
        let wal_dir = dir.join(format!("shard-{k}")).join("wal");
        let Ok(entries) = std::fs::read_dir(&wal_dir) else { continue };
        for entry in entries.flatten() {
            if let Ok(meta) = entry.metadata() {
                total += meta.len();
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_info() {
        assert_eq!(
            parse(&args("info a.csv")).unwrap(),
            Command::Info { file: PathBuf::from("a.csv") }
        );
        assert!(parse(&args("info")).is_err());
    }

    #[test]
    fn parse_compress_full() {
        let c = parse(&args("compress a.csv --algo opw-sp --eps 30 --speed-eps 5 -o b.csv"))
            .unwrap();
        assert_eq!(
            c,
            Command::Compress {
                file: PathBuf::from("a.csv"),
                algo: "opw-sp".into(),
                eps: 30.0,
                speed_eps: Some(5.0),
                out: Some(PathBuf::from("b.csv")),
                stats: false,
                metrics_out: None,
                metrics_format: MetricsFormat::Json,
                threads: 0,
                trace_out: None,
            }
        );
    }

    #[test]
    fn parse_compress_threads_flag() {
        // Explicit worker count.
        let c = parse(&args("compress a.csv --algo td-tr --eps 30 --threads 4")).unwrap();
        match c {
            Command::Compress { threads, .. } => assert_eq!(threads, 4),
            other => panic!("parsed {other:?}"),
        }
        // 0 (= one worker per available core) is the default and is
        // also accepted explicitly.
        let c = parse(&args("compress a.csv --algo td-tr --eps 30 --threads 0")).unwrap();
        match c {
            Command::Compress { threads, .. } => assert_eq!(threads, 0),
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&args("compress a.csv --algo td-tr --eps 30 --threads four"))
            .unwrap_err()
            .contains("--threads"));
    }

    #[test]
    fn parse_compress_metrics_flags() {
        let c = parse(&args(
            "compress a.csv --algo td-tr --eps 30 --stats --metrics-out m.csv --metrics-format csv",
        ))
        .unwrap();
        match c {
            Command::Compress { stats, metrics_out, metrics_format, .. } => {
                assert!(stats);
                assert_eq!(metrics_out, Some(PathBuf::from("m.csv")));
                assert_eq!(metrics_format, MetricsFormat::Csv);
            }
            other => panic!("parsed {other:?}"),
        }
        // Default format is JSON lines; bad formats are rejected.
        let c = parse(&args("compress a.csv --algo td-tr --eps 30 --metrics-out m.json")).unwrap();
        match c {
            Command::Compress { metrics_format, .. } => {
                assert_eq!(metrics_format, MetricsFormat::Json);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&args(
            "compress a.csv --algo td-tr --eps 30 --metrics-format yaml"
        ))
        .is_err());
    }

    #[test]
    fn parse_compress_requires_algo_and_eps() {
        assert!(parse(&args("compress a.csv --eps 30")).is_err());
        assert!(parse(&args("compress a.csv --algo td-tr")).is_err());
        assert!(parse(&args("compress a.csv --algo td-tr --eps nope")).is_err());
        assert!(parse(&args("compress a.csv --algo td-tr --eps -5")).is_err());
    }

    #[test]
    fn parse_generate_bounds_trip() {
        assert!(parse(&args("generate --trip 10 -o x.csv")).is_err());
        assert!(parse(&args("generate --trip 3")).is_err(), "-o required");
        let g = parse(&args("generate --seed 7 --trip 3 -o x.csv")).unwrap();
        assert_eq!(g, Command::Generate { seed: 7, trip: 3, out: PathBuf::from("x.csv") });
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&[]).is_err());
        assert!(parse(&args("compress a.csv --algo td-tr --eps 5 --wat 3")).is_err());
    }

    #[test]
    fn factory_knows_every_documented_algorithm() {
        for name in [
            "uniform", "dist", "ndp", "ndp-hull", "td-tr", "nopw", "bopw", "opw-tr",
            "dead-reckoning", "bottom-up", "sliding-window", "op-fit", "op-cone",
        ] {
            assert!(make_compressor(name, 10.0, None).is_ok(), "{name}");
        }
        for name in ["td-sp", "opw-sp"] {
            assert!(make_compressor(name, 10.0, None).is_err(), "{name} needs speed");
            assert!(make_compressor(name, 10.0, Some(5.0)).is_ok(), "{name}");
        }
        assert!(make_compressor("nope", 10.0, None).is_err());
    }

    #[test]
    fn factory_accepts_every_catalog_entry() {
        // `ALGORITHMS.md` is pinned to `algorithm_catalog()`; this pins
        // the CLI to the same list, so catalog, docs and `--algo` names
        // can never drift apart. Speed-threshold entries use the
        // paper's 5 m/s default in the catalog but need `--speed-eps`
        // here, hence the fallback probe.
        for meta in traj_eval::algorithm_catalog() {
            let ok = make_compressor(meta.cli_name, 10.0, None).is_ok()
                || make_compressor(meta.cli_name, 10.0, Some(5.0)).is_ok();
            assert!(ok, "catalog entry {:?} not accepted by --algo", meta.cli_name);
        }
    }

    #[test]
    fn run_info_compress_evaluate_roundtrip() {
        let dir = std::env::temp_dir().join("trajc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        let output = dir.join("out.csv");

        // generate → info → compress → evaluate, exercising every path.
        let gen = Command::Generate { seed: 42, trip: 1, out: input.clone() };
        let report = run(&gen).unwrap();
        assert!(report.contains("wrote trip 1"));

        let info = run(&Command::Info { file: input.clone() }).unwrap();
        assert!(info.contains("data points"));
        assert!(info.contains("km/h"));

        let compress = Command::Compress {
            file: input.clone(),
            algo: "td-tr".into(),
            eps: 30.0,
            speed_eps: None,
            out: Some(output.clone()),
            stats: false,
            metrics_out: None,
            metrics_format: MetricsFormat::Json,
            threads: 0,
            trace_out: None,
        };
        let report = run(&compress).unwrap();
        assert!(report.contains("td-tr(30m)"));
        assert!(report.contains("compression"));

        let eval = Command::Evaluate { original: input.clone(), approx: output.clone() };
        let report = run(&eval).unwrap();
        assert!(report.contains("avg sync error"));

        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[cfg(feature = "obs")]
    #[test]
    fn run_compress_with_stats_prints_metric_table() {
        let dir = std::env::temp_dir().join("trajc_cli_stats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        run(&Command::Generate { seed: 7, trip: 0, out: input.clone() }).unwrap();

        let metrics_json = dir.join("m.json");
        let report = run(&Command::Compress {
            file: input.clone(),
            algo: "td-tr".into(),
            eps: 30.0,
            speed_eps: None,
            out: None,
            stats: true,
            metrics_out: Some(metrics_json.clone()),
            metrics_format: MetricsFormat::Json,
            threads: 0,
            trace_out: None,
        })
        .unwrap();
        // The acceptance surface: points in/out, SED evaluations,
        // recursion depth and per-phase wall time are all visible.
        // `cols_reuse` proves the evaluation phase inherited the column
        // copy built during compression instead of rebuilding it.
        for needle in [
            "points_in",
            "points_out",
            "sed_evals",
            "dp_depth",
            "cli.compress",
            "cols_built",
            "cols_reuse",
        ] {
            assert!(report.contains(needle), "missing {needle} in:\n{report}");
        }
        // The JSON sidecar is one object per line.
        let body = std::fs::read_to_string(&metrics_json).unwrap();
        assert!(!body.is_empty());
        for line in body.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line {line:?}");
        }
        assert!(body.contains("\"sed_evals\""));

        let metrics_csv = dir.join("m.csv");
        run(&Command::Compress {
            file: input.clone(),
            algo: "td-tr".into(),
            eps: 30.0,
            speed_eps: None,
            out: None,
            stats: false,
            metrics_out: Some(metrics_csv.clone()),
            metrics_format: MetricsFormat::Csv,
            threads: 0,
            trace_out: None,
        })
        .unwrap();
        let body = std::fs::read_to_string(&metrics_csv).unwrap();
        assert!(body.starts_with(traj_obs::sink::CSV_HEADER));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_compress_trace_out() {
        let c = parse(&args("compress a.csv --algo td-tr --eps 30 --trace-out t.json")).unwrap();
        match c {
            Command::Compress { trace_out, .. } => {
                assert_eq!(trace_out, Some(PathBuf::from("t.json")));
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&args("compress a.csv --algo td-tr --eps 30 --trace-out"))
            .unwrap_err()
            .contains("--trace-out"));
    }

    #[test]
    fn parse_obs_merge() {
        assert_eq!(
            parse(&args("obs merge a.json b.csv -o merged.csv")).unwrap(),
            Command::ObsMerge {
                files: vec![PathBuf::from("a.json"), PathBuf::from("b.csv")],
                out: Some(PathBuf::from("merged.csv")),
            }
        );
        assert_eq!(
            parse(&args("obs merge one.json")).unwrap(),
            Command::ObsMerge { files: vec![PathBuf::from("one.json")], out: None }
        );
        assert!(parse(&args("obs merge")).is_err());
        assert!(parse(&args("obs merge a.json --wat")).is_err());
        assert!(parse(&args("obs split a.json")).is_err());
        assert!(parse(&args("obs")).is_err());
    }

    #[test]
    fn merged_sidecar_csv_lines_up_columns() {
        use traj_obs::{HistogramSummary, MetricKind, MetricSample};
        let counter = |v: f64| MetricSample {
            subsystem: "compress".into(),
            name: "sed_evals".into(),
            labels: vec![("algo".into(), "td-tr".into())],
            kind: MetricKind::Counter,
            value: v,
            histogram: None,
        };
        let hist = MetricSample {
            subsystem: "span".into(),
            name: "cli.compress".into(),
            labels: vec![],
            kind: MetricKind::Histogram,
            value: 0.0,
            histogram: Some(HistogramSummary {
                count: 2,
                sum: 10,
                min: 3,
                max: 7,
                p50: 4,
                p90: 7,
                p99: 7,
            }),
        };
        let merged = merged_sidecar_csv(&[
            ("a.json".into(), vec![counter(841.0), hist]),
            ("b.csv".into(), vec![counter(900.0)]),
        ]);
        let mut lines = merged.lines();
        assert_eq!(lines.next(), Some("metric,kind,stat,a.json,b.csv"));
        // The labeled metric path contains commas-free label syntax here,
        // but the `{algo=td-tr}` braces must survive verbatim.
        assert!(merged.contains("compress.sed_evals{algo=td-tr},counter,value,841,900"));
        // Histogram rows: one per stat, empty cell for the file without it.
        assert!(merged.contains("span.cli.compress,histogram,count,2,"));
        assert!(merged.contains("span.cli.compress,histogram,p50,4,"));
    }

    #[test]
    fn run_obs_merge_round_trips_sidecars() {
        let dir = std::env::temp_dir().join("trajc_cli_merge_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        run(&Command::Generate { seed: 42, trip: 2, out: input.clone() }).unwrap();
        let json_sidecar = dir.join("a.json");
        let csv_sidecar = dir.join("b.csv");
        for (path, format) in
            [(&json_sidecar, MetricsFormat::Json), (&csv_sidecar, MetricsFormat::Csv)]
        {
            run(&Command::Compress {
                file: input.clone(),
                algo: "td-tr".into(),
                eps: 30.0,
                speed_eps: None,
                out: None,
                stats: false,
                metrics_out: Some(path.clone()),
                metrics_format: format,
                threads: 0,
                trace_out: None,
            })
            .unwrap();
        }
        let merged_out = dir.join("merged.csv");
        let report = run(&Command::ObsMerge {
            files: vec![json_sidecar, csv_sidecar],
            out: Some(merged_out.clone()),
        })
        .unwrap();
        assert!(report.contains("metric,kind,stat,a.json,b.csv"), "{report}");
        let written = std::fs::read_to_string(&merged_out).unwrap();
        assert!(written.starts_with("metric,kind,stat,a.json,b.csv"));
        if cfg!(feature = "obs") {
            // Both runs recorded the same counters; the merged rows carry
            // one cell per sidecar.
            let sed_row = written
                .lines()
                .find(|l| l.starts_with("compress.sed_evals"))
                .expect("sed_evals row");
            assert!(sed_row.contains("counter,value"), "{sed_row}");
            assert_eq!(sed_row.split(',').count(), 5, "{sed_row}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(feature = "obs")]
    #[test]
    fn run_compress_trace_out_exports_chrome_json_and_folded() {
        use traj_obs::json::{self, Json};
        let dir = std::env::temp_dir().join("trajc_cli_trace_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        run(&Command::Generate { seed: 42, trip: 3, out: input.clone() }).unwrap();

        let trace_json = dir.join("trace.json");
        let report = run(&Command::Compress {
            file: input.clone(),
            algo: "td-tr".into(),
            eps: 30.0,
            speed_eps: None,
            out: None,
            stats: false,
            metrics_out: None,
            metrics_format: MetricsFormat::Json,
            threads: 0,
            trace_out: Some(trace_json.clone()),
        })
        .unwrap();
        assert!(report.contains("trace:"), "{report}");
        let body = std::fs::read_to_string(&trace_json).unwrap();
        let doc = json::parse(&body).expect("trace must be valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents");
        assert!(!events.is_empty());
        // The run's phases appear as complete begin/end pairs on a track
        // labeled by the thread-name metadata event.
        let has = |ph: &str, name: &str| {
            events.iter().any(|e| {
                e.get("ph").and_then(Json::as_str) == Some(ph)
                    && e.get("name").and_then(Json::as_str) == Some(name)
            })
        };
        assert!(has("B", "cli.compress"), "begin event");
        assert!(has("E", "cli.compress"), "end event");
        let main_track = events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("thread_name")
                && e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str) == Some("main")
        });
        assert!(main_track, "main track metadata");

        let trace_folded = dir.join("trace.folded");
        run(&Command::Compress {
            file: input.clone(),
            algo: "td-tr".into(),
            eps: 30.0,
            speed_eps: None,
            out: None,
            stats: false,
            metrics_out: None,
            metrics_format: MetricsFormat::Json,
            threads: 0,
            trace_out: Some(trace_folded.clone()),
        })
        .unwrap();
        let folded = std::fs::read_to_string(&trace_folded).unwrap();
        assert!(folded.lines().any(|l| l.contains("cli.compress")), "{folded}");
        // Folded stacks: every line is `frames self_ns`.
        for line in folded.lines() {
            let (_, last) = line.rsplit_once(' ').expect("stack and self time");
            last.parse::<u64>().expect("self time is integral ns");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_store_recover() {
        assert_eq!(
            parse(&args("store recover /tmp/db")).unwrap(),
            Command::StoreRecover { dir: PathBuf::from("/tmp/db"), snapshot: false }
        );
        assert_eq!(
            parse(&args("store recover db --snapshot")).unwrap(),
            Command::StoreRecover { dir: PathBuf::from("db"), snapshot: true }
        );
        assert!(parse(&args("store")).is_err());
        assert!(parse(&args("store compact db")).is_err());
        assert!(parse(&args("store recover")).is_err());
        assert!(parse(&args("store recover db --wat")).is_err());
    }

    #[test]
    fn run_store_recover_reports_and_snapshots() {
        let dir = std::env::temp_dir().join("trajc_cli_recover_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        {
            let (mut store, _) =
                DurableStore::open(&dir, IngestMode::Raw, DurableOptions::default()).unwrap();
            for i in 0..5 {
                store
                    .append(3, traj_model::Fix::from_parts(i as f64, i as f64 * 2.0, 0.0))
                    .unwrap();
            }
        }
        let report = run(&Command::StoreRecover { dir: dir.clone(), snapshot: true }).unwrap();
        assert!(report.contains("replayed:         5 records"), "{report}");
        assert!(report.contains("recovered state:  1 objects, 5 fixes"), "{report}");
        assert!(report.contains("health:           clean"), "{report}");
        assert!(report.contains("log truncated"), "{report}");
        // The --snapshot pass moved the fixes into the snapshot: a second
        // recovery replays nothing.
        let report = run(&Command::StoreRecover { dir: dir.clone(), snapshot: false }).unwrap();
        assert!(report.contains("replayed:         0 records"), "{report}");
        assert!(report.contains("snapshot:         1 objects, 5 fixes"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_store_recover_rejects_missing_dir() {
        let err = run(&Command::StoreRecover {
            dir: PathBuf::from("/no/such/store"),
            snapshot: false,
        })
        .unwrap_err();
        assert!(err.contains("/no/such/store"));
    }

    #[test]
    fn run_surfaces_io_errors() {
        let err = run(&Command::Info { file: PathBuf::from("/no/such/file.csv") }).unwrap_err();
        assert!(err.contains("file.csv"));
    }

    #[test]
    fn parse_serve_defaults() {
        let Command::Serve(a) = parse(&args("serve db --load-gen")).unwrap() else {
            panic!("expected serve") // lint: allow(panic) test assertion
        };
        assert_eq!(a.dir, PathBuf::from("db"));
        assert_eq!(a.shards, 2);
        assert_eq!(a.sync, SyncMode::GroupCommit);
        assert_eq!(a.codec, CodecSpec::OpCone { eps: 30.0 });
        assert_eq!(a.max_batch, 256);
        assert_eq!(a.max_delay_us, 500);
        assert_eq!(a.queue_cap, 4096);
        assert!(a.load_gen);
        assert_eq!((a.movers, a.fixes, a.seed, a.threads), (1000, 10, 42, 1));
        assert_eq!(a.rate, 0.0);
        assert!(a.report_json.is_none() && a.metrics_out.is_none() && a.trace_out.is_none());
    }

    #[test]
    fn parse_serve_full_flag_surface() {
        let Command::Serve(a) = parse(&args(
            "serve db --shards 4 --sync every-append --algo opw-sp --eps 25 --speed-eps 5 \
             --max-batch 64 --max-delay-us 200 --queue-cap 512 --load-gen --movers 9 \
             --fixes 7 --rate 1500 --seed 7 --threads 2 --report-json r.json \
             --metrics-out m.json --metrics-format csv --trace-out t.json",
        ))
        .unwrap() else {
            panic!("expected serve") // lint: allow(panic) test assertion
        };
        assert_eq!(a.shards, 4);
        assert_eq!(a.sync, SyncMode::EveryAppend);
        assert_eq!(a.codec, CodecSpec::OpwSp { eps: 25.0, speed_eps: 5.0 });
        assert_eq!((a.max_batch, a.max_delay_us, a.queue_cap), (64, 200, 512));
        assert_eq!((a.movers, a.fixes, a.seed, a.threads), (9, 7, 7, 2));
        assert_eq!(a.rate, 1500.0);
        assert_eq!(a.report_json, Some(PathBuf::from("r.json")));
        assert_eq!(a.metrics_format, MetricsFormat::Csv);
        assert_eq!(a.trace_out, Some(PathBuf::from("t.json")));
    }

    #[test]
    fn parse_serve_rejects_bad_inputs() {
        assert!(parse(&args("serve")).is_err(), "missing dir");
        assert!(parse(&args("serve db --sync sometimes")).is_err(), "unknown sync");
        assert!(parse(&args("serve db --algo dp")).is_err(), "batch algo in a session");
        assert!(parse(&args("serve db --shards 0")).is_err(), "zero shards");
        assert!(parse(&args("serve db --threads 0")).is_err(), "zero threads");
        assert!(parse(&args("serve db --wat")).is_err(), "unknown flag");
    }

    fn serve_args(dir: &std::path::Path) -> ServeArgs {
        ServeArgs {
            dir: dir.to_path_buf(),
            shards: 2,
            sync: SyncMode::GroupCommit,
            codec: CodecSpec::OpCone { eps: 30.0 },
            eps: 30.0,
            max_batch: 64,
            max_delay_us: 200,
            queue_cap: 4096,
            load_gen: true,
            movers: 40,
            fixes: 6,
            rate: 0.0,
            seed: 42,
            threads: 1,
            report_json: None,
            metrics_out: None,
            metrics_format: MetricsFormat::Json,
            trace_out: None,
        }
    }

    #[test]
    fn run_serve_requires_load_gen() {
        let dir = std::env::temp_dir().join("trajc_cli_serve_nolg_test");
        let mut a = serve_args(&dir);
        a.load_gen = false;
        let err = run(&Command::Serve(a)).unwrap_err();
        assert!(err.contains("--load-gen"), "{err}");
    }

    #[test]
    fn run_serve_smoke_reports_and_recovers() {
        let dir = std::env::temp_dir().join("trajc_cli_serve_smoke_test");
        std::fs::remove_dir_all(&dir).ok();
        let report_json = dir.join("report.json");
        let metrics = dir.join("metrics.jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let mut a = serve_args(&dir.join("db"));
        a.report_json = Some(report_json.clone());
        a.metrics_out = Some(metrics.clone());
        let report = run(&Command::Serve(a)).unwrap();
        assert!(report.contains("acked:            240 fixes"), "{report}");
        assert!(report.contains("shards:           2 (group-commit sync"), "{report}");
        assert!(report.contains("ack latency:      p50"), "{report}");
        // The machine-readable report reconciles with the human one.
        let body = std::fs::read_to_string(&report_json).unwrap();
        let doc = traj_obs::json::parse(&body).expect("report JSON must parse");
        assert_eq!(doc.get("acked").and_then(|v| v.as_f64()), Some(240.0));
        assert_eq!(doc.get("rejected").and_then(|v| v.as_f64()), Some(0.0));
        let emitted = doc.get("emitted").and_then(|v| v.as_f64()).unwrap();
        assert!(emitted > 0.0 && emitted < 240.0, "codec must shrink the WAL: {emitted}");
        assert!(
            doc.get("wal_bytes").and_then(|v| v.as_f64()).unwrap() > 0.0,
            "real files on disk"
        );
        assert!(std::fs::read_to_string(&metrics).unwrap().contains("serve"));
        // Every shard directory is a plain DurableStore: the existing
        // recovery tool must accept it as-is.
        let shard0 = dir.join("db").join("shard-0");
        let rec = run(&Command::StoreRecover { dir: shard0, snapshot: false }).unwrap();
        assert!(rec.contains("health:           clean"), "{rec}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
