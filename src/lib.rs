//! # trajc — spatiotemporal compression for moving point objects
//!
//! Umbrella crate re-exporting the `trajc` workspace, a full
//! implementation of *Meratnia & de By, "Spatiotemporal Compression
//! Techniques for Moving Point Objects" (EDBT 2004)*:
//!
//! * [`geom`] — planar geometry and geodesy;
//! * [`model`] — trajectories, interpolation, statistics, I/O;
//! * [`compress`] — the compression algorithms and the error calculus
//!   (the paper's contribution);
//! * [`gen`] — synthetic GPS workloads calibrated to the paper's dataset;
//! * [`store`] — a moving-object store with spatiotemporal indexing and
//!   online compressed ingest;
//! * [`eval`] — the experiment harness reproducing the paper's tables and
//!   figures;
//! * [`obs`] — the zero-dependency metrics & tracing layer wired through
//!   all of the above (disable the `obs` feature to compile it out).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub mod cli;

pub use traj_compress as compress;
pub use traj_eval as eval;
pub use traj_gen as gen;
pub use traj_geom as geom;
pub use traj_model as model;
pub use traj_obs as obs;
pub use traj_store as store;
