//! `trajc` CLI entry point; all logic lives in [`trajc::cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match trajc::cli::parse(&args).and_then(|cmd| trajc::cli::run(&cmd)) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
