//! Property-based tests for the trajectory model.

use proptest::prelude::*;
use traj_model::interp::position_at;
use traj_model::ops::{resample, shift_time, slice_time, translate};
use traj_model::stats::TrajectoryStats;
use traj_model::{io, TimeDelta, Timestamp, Trajectory};

/// Strategy: a valid trajectory of 2..=60 fixes with strictly increasing
/// times and bounded coordinates.
fn trajectory() -> impl Strategy<Value = Trajectory> {
    (
        proptest::collection::vec((0.1..30.0f64, -500.0..500.0f64, -500.0..500.0f64), 2..60),
        0.0..1000.0f64,
    )
        .prop_map(|(steps, t0)| {
            let mut t = t0;
            let mut triples = Vec::with_capacity(steps.len());
            for (dt, x, y) in steps {
                triples.push((t, x, y));
                t += dt;
            }
            Trajectory::from_triples(triples).expect("constructed valid")
        })
}

proptest! {
    #[test]
    fn csv_roundtrip(t in trajectory()) {
        let parsed = io::from_csv_str(&io::to_csv_string(&t)).unwrap();
        prop_assert_eq!(parsed.len(), t.len());
        for (a, b) in parsed.fixes().iter().zip(t.fixes()) {
            prop_assert!((a.t.as_secs() - b.t.as_secs()).abs() < 1e-9);
            prop_assert!(a.pos.distance(b.pos) < 1e-9);
        }
    }

    #[test]
    fn position_at_defined_exactly_on_span(t in trajectory(), f in -0.5..1.5f64) {
        let q = t.start_time().lerp(t.end_time(), f);
        let pos = position_at(&t, q);
        prop_assert_eq!(pos.is_some(), t.covers(q));
    }

    #[test]
    fn position_at_vertices_returns_samples(t in trajectory(), idx in any::<prop::sample::Index>()) {
        let f = t.fixes()[idx.index(t.len())];
        let p = position_at(&t, f.t).unwrap();
        prop_assert!(p.distance(f.pos) < 1e-9);
    }

    #[test]
    fn resample_preserves_span_and_endpoint_positions(t in trajectory(), iv in 1.0..40.0f64) {
        let r = resample(&t, TimeDelta::from_secs(iv)).unwrap();
        prop_assert_eq!(r.start_time(), t.start_time());
        prop_assert_eq!(r.end_time(), t.end_time());
        prop_assert!(r.first().pos.distance(t.first().pos) < 1e-9);
        prop_assert!(r.last().pos.distance(t.last().pos) < 1e-9);
    }

    #[test]
    fn resampled_points_lie_on_original_path(t in trajectory(), iv in 1.0..40.0f64) {
        let r = resample(&t, TimeDelta::from_secs(iv)).unwrap();
        for f in r.fixes() {
            let orig = position_at(&t, f.t).unwrap();
            prop_assert!(orig.distance(f.pos) < 1e-6);
        }
    }

    #[test]
    fn slice_is_within_bounds(t in trajectory(), a in 0.0..1.0f64, b in 0.0..1.0f64) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let t0 = t.start_time().lerp(t.end_time(), lo);
        let t1 = t.start_time().lerp(t.end_time(), hi);
        if let Some(s) = slice_time(&t, t0, t1) {
            prop_assert!(s.start_time() >= t0 - TimeDelta::from_secs(1e-9));
            prop_assert!(s.end_time() <= t1 + TimeDelta::from_secs(1e-9));
            // Sliced trajectory agrees with the original everywhere.
            let mid = s.start_time().lerp(s.end_time(), 0.5);
            let a = position_at(&s, mid).unwrap();
            let b = position_at(&t, mid).unwrap();
            prop_assert!(a.distance(b) < 1e-6);
        }
    }

    #[test]
    fn rigid_motions_preserve_stats(t in trajectory(), dt in -100.0..100.0f64, dx in -100.0..100.0f64, dy in -100.0..100.0f64) {
        let orig = TrajectoryStats::of(&t);
        let moved = translate(&shift_time(&t, TimeDelta::from_secs(dt)), traj_geom::Vec2::new(dx, dy));
        let m = TrajectoryStats::of(&moved);
        prop_assert!((orig.length_m - m.length_m).abs() < 1e-6);
        prop_assert!((orig.duration.as_secs() - m.duration.as_secs()).abs() < 1e-9);
        prop_assert_eq!(orig.n_points, m.n_points);
        prop_assert!((orig.displacement_m - m.displacement_m).abs() < 1e-6);
    }

    #[test]
    fn select_prefix_equals_subseries(t in trajectory()) {
        let k = t.len() / 2;
        let indices: Vec<usize> = (0..=k).collect();
        prop_assert_eq!(t.select(&indices), t.subseries(0, k));
    }

    #[test]
    fn length_at_least_displacement(t in trajectory()) {
        let s = TrajectoryStats::of(&t);
        prop_assert!(s.length_m + 1e-9 >= s.displacement_m);
    }

    /// Fuzz: the CSV parser never panics on arbitrary input — it returns
    /// a typed error or a valid trajectory.
    #[test]
    fn csv_parser_never_panics(input in "\\PC{0,256}") {
        let _ = io::from_csv_str(&input);
    }

    /// Fuzz with CSV-shaped garbage: lines of comma-separated tokens.
    #[test]
    fn csv_parser_handles_csv_shaped_garbage(
        rows in proptest::collection::vec(
            proptest::collection::vec("[-0-9a-zA-Z\\.]{0,8}", 0..5),
            0..20,
        )
    ) {
        let text: String = rows
            .iter()
            .map(|r| r.join(","))
            .collect::<Vec<_>>()
            .join("\n");
        if let Ok(t) = io::from_csv_str(&text) {
            // Anything accepted must be a valid trajectory.
            prop_assert!(!t.is_empty());
            prop_assert!(t.fixes().windows(2).all(|w| w[0].t < w[1].t));
        }
    }

    /// Spline interpolation stays within the span, passes through fixes,
    /// and never produces non-finite positions.
    #[test]
    fn spline_is_sane(t in trajectory(), f in 0.0..1.0f64) {
        use traj_model::spline::spline_position_at;
        let q = t.start_time().lerp(t.end_time(), f);
        let p = spline_position_at(&t, q).expect("within span");
        prop_assert!(p.is_finite());
        // At vertices it reproduces the sample.
        for fix in t.fixes() {
            let v = spline_position_at(&t, fix.t).expect("vertex in span");
            prop_assert!(v.distance(fix.pos) < 1e-6);
        }
    }

    #[test]
    fn index_at_is_consistent_with_covers(t in trajectory(), q in 0.0..2000.0f64) {
        let q = Timestamp::from_secs(q);
        match t.index_at(q) {
            None => prop_assert!(q < t.start_time()),
            Some(i) => {
                prop_assert!(t.fixes()[i].t <= q);
                if i + 1 < t.len() {
                    prop_assert!(q < t.fixes()[i + 1].t);
                }
            }
        }
    }
}
