//! Error types for trajectory construction and I/O.

use std::fmt;

/// Errors raised when constructing, transforming or parsing trajectories.
#[derive(Debug)]
pub enum ModelError {
    /// A trajectory needs at least `required` fixes but `actual` were
    /// given.
    TooShort {
        /// Minimum number of fixes required by the operation.
        required: usize,
        /// Number of fixes actually supplied.
        actual: usize,
    },
    /// Timestamps must be strictly increasing; violated at `index`.
    NonMonotonicTime {
        /// Index of the offending fix (the one not later than its
        /// predecessor).
        index: usize,
    },
    /// A fix contains a NaN or infinite coordinate/timestamp.
    NonFinite {
        /// Index of the offending fix.
        index: usize,
    },
    /// A CSV line could not be parsed.
    Parse {
        /// 1-based line number within the input.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::TooShort { required, actual } => {
                write!(f, "trajectory too short: needs {required} fixes, got {actual}")
            }
            ModelError::NonMonotonicTime { index } => {
                write!(f, "timestamps must be strictly increasing (violation at fix {index})")
            }
            ModelError::NonFinite { index } => {
                write!(f, "non-finite coordinate or timestamp at fix {index}")
            }
            ModelError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            ModelError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let msgs = [
            ModelError::TooShort { required: 2, actual: 1 }.to_string(),
            ModelError::NonMonotonicTime { index: 3 }.to_string(),
            ModelError::NonFinite { index: 7 }.to_string(),
            ModelError::Parse { line: 4, reason: "bad float".into() }.to_string(),
        ];
        assert!(msgs[0].contains("2") && msgs[0].contains("1"));
        assert!(msgs[1].contains("fix 3"));
        assert!(msgs[2].contains("fix 7"));
        assert!(msgs[3].contains("line 4") && msgs[3].contains("bad float"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = ModelError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
