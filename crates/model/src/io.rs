//! Plain-text interchange format for trajectories.
//!
//! One fix per line as `t,x,y` (seconds, metres, metres), `#`-prefixed
//! comment lines and blank lines ignored. An optional `t,x,y` header is
//! tolerated. This mirrors the paper's view of the data stream as a
//! sequence of `⟨t, x, y⟩` records.

use std::fs;
use std::path::Path;

use crate::error::ModelError;
use crate::trajectory::Trajectory;

/// Serializes a trajectory to the `t,x,y` text format.
pub fn to_csv_string(traj: &Trajectory) -> String {
    let mut out = String::with_capacity(traj.len() * 32 + 8);
    out.push_str("t,x,y\n");
    for f in traj.fixes() {
        out.push_str(&format!("{},{},{}\n", f.t.as_secs(), f.pos.x, f.pos.y));
    }
    out
}

/// Parses a trajectory from the `t,x,y` text format.
///
/// # Errors
/// Returns [`ModelError::Parse`] with a 1-based line number on malformed
/// records, and the usual construction errors (non-monotonic time,
/// non-finite values, empty input).
pub fn from_csv_str(s: &str) -> Result<Trajectory, ModelError> {
    let mut triples = Vec::new();
    for (idx, raw) in s.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if idx == 0 && line.eq_ignore_ascii_case("t,x,y") {
            continue;
        }
        let mut parts = line.split(',');
        let mut field = |name: &str| -> Result<f64, ModelError> {
            let text = parts.next().ok_or_else(|| ModelError::Parse {
                line: idx + 1,
                reason: format!("missing field `{name}`"),
            })?;
            text.trim().parse::<f64>().map_err(|e| ModelError::Parse {
                line: idx + 1,
                reason: format!("bad `{name}` value {text:?}: {e}"),
            })
        };
        let t = field("t")?;
        let x = field("x")?;
        let y = field("y")?;
        if parts.next().is_some() {
            return Err(ModelError::Parse {
                line: idx + 1,
                reason: "too many fields (expected t,x,y)".into(),
            });
        }
        triples.push((t, x, y));
    }
    Trajectory::from_triples(triples)
}

/// Parses a `t,lat,lon` file (seconds, WGS-84 degrees) into a planar
/// trajectory.
///
/// The projection is an equirectangular plane centred on the first fix
/// (see [`traj_geom::LocalProjection`]); the returned projection lets
/// callers map query results back to geographic coordinates. Comment
/// lines (`#`), blank lines and a `t,lat,lon` header are tolerated.
///
/// # Errors
/// Like [`from_csv_str`], plus a parse error when a latitude is outside
/// `[-90, 90]` or a longitude outside `[-180, 180]`.
pub fn from_geo_csv_str(
    s: &str,
) -> Result<(Trajectory, traj_geom::LocalProjection), ModelError> {
    let mut records: Vec<(usize, f64, traj_geom::GeoPoint)> = Vec::new();
    for (idx, raw) in s.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if idx == 0 && line.eq_ignore_ascii_case("t,lat,lon") {
            continue;
        }
        let mut parts = line.split(',');
        let mut field = |name: &str| -> Result<f64, ModelError> {
            let text = parts.next().ok_or_else(|| ModelError::Parse {
                line: idx + 1,
                reason: format!("missing field `{name}`"),
            })?;
            text.trim().parse::<f64>().map_err(|e| ModelError::Parse {
                line: idx + 1,
                reason: format!("bad `{name}` value {text:?}: {e}"),
            })
        };
        let t = field("t")?;
        let lat = field("lat")?;
        let lon = field("lon")?;
        if parts.next().is_some() {
            return Err(ModelError::Parse {
                line: idx + 1,
                reason: "too many fields (expected t,lat,lon)".into(),
            });
        }
        if !(-90.0..=90.0).contains(&lat) {
            return Err(ModelError::Parse {
                line: idx + 1,
                reason: format!("latitude {lat} outside [-90, 90]"),
            });
        }
        if !(-180.0..=180.0).contains(&lon) {
            return Err(ModelError::Parse {
                line: idx + 1,
                reason: format!("longitude {lon} outside [-180, 180]"),
            });
        }
        records.push((idx + 1, t, traj_geom::GeoPoint::new(lat, lon)));
    }
    let first = records.first().ok_or(ModelError::TooShort { required: 1, actual: 0 })?;
    let proj = traj_geom::LocalProjection::new(first.2);
    let triples = records.iter().map(|&(_, t, g)| {
        let p = proj.to_plane(g);
        (t, p.x, p.y)
    });
    Ok((Trajectory::from_triples(triples)?, proj))
}

/// Reads a `t,lat,lon` GPS file; see [`from_geo_csv_str`].
pub fn read_geo_csv(
    path: &Path,
) -> Result<(Trajectory, traj_geom::LocalProjection), ModelError> {
    from_geo_csv_str(&fs::read_to_string(path)?)
}

/// Writes a trajectory to `path` in the `t,x,y` format.
pub fn write_csv(traj: &Trajectory, path: &Path) -> Result<(), ModelError> {
    fs::write(path, to_csv_string(traj))?;
    Ok(())
}

/// Reads a trajectory from a `t,x,y` file.
pub fn read_csv(path: &Path) -> Result<Trajectory, ModelError> {
    from_csv_str(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::from_triples([(0.0, 1.5, -2.0), (10.0, 3.25, 4.0), (20.5, 5.0, 6.125)])
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_fixes_exactly() {
        let t = traj();
        let parsed = from_csv_str(&to_csv_string(&t)).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn parser_skips_comments_blanks_and_header() {
        let text = "t,x,y\n# a comment\n\n0,0,0\n  10 , 1 , 2 \n";
        let t = from_csv_str(text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.last().pos.x, 1.0);
    }

    #[test]
    fn parser_reports_line_numbers() {
        let err = from_csv_str("t,x,y\n0,0,0\n5,oops,0\n").unwrap_err();
        match err {
            ModelError::Parse { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains("oops"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_wrong_arity() {
        assert!(matches!(from_csv_str("1,2\n"), Err(ModelError::Parse { .. })));
        assert!(matches!(from_csv_str("1,2,3,4\n"), Err(ModelError::Parse { .. })));
    }

    #[test]
    fn parser_propagates_model_validation() {
        // Non-monotonic time is a construction error, not a parse error.
        let err = from_csv_str("5,0,0\n4,1,1\n").unwrap_err();
        assert!(matches!(err, ModelError::NonMonotonicTime { index: 1 }));
        assert!(matches!(from_csv_str(""), Err(ModelError::TooShort { .. })));
    }

    #[test]
    fn geo_csv_projects_to_local_metres() {
        // Two fixes 0.01° of latitude apart ≈ 1112 m north.
        let text = "t,lat,lon\n0,52.22,6.89\n60,52.23,6.89\n";
        let (t, proj) = from_geo_csv_str(text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.first().pos, traj_geom::Point2::ORIGIN);
        let north = t.last().pos.y;
        assert!((north - 1112.0).abs() < 5.0, "north displacement {north}");
        assert!(t.last().pos.x.abs() < 1e-6);
        // The projection round-trips back to the source coordinates.
        let back = proj.to_geo(t.last().pos);
        assert!((back.lat_deg - 52.23).abs() < 1e-9);
        assert!((back.lon_deg - 6.89).abs() < 1e-9);
    }

    #[test]
    fn geo_csv_rejects_out_of_range_coordinates() {
        let bad_lat = from_geo_csv_str("0,91.0,6.0\n").unwrap_err();
        assert!(matches!(bad_lat, ModelError::Parse { line: 1, .. }), "{bad_lat}");
        let bad_lon = from_geo_csv_str("0,52.0,181.0\n").unwrap_err();
        assert!(bad_lon.to_string().contains("longitude"));
    }

    #[test]
    fn geo_csv_empty_and_arity_errors() {
        assert!(matches!(from_geo_csv_str(""), Err(ModelError::TooShort { .. })));
        assert!(matches!(
            from_geo_csv_str("0,52.0\n"),
            Err(ModelError::Parse { .. })
        ));
        assert!(matches!(
            from_geo_csv_str("0,52.0,6.0,9\n"),
            Err(ModelError::Parse { .. })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("trajc_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let t = traj();
        write_csv(&t, &path).unwrap();
        assert_eq!(read_csv(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_csv(Path::new("/definitely/not/here.csv")).unwrap_err();
        assert!(matches!(err, ModelError::Io(_)));
    }
}
