//! The time axis: instants and durations in seconds.
//!
//! The paper models time as `T ≅ IR`; we use `f64` seconds relative to an
//! arbitrary recording epoch. Newtypes keep instants and durations from
//! being confused and centralize finiteness checking.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the recording time axis, seconds since an arbitrary epoch.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Timestamp(f64);

/// A signed span of time, seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct TimeDelta(f64);

impl Timestamp {
    /// The recording epoch (t = 0 s).
    pub const EPOCH: Timestamp = Timestamp(0.0);

    /// Creates a timestamp from seconds since the epoch.
    #[inline]
    pub const fn from_secs(secs: f64) -> Self {
        Timestamp(secs)
    }

    /// Seconds since the epoch.
    #[inline]
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// Whether the value is finite (not NaN/∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Linear interpolation between two instants (`self` at `f = 0`).
    #[inline]
    pub fn lerp(self, other: Timestamp, f: f64) -> Timestamp {
        Timestamp(self.0 + (other.0 - self.0) * f)
    }

    /// The fraction of the way `self` lies from `a` to `b`, i.e. the
    /// paper's time-interval ratio `Δi / Δe` (§3.2).
    ///
    /// Returns `None` when the interval is zero-length — or when its
    /// span is NaN, which would otherwise poison the ratio.
    #[inline]
    pub fn ratio_within(self, a: Timestamp, b: Timestamp) -> Option<f64> {
        let span = b.0 - a.0;
        if traj_geom::numeric::approx_zero(span, 0.0) {
            None
        } else {
            Some((self.0 - a.0) / span)
        }
    }

    /// The index of the `width_secs`-wide bucket containing this
    /// instant, saturating at the `i64` range.
    ///
    /// This is *the* checked replacement for the
    /// `(t.as_secs() / width).floor() as i64` idiom: a bare `as` cast
    /// of a NaN or out-of-range float is a silent wraparound hazard,
    /// and bucketing timestamps is exactly where corrupt input (NaN
    /// fixes, ±∞ from a zero-duration division) would corrupt an index
    /// key. NaN maps to bucket 0 and a non-positive or NaN width is
    /// treated as degenerate (everything in bucket 0) rather than
    /// producing ±∞ indices.
    #[inline]
    pub fn bucket_index(self, width_secs: f64) -> i64 {
        // NaN widths are incomparable and fall into the degenerate arm.
        if !matches!(
            width_secs.partial_cmp(&0.0),
            Some(std::cmp::Ordering::Greater)
        ) {
            return 0;
        }
        saturating_to_i64((self.0 / width_secs).floor())
    }
}

/// Saturating float → `i64`, the conversion primitive behind the
/// checked time helpers. NaN maps to 0.
#[inline]
fn saturating_to_i64(v: f64) -> i64 {
    // `as` on floats saturates (and maps NaN to 0) since Rust 1.45,
    // but routing every call through this named, tested function keeps
    // the intent auditable — and the time_cast lint enforces that
    // call sites outside this module use it.
    v as i64
}

impl TimeDelta {
    /// The zero duration.
    pub const ZERO: TimeDelta = TimeDelta(0.0);

    /// Creates a delta from seconds.
    #[inline]
    pub const fn from_secs(secs: f64) -> Self {
        TimeDelta(secs)
    }

    /// Creates a delta from minutes.
    #[inline]
    pub fn from_mins(mins: f64) -> Self {
        TimeDelta(mins * 60.0)
    }

    /// The span in seconds.
    #[inline]
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// The span in minutes.
    #[inline]
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// Whether the value is finite (not NaN/∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Absolute value of the span.
    #[inline]
    pub fn abs(self) -> TimeDelta {
        TimeDelta(self.0.abs())
    }

    /// Whether the span is strictly positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }

    /// Number of `width_secs`-wide buckets needed to cover this span
    /// (ceiling division), saturating into the `usize` range.
    ///
    /// The checked replacement for `(d.as_secs() / w).ceil() as usize`:
    /// NaN and negative spans yield 0 buckets, a non-positive or NaN
    /// width is degenerate (0 buckets) instead of ∞.
    #[inline]
    pub fn bucket_count(self, width_secs: f64) -> usize {
        // NaN widths are incomparable and fall into the degenerate arm.
        if !matches!(
            width_secs.partial_cmp(&0.0),
            Some(std::cmp::Ordering::Greater)
        ) {
            return 0;
        }
        // Float → usize `as` saturates ([0, usize::MAX]) and maps NaN
        // to 0; this module is the audited home for that conversion.
        (self.0 / width_secs).ceil() as usize
    }
}

impl Sub for Timestamp {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: Timestamp) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl Sub<TimeDelta> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl SubAssign<TimeDelta> for Timestamp {
    #[inline]
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Mul<f64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn mul(self, rhs: f64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl Div<f64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn div(self, rhs: f64) -> TimeDelta {
        TimeDelta(self.0 / rhs)
    }
}

impl Div for TimeDelta {
    type Output = f64;
    #[inline]
    fn div(self, rhs: TimeDelta) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for TimeDelta {
    /// Formats as `HH:MM:SS`, the notation of the paper's Table 2.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0.abs().round() as u64;
        let sign = if self.0 < 0.0 { "-" } else { "" };
        write!(f, "{}{:02}:{:02}:{:02}", sign, total / 3600, (total % 3600) / 60, total % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = Timestamp::from_secs(100.0);
        let d = TimeDelta::from_secs(40.0);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        let mut m = t;
        m += d;
        m -= d;
        assert_eq!(m, t);
    }

    #[test]
    fn ratio_within_interval() {
        let a = Timestamp::from_secs(10.0);
        let b = Timestamp::from_secs(20.0);
        assert_eq!(Timestamp::from_secs(15.0).ratio_within(a, b), Some(0.5));
        assert_eq!(Timestamp::from_secs(10.0).ratio_within(a, b), Some(0.0));
        assert_eq!(Timestamp::from_secs(20.0).ratio_within(a, b), Some(1.0));
        // Extrapolation outside the interval is well defined.
        assert_eq!(Timestamp::from_secs(30.0).ratio_within(a, b), Some(2.0));
        // Zero-length interval.
        assert_eq!(Timestamp::from_secs(10.0).ratio_within(a, a), None);
    }

    #[test]
    fn lerp_between_instants() {
        let a = Timestamp::from_secs(0.0);
        let b = Timestamp::from_secs(10.0);
        assert_eq!(a.lerp(b, 0.25), Timestamp::from_secs(2.5));
    }

    #[test]
    fn delta_conversions() {
        assert_eq!(TimeDelta::from_mins(2.0).as_secs(), 120.0);
        assert_eq!(TimeDelta::from_secs(90.0).as_mins(), 1.5);
        assert_eq!(TimeDelta::from_secs(-5.0).abs(), TimeDelta::from_secs(5.0));
        assert!(TimeDelta::from_secs(1.0).is_positive());
        assert!(!TimeDelta::ZERO.is_positive());
    }

    #[test]
    fn delta_ratio_division() {
        let a = TimeDelta::from_secs(30.0);
        let b = TimeDelta::from_secs(60.0);
        assert_eq!(a / b, 0.5);
        assert_eq!(b / 2.0, TimeDelta::from_secs(30.0));
        assert_eq!(a * 2.0, b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TimeDelta::from_secs(1936.0).to_string(), "00:32:16");
        assert_eq!(TimeDelta::from_secs(-61.0).to_string(), "-00:01:01");
        assert_eq!(Timestamp::from_secs(1.5).to_string(), "1.500s");
    }

    #[test]
    fn ratio_within_nan_span_is_degenerate() {
        let nan = Timestamp::from_secs(f64::NAN);
        let a = Timestamp::from_secs(1.0);
        assert_eq!(a.ratio_within(a, nan), None);
        assert_eq!(a.ratio_within(nan, a), None);
    }

    #[test]
    fn bucket_index_floors_and_saturates() {
        assert_eq!(Timestamp::from_secs(0.0).bucket_index(60.0), 0);
        assert_eq!(Timestamp::from_secs(59.9).bucket_index(60.0), 0);
        assert_eq!(Timestamp::from_secs(60.0).bucket_index(60.0), 1);
        assert_eq!(Timestamp::from_secs(-0.1).bucket_index(60.0), -1);
        assert_eq!(Timestamp::from_secs(f64::INFINITY).bucket_index(60.0), i64::MAX);
        assert_eq!(Timestamp::from_secs(f64::NEG_INFINITY).bucket_index(60.0), i64::MIN);
        assert_eq!(Timestamp::from_secs(f64::NAN).bucket_index(60.0), 0);
        // Degenerate widths collapse to a single bucket.
        assert_eq!(Timestamp::from_secs(500.0).bucket_index(0.0), 0);
        assert_eq!(Timestamp::from_secs(500.0).bucket_index(f64::NAN), 0);
    }

    #[test]
    fn bucket_count_ceils_and_saturates() {
        assert_eq!(TimeDelta::from_secs(0.0).bucket_count(60.0), 0);
        assert_eq!(TimeDelta::from_secs(1.0).bucket_count(60.0), 1);
        assert_eq!(TimeDelta::from_secs(60.0).bucket_count(60.0), 1);
        assert_eq!(TimeDelta::from_secs(61.0).bucket_count(60.0), 2);
        assert_eq!(TimeDelta::from_secs(-5.0).bucket_count(60.0), 0);
        assert_eq!(TimeDelta::from_secs(f64::NAN).bucket_count(60.0), 0);
        assert_eq!(TimeDelta::from_secs(10.0).bucket_count(0.0), 0);
    }

    #[test]
    fn finiteness() {
        assert!(Timestamp::from_secs(1.0).is_finite());
        assert!(!Timestamp::from_secs(f64::NAN).is_finite());
        assert!(!TimeDelta::from_secs(f64::INFINITY).is_finite());
    }
}
