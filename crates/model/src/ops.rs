//! Trajectory transformations: resampling, time slicing, shifting.

use crate::error::ModelError;
use crate::fix::Fix;
use crate::interp::position_at;
use crate::time::{TimeDelta, Timestamp};
use crate::trajectory::Trajectory;
use traj_geom::Vec2;

/// Resamples `traj` at a fixed `interval`, starting at its first timestamp.
///
/// The final original fix is always included (possibly at an irregular
/// last interval), so the resampled trajectory spans the same time range.
/// Positions are linear interpolations on the original path.
///
/// # Errors
/// Returns [`ModelError::TooShort`] if `traj` has fewer than 2 fixes, and
/// panics if `interval` is not strictly positive (a programming error).
pub fn resample(traj: &Trajectory, interval: TimeDelta) -> Result<Trajectory, ModelError> {
    assert!(interval.is_positive(), "resample interval must be > 0");
    if traj.len() < 2 {
        return Err(ModelError::TooShort { required: 2, actual: traj.len() });
    }
    let start = traj.start_time();
    let end = traj.end_time();
    let mut fixes = Vec::new();
    let mut t = start;
    while t < end {
        // `start <= t < end` keeps t inside the span; a NaN interval
        // cannot reach here (is_positive is false for NaN).
        let Some(pos) = position_at(traj, t) else { break };
        fixes.push(Fix::new(t, pos));
        t += interval;
    }
    fixes.push(*traj.last());
    Trajectory::new(fixes)
}

/// The part of `traj` within `[t0, t1]`, with interpolated boundary fixes.
///
/// Returns `None` when the requested window does not overlap the
/// trajectory's span in an interval of positive length, or `t0 >= t1`.
pub fn slice_time(traj: &Trajectory, t0: Timestamp, t1: Timestamp) -> Option<Trajectory> {
    if !t0.is_finite() || !t1.is_finite() || t1 <= t0 {
        return None;
    }
    let lo = if t0 > traj.start_time() { t0 } else { traj.start_time() };
    let hi = if t1 < traj.end_time() { t1 } else { traj.end_time() };
    if hi <= lo {
        return None;
    }
    let mut fixes = Vec::new();
    fixes.push(Fix::new(lo, position_at(traj, lo)?));
    for f in traj.fixes() {
        if f.t > lo && f.t < hi {
            fixes.push(*f);
        }
    }
    fixes.push(Fix::new(hi, position_at(traj, hi)?));
    Trajectory::new(fixes).ok()
}

/// The trajectory with all timestamps shifted by `dt`.
pub fn shift_time(traj: &Trajectory, dt: TimeDelta) -> Trajectory {
    let fixes = traj.fixes().iter().map(|f| Fix::new(f.t + dt, f.pos)).collect();
    // lint: allow(panic) shifting every timestamp by one finite delta
    // preserves strict monotonicity; a failure here is a Fix/Trajectory
    // invariant bug worth aborting on
    Trajectory::new(fixes).expect("shift preserves monotonicity")
}

/// The trajectory with all positions translated by `v`.
pub fn translate(traj: &Trajectory, v: Vec2) -> Trajectory {
    let fixes = traj.fixes().iter().map(|f| Fix::new(f.t, f.pos + v)).collect();
    // lint: allow(panic) timestamps are untouched, so monotonicity is
    // inherited from the input trajectory
    Trajectory::new(fixes).expect("translation preserves monotonicity")
}

/// Splits `traj` wherever the gap between consecutive fixes exceeds
/// `max_gap`, yielding the maximal connected pieces.
///
/// Useful for raw GPS logs where the receiver lost signal: the compression
/// algorithms assume a continuously observed object, so large gaps should
/// become trajectory boundaries.
pub fn split_on_gaps(traj: &Trajectory, max_gap: TimeDelta) -> Vec<Trajectory> {
    assert!(max_gap.is_positive(), "max_gap must be > 0");
    let mut parts = Vec::new();
    let mut start = 0usize;
    let fixes = traj.fixes();
    for i in 1..fixes.len() {
        if fixes[i].t - fixes[i - 1].t > max_gap {
            parts.push(traj.subseries(start, i - 1));
            start = i;
        }
    }
    parts.push(traj.subseries(start, fixes.len() - 1));
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geom::Point2;

    fn traj() -> Trajectory {
        Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 100.0, 0.0),
            (25.0, 100.0, 150.0),
        ])
        .unwrap()
    }

    #[test]
    fn resample_regular_grid_keeps_endpoints() {
        let r = resample(&traj(), TimeDelta::from_secs(5.0)).unwrap();
        let times: Vec<f64> = r.fixes().iter().map(|f| f.t.as_secs()).collect();
        assert_eq!(times, vec![0.0, 5.0, 10.0, 15.0, 20.0, 25.0]);
        assert_eq!(r.get(1).unwrap().pos, Point2::new(50.0, 0.0));
        assert_eq!(r.last().pos, Point2::new(100.0, 150.0));
    }

    #[test]
    fn resample_irregular_tail() {
        // Interval 7 s over 25 s span: samples at 0,7,14,21 then the final
        // fix at 25.
        let r = resample(&traj(), TimeDelta::from_secs(7.0)).unwrap();
        let times: Vec<f64> = r.fixes().iter().map(|f| f.t.as_secs()).collect();
        assert_eq!(times, vec![0.0, 7.0, 14.0, 21.0, 25.0]);
    }

    #[test]
    fn resample_too_short_errors() {
        let single = Trajectory::from_triples([(0.0, 0.0, 0.0)]).unwrap();
        assert!(matches!(
            resample(&single, TimeDelta::from_secs(1.0)),
            Err(ModelError::TooShort { .. })
        ));
    }

    #[test]
    fn slice_interpolates_boundaries() {
        let s = slice_time(&traj(), Timestamp::from_secs(5.0), Timestamp::from_secs(17.5))
            .unwrap();
        assert_eq!(s.first().t.as_secs(), 5.0);
        assert_eq!(s.first().pos, Point2::new(50.0, 0.0));
        assert_eq!(s.last().t.as_secs(), 17.5);
        assert_eq!(s.last().pos, Point2::new(100.0, 75.0));
        // Interior original vertex at t=10 retained.
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn slice_clamps_to_span_and_rejects_disjoint() {
        let t = traj();
        let s = slice_time(&t, Timestamp::from_secs(-100.0), Timestamp::from_secs(100.0))
            .unwrap();
        assert_eq!(s.first().t, t.start_time());
        assert_eq!(s.last().t, t.end_time());
        assert!(slice_time(&t, Timestamp::from_secs(30.0), Timestamp::from_secs(40.0)).is_none());
        assert!(slice_time(&t, Timestamp::from_secs(5.0), Timestamp::from_secs(5.0)).is_none());
    }

    #[test]
    fn shift_and_translate_are_rigid() {
        let t = traj();
        let shifted = shift_time(&t, TimeDelta::from_secs(100.0));
        assert_eq!(shifted.start_time().as_secs(), 100.0);
        assert_eq!(shifted.duration(), t.duration());
        let moved = translate(&t, Vec2::new(10.0, -5.0));
        assert_eq!(moved.first().pos, Point2::new(10.0, -5.0));
        let s_orig = crate::stats::TrajectoryStats::of(&t);
        let s_moved = crate::stats::TrajectoryStats::of(&moved);
        assert!((s_orig.length_m - s_moved.length_m).abs() < 1e-9);
    }

    #[test]
    fn split_on_gaps_partitions() {
        let t = Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 1.0, 0.0),
            (200.0, 2.0, 0.0), // 190 s gap
            (210.0, 3.0, 0.0),
        ])
        .unwrap();
        let parts = split_on_gaps(&t, TimeDelta::from_secs(60.0));
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[1].len(), 2);
        // No gap: single part.
        let whole = split_on_gaps(&t, TimeDelta::from_secs(1000.0));
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].len(), 4);
    }
}
