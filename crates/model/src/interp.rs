//! Piecewise-linear interpolation along a trajectory.
//!
//! Implements the paper's `loc : IP → (T ⇸ IL)` (§4.2): for a trajectory
//! `p`, `loc(p)` is a partial function defined on `[p[1]_t, p[len(p)]_t]`
//! that linearly interpolates between consecutive fixes, and — for a single
//! segment — follows equations (1)–(2) of §3.2.

use crate::fix::Fix;
use crate::time::Timestamp;
use crate::trajectory::Trajectory;
use traj_geom::Point2;

/// Position of the object at time `t`, or `None` outside the trajectory's
/// time span — the paper's partial function `loc(p)`.
///
/// `O(log n)` via binary search over the fix timestamps.
pub fn position_at(traj: &Trajectory, t: Timestamp) -> Option<Point2> {
    if !traj.covers(t) {
        return None;
    }
    let i = traj.index_at(t)?;
    let fixes = traj.fixes();
    if i + 1 == fixes.len() {
        // t equals the final timestamp.
        return Some(fixes[i].pos);
    }
    Some(Fix::interpolate(&fixes[i], &fixes[i + 1], t))
}

/// Positions at each of `times` (which must be sorted ascending), in a
/// single forward sweep — `O(n + m)` instead of `O(m log n)`.
///
/// Times outside the trajectory's span yield `None` entries.
pub fn positions_at_sorted(traj: &Trajectory, times: &[Timestamp]) -> Vec<Option<Point2>> {
    let fixes = traj.fixes();
    let mut out = Vec::with_capacity(times.len());
    let mut seg = 0usize;
    for &t in times {
        if !traj.covers(t) {
            out.push(None);
            continue;
        }
        while seg + 1 < fixes.len() && fixes[seg + 1].t < t {
            seg += 1;
        }
        if seg + 1 == fixes.len() {
            out.push(Some(fixes[seg].pos));
        } else {
            out.push(Some(Fix::interpolate(&fixes[seg], &fixes[seg + 1], t)));
        }
    }
    out
}

/// Distance between two synchronously travelling objects at time `t`, or
/// `None` if either trajectory does not cover `t`.
///
/// This is the integrand of the paper's average synchronous error (§4.2):
/// `dist(loc(p, t), loc(a, t))`.
pub fn synchronous_distance(p: &Trajectory, a: &Trajectory, t: Timestamp) -> Option<f64> {
    Some(position_at(p, t)?.distance(position_at(a, t)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 100.0, 0.0),
            (30.0, 100.0, 200.0),
        ])
        .unwrap()
    }

    #[test]
    fn position_at_vertices() {
        let t = traj();
        assert_eq!(position_at(&t, Timestamp::from_secs(0.0)), Some(Point2::new(0.0, 0.0)));
        assert_eq!(position_at(&t, Timestamp::from_secs(10.0)), Some(Point2::new(100.0, 0.0)));
        assert_eq!(position_at(&t, Timestamp::from_secs(30.0)), Some(Point2::new(100.0, 200.0)));
    }

    #[test]
    fn position_at_interior_points() {
        let t = traj();
        assert_eq!(position_at(&t, Timestamp::from_secs(5.0)), Some(Point2::new(50.0, 0.0)));
        assert_eq!(position_at(&t, Timestamp::from_secs(20.0)), Some(Point2::new(100.0, 100.0)));
    }

    #[test]
    fn position_outside_span_is_none() {
        let t = traj();
        assert_eq!(position_at(&t, Timestamp::from_secs(-0.1)), None);
        assert_eq!(position_at(&t, Timestamp::from_secs(30.1)), None);
    }

    #[test]
    fn single_fix_trajectory_is_defined_at_its_instant_only() {
        let t = Trajectory::from_triples([(5.0, 7.0, 8.0)]).unwrap();
        assert_eq!(position_at(&t, Timestamp::from_secs(5.0)), Some(Point2::new(7.0, 8.0)));
        assert_eq!(position_at(&t, Timestamp::from_secs(5.1)), None);
    }

    #[test]
    fn sweep_matches_pointwise_queries() {
        let t = traj();
        let times: Vec<Timestamp> =
            (-2..35).map(|s| Timestamp::from_secs(s as f64)).collect();
        let swept = positions_at_sorted(&t, &times);
        for (ts, got) in times.iter().zip(&swept) {
            assert_eq!(*got, position_at(&t, *ts), "at t={ts}");
        }
    }

    #[test]
    fn synchronous_distance_between_parallel_trajectories() {
        let p = traj();
        // Same motion shifted 3 m east.
        let a = Trajectory::from_triples([
            (0.0, 3.0, 0.0),
            (10.0, 103.0, 0.0),
            (30.0, 103.0, 200.0),
        ])
        .unwrap();
        for s in [0.0, 5.0, 10.0, 20.0, 30.0] {
            let d = synchronous_distance(&p, &a, Timestamp::from_secs(s)).unwrap();
            assert!((d - 3.0).abs() < 1e-9, "at {s}: {d}");
        }
        assert_eq!(synchronous_distance(&p, &a, Timestamp::from_secs(31.0)), None);
    }
}
