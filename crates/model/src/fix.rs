//! A single time-stamped position sample.

use crate::time::{TimeDelta, Timestamp};
use traj_geom::Point2;

/// One GPS-style sample `⟨t, x, y⟩` — the paper's data point `d : T × IL`
/// with `d_t` and `d_loc` projections (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fix {
    /// Sample instant (`d_t`).
    pub t: Timestamp,
    /// Sampled position (`d_loc`).
    pub pos: Point2,
}

impl Fix {
    /// Creates a fix from an instant and position.
    #[inline]
    pub const fn new(t: Timestamp, pos: Point2) -> Self {
        Fix { t, pos }
    }

    /// Convenience constructor from raw seconds and metre coordinates.
    #[inline]
    pub const fn from_parts(t_secs: f64, x: f64, y: f64) -> Self {
        Fix { t: Timestamp::from_secs(t_secs), pos: Point2::new(x, y) }
    }

    /// Whether both timestamp and position are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.t.is_finite() && self.pos.is_finite()
    }

    /// Derived (average) speed from `self` to `next`, metres/second.
    ///
    /// This is the paper's `v_i = dist(s[i+1]_loc, s[i]_loc) / (s[i+1]_t -
    /// s[i]_t)` — speeds are *derived from timestamps and positions*, not
    /// measured (§3.3). Returns `None` when the two fixes share a
    /// timestamp.
    #[inline]
    pub fn speed_to(&self, next: &Fix) -> Option<f64> {
        let dt = (next.t - self.t).as_secs();
        if traj_geom::numeric::approx_zero(dt, 0.0) {
            None
        } else {
            Some(self.pos.distance(next.pos) / dt.abs())
        }
    }

    /// Time elapsed from `self` to `other` (negative if `other` is
    /// earlier).
    #[inline]
    pub fn time_to(&self, other: &Fix) -> TimeDelta {
        other.t - self.t
    }

    /// The position of an object travelling linearly from `a` to `b`, at
    /// time `t` — the paper's equations (1)–(2):
    ///
    /// ```text
    /// x' = x_s + Δi/Δe · (x_e − x_s),   y' = y_s + Δi/Δe · (y_e − y_s)
    /// ```
    ///
    /// `t` outside `[a.t, b.t]` extrapolates along the same motion. When
    /// `a` and `b` share a timestamp the position of `a` is returned (the
    /// degenerate segment carries no motion).
    #[inline]
    pub fn interpolate(a: &Fix, b: &Fix, t: Timestamp) -> Point2 {
        match t.ratio_within(a.t, b.t) {
            Some(f) => a.pos.lerp(b.pos, f),
            None => a.pos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_is_distance_over_time() {
        let a = Fix::from_parts(0.0, 0.0, 0.0);
        let b = Fix::from_parts(10.0, 30.0, 40.0);
        assert_eq!(a.speed_to(&b), Some(5.0));
        // Symmetric in magnitude.
        assert_eq!(b.speed_to(&a), Some(5.0));
    }

    #[test]
    fn speed_with_zero_dt_is_none() {
        let a = Fix::from_parts(5.0, 0.0, 0.0);
        let b = Fix::from_parts(5.0, 10.0, 0.0);
        assert_eq!(a.speed_to(&b), None);
    }

    #[test]
    fn interpolate_matches_paper_equations() {
        // Ps = (ts=0, 0, 0), Pe = (te=100, 100, 50); at ti=25 the
        // approximated position is (25, 12.5).
        let ps = Fix::from_parts(0.0, 0.0, 0.0);
        let pe = Fix::from_parts(100.0, 100.0, 50.0);
        let p = Fix::interpolate(&ps, &pe, Timestamp::from_secs(25.0));
        assert_eq!(p, Point2::new(25.0, 12.5));
    }

    #[test]
    fn interpolate_at_endpoints() {
        let a = Fix::from_parts(10.0, 1.0, 2.0);
        let b = Fix::from_parts(20.0, 3.0, 4.0);
        assert_eq!(Fix::interpolate(&a, &b, a.t), a.pos);
        assert_eq!(Fix::interpolate(&a, &b, b.t), b.pos);
    }

    #[test]
    fn interpolate_extrapolates() {
        let a = Fix::from_parts(0.0, 0.0, 0.0);
        let b = Fix::from_parts(10.0, 10.0, 0.0);
        assert_eq!(Fix::interpolate(&a, &b, Timestamp::from_secs(20.0)), Point2::new(20.0, 0.0));
    }

    #[test]
    fn interpolate_degenerate_interval_returns_first() {
        let a = Fix::from_parts(5.0, 1.0, 1.0);
        let b = Fix::from_parts(5.0, 9.0, 9.0);
        assert_eq!(Fix::interpolate(&a, &b, Timestamp::from_secs(5.0)), a.pos);
    }

    #[test]
    fn time_to_is_signed() {
        let a = Fix::from_parts(10.0, 0.0, 0.0);
        let b = Fix::from_parts(25.0, 0.0, 0.0);
        assert_eq!(a.time_to(&b).as_secs(), 15.0);
        assert_eq!(b.time_to(&a).as_secs(), -15.0);
    }

    #[test]
    fn finiteness() {
        assert!(Fix::from_parts(0.0, 1.0, 2.0).is_finite());
        assert!(!Fix::from_parts(f64::NAN, 1.0, 2.0).is_finite());
        assert!(!Fix::from_parts(0.0, f64::INFINITY, 2.0).is_finite());
    }
}
