//! Cached structure-of-arrays columns for one trajectory.
//!
//! [`TrajColumns`] owns the three `f64` columns behind a
//! [`TrajView`]: it is the bridge between the array-of-structs façade
//! (`&Trajectory`, which every public API keeps accepting) and the
//! columnar interior the batched kernels in `traj-geom` scan. Workspaces
//! hold one and [`bind`](TrajColumns::bind) it per call: binding is
//! keyed by trajectory identity (buffer address, length, first/last
//! timestamp bits — the same recipe the evaluation engine uses for its
//! segment-table cache), so sweeping one trajectory across many
//! thresholds fills the columns exactly once and every later bind is a
//! cheap key comparison.

use crate::fix::Fix;
use crate::trajectory::Trajectory;
use traj_geom::TrajView;

/// Identity of the fix buffer a column set was filled from. The
/// endpoint bits (timestamps *and* positions of the first and last fix)
/// guard against a reallocation landing a *different* trajectory at the
/// same address with the same length — same-cadence tracks share
/// endpoint timestamps, so position bits are required to tell them
/// apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ColumnsKey {
    ptr: usize,
    len: usize,
    ends: [u64; 6],
}

fn end_bits(f: &Fix) -> [u64; 3] {
    [f.t.as_secs().to_bits(), f.pos.x.to_bits(), f.pos.y.to_bits()]
}

fn key_of(fixes: &[Fix]) -> ColumnsKey {
    let ends = match (fixes.first(), fixes.last()) {
        (Some(a), Some(b)) => {
            let ([a0, a1, a2], [b0, b1, b2]) = (end_bits(a), end_bits(b));
            [a0, a1, a2, b0, b1, b2]
        }
        _ => [0; 6],
    };
    ColumnsKey { ptr: fixes.as_ptr() as usize, len: fixes.len(), ends }
}

/// Copies `fixes` into the three columns, reusing their capacity. This
/// is the one place fix structs are de-interleaved; everything
/// downstream reads contiguous columns.
fn fill_columns(fixes: &[Fix], ts: &mut Vec<f64>, xs: &mut Vec<f64>, ys: &mut Vec<f64>) {
    ts.clear();
    xs.clear();
    ys.clear();
    ts.reserve(fixes.len());
    xs.reserve(fixes.len());
    ys.reserve(fixes.len());
    for f in fixes {
        ts.push(f.t.as_secs());
        xs.push(f.pos.x);
        ys.push(f.pos.y);
    }
}

/// Owned, identity-keyed trajectory columns; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct TrajColumns {
    ts: Vec<f64>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    key: Option<ColumnsKey>,
}

impl TrajColumns {
    /// An empty, unbound column set.
    pub fn new() -> Self {
        TrajColumns::default()
    }

    /// Builds columns directly from a fix slice (keyed to it, so a later
    /// [`bind`](TrajColumns::bind) against the same buffer reuses them).
    pub fn from_fixes(fixes: &[Fix]) -> Self {
        let mut cols = TrajColumns::new();
        fill_columns(fixes, &mut cols.ts, &mut cols.xs, &mut cols.ys);
        cols.key = Some(key_of(fixes));
        cols
    }

    /// Points the columns at `traj`, refilling them only if the cached
    /// identity differs. Returns `true` when the columns were (re)built,
    /// `false` when the bind was served from cache.
    pub fn bind(&mut self, traj: &Trajectory) -> bool {
        let fixes = traj.fixes();
        let key = key_of(fixes);
        if self.key == Some(key) {
            return false;
        }
        // Self-invalidate while refilling so a panic mid-fill cannot
        // leave stale columns behind a valid key.
        self.key = None;
        fill_columns(fixes, &mut self.ts, &mut self.xs, &mut self.ys);
        self.key = Some(key);
        true
    }

    /// Whether both column sets were filled from the same (still
    /// identically-keyed) fix buffer. `false` whenever either side is
    /// unbound — an unbound set vouches for nothing.
    pub fn same_source(&self, other: &TrajColumns) -> bool {
        self.key.is_some() && self.key == other.key
    }

    /// The borrowed structure-of-arrays view over the bound columns.
    #[inline]
    pub fn view(&self) -> TrajView<'_> {
        TrajView { ts: &self.ts, xs: &self.xs, ys: &self.ys }
    }

    /// Number of points currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether no points are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Approximate heap bytes currently reserved by the columns (used by
    /// workspace warm-reuse accounting).
    pub fn capacity_bytes(&self) -> usize {
        (self.ts.capacity() + self.xs.capacity() + self.ys.capacity()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(n: usize, off: f64) -> Trajectory {
        Trajectory::from_triples((0..n).map(|i| (i as f64, i as f64 * 2.0 + off, off)))
            .unwrap()
    }

    #[test]
    fn bind_fills_once_and_reuses() {
        let t = traj(50, 0.0);
        let mut cols = TrajColumns::new();
        assert!(cols.bind(&t), "first bind builds");
        assert!(!cols.bind(&t), "second bind reuses");
        assert_eq!(cols.len(), 50);
        let v = cols.view();
        for (i, f) in t.fixes().iter().enumerate() {
            assert_eq!(v.ts[i].to_bits(), f.t.as_secs().to_bits());
            assert_eq!(v.xs[i].to_bits(), f.pos.x.to_bits());
            assert_eq!(v.ys[i].to_bits(), f.pos.y.to_bits());
        }
    }

    #[test]
    fn rebinding_a_different_trajectory_rebuilds() {
        let a = traj(50, 0.0);
        let b = traj(30, 7.0);
        let mut cols = TrajColumns::new();
        assert!(cols.bind(&a));
        assert!(cols.bind(&b), "different trajectory rebuilds");
        assert_eq!(cols.len(), 30);
        assert!(cols.bind(&a), "switching back rebuilds again");
        assert_eq!(cols.len(), 50);
    }

    #[test]
    fn from_fixes_is_prebound() {
        let t = traj(20, 1.0);
        let mut cols = TrajColumns::from_fixes(t.fixes());
        assert_eq!(cols.len(), 20);
        assert!(!cols.bind(&t), "bind against the same buffer reuses");
    }

    #[test]
    fn recycled_allocation_with_same_cadence_rebuilds() {
        // Two tracks with identical length and identical first/last
        // timestamps, where the second is allocated after the first is
        // dropped (the allocator frequently hands back the same block).
        // The position bits in the key must force a rebuild.
        let mut cols = TrajColumns::new();
        let a = traj(200, 0.0);
        assert!(cols.bind(&a));
        drop(a);
        let b = traj(200, 7.0);
        assert!(cols.bind(&b), "aliased buffer must not serve stale columns");
        let v = cols.view();
        for (i, f) in b.fixes().iter().enumerate() {
            assert_eq!(v.xs[i].to_bits(), f.pos.x.to_bits());
        }
    }

    #[test]
    fn empty_and_capacity() {
        let cols = TrajColumns::new();
        assert!(cols.is_empty());
        assert_eq!(cols.capacity_bytes(), 0);
        let t = traj(8, 0.0);
        let cols = TrajColumns::from_fixes(t.fixes());
        assert!(cols.capacity_bytes() >= 8 * 3 * std::mem::size_of::<f64>());
    }
}
