//! Trajectory and dataset statistics (the paper's Table 2).
//!
//! Table 2 reports, over ten car trajectories: duration, average speed,
//! length, displacement and number of data points — each as mean ±
//! standard deviation. [`TrajectoryStats`] computes the per-trajectory
//! values; [`DatasetStats`] aggregates them.

use crate::time::TimeDelta;
use crate::trajectory::Trajectory;
use traj_geom::polyline_length;

/// Summary statistics of a single trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryStats {
    /// Total time span.
    pub duration: TimeDelta,
    /// Path length along the piecewise-linear trajectory, metres.
    pub length_m: f64,
    /// Straight-line distance between first and last position, metres.
    pub displacement_m: f64,
    /// Mean travel speed `length / duration`, metres/second (zero for a
    /// zero-duration trajectory).
    pub avg_speed_ms: f64,
    /// Largest derived per-segment speed, metres/second.
    pub max_speed_ms: f64,
    /// Number of data points.
    pub n_points: usize,
    /// Mean sampling interval, seconds (zero for a single point).
    pub mean_interval_s: f64,
}

impl TrajectoryStats {
    /// Computes the statistics of `traj`.
    pub fn of(traj: &Trajectory) -> Self {
        let positions: Vec<_> = traj.positions().collect();
        let length_m = polyline_length(&positions);
        let duration = traj.duration();
        let dur_s = duration.as_secs();
        let avg_speed_ms = if dur_s > 0.0 { length_m / dur_s } else { 0.0 };
        let max_speed_ms = traj
            .segments()
            .filter_map(|(a, b)| a.speed_to(b))
            .fold(0.0f64, f64::max);
        let n = traj.len();
        let mean_interval_s = if n > 1 { dur_s / (n - 1) as f64 } else { 0.0 };
        TrajectoryStats {
            duration,
            length_m,
            displacement_m: traj.first().pos.distance(traj.last().pos),
            avg_speed_ms,
            max_speed_ms,
            n_points: n,
            mean_interval_s,
        }
    }

    /// Average speed in km/h (the unit of Table 2).
    #[inline]
    pub fn avg_speed_kmh(&self) -> f64 {
        self.avg_speed_ms * 3.6
    }

    /// Length in km (the unit of Table 2).
    #[inline]
    pub fn length_km(&self) -> f64 {
        self.length_m / 1000.0
    }

    /// Displacement in km (the unit of Table 2).
    #[inline]
    pub fn displacement_km(&self) -> f64 {
        self.displacement_m / 1000.0
    }
}

/// Derived per-segment speeds, m/s — the paper's `vᵢ` series (§3.3),
/// one entry per segment. Empty for single-fix trajectories.
pub fn speed_series(traj: &Trajectory) -> Vec<f64> {
    traj.segments().filter_map(|(a, b)| a.speed_to(b)).collect()
}

/// Absolute heading change at every interior fix, radians in `[0, π]` —
/// the angularity signal behind Jenks-style simplification and the
/// movers' behavioural tests. Degenerate (zero-length) segments
/// contribute a zero change.
pub fn heading_change_series(traj: &Trajectory) -> Vec<f64> {
    let fixes = traj.fixes();
    fixes
        .windows(3)
        .map(|w| {
            let v1 = w[1].pos - w[0].pos;
            let v2 = w[2].pos - w[1].pos;
            if traj_geom::numeric::approx_zero(v1.norm_sq(), 0.0)
                || traj_geom::numeric::approx_zero(v2.norm_sq(), 0.0)
            {
                0.0
            } else {
                let a = v2.angle() - v1.angle();
                a.abs().min(std::f64::consts::TAU - a.abs())
            }
        })
        .collect()
}

/// Mean and (population) standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation (√ of the biased variance), matching
    /// the descriptive use in the paper's Table 2.
    pub std: f64,
}

impl MeanStd {
    /// Computes mean/std of `values`; zero mean and std for an empty
    /// sample.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return MeanStd { mean: 0.0, std: 0.0 };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        MeanStd { mean, std: var.sqrt() }
    }

    /// Whether `x` lies within `k` standard deviations of the mean.
    pub fn within(&self, x: f64, k: f64) -> bool {
        (x - self.mean).abs() <= k * self.std
    }
}

/// Aggregate statistics over a set of trajectories — the rows of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Duration, seconds.
    pub duration_s: MeanStd,
    /// Average speed, km/h.
    pub speed_kmh: MeanStd,
    /// Length, km.
    pub length_km: MeanStd,
    /// Displacement, km.
    pub displacement_km: MeanStd,
    /// Number of data points.
    pub n_points: MeanStd,
}

impl DatasetStats {
    /// Aggregates per-trajectory statistics over `trajectories`.
    pub fn of(trajectories: &[Trajectory]) -> Self {
        let per: Vec<TrajectoryStats> = trajectories.iter().map(TrajectoryStats::of).collect();
        let col = |f: &dyn Fn(&TrajectoryStats) -> f64| {
            MeanStd::of(&per.iter().map(f).collect::<Vec<_>>())
        };
        DatasetStats {
            duration_s: col(&|s| s.duration.as_secs()),
            speed_kmh: col(&|s| s.avg_speed_kmh()),
            length_km: col(&|s| s.length_km()),
            displacement_km: col(&|s| s.displacement_km()),
            n_points: col(&|s| s.n_points as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_loop() -> Trajectory {
        // 4 × 100 m sides in 40 s → 10 m/s average, displacement back to
        // near the origin.
        Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 100.0, 0.0),
            (20.0, 100.0, 100.0),
            (30.0, 0.0, 100.0),
            (40.0, 0.0, 10.0),
        ])
        .unwrap()
    }

    #[test]
    fn stats_of_square_loop() {
        let s = TrajectoryStats::of(&square_loop());
        assert_eq!(s.duration.as_secs(), 40.0);
        assert_eq!(s.length_m, 390.0);
        assert_eq!(s.displacement_m, 10.0);
        assert!((s.avg_speed_ms - 9.75).abs() < 1e-12);
        assert_eq!(s.max_speed_ms, 10.0);
        assert_eq!(s.n_points, 5);
        assert_eq!(s.mean_interval_s, 10.0);
    }

    #[test]
    fn unit_conversions() {
        let s = TrajectoryStats::of(&square_loop());
        assert!((s.avg_speed_kmh() - 35.1).abs() < 1e-9);
        assert!((s.length_km() - 0.39).abs() < 1e-12);
        assert!((s.displacement_km() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn single_fix_stats_are_degenerate_but_defined() {
        let t = Trajectory::from_triples([(3.0, 1.0, 1.0)]).unwrap();
        let s = TrajectoryStats::of(&t);
        assert_eq!(s.duration.as_secs(), 0.0);
        assert_eq!(s.length_m, 0.0);
        assert_eq!(s.avg_speed_ms, 0.0);
        assert_eq!(s.max_speed_ms, 0.0);
        assert_eq!(s.n_points, 1);
        assert_eq!(s.mean_interval_s, 0.0);
    }

    #[test]
    fn mean_std_basics() {
        let ms = MeanStd::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(ms.mean, 5.0);
        assert_eq!(ms.std, 2.0);
        assert!(ms.within(6.0, 1.0));
        assert!(!ms.within(10.0, 2.0));
        let empty = MeanStd::of(&[]);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.std, 0.0);
    }

    #[test]
    fn speed_series_matches_segments() {
        let t = square_loop();
        let speeds = speed_series(&t);
        assert_eq!(speeds.len(), 4);
        assert_eq!(speeds[0], 10.0);
        assert_eq!(speeds[3], 9.0);
        let single = Trajectory::from_triples([(0.0, 0.0, 0.0)]).unwrap();
        assert!(speed_series(&single).is_empty());
    }

    #[test]
    fn heading_changes_of_square_loop_are_right_angles() {
        let t = square_loop();
        let turns = heading_change_series(&t);
        assert_eq!(turns.len(), 3);
        for (i, turn) in turns.iter().enumerate() {
            assert!(
                (turn - std::f64::consts::FRAC_PI_2).abs() < 1e-9,
                "turn {i}: {turn}"
            );
        }
    }

    #[test]
    fn heading_changes_handle_standstill() {
        let t = Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (1.0, 0.0, 0.0), // no motion
            (2.0, 5.0, 0.0),
        ])
        .unwrap();
        assert_eq!(heading_change_series(&t), vec![0.0]);
    }

    #[test]
    fn dataset_stats_aggregate() {
        let t1 = square_loop();
        let t2 = Trajectory::from_triples([(0.0, 0.0, 0.0), (20.0, 200.0, 0.0)]).unwrap();
        let d = DatasetStats::of(&[t1, t2]);
        assert_eq!(d.duration_s.mean, 30.0);
        assert_eq!(d.n_points.mean, 3.5);
        assert!(d.length_km.mean > 0.0);
    }
}
