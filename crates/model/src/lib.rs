//! Trajectory model for moving point objects.
//!
//! A *trajectory* is a finite sequence of time-stamped positions — the
//! paper's `IP ≅ seq (T × IL)` — interpreted as a piecewise-linear path in
//! space-time. This crate provides:
//!
//! * [`Timestamp`] / [`TimeDelta`] — the time axis `T ≅ IR` (seconds);
//! * [`Fix`] — one time-stamped position sample `⟨t, x, y⟩`;
//! * [`Trajectory`] — a validated series with strictly increasing
//!   timestamps, plus slicing (`p[k, m]`), concatenation (`++`) and
//!   iteration, mirroring the paper's Table 1 vocabulary;
//! * [`interp`] — the piecewise-linear `loc(p, t)` of §4.2 and the
//!   time-ratio synchronized position of §3.2 (eqs. 1–2);
//! * [`stats`] — per-trajectory and per-dataset statistics (Table 2);
//! * [`ops`] — resampling, time slicing and related transformations;
//! * [`io`] — a plain-text `t,x,y` CSV format for interchange;
//! * [`cols`] — cached structure-of-arrays columns ([`TrajColumns`])
//!   behind the batched kernels in `traj-geom`.

pub mod cols;
pub mod error;
pub mod fix;
pub mod interp;
pub mod io;
pub mod ops;
pub mod spline;
pub mod stats;
pub mod time;
pub mod trajectory;

pub use cols::TrajColumns;
pub use error::ModelError;
pub use fix::Fix;
pub use stats::{DatasetStats, MeanStd, TrajectoryStats};
pub use time::{TimeDelta, Timestamp};
pub use trajectory::Trajectory;
