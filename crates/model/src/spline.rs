//! Catmull–Rom spline interpolation along a trajectory.
//!
//! The paper closes with: "Piecewise linear interpolation was used as
//! the approximation technique. Considering that other measurements such
//! as momentaneous speed and direction values are sometimes available,
//! other, more advanced, interpolation techniques and consequently other
//! error notions can be defined." (§5.)
//!
//! This module supplies that extension: a time-parameterized
//! **Catmull–Rom** (cubic Hermite) interpolant through the sample
//! points. Tangents are the standard three-point finite differences on
//! the non-uniform time grid, so the curve
//!
//! * passes through every fix at its timestamp,
//! * is C¹ (continuous velocity — a physical object does not teleport
//!   its velocity the way the piecewise-linear model assumes),
//! * degenerates to the linear interpolant on collinear constant-speed
//!   samples.
//!
//! `traj-compress` builds the companion error notion
//! (`spline_synchronous_error`) on top: original motion evaluated under
//! this interpolant versus the (still piecewise-linear) compressed
//! approximation.

use crate::time::Timestamp;
use crate::trajectory::Trajectory;
use traj_geom::{Point2, Vec2};

/// Velocity (tangent) estimate at fix `i` by non-uniform finite
/// differences: central where possible, one-sided at the ends.
fn tangent(traj: &Trajectory, i: usize) -> Vec2 {
    let f = traj.fixes();
    let n = f.len();
    debug_assert!(n >= 2);
    if i == 0 {
        let dt = (f[1].t - f[0].t).as_secs();
        (f[1].pos - f[0].pos) / dt
    } else if i + 1 == n {
        let dt = (f[n - 1].t - f[n - 2].t).as_secs();
        (f[n - 1].pos - f[n - 2].pos) / dt
    } else {
        // Non-uniform central difference (Fritsch–Butland style simple
        // weighted form): exact for quadratic motion in t.
        let t0 = f[i - 1].t.as_secs();
        let t1 = f[i].t.as_secs();
        let t2 = f[i + 1].t.as_secs();
        let d01 = (f[i].pos - f[i - 1].pos) / (t1 - t0);
        let d12 = (f[i + 1].pos - f[i].pos) / (t2 - t1);
        let w = (t1 - t0) / (t2 - t0);
        d01 * (1.0 - w) + d12 * w
    }
}

/// Position at `t` under the Catmull–Rom interpolant, or `None` outside
/// the trajectory's time span.
///
/// For trajectories of fewer than 3 fixes the interpolant coincides with
/// the linear one.
pub fn spline_position_at(traj: &Trajectory, t: Timestamp) -> Option<Point2> {
    if !traj.covers(t) {
        return None;
    }
    let f = traj.fixes();
    if f.len() < 3 {
        return crate::interp::position_at(traj, t);
    }
    let i = traj.index_at(t)?;
    if i + 1 == f.len() {
        return Some(f[i].pos);
    }
    let (a, b) = (&f[i], &f[i + 1]);
    let h = (b.t - a.t).as_secs();
    let s = (t - a.t).as_secs() / h;
    // Cubic Hermite basis on [0, 1] with tangents scaled by h.
    let m0 = tangent(traj, i) * h;
    let m1 = tangent(traj, i + 1) * h;
    let s2 = s * s;
    let s3 = s2 * s;
    let h00 = 2.0 * s3 - 3.0 * s2 + 1.0;
    let h10 = s3 - 2.0 * s2 + s;
    let h01 = -2.0 * s3 + 3.0 * s2;
    let h11 = s3 - s2;
    Some(Point2::new(
        h00 * a.pos.x + h10 * m0.x + h01 * b.pos.x + h11 * m1.x,
        h00 * a.pos.y + h10 * m0.y + h01 * b.pos.y + h11 * m1.y,
    ))
}

/// Instantaneous velocity at `t` under the Catmull–Rom interpolant, or
/// `None` outside the time span. At a vertex this is the (single,
/// continuous) tangent — unlike the linear model, which is two-valued
/// there.
pub fn spline_velocity_at(traj: &Trajectory, t: Timestamp) -> Option<Vec2> {
    if !traj.covers(t) {
        return None;
    }
    let f = traj.fixes();
    if f.len() < 2 {
        return Some(Vec2::ZERO);
    }
    if f.len() < 3 {
        let dt = (f[1].t - f[0].t).as_secs();
        return Some((f[1].pos - f[0].pos) / dt);
    }
    let i = traj.index_at(t)?;
    if i + 1 == f.len() {
        return Some(tangent(traj, i));
    }
    let (a, b) = (&f[i], &f[i + 1]);
    let h = (b.t - a.t).as_secs();
    let s = (t - a.t).as_secs() / h;
    let m0 = tangent(traj, i) * h;
    let m1 = tangent(traj, i + 1) * h;
    let s2 = s * s;
    // Derivatives of the Hermite basis, divided by h (chain rule).
    let dh00 = (6.0 * s2 - 6.0 * s) / h;
    let dh10 = (3.0 * s2 - 4.0 * s + 1.0) / h;
    let dh01 = (-6.0 * s2 + 6.0 * s) / h;
    let dh11 = (3.0 * s2 - 2.0 * s) / h;
    Some(Vec2::new(
        dh00 * a.pos.x + dh10 * m0.x + dh01 * b.pos.x + dh11 * m1.x,
        dh00 * a.pos.y + dh10 * m0.y + dh01 * b.pos.y + dh11 * m1.y,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curved() -> Trajectory {
        Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 100.0, 0.0),
            (20.0, 180.0, 60.0),
            (30.0, 220.0, 160.0),
            (40.0, 220.0, 280.0),
        ])
        .unwrap()
    }

    #[test]
    fn passes_through_every_fix() {
        let t = curved();
        for f in t.fixes() {
            let p = spline_position_at(&t, f.t).unwrap();
            assert!(p.distance(f.pos) < 1e-9, "at {}: {:?} vs {:?}", f.t, p, f.pos);
        }
    }

    #[test]
    fn collinear_constant_speed_matches_linear() {
        let t = Trajectory::from_triples((0..6).map(|i| (i as f64 * 10.0, i as f64 * 70.0, 0.0)))
            .unwrap();
        for s in [5.0, 12.5, 37.0, 48.0] {
            let ts = Timestamp::from_secs(s);
            let lin = crate::interp::position_at(&t, ts).unwrap();
            let spl = spline_position_at(&t, ts).unwrap();
            assert!(lin.distance(spl) < 1e-9, "at {s}: {lin:?} vs {spl:?}");
        }
    }

    #[test]
    fn exact_for_quadratic_motion() {
        // x(t) = t², sampled non-uniformly: central differences are exact
        // for quadratics, so the Hermite interpolant reproduces the curve
        // on interior segments.
        let times = [0.0, 1.0, 2.5, 4.0, 5.0, 7.0];
        let t = Trajectory::from_triples(times.iter().map(|&s| (s, s * s, 0.0))).unwrap();
        // Check interior segments only (boundary tangents are one-sided).
        for s in [1.5, 3.0, 4.5] {
            let p = spline_position_at(&t, Timestamp::from_secs(s)).unwrap();
            assert!(
                (p.x - s * s).abs() < 1e-9,
                "at {s}: {} vs {}",
                p.x,
                s * s
            );
        }
    }

    #[test]
    fn velocity_is_continuous_at_vertices() {
        let t = curved();
        for f in &t.fixes()[1..t.len() - 1] {
            let before = spline_velocity_at(&t, f.t - crate::time::TimeDelta::from_secs(1e-7))
                .unwrap();
            let at = spline_velocity_at(&t, f.t).unwrap();
            assert!(
                (before - at).norm() < 1e-3,
                "velocity jump at {}: {:?} vs {:?}",
                f.t,
                before,
                at
            );
        }
    }

    #[test]
    fn outside_span_is_none() {
        let t = curved();
        assert!(spline_position_at(&t, Timestamp::from_secs(-1.0)).is_none());
        assert!(spline_position_at(&t, Timestamp::from_secs(41.0)).is_none());
        assert!(spline_velocity_at(&t, Timestamp::from_secs(41.0)).is_none());
    }

    #[test]
    fn two_fix_trajectory_falls_back_to_linear() {
        let t = Trajectory::from_triples([(0.0, 0.0, 0.0), (10.0, 100.0, 50.0)]).unwrap();
        let p = spline_position_at(&t, Timestamp::from_secs(5.0)).unwrap();
        assert!(p.distance(Point2::new(50.0, 25.0)) < 1e-9);
        let v = spline_velocity_at(&t, Timestamp::from_secs(5.0)).unwrap();
        assert!((v - Vec2::new(10.0, 5.0)).norm() < 1e-9);
    }

    #[test]
    fn deviates_from_linear_on_curves() {
        // On a genuine curve the spline must cut the corner differently
        // from the chord.
        let t = curved();
        let ts = Timestamp::from_secs(15.0);
        let lin = crate::interp::position_at(&t, ts).unwrap();
        let spl = spline_position_at(&t, ts).unwrap();
        assert!(lin.distance(spl) > 0.5, "spline suspiciously linear: {}", lin.distance(spl));
    }
}
