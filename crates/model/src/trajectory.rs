//! The validated trajectory type.

use crate::error::ModelError;
use crate::fix::Fix;
use crate::time::{TimeDelta, Timestamp};
use traj_geom::{Bbox, Point2};

/// A moving point object's trajectory: a finite series of time-stamped
/// positions with **strictly increasing timestamps** (the paper's
/// `p : IP`).
///
/// The monotonic-time invariant is established at construction and
/// preserved by every method, so downstream algorithms (interpolation,
/// compression, error evaluation) can rely on `t[i] < t[i+1]` without
/// re-checking. A trajectory has at least one fix; most algorithms
/// additionally require two or more.
///
/// ```
/// use traj_model::{Trajectory, Timestamp};
/// use traj_model::interp::position_at;
///
/// let trip = Trajectory::from_triples([
///     (0.0, 0.0, 0.0),
///     (10.0, 100.0, 0.0),
///     (20.0, 100.0, 80.0),
/// ]).unwrap();
/// assert_eq!(trip.len(), 3);
/// assert_eq!(trip.duration().as_secs(), 20.0);
/// // The paper's loc(p, t): linear interpolation within the span.
/// let mid = position_at(&trip, Timestamp::from_secs(5.0)).unwrap();
/// assert_eq!((mid.x, mid.y), (50.0, 0.0));
/// // Construction rejects time-travel.
/// assert!(Trajectory::from_triples([(5.0, 0.0, 0.0), (5.0, 1.0, 1.0)]).is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    fixes: Vec<Fix>,
}

impl Trajectory {
    /// Builds a trajectory from fixes, validating finiteness and strict
    /// time monotonicity.
    pub fn new(fixes: Vec<Fix>) -> Result<Self, ModelError> {
        if fixes.is_empty() {
            return Err(ModelError::TooShort { required: 1, actual: 0 });
        }
        for (i, f) in fixes.iter().enumerate() {
            if !f.is_finite() {
                return Err(ModelError::NonFinite { index: i });
            }
            if i > 0 && fixes[i - 1].t >= f.t {
                return Err(ModelError::NonMonotonicTime { index: i });
            }
        }
        Ok(Trajectory { fixes })
    }

    /// Builds a trajectory from parallel `(seconds, x, y)` triples.
    pub fn from_triples<I>(triples: I) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = (f64, f64, f64)>,
    {
        Trajectory::new(triples.into_iter().map(|(t, x, y)| Fix::from_parts(t, x, y)).collect())
    }

    /// Number of data points (the paper's `len(p)`).
    #[inline]
    pub fn len(&self) -> usize {
        self.fixes.len()
    }

    /// Whether the trajectory has no fixes. Always `false` for a
    /// constructed trajectory; present for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fixes.is_empty()
    }

    /// All fixes as a slice, in time order.
    #[inline]
    pub fn fixes(&self) -> &[Fix] {
        &self.fixes
    }

    /// The `i`-th fix (0-based; the paper's `p[i]` is 1-based).
    #[inline]
    pub fn get(&self, i: usize) -> Option<&Fix> {
        self.fixes.get(i)
    }

    /// First fix.
    #[inline]
    pub fn first(&self) -> &Fix {
        &self.fixes[0]
    }

    /// Last fix.
    #[inline]
    pub fn last(&self) -> &Fix {
        &self.fixes[self.fixes.len() - 1]
    }

    /// Start instant.
    #[inline]
    pub fn start_time(&self) -> Timestamp {
        self.first().t
    }

    /// End instant.
    #[inline]
    pub fn end_time(&self) -> Timestamp {
        self.last().t
    }

    /// Total time span (zero for single-fix trajectories).
    #[inline]
    pub fn duration(&self) -> TimeDelta {
        self.end_time() - self.start_time()
    }

    /// Whether `t` falls within `[start_time, end_time]`.
    #[inline]
    pub fn covers(&self, t: Timestamp) -> bool {
        self.start_time() <= t && t <= self.end_time()
    }

    /// Tight spatial bounding box of the sample points.
    pub fn bbox(&self) -> Bbox {
        Bbox::from_points(self.fixes.iter().map(|f| f.pos))
    }

    /// Positions only, in time order.
    pub fn positions(&self) -> impl Iterator<Item = Point2> + '_ {
        self.fixes.iter().map(|f| f.pos)
    }

    /// Consecutive fix pairs `(p[i], p[i+1])` — the trajectory's linear
    /// segments in space-time.
    pub fn segments(&self) -> impl Iterator<Item = (&Fix, &Fix)> + '_ {
        self.fixes.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// The subseries `p[k, m]` of the paper's Table 1 — fixes from index
    /// `k` up to and including `m` (0-based here).
    ///
    /// # Panics
    /// Panics if `k > m` or `m >= len`; slicing is an internal algorithmic
    /// operation whose arguments are always derived from valid indices.
    pub fn subseries(&self, k: usize, m: usize) -> Trajectory {
        assert!(k <= m && m < self.fixes.len(), "invalid subseries [{k}, {m}]");
        Trajectory { fixes: self.fixes[k..=m].to_vec() }
    }

    /// Concatenation `p ++ s` (Table 1).
    ///
    /// The first fix of `other` must be strictly later than the last fix of
    /// `self`; otherwise the monotonicity invariant would break and an
    /// error is returned.
    pub fn concat(&self, other: &Trajectory) -> Result<Trajectory, ModelError> {
        if other.first().t <= self.last().t {
            return Err(ModelError::NonMonotonicTime { index: self.len() });
        }
        let mut fixes = Vec::with_capacity(self.len() + other.len());
        fixes.extend_from_slice(&self.fixes);
        fixes.extend_from_slice(&other.fixes);
        Ok(Trajectory { fixes })
    }

    /// A new trajectory keeping only the fixes at `indices`.
    ///
    /// This is how a compression result (a subset of kept indices) is
    /// materialized. Indices must be strictly increasing and in range.
    ///
    /// # Panics
    /// Panics on out-of-range or non-increasing indices — compressors
    /// guarantee both by construction.
    pub fn select(&self, indices: &[usize]) -> Trajectory {
        assert!(!indices.is_empty(), "select requires at least one index");
        let mut fixes = Vec::with_capacity(indices.len());
        let mut prev: Option<usize> = None;
        for &i in indices {
            assert!(i < self.fixes.len(), "index {i} out of range");
            if let Some(p) = prev {
                assert!(p < i, "indices must be strictly increasing");
            }
            prev = Some(i);
            fixes.push(self.fixes[i]);
        }
        Trajectory { fixes }
    }

    /// Index of the last fix whose timestamp is `<= t`, or `None` if `t`
    /// precedes the trajectory. Binary search: `O(log n)`.
    pub fn index_at(&self, t: Timestamp) -> Option<usize> {
        if t < self.start_time() {
            return None;
        }
        // partition_point returns the first index with fix.t > t.
        let idx = self.fixes.partition_point(|f| f.t <= t);
        Some(idx - 1)
    }

    /// Consumes the trajectory, returning its fixes.
    pub fn into_fixes(self) -> Vec<Fix> {
        self.fixes
    }
}

impl<'a> IntoIterator for &'a Trajectory {
    type Item = &'a Fix;
    type IntoIter = std::slice::Iter<'a, Fix>;
    fn into_iter(self) -> Self::IntoIter {
        self.fixes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 100.0, 0.0),
            (20.0, 100.0, 100.0),
            (30.0, 0.0, 100.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates_monotonic_time() {
        let err = Trajectory::from_triples([(0.0, 0.0, 0.0), (0.0, 1.0, 1.0)]).unwrap_err();
        assert!(matches!(err, ModelError::NonMonotonicTime { index: 1 }));
        let err =
            Trajectory::from_triples([(5.0, 0.0, 0.0), (4.0, 1.0, 1.0), (6.0, 2.0, 2.0)])
                .unwrap_err();
        assert!(matches!(err, ModelError::NonMonotonicTime { index: 1 }));
    }

    #[test]
    fn construction_validates_finiteness_and_nonempty() {
        let err = Trajectory::new(vec![]).unwrap_err();
        assert!(matches!(err, ModelError::TooShort { .. }));
        let err = Trajectory::from_triples([(0.0, f64::NAN, 0.0)]).unwrap_err();
        assert!(matches!(err, ModelError::NonFinite { index: 0 }));
    }

    #[test]
    fn accessors() {
        let t = traj();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.first().t.as_secs(), 0.0);
        assert_eq!(t.last().t.as_secs(), 30.0);
        assert_eq!(t.duration().as_secs(), 30.0);
        assert!(t.covers(Timestamp::from_secs(15.0)));
        assert!(!t.covers(Timestamp::from_secs(31.0)));
        assert_eq!(t.segments().count(), 3);
    }

    #[test]
    fn bbox_covers_all_points() {
        let b = traj().bbox();
        assert_eq!(b.min, Point2::new(0.0, 0.0));
        assert_eq!(b.max, Point2::new(100.0, 100.0));
    }

    #[test]
    fn subseries_matches_paper_semantics() {
        let t = traj();
        let s = t.subseries(1, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.first().t.as_secs(), 10.0);
        assert_eq!(s.last().t.as_secs(), 20.0);
    }

    #[test]
    #[should_panic(expected = "invalid subseries")]
    fn subseries_rejects_bad_range() {
        let _ = traj().subseries(2, 1);
    }

    #[test]
    fn concat_requires_increasing_time() {
        let a = Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)]).unwrap();
        let b = Trajectory::from_triples([(2.0, 2.0, 0.0), (3.0, 3.0, 0.0)]).unwrap();
        let ab = a.concat(&b).unwrap();
        assert_eq!(ab.len(), 4);
        assert!(a.concat(&a).is_err());
    }

    #[test]
    fn select_keeps_subset() {
        let t = traj();
        let s = t.select(&[0, 2, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(1).unwrap().t.as_secs(), 20.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn select_rejects_unordered_indices() {
        let _ = traj().select(&[2, 1]);
    }

    #[test]
    fn index_at_binary_search() {
        let t = traj();
        assert_eq!(t.index_at(Timestamp::from_secs(-1.0)), None);
        assert_eq!(t.index_at(Timestamp::from_secs(0.0)), Some(0));
        assert_eq!(t.index_at(Timestamp::from_secs(9.9)), Some(0));
        assert_eq!(t.index_at(Timestamp::from_secs(10.0)), Some(1));
        assert_eq!(t.index_at(Timestamp::from_secs(30.0)), Some(3));
        assert_eq!(t.index_at(Timestamp::from_secs(99.0)), Some(3));
    }

    #[test]
    fn iteration_yields_all_fixes() {
        let t = traj();
        assert_eq!((&t).into_iter().count(), 4);
    }
}
