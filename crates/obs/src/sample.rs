//! Snapshot types: what a [`Registry`](crate::Registry) export looks like.
//!
//! These are always compiled (with or without the `enabled` feature) so
//! sinks and downstream report code never need feature gates; with
//! instrumentation disabled a snapshot is simply empty.

/// Which instrument produced a sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64` count.
    Counter,
    /// Last-write-wins `f64` level.
    Gauge,
    /// Log₂-bucketed distribution of `u64` observations.
    Histogram,
}

impl MetricKind {
    /// Stable lowercase name used by the JSON and CSV sinks.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Summary statistics of one histogram at snapshot time.
///
/// `count`, `sum`, `min` and `max` are exact; the percentiles are
/// estimated from the log₂ buckets (geometric bucket midpoint, clamped
/// to the observed `[min, max]`), so they are accurate to within a
/// factor of ~√2 — plenty for the order-of-magnitude questions the
/// workspace asks ("how deep does DP recurse", "how long is a split").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when `count == 0`).
    pub min: u64,
    /// Largest observation (0 when `count == 0`).
    pub max: u64,
    /// Estimated 50th percentile.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One metric at snapshot time: identity plus current value.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSample {
    /// Subsystem the metric belongs to (`compress`, `store`, `span`, …).
    pub subsystem: String,
    /// Metric name within the subsystem.
    pub name: String,
    /// Sorted `(key, value)` label pairs; empty for unlabeled metrics.
    pub labels: Vec<(String, String)>,
    /// Which instrument this is.
    pub kind: MetricKind,
    /// Counter count or gauge level (0.0 for histograms; see `histogram`).
    pub value: f64,
    /// Distribution summary; `None` unless `kind == Histogram`.
    pub histogram: Option<HistogramSummary>,
}

impl MetricSample {
    /// `subsystem.name{k=v,…}` — the human-readable identity.
    pub fn path(&self) -> String {
        let mut out = format!("{}.{}", self.subsystem, self.name);
        if !self.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push('=');
                out.push_str(v);
            }
            out.push('}');
        }
        out
    }
}
