//! Export sinks for registry snapshots: human table, JSON lines, CSV.
//!
//! All three take the same input — a `&[MetricSample]` from
//! [`Registry::snapshot`](crate::Registry) — and are pure functions of
//! it, so they stay testable without any global state.
//!
//! # CSV schema
//!
//! One row per metric, RFC-4180 quoting, stable column order:
//!
//! ```text
//! subsystem,name,labels,kind,value,count,sum,min,max,p50,p90,p99
//! ```
//!
//! Counters and gauges fill `value` and leave the histogram columns
//! empty; histograms leave `value` empty and fill `count`…`p99`. Labels
//! render as `k=v;k2=v2`.
//!
//! # JSON lines
//!
//! One JSON object per line:
//!
//! ```text
//! {"subsystem":"compress","name":"sed_evals","labels":{"algo":"td-tr"},"kind":"counter","value":841}
//! {"subsystem":"span","name":"cli.compress","kind":"histogram","count":1,"sum":51234,"min":51234,"max":51234,"p50":51234,"p90":51234,"p99":51234}
//! ```

use crate::sample::{MetricKind, MetricSample};

/// Renders a left-aligned human-readable table of the snapshot.
///
/// Counters/gauges print their value; histograms print
/// `count / mean / p50 / p99 / max`. Returns an explanatory one-liner
/// when the snapshot is empty (e.g. instrumentation compiled out).
pub fn render_table(samples: &[MetricSample]) -> String {
    if samples.is_empty() {
        return "(no metrics recorded — instrumentation may be compiled out)\n".to_string();
    }
    let rows: Vec<(String, String)> = samples
        .iter()
        .map(|s| {
            let value = match (s.kind, &s.histogram) {
                (MetricKind::Histogram, Some(h)) => format!(
                    "count {}  mean {:.1}  p50 {}  p99 {}  max {}",
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p99,
                    h.max
                ),
                (MetricKind::Gauge, _) => format_value(s.value),
                _ => format!("{}", s.value as u64),
            };
            (s.path(), value)
        })
        .collect();
    let width = rows.iter().map(|(p, _)| p.len()).max().unwrap_or(0);
    let mut out = String::new();
    let mut last_subsystem: Option<&str> = None;
    for (sample, (path, value)) in samples.iter().zip(&rows) {
        if last_subsystem != Some(sample.subsystem.as_str()) {
            if last_subsystem.is_some() {
                out.push('\n');
            }
            last_subsystem = Some(sample.subsystem.as_str());
        }
        out.push_str(&format!("  {path:<width$}  {value}\n"));
    }
    out
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Serializes the snapshot as JSON lines (one object per sample).
pub fn to_json_lines(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    for s in samples {
        out.push('{');
        push_json_field(&mut out, "subsystem", &s.subsystem);
        out.push(',');
        push_json_field(&mut out, "name", &s.name);
        if !s.labels.is_empty() {
            out.push_str(",\"labels\":{");
            for (i, (k, v)) in s.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_field(&mut out, k, v);
            }
            out.push('}');
        }
        out.push(',');
        push_json_field(&mut out, "kind", s.kind.as_str());
        match (s.kind, &s.histogram) {
            (MetricKind::Histogram, Some(h)) => {
                out.push_str(&format!(
                    ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
                    h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                ));
            }
            _ => {
                out.push_str(",\"value\":");
                out.push_str(&json_number(s.value));
            }
        }
        out.push_str("}\n");
    }
    out
}

fn push_json_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    push_json_escaped(out, key);
    out.push_str("\":\"");
    push_json_escaped(out, value);
    out.push('"');
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn json_number(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Column order of [`to_csv`], exposed so tests and readers can assert
/// schema stability.
pub const CSV_HEADER: &str = "subsystem,name,labels,kind,value,count,sum,min,max,p50,p90,p99";

/// Serializes the snapshot as RFC-4180 CSV with header [`CSV_HEADER`].
pub fn to_csv(samples: &[MetricSample]) -> String {
    let mut out = String::with_capacity(64 + samples.len() * 48);
    out.push_str(CSV_HEADER);
    out.push_str("\r\n");
    for s in samples {
        let labels = s
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(";");
        let mut fields: Vec<String> = vec![
            s.subsystem.clone(),
            s.name.clone(),
            labels,
            s.kind.as_str().to_string(),
        ];
        match (s.kind, &s.histogram) {
            (MetricKind::Histogram, Some(h)) => {
                fields.push(String::new());
                for v in [h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99] {
                    fields.push(v.to_string());
                }
            }
            _ => {
                fields.push(format_value(s.value));
                fields.extend(std::iter::repeat_with(String::new).take(7));
            }
        }
        let row = fields
            .iter()
            .map(|f| csv_escape(f))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&row);
        out.push_str("\r\n");
    }
    out
}

/// Quotes a CSV field per RFC 4180 when it contains a comma, quote, or
/// line break; embedded quotes are doubled.
fn csv_escape(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::HistogramSummary;

    fn counter(sub: &str, name: &str, labels: &[(&str, &str)], value: f64) -> MetricSample {
        MetricSample {
            subsystem: sub.to_string(),
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            kind: MetricKind::Counter,
            value,
            histogram: None,
        }
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let s = counter("compress", "sed_evals", &[("algo", "td-tr(\"30,5m\")")], 7.0);
        let csv = to_csv(&[s]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        assert_eq!(
            lines.next(),
            Some(r#"compress,sed_evals,"algo=td-tr(""30,5m"")",counter,7,,,,,,,"#)
        );
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let s = counter("a", "b", &[("path", "C:\\tmp \"x\"\n")], 1.0);
        let json = to_json_lines(&[s]);
        assert!(json.contains(r#""path":"C:\\tmp \"x\"\n""#), "{json}");
    }

    #[test]
    fn table_lists_histogram_stats() {
        let s = MetricSample {
            subsystem: "span".into(),
            name: "cli.compress".into(),
            labels: vec![],
            kind: MetricKind::Histogram,
            value: 0.0,
            histogram: Some(HistogramSummary {
                count: 3,
                sum: 300,
                min: 50,
                max: 200,
                p50: 100,
                p90: 200,
                p99: 200,
            }),
        };
        let table = render_table(&[s]);
        assert!(table.contains("span.cli.compress"), "{table}");
        assert!(table.contains("count 3"), "{table}");
        assert!(table.contains("p99 200"), "{table}");
    }

    #[test]
    fn empty_snapshot_renders_notice() {
        assert!(render_table(&[]).contains("no metrics recorded"));
        assert_eq!(to_json_lines(&[]), "");
        assert_eq!(to_csv(&[]).lines().count(), 1);
    }
}
