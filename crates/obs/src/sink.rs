//! Export sinks for registry snapshots: human table, JSON lines, CSV.
//!
//! All three take the same input — a `&[MetricSample]` from
//! [`Registry::snapshot`](crate::Registry) — and are pure functions of
//! it, so they stay testable without any global state.
//!
//! # CSV schema
//!
//! One row per metric, RFC-4180 quoting, stable column order:
//!
//! ```text
//! subsystem,name,labels,kind,value,count,sum,min,max,p50,p90,p99
//! ```
//!
//! Counters and gauges fill `value` and leave the histogram columns
//! empty; histograms leave `value` empty and fill `count`…`p99`. Labels
//! render as `k=v;k2=v2`.
//!
//! # JSON lines
//!
//! One JSON object per line:
//!
//! ```text
//! {"subsystem":"compress","name":"sed_evals","labels":{"algo":"td-tr"},"kind":"counter","value":841}
//! {"subsystem":"span","name":"cli.compress","kind":"histogram","count":1,"sum":51234,"min":51234,"max":51234,"p50":51234,"p90":51234,"p99":51234}
//! ```

use crate::json::Json;
use crate::sample::{HistogramSummary, MetricKind, MetricSample};

/// Renders a left-aligned human-readable table of the snapshot.
///
/// Counters/gauges print their value; histograms print
/// `count / mean / p50 / p99 / max`. Returns an explanatory one-liner
/// when the snapshot is empty (e.g. instrumentation compiled out).
pub fn render_table(samples: &[MetricSample]) -> String {
    if samples.is_empty() {
        return "(no metrics recorded — instrumentation may be compiled out)\n".to_string();
    }
    let rows: Vec<(String, String)> = samples
        .iter()
        .map(|s| {
            let value = match (s.kind, &s.histogram) {
                (MetricKind::Histogram, Some(h)) => format!(
                    "count {}  mean {:.1}  p50 {}  p99 {}  max {}",
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p99,
                    h.max
                ),
                (MetricKind::Gauge, _) => format_value(s.value),
                _ => format!("{}", s.value as u64),
            };
            (s.path(), value)
        })
        .collect();
    let width = rows.iter().map(|(p, _)| p.len()).max().unwrap_or(0);
    let mut out = String::new();
    let mut last_subsystem: Option<&str> = None;
    for (sample, (path, value)) in samples.iter().zip(&rows) {
        if last_subsystem != Some(sample.subsystem.as_str()) {
            if last_subsystem.is_some() {
                out.push('\n');
            }
            last_subsystem = Some(sample.subsystem.as_str());
        }
        out.push_str(&format!("  {path:<width$}  {value}\n"));
    }
    out
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Serializes the snapshot as JSON lines (one object per sample).
pub fn to_json_lines(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    for s in samples {
        out.push('{');
        push_json_field(&mut out, "subsystem", &s.subsystem);
        out.push(',');
        push_json_field(&mut out, "name", &s.name);
        if !s.labels.is_empty() {
            out.push_str(",\"labels\":{");
            for (i, (k, v)) in s.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_field(&mut out, k, v);
            }
            out.push('}');
        }
        out.push(',');
        push_json_field(&mut out, "kind", s.kind.as_str());
        match (s.kind, &s.histogram) {
            (MetricKind::Histogram, Some(h)) => {
                out.push_str(&format!(
                    ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
                    h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                ));
            }
            _ => {
                out.push_str(",\"value\":");
                out.push_str(&json_number(s.value));
            }
        }
        out.push_str("}\n");
    }
    out
}

fn push_json_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    push_json_escaped(out, key);
    out.push_str("\":\"");
    push_json_escaped(out, value);
    out.push('"');
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn json_number(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Column order of [`to_csv`], exposed so tests and readers can assert
/// schema stability.
pub const CSV_HEADER: &str = "subsystem,name,labels,kind,value,count,sum,min,max,p50,p90,p99";

/// Serializes the snapshot as RFC-4180 CSV with header [`CSV_HEADER`].
pub fn to_csv(samples: &[MetricSample]) -> String {
    let mut out = String::with_capacity(64 + samples.len() * 48);
    out.push_str(CSV_HEADER);
    out.push_str("\r\n");
    for s in samples {
        let labels = s
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(";");
        let mut fields: Vec<String> = vec![
            s.subsystem.clone(),
            s.name.clone(),
            labels,
            s.kind.as_str().to_string(),
        ];
        match (s.kind, &s.histogram) {
            (MetricKind::Histogram, Some(h)) => {
                fields.push(String::new());
                for v in [h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99] {
                    fields.push(v.to_string());
                }
            }
            _ => {
                fields.push(format_value(s.value));
                fields.extend(std::iter::repeat_with(String::new).take(7));
            }
        }
        let row = fields
            .iter()
            .map(|f| csv_escape(f))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&row);
        out.push_str("\r\n");
    }
    out
}

/// Quotes a CSV field per RFC 4180 when it contains a comma, quote, or
/// line break; embedded quotes are doubled.
fn csv_escape(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn kind_from_str(s: &str) -> Result<MetricKind, String> {
    match s {
        "counter" => Ok(MetricKind::Counter),
        "gauge" => Ok(MetricKind::Gauge),
        "histogram" => Ok(MetricKind::Histogram),
        other => Err(format!("unknown metric kind '{other}'")),
    }
}

/// Parses the output of [`to_json_lines`] back into samples — the
/// inverse used by `trajc obs merge` to combine `--metrics-out`
/// sidecars. Blank lines are skipped; a non-finite `value` serialized
/// as `null` reads back as NaN.
pub fn parse_json_lines(input: &str) -> Result<Vec<MetricSample>, String> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed =
            crate::json::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        out.push(sample_from_json(&parsed).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    Ok(out)
}

fn json_u64(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn sample_from_json(v: &Json) -> Result<MetricSample, String> {
    let field_str = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field '{key}'"))
    };
    let subsystem = field_str("subsystem")?;
    let name = field_str("name")?;
    let labels = match v.get("labels") {
        Some(Json::Object(pairs)) => pairs
            .iter()
            .map(|(k, val)| {
                val.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| format!("label '{k}' must be a string"))
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => Vec::new(),
    };
    let kind = kind_from_str(v.get("kind").and_then(Json::as_str).unwrap_or(""))?;
    let (value, histogram) = match kind {
        MetricKind::Histogram => (
            0.0,
            Some(HistogramSummary {
                count: json_u64(v, "count"),
                sum: json_u64(v, "sum"),
                min: json_u64(v, "min"),
                max: json_u64(v, "max"),
                p50: json_u64(v, "p50"),
                p90: json_u64(v, "p90"),
                p99: json_u64(v, "p99"),
            }),
        ),
        _ => (
            v.get("value").and_then(Json::as_f64).unwrap_or(f64::NAN),
            None,
        ),
    };
    Ok(MetricSample { subsystem, name, labels, kind, value, histogram })
}

/// Parses the output of [`to_csv`] back into samples — the CSV inverse
/// of [`parse_json_lines`]. The header must match [`CSV_HEADER`]
/// exactly; RFC-4180 quoting (embedded commas, quotes and line breaks)
/// is honored.
pub fn parse_csv(input: &str) -> Result<Vec<MetricSample>, String> {
    let mut rows = split_csv(input).into_iter();
    let header = rows.next().ok_or_else(|| "empty CSV".to_string())?;
    if header.join(",") != CSV_HEADER {
        return Err(format!("unexpected CSV header '{}'", header.join(",")));
    }
    let mut out = Vec::new();
    for (idx, row) in rows.enumerate() {
        if row.len() == 1 && row[0].is_empty() {
            continue; // trailing newline
        }
        if row.len() != 12 {
            return Err(format!("row {}: expected 12 fields, got {}", idx + 2, row.len()));
        }
        let labels = row[2]
            .split(';')
            .filter(|part| !part.is_empty())
            .map(|part| match part.split_once('=') {
                Some((k, v)) => Ok((k.to_string(), v.to_string())),
                None => Err(format!("row {}: malformed label '{part}'", idx + 2)),
            })
            .collect::<Result<Vec<_>, String>>()?;
        let kind = kind_from_str(&row[3]).map_err(|e| format!("row {}: {e}", idx + 2))?;
        let parse_u64 = |field: &str| -> u64 { field.parse::<u64>().unwrap_or(0) };
        let (value, histogram) = match kind {
            MetricKind::Histogram => (
                0.0,
                Some(HistogramSummary {
                    count: parse_u64(&row[5]),
                    sum: parse_u64(&row[6]),
                    min: parse_u64(&row[7]),
                    max: parse_u64(&row[8]),
                    p50: parse_u64(&row[9]),
                    p90: parse_u64(&row[10]),
                    p99: parse_u64(&row[11]),
                }),
            ),
            _ => (row[4].parse::<f64>().unwrap_or(f64::NAN), None),
        };
        out.push(MetricSample {
            subsystem: row[0].clone(),
            name: row[1].clone(),
            labels,
            kind,
            value,
            histogram,
        });
    }
    Ok(out)
}

/// Splits RFC-4180 CSV text into records of unquoted fields. Quoted
/// fields may contain commas, doubled quotes and line breaks; `\r\n`
/// and `\n` record separators are both accepted.
fn split_csv(input: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => record.push(std::mem::take(&mut field)),
                '\r' => {} // part of \r\n; the \n ends the record
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut record));
                }
                c => field.push(c),
            }
        }
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        rows.push(record);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::HistogramSummary;

    fn counter(sub: &str, name: &str, labels: &[(&str, &str)], value: f64) -> MetricSample {
        MetricSample {
            subsystem: sub.to_string(),
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            kind: MetricKind::Counter,
            value,
            histogram: None,
        }
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let s = counter("compress", "sed_evals", &[("algo", "td-tr(\"30,5m\")")], 7.0);
        let csv = to_csv(&[s]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        assert_eq!(
            lines.next(),
            Some(r#"compress,sed_evals,"algo=td-tr(""30,5m"")",counter,7,,,,,,,"#)
        );
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let s = counter("a", "b", &[("path", "C:\\tmp \"x\"\n")], 1.0);
        let json = to_json_lines(&[s]);
        assert!(json.contains(r#""path":"C:\\tmp \"x\"\n""#), "{json}");
    }

    #[test]
    fn table_lists_histogram_stats() {
        let s = MetricSample {
            subsystem: "span".into(),
            name: "cli.compress".into(),
            labels: vec![],
            kind: MetricKind::Histogram,
            value: 0.0,
            histogram: Some(HistogramSummary {
                count: 3,
                sum: 300,
                min: 50,
                max: 200,
                p50: 100,
                p90: 200,
                p99: 200,
            }),
        };
        let table = render_table(&[s]);
        assert!(table.contains("span.cli.compress"), "{table}");
        assert!(table.contains("count 3"), "{table}");
        assert!(table.contains("p99 200"), "{table}");
    }

    #[test]
    fn empty_snapshot_renders_notice() {
        assert!(render_table(&[]).contains("no metrics recorded"));
        assert_eq!(to_json_lines(&[]), "");
        assert_eq!(to_csv(&[]).lines().count(), 1);
    }

    fn awkward_samples() -> Vec<MetricSample> {
        vec![
            counter("compress", "sed_evals", &[("algo", "td-tr(\"30,5m\")")], 841.0),
            MetricSample {
                subsystem: "cli".into(),
                name: "threads".into(),
                labels: vec![],
                kind: MetricKind::Gauge,
                value: 2.5,
                histogram: None,
            },
            MetricSample {
                subsystem: "span".into(),
                name: "cli.compress".into(),
                labels: vec![("run".into(), "a;b=c".into())],
                kind: MetricKind::Histogram,
                value: 0.0,
                histogram: Some(HistogramSummary {
                    count: 3,
                    sum: 300,
                    min: 50,
                    max: 200,
                    p50: 100,
                    p90: 200,
                    p99: 200,
                }),
            },
        ]
    }

    #[test]
    fn json_lines_round_trip() {
        let samples = awkward_samples();
        let parsed = parse_json_lines(&to_json_lines(&samples)).unwrap();
        assert_eq!(parsed, samples);
    }

    #[test]
    fn csv_round_trip() {
        // The label value "a;b=c" is ambiguous in the k=v;k2=v2 CSV label
        // encoding, so the CSV round-trip uses a clean label set.
        let mut samples = awkward_samples();
        samples[2].labels = vec![("run".into(), "a".into())];
        let parsed = parse_csv(&to_csv(&samples)).unwrap();
        assert_eq!(parsed, samples);
    }

    #[test]
    fn parse_rejects_malformed_sidecars() {
        assert!(parse_json_lines("{\"name\":\"x\"}\n").is_err());
        assert!(parse_csv("not,the,header\n1,2,3\n").is_err());
        assert!(parse_csv(&format!("{CSV_HEADER}\r\na,b,,counter\r\n")).is_err());
    }
}
