//! The disabled implementation: same public API as `metrics`, but every
//! instrument is a zero-sized type with `#[inline]` empty methods, so
//! the optimizer removes all instrumentation from release builds.

use crate::sample::{HistogramSummary, MetricSample};

/// Disabled counter; all methods are no-ops.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter;

impl Counter {
    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn inc(&self) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// Disabled gauge; all methods are no-ops.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauge;

impl Gauge {
    /// No-op.
    #[inline(always)]
    pub fn set(&self, _v: f64) {}

    /// No-op.
    #[inline(always)]
    pub fn add(&self, _delta: f64) {}

    /// Always 0.0.
    #[inline(always)]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// Disabled histogram; all methods are no-ops.
#[derive(Clone, Copy, Debug, Default)]
pub struct Histogram;

impl Histogram {
    /// No-op.
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn record_duration(&self, _d: std::time::Duration) {}

    /// Always 0.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }

    /// All-zero summary.
    #[inline(always)]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary { count: 0, sum: 0, min: 0, max: 0, p50: 0, p90: 0, p99: 0 }
    }

    /// Always 0.
    #[inline(always)]
    pub fn quantile(&self, _q: f64) -> u64 {
        0
    }
}

/// Disabled timer; always reads 0.
#[derive(Clone, Copy, Debug)]
pub struct Timer;

impl Timer {
    /// No-op start.
    #[inline(always)]
    pub fn start() -> Self {
        Timer
    }

    /// Always 0.
    #[inline(always)]
    pub fn elapsed_ns(&self) -> u64 {
        0
    }
}

/// Disabled scope timer; records nothing.
#[derive(Debug)]
pub struct ScopeTimer;

impl ScopeTimer {
    /// No-op.
    #[inline(always)]
    pub fn new(_histogram: Histogram) -> Self {
        ScopeTimer
    }
}

/// Disabled span entry point.
#[derive(Debug)]
pub struct Span;

impl Span {
    /// Returns an inert guard.
    #[inline(always)]
    pub fn enter(_name: &'static str, _fields: &[(&'static str, u64)]) -> SpanGuard {
        SpanGuard
    }

    /// Always 0 (no cache when compiled out).
    #[inline(always)]
    pub fn thread_cache_len() -> usize {
        0
    }
}

/// Inert guard; dropping it does nothing.
#[derive(Debug)]
pub struct SpanGuard;

/// Disabled registry; hands out ZST instruments and empty snapshots.
#[derive(Debug, Default)]
pub struct Registry;

impl Registry {
    /// Creates a disabled registry.
    pub fn new() -> Self {
        Registry
    }

    /// Returns the ZST counter.
    #[inline(always)]
    pub fn counter(&self, _subsystem: &str, _name: &str) -> Counter {
        Counter
    }

    /// Returns the ZST counter.
    #[inline(always)]
    pub fn counter_with(&self, _subsystem: &str, _name: &str, _labels: &[(&str, &str)]) -> Counter {
        Counter
    }

    /// Returns the ZST gauge.
    #[inline(always)]
    pub fn gauge(&self, _subsystem: &str, _name: &str) -> Gauge {
        Gauge
    }

    /// Returns the ZST gauge.
    #[inline(always)]
    pub fn gauge_with(&self, _subsystem: &str, _name: &str, _labels: &[(&str, &str)]) -> Gauge {
        Gauge
    }

    /// Returns the ZST histogram.
    #[inline(always)]
    pub fn histogram(&self, _subsystem: &str, _name: &str) -> Histogram {
        Histogram
    }

    /// Returns the ZST histogram.
    #[inline(always)]
    pub fn histogram_with(
        &self,
        _subsystem: &str,
        _name: &str,
        _labels: &[(&str, &str)],
    ) -> Histogram {
        Histogram
    }

    /// Always empty.
    #[inline(always)]
    pub fn snapshot(&self) -> Vec<MetricSample> {
        Vec::new()
    }

    /// No-op.
    #[inline(always)]
    pub fn reset(&self) {}
}

/// The disabled global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: Registry = Registry;
    &REGISTRY
}
