//! The real (`enabled`) implementation of the instruments and registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::sample::{HistogramSummary, MetricKind, MetricSample};

/// A monotonically increasing count. Handles are cheap `Arc` clones of
/// the shared cell; updates are relaxed atomics (the snapshot is
/// advisory, not a synchronization point).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds `n` to the count.
    #[inline]
    pub fn add(&self, n: u64) {
        // Relaxed ordering: advisory counter, snapshots need no
        // happens-before with the counted work.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        // Relaxed ordering: a point-in-time read of an advisory count.
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins level; stores `f64` bits in an atomic cell.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    fn new() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: f64) {
        // Relaxed ordering: last-write-wins level, no reader depends
        // on seeing it in order with other memory.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (CAS loop; gauges are cold-path).
    pub fn add(&self, delta: f64) {
        // Relaxed ordering throughout the CAS loop: the cell is the
        // only shared state, so the CAS's own atomicity is all the
        // correctness needed; failure reloads carry no dependencies.
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) // ordering: both relaxed, see loop comment
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> f64 {
        // Relaxed ordering: advisory point-in-time read.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log₂ buckets; bucket 0 holds the value 0, bucket `i > 0`
/// holds values in `[2^(i-1), 2^i)`, and the last bucket is open-ended.
const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket log₂ histogram of `u64` observations.
///
/// `count`/`sum`/`min`/`max` are exact; percentiles are estimated from
/// the bucket a given rank falls in (geometric bucket midpoint, clamped
/// to the observed range). Recording is lock-free and wait-free.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    #[inline]
    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let inner = &*self.0;
        // Relaxed ordering on all five cells: the histogram is advisory
        // and a snapshot tolerates torn cross-field reads (count/sum/
        // buckets may disagree transiently); each cell alone is exact.
        inner.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed); // ordering: relaxed, advisory (see above)
        inner.sum.fetch_add(v, Ordering::Relaxed); // ordering: relaxed, advisory (see above)
        inner.min.fetch_min(v, Ordering::Relaxed); // ordering: relaxed, advisory (see above)
        inner.max.fetch_max(v, Ordering::Relaxed); // ordering: relaxed, advisory (see above)
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        // Relaxed ordering: advisory point-in-time read.
        self.0.count.load(Ordering::Relaxed)
    }

    /// Snapshot summary statistics.
    pub fn summary(&self) -> HistogramSummary {
        let inner = &*self.0;
        // Relaxed ordering: the summary is a best-effort snapshot; fields
        // read at slightly different instants may disagree and that is
        // acceptable by design (documented on the type).
        let count = inner.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSummary { count: 0, sum: 0, min: 0, max: 0, p50: 0, p90: 0, p99: 0 };
        }
        let sum = inner.sum.load(Ordering::Relaxed); // ordering: relaxed snapshot read
        let min = inner.min.load(Ordering::Relaxed); // ordering: relaxed snapshot read
        let max = inner.max.load(Ordering::Relaxed); // ordering: relaxed snapshot read
        let buckets: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed)) // ordering: relaxed snapshot read
            .collect();
        let pct = |q: f64| -> u64 {
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return Self::bucket_estimate(i).clamp(min, max);
                }
            }
            max
        };
        HistogramSummary { count, sum, min, max, p50: pct(0.50), p90: pct(0.90), p99: pct(0.99) }
    }

    /// Estimated value at quantile `q` (`0.0..=1.0`), e.g. `0.999` for
    /// p999 — the tail the standard [`Histogram::summary`] stops short
    /// of. Same estimator as the summary percentiles: the geometric
    /// midpoint of the log₂ bucket holding rank `⌈q·count⌉`, clamped to
    /// the observed min/max. Returns 0 with no observations.
    pub fn quantile(&self, q: f64) -> u64 {
        let inner = &*self.0;
        let count = inner.count.load(Ordering::Relaxed); // ordering: relaxed snapshot read
        if count == 0 {
            return 0;
        }
        let min = inner.min.load(Ordering::Relaxed); // ordering: relaxed snapshot read
        let max = inner.max.load(Ordering::Relaxed); // ordering: relaxed snapshot read
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in inner.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed); // ordering: relaxed snapshot read
            if seen >= rank {
                return Self::bucket_estimate(i).clamp(min, max);
            }
        }
        max
    }

    /// Geometric midpoint of bucket `i` (`0` for the zero bucket).
    fn bucket_estimate(i: usize) -> u64 {
        if i == 0 {
            return 0;
        }
        // Bucket i spans [2^(i-1), 2^i); midpoint ≈ 2^(i-1) · √2.
        let lo = 1u64 << (i - 1);
        (lo as f64 * std::f64::consts::SQRT_2).round() as u64
    }

    fn reset(&self) {
        let inner = &*self.0;
        // Relaxed ordering: reset races with concurrent recording by
        // design; observations landing mid-reset are simply attributed
        // to one side or the other.
        for b in &inner.buckets {
            b.store(0, Ordering::Relaxed); // ordering: relaxed reset, see above
        }
        inner.count.store(0, Ordering::Relaxed); // ordering: relaxed reset, see above
        inner.sum.store(0, Ordering::Relaxed); // ordering: relaxed reset, see above
        inner.min.store(u64::MAX, Ordering::Relaxed); // ordering: relaxed reset, see above
        inner.max.store(0, Ordering::Relaxed); // ordering: relaxed reset, see above
    }
}

/// A started monotonic clock; read with [`Timer::elapsed_ns`].
#[derive(Clone, Copy, Debug)]
pub struct Timer(Instant);

impl Timer {
    /// Starts the clock.
    pub fn start() -> Self {
        Timer(Instant::now())
    }

    /// Nanoseconds since [`Timer::start`] (saturating).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Times a scope: records the elapsed nanoseconds into a histogram when
/// dropped.
#[derive(Debug)]
pub struct ScopeTimer {
    histogram: Histogram,
    start: Instant,
}

impl ScopeTimer {
    /// Starts timing into `histogram`.
    pub fn new(histogram: Histogram) -> Self {
        ScopeTimer { histogram, start: Instant::now() }
    }
}

impl Drop for ScopeTimer {
    fn drop(&mut self) {
        self.histogram.record_duration(self.start.elapsed());
    }
}

#[derive(Clone, Debug)]
enum Entry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

type Key = (String, String, Vec<(String, String)>);

/// The metric store: maps `(subsystem, name, labels)` to a live
/// instrument. Lookup takes a mutex; handles returned from lookup are
/// lock-free, which is why hot paths cache them (see the `counter!`
/// macro) or accumulate locally and flush once.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<Key, Entry>>,
}

impl Registry {
    /// Creates an empty registry (tests; production code uses
    /// [`registry`]).
    pub fn new() -> Self {
        Registry::default()
    }

    fn key(subsystem: &str, name: &str, labels: &[(&str, &str)]) -> Key {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        (subsystem.to_string(), name.to_string(), labels)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<Key, Entry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns (registering on first use) the unlabeled counter
    /// `subsystem.name`.
    pub fn counter(&self, subsystem: &str, name: &str) -> Counter {
        self.counter_with(subsystem, name, &[])
    }

    /// Returns (registering on first use) a labeled counter.
    ///
    /// # Panics
    /// If the key is already registered as a different instrument kind.
    pub fn counter_with(&self, subsystem: &str, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = Self::key(subsystem, name, labels);
        let mut map = self.lock();
        match map.entry(key).or_insert_with(|| Entry::Counter(Counter::new())) {
            Entry::Counter(c) => c.clone(),
            // lint: allow(panic) registry contract: one kind per metric
            // name; a kind clash is a programming error worth failing on
            _ => panic!("metric {subsystem}.{name} already registered with a different kind"),
        }
    }

    /// Returns (registering on first use) the unlabeled gauge
    /// `subsystem.name`.
    pub fn gauge(&self, subsystem: &str, name: &str) -> Gauge {
        self.gauge_with(subsystem, name, &[])
    }

    /// Returns (registering on first use) a labeled gauge.
    ///
    /// # Panics
    /// If the key is already registered as a different instrument kind.
    pub fn gauge_with(&self, subsystem: &str, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = Self::key(subsystem, name, labels);
        let mut map = self.lock();
        match map.entry(key).or_insert_with(|| Entry::Gauge(Gauge::new())) {
            Entry::Gauge(g) => g.clone(),
            // lint: allow(panic) registry contract: one kind per metric
            // name; a kind clash is a programming error worth failing on
            _ => panic!("metric {subsystem}.{name} already registered with a different kind"),
        }
    }

    /// Returns (registering on first use) the unlabeled histogram
    /// `subsystem.name`.
    pub fn histogram(&self, subsystem: &str, name: &str) -> Histogram {
        self.histogram_with(subsystem, name, &[])
    }

    /// Returns (registering on first use) a labeled histogram.
    ///
    /// # Panics
    /// If the key is already registered as a different instrument kind.
    pub fn histogram_with(
        &self,
        subsystem: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Histogram {
        let key = Self::key(subsystem, name, labels);
        let mut map = self.lock();
        match map.entry(key).or_insert_with(|| Entry::Histogram(Histogram::new())) {
            Entry::Histogram(h) => h.clone(),
            // lint: allow(panic) registry contract: one kind per metric
            // name; a kind clash is a programming error worth failing on
            _ => panic!("metric {subsystem}.{name} already registered with a different kind"),
        }
    }

    /// A sorted snapshot of every registered metric.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let map = self.lock();
        map.iter()
            .map(|((subsystem, name, labels), entry)| {
                let (kind, value, histogram) = match entry {
                    Entry::Counter(c) => (MetricKind::Counter, c.get() as f64, None),
                    Entry::Gauge(g) => (MetricKind::Gauge, g.get(), None),
                    Entry::Histogram(h) => (MetricKind::Histogram, 0.0, Some(h.summary())),
                };
                MetricSample {
                    subsystem: subsystem.clone(),
                    name: name.clone(),
                    labels: labels.clone(),
                    kind,
                    value,
                    histogram,
                }
            })
            .collect()
    }

    /// Zeroes every registered instrument **in place**, keeping all
    /// handles (including macro-cached ones) valid.
    pub fn reset(&self) {
        let map = self.lock();
        for entry in map.values() {
            match entry {
                // Relaxed ordering: advisory reset, races with writers are fine.
            Entry::Counter(c) => c.0.store(0, Ordering::Relaxed),
                Entry::Gauge(g) => g.set(0.0),
                Entry::Histogram(h) => h.reset(),
            }
        }
    }
}

/// The process-wide registry every macro and instrumented crate records
/// into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// One cached span call-path on a thread: the joined `outer/inner` path,
/// its duration histogram, per-field companion histograms, and the child
/// paths seen beneath it.
#[derive(Debug)]
struct SpanNode {
    name: &'static str,
    path: String,
    histogram: Histogram,
    fields: Vec<(&'static str, Histogram)>,
    children: Vec<usize>,
}

/// Per-thread cache of span paths. The first entry at a given position
/// in the span tree formats the path and registers its histograms
/// **once**; every re-entry is a name-pointer walk over the parent's
/// children — no formatting, no registry lock.
#[derive(Debug, Default)]
struct SpanCache {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

impl SpanCache {
    fn enter(&mut self, name: &'static str, fields: &[(&'static str, u64)]) -> usize {
        let parent = self.stack.last().copied();
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        let idx = match siblings.iter().copied().find(|&i| self.nodes[i].name == name) {
            Some(i) => i,
            None => {
                let path = match parent {
                    Some(p) => format!("{}/{name}", self.nodes[p].path),
                    None => name.to_string(),
                };
                let histogram = registry().histogram("span", &path);
                let idx = self.nodes.len();
                self.nodes.push(SpanNode {
                    name,
                    path,
                    histogram,
                    fields: Vec::new(),
                    children: Vec::new(),
                });
                match parent {
                    Some(p) => self.nodes[p].children.push(idx),
                    None => self.roots.push(idx),
                }
                idx
            }
        };
        for (field, value) in fields {
            let hist = match self.nodes[idx].fields.iter().find(|(f, _)| f == field) {
                Some((_, h)) => h.clone(),
                None => {
                    let h = registry()
                        .histogram("span", &format!("{}.{field}", self.nodes[idx].path));
                    self.nodes[idx].fields.push((field, h.clone()));
                    h
                }
            };
            hist.record(*value);
        }
        self.stack.push(idx);
        idx
    }
}

thread_local! {
    static SPAN_CACHE: std::cell::RefCell<SpanCache> =
        std::cell::RefCell::new(SpanCache::default());
}

/// Entry point for the [`span!`](crate::span) macro.
#[derive(Debug)]
pub struct Span;

impl Span {
    /// Opens a span named `name` under the thread's current span path,
    /// recording `fields` as companion histograms `span.<name>.<field>`.
    ///
    /// The `format!("{path}.{field}")` + registry lookup happens only the
    /// first time a call path is seen on a thread; re-entries hit the
    /// thread-local `SpanCache` (see [`Span::thread_cache_len`]).
    pub fn enter(name: &'static str, fields: &[(&'static str, u64)]) -> SpanGuard {
        let node = SPAN_CACHE.with(|cache| cache.borrow_mut().enter(name, fields));
        SpanGuard { node: Some(node), start: Instant::now() }
    }

    /// Number of distinct span call-paths cached on this thread — a
    /// bench/test hook: re-entering a known span must not grow it.
    pub fn thread_cache_len() -> usize {
        SPAN_CACHE.with(|cache| cache.borrow().nodes.len())
    }
}

/// Guard returned by [`Span::enter`]; records the span's wall-clock
/// duration (nanoseconds) under `span.<path>` on drop.
#[derive(Debug)]
pub struct SpanGuard {
    node: Option<usize>,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(node) = self.node.take() else {
            return;
        };
        let elapsed = self.start.elapsed();
        // try_with: a guard dropped during thread teardown (after the
        // cache was destroyed) simply records nothing.
        let _ = SPAN_CACHE.try_with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(n) = cache.nodes.get(node) {
                n.histogram.record_duration(elapsed);
            }
            if cache.stack.last() == Some(&node) {
                cache.stack.pop();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_clones() {
        let r = Registry::new();
        let a = r.counter("t", "hits");
        let b = r.counter("t", "hits");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
    }

    #[test]
    fn labeled_counters_are_distinct_and_sorted() {
        let r = Registry::new();
        r.counter_with("c", "evals", &[("algo", "td-tr")]).add(5);
        r.counter_with("c", "evals", &[("algo", "ndp")]).add(2);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        // BTreeMap ordering: "ndp" < "td-tr".
        assert_eq!(snap[0].labels, vec![("algo".to_string(), "ndp".to_string())]);
        assert_eq!(snap[0].value, 2.0);
        assert_eq!(snap[1].value, 5.0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        r.counter_with("c", "x", &[("a", "1"), ("b", "2")]).inc();
        r.counter_with("c", "x", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(r.snapshot().len(), 1);
        assert_eq!(r.snapshot()[0].value, 2.0);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("t", "x");
        r.gauge("t", "x");
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("t", "level");
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn histogram_exact_stats() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
    }

    #[test]
    fn histogram_percentiles_are_order_of_magnitude() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let s = h.summary();
        // p50 lands in the bucket holding 10 (bucket [8,16)).
        assert!((8..=16).contains(&s.p50), "p50 = {}", s.p50);
        // p99 lands in the bucket holding 1000, clamped to max.
        assert!((512..=1000).contains(&s.p99), "p99 = {}", s.p99);
    }

    #[test]
    fn histogram_quantile_reaches_the_tail() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.999), 0, "empty histogram");
        for _ in 0..998 {
            h.record(100);
        }
        h.record(100_000);
        h.record(100_000);
        // p50 sits in the bulk bucket, p999+ in the tail bucket.
        assert!((64..=128).contains(&h.quantile(0.5)), "p50 = {}", h.quantile(0.5));
        let p999 = h.quantile(0.999);
        assert!((65_536..=100_000).contains(&p999), "p999 = {p999}");
        // quantile(q) agrees with the summary's estimator at its points.
        let s = h.summary();
        assert_eq!(h.quantile(0.99), s.p99);
        assert_eq!(h.quantile(0.50), s.p50);
    }

    #[test]
    fn histogram_zero_and_huge_values() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50, 0);
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary { count: 0, sum: 0, min: 0, max: 0, p50: 0, p90: 0, p99: 0 });
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn scope_timer_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("t", "elapsed_ns");
        {
            let _t = ScopeTimer::new(h.clone());
            std::hint::black_box(0u64);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn spans_nest_into_slash_paths() {
        // Uses the global registry (spans always do); assert on deltas.
        let outer = registry().histogram("span", "obs_test.outer");
        let inner = registry().histogram("span", "obs_test.outer/obs_test.inner");
        let (o0, i0) = (outer.count(), inner.count());
        {
            let _a = Span::enter("obs_test.outer", &[("points", 7)]);
            let _b = Span::enter("obs_test.inner", &[]);
        }
        assert_eq!(outer.count(), o0 + 1);
        assert_eq!(inner.count(), i0 + 1);
        let fields = registry().histogram("span", "obs_test.outer.points");
        assert!(fields.count() >= 1);
    }

    #[test]
    fn span_cache_reuses_paths_per_thread() {
        // Warm the cache, then assert re-entry at the same call paths
        // neither grows it nor re-registers histograms.
        {
            let _a = Span::enter("obs_cache.outer", &[("n", 1)]);
            let _b = Span::enter("obs_cache.inner", &[]);
        }
        let warm = Span::thread_cache_len();
        for _ in 0..10 {
            let _a = Span::enter("obs_cache.outer", &[("n", 2)]);
            let _b = Span::enter("obs_cache.inner", &[]);
        }
        assert_eq!(Span::thread_cache_len(), warm, "re-entry must not grow the span cache");
        let nested = registry().histogram("span", "obs_cache.outer/obs_cache.inner");
        assert!(nested.count() >= 11);
        let field = registry().histogram("span", "obs_cache.outer.n");
        assert!(field.count() >= 11);
    }

    #[test]
    fn reset_zeroes_in_place() {
        let r = Registry::new();
        let c = r.counter("t", "n");
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.snapshot()[0].value, 1.0);
    }
}
