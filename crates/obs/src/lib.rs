//! `traj-obs`: the observability substrate of the trajc workspace.
//!
//! The paper's whole argument rests on *measuring* compression behaviour
//! — points kept, error evaluations, algorithm cost — so this crate makes
//! every hot path visible and cheap to export, with **no dependencies
//! outside `std`**:
//!
//! * [`Counter`] / [`Gauge`] — atomic scalar instruments;
//! * [`Histogram`] — fixed-bucket log₂ histogram with exact count / sum /
//!   min / max and estimated p50/p90/p99;
//! * [`Timer`] / [`ScopeTimer`] — monotonic wall-clock timing;
//! * [`Registry`] — the global metric store, keyed by
//!   `(subsystem, name)` plus an optional label set, so one logical
//!   metric can fan out into a family (`compress.sed_evals{algo=td-tr}`);
//! * [`span!`] — lightweight nested wall-clock spans recorded into the
//!   registry under the `span` subsystem;
//! * [`sink`] — export of a registry snapshot as a human-readable table,
//!   JSON lines, or RFC-4180 CSV (with inverse parsers for merging
//!   sidecar files across runs);
//! * [`trace`] — `traj-trace`, the structured event-timeline substrate:
//!   per-thread lock-free ring buffers of binary events with interned
//!   names, exported as Chrome Trace Event JSON or folded stacks (see
//!   [`trace_span!`], [`trace_instant!`], [`trace_counter!`]);
//! * [`json`] — the minimal JSON parser backing sidecar readback.
//!
//! # Compile-time removal
//!
//! The `enabled` feature (on by default) selects the real implementation.
//! With `--no-default-features` every instrument becomes a zero-sized
//! type with inlined empty methods: call sites compile and the optimizer
//! erases them, so disabling observability costs nothing at runtime.
//! Code can branch on [`metrics_enabled`] where the *surrounding* work
//! (e.g. building a label string) should also be skipped.
//!
//! # Conventions
//!
//! * Durations are recorded in **nanoseconds** (`*_ns` histograms; the
//!   `span` subsystem is implicitly nanoseconds).
//! * Hot loops accumulate into plain locals and flush once per call; the
//!   atomic instruments are for call-boundary updates.
//!
//! ```
//! use traj_obs::{counter, registry, span};
//!
//! {
//!     let _span = span!("doctest.work", points = 128u64);
//!     counter!("doctest", "points_in").add(128);
//! }
//! let samples = registry().snapshot();
//! println!("{}", traj_obs::sink::render_table(&samples));
//! ```

pub mod json;
pub mod sample;
pub mod sink;
pub mod trace;

#[cfg(feature = "enabled")]
mod metrics;
#[cfg(feature = "enabled")]
pub use metrics::{registry, Counter, Gauge, Histogram, Registry, ScopeTimer, Span, SpanGuard, Timer};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{registry, Counter, Gauge, Histogram, Registry, ScopeTimer, Span, SpanGuard, Timer};

pub use sample::{HistogramSummary, MetricKind, MetricSample};

/// Whether instrumentation is compiled in (`enabled` feature).
#[inline(always)]
pub const fn metrics_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// A cached global [`Counter`] handle for this call site.
///
/// `counter!("compress", "sed_evals")` resolves the registry entry once
/// per call site; the labeled form
/// `counter!("compress", "sed_evals", algo = name)` looks up per call
/// (label values are dynamic) and is meant for call-boundary code.
///
/// With instrumentation compiled out the label values are **never
/// evaluated** (they may allocate via `to_string`), so disabled builds
/// stay truly zero-cost.
#[macro_export]
macro_rules! counter {
    ($subsystem:expr, $name:expr) => {{
        static __OBS_HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        __OBS_HANDLE.get_or_init(|| $crate::registry().counter($subsystem, $name))
    }};
    ($subsystem:expr, $name:expr, $($label:ident = $value:expr),+ $(,)?) => {
        if $crate::metrics_enabled() {
            $crate::registry().counter_with(
                $subsystem,
                $name,
                &[$((stringify!($label), &*$value.to_string())),+],
            )
        } else {
            // Disabled: do not evaluate the label values; both branches
            // hand back the (zero-sized) instrument type of this build.
            $crate::registry().counter($subsystem, $name)
        }
    };
}

/// A cached global [`Gauge`] handle for this call site (labeled form
/// looks up per call; label values are not evaluated when
/// instrumentation is compiled out).
#[macro_export]
macro_rules! gauge {
    ($subsystem:expr, $name:expr) => {{
        static __OBS_HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        __OBS_HANDLE.get_or_init(|| $crate::registry().gauge($subsystem, $name))
    }};
    ($subsystem:expr, $name:expr, $($label:ident = $value:expr),+ $(,)?) => {
        if $crate::metrics_enabled() {
            $crate::registry().gauge_with(
                $subsystem,
                $name,
                &[$((stringify!($label), &*$value.to_string())),+],
            )
        } else {
            // Disabled: do not evaluate the label values.
            $crate::registry().gauge($subsystem, $name)
        }
    };
}

/// A cached global [`Histogram`] handle for this call site (labeled form
/// looks up per call; label values are not evaluated when
/// instrumentation is compiled out).
#[macro_export]
macro_rules! histogram {
    ($subsystem:expr, $name:expr) => {{
        static __OBS_HANDLE: ::std::sync::OnceLock<$crate::Histogram> =
            ::std::sync::OnceLock::new();
        __OBS_HANDLE.get_or_init(|| $crate::registry().histogram($subsystem, $name))
    }};
    ($subsystem:expr, $name:expr, $($label:ident = $value:expr),+ $(,)?) => {
        if $crate::metrics_enabled() {
            $crate::registry().histogram_with(
                $subsystem,
                $name,
                &[$((stringify!($label), &*$value.to_string())),+],
            )
        } else {
            // Disabled: do not evaluate the label values.
            $crate::registry().histogram($subsystem, $name)
        }
    };
}

/// Opens a wall-clock span; the returned guard records the elapsed time
/// into the `span` subsystem (nanoseconds) when dropped, **and** — when
/// a [`trace`] session is active — a begin/end pair on the thread's
/// trace track. Spans nest: a span opened inside another records under
/// the joined path (`outer/inner`). Numeric fields record into companion
/// histograms `span.<name>.<field>`.
///
/// ```
/// let _span = traj_obs::span!("td_tr.split", points = 42u64);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        ($crate::Span::enter($name, &[]), $crate::trace_span!($name))
    };
    ($name:expr, $($field:ident = $value:expr),+ $(,)?) => {
        (
            $crate::Span::enter($name, &[$((stringify!($field), $value as u64)),+]),
            $crate::trace_span!($name),
        )
    };
}

/// Records a [`trace`] span: a `Begin` event now, the matching `End`
/// when the returned guard drops. The name is interned once per call
/// site; recording is three word-stores on the calling thread's ring —
/// no allocation, no formatting. Returns an inert guard when no trace
/// session is active or instrumentation is compiled out.
///
/// An optional second argument attaches a `u64` payload to the `Begin`
/// event: `trace_span!("stripe", items as u64)`.
#[macro_export]
macro_rules! trace_span {
    ($name:expr) => {
        $crate::trace_span!($name, 0u64)
    };
    ($name:expr, $value:expr) => {
        if $crate::metrics_enabled() && $crate::trace::is_active() {
            static __TRACE_NAME: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::trace::span_with(
                *__TRACE_NAME.get_or_init(|| $crate::trace::intern($name)),
                $value as u64,
            )
        } else {
            $crate::trace::TraceSpanGuard::inert()
        }
    };
}

/// Records a [`trace`] instant event (a point-in-time marker) with an
/// optional `u64` payload. Interned per call site; no-op unless a trace
/// session is active.
#[macro_export]
macro_rules! trace_instant {
    ($name:expr) => {
        $crate::trace_instant!($name, 0u64)
    };
    ($name:expr, $value:expr) => {
        if $crate::metrics_enabled() && $crate::trace::is_active() {
            static __TRACE_NAME: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::trace::instant(
                *__TRACE_NAME.get_or_init(|| $crate::trace::intern($name)),
                $value as u64,
            );
        }
    };
}

/// Records a [`trace`] counter sample (rendered as a counter track in
/// the Chrome export). Interned per call site; no-op unless a trace
/// session is active.
#[macro_export]
macro_rules! trace_counter {
    ($name:expr, $value:expr) => {
        if $crate::metrics_enabled() && $crate::trace::is_active() {
            static __TRACE_NAME: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::trace::counter_sample(
                *__TRACE_NAME.get_or_init(|| $crate::trace::intern($name)),
                $value as u64,
            );
        }
    };
}
