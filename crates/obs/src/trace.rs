//! `traj-trace`: zero-dependency structured event tracing.
//!
//! Where the metric [`Registry`](crate::Registry) aggregates (a span
//! collapses into a log₂ histogram), this module records the *timeline*:
//! every span begin/end, instant event and counter sample, stamped with a
//! monotonic nanosecond timestamp and the recording thread's track id.
//! That is what lets a per-worker view of `sweep_algo_parallel` show
//! where wall-clock time actually goes.
//!
//! # Recording model
//!
//! * One **track** per recording thread, holding a bounded **ring buffer**
//!   of fixed-size binary events (three `u64` words each). The owning
//!   thread is the only writer; drains happen from any thread via a
//!   release/acquire publish protocol — no locks on the hot path.
//! * Event names are **interned** `&'static str`s: the `trace_span!` /
//!   `trace_instant!` / `trace_counter!` macros resolve the string-table
//!   id once per call site, so recording is stores of three words — no
//!   allocation, no formatting, no hashing.
//! * When a ring is full, new events are **dropped** (never blocking) and
//!   counted per track. A span's `Begin` reserves the slot for its `End`,
//!   so drops can never produce an unbalanced trace: either both events
//!   of a span are recorded, or neither.
//! * Capacity is fixed at session start ([`start_with_capacity`]); rings
//!   are allocated lazily on a thread's first recorded event.
//!
//! # Sessions and drains
//!
//! [`start`] begins a session (discarding any undrained leftovers),
//! [`stop`] ends it and returns the [`Trace`]; [`drain`] can harvest
//! mid-session without stopping. Concurrent drains are serialized; a
//! drain observes each event exactly once, so mid-run drains compose
//! with [`Trace::merge`].
//!
//! # Exports
//!
//! * [`Trace::to_chrome_json`] — Chrome Trace Event JSON, loadable in
//!   Perfetto / `chrome://tracing`, one named thread per track;
//! * [`Trace::to_folded`] — folded-stack text (`label;outer;inner ns`)
//!   for flamegraph tooling (self-time per stack, nanoseconds);
//! * [`Trace::validate`] — the well-formedness contract (balanced spans,
//!   monotone timestamps, valid name references) used by tests and CI.
//!
//! With `--no-default-features` the recorder compiles out: every entry
//! point is an `#[inline(always)]` no-op returning an empty [`Trace`].

use std::collections::BTreeMap;

/// What a [`TraceEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened (matched by a later [`TraceEventKind::End`]).
    Begin,
    /// The innermost open span closed.
    End,
    /// A point-in-time marker.
    Instant,
    /// A sampled counter value (rendered as a counter track).
    Counter,
}

impl TraceEventKind {
    #[cfg(feature = "enabled")]
    fn as_u64(self) -> u64 {
        match self {
            TraceEventKind::Begin => 0,
            TraceEventKind::End => 1,
            TraceEventKind::Instant => 2,
            TraceEventKind::Counter => 3,
        }
    }

    #[cfg(feature = "enabled")]
    fn from_u64(v: u64) -> Option<Self> {
        match v {
            0 => Some(TraceEventKind::Begin),
            1 => Some(TraceEventKind::End),
            2 => Some(TraceEventKind::Instant),
            3 => Some(TraceEventKind::Counter),
            _ => None,
        }
    }
}

/// One fixed-size trace event: what happened, when, and a payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: TraceEventKind,
    /// Index into [`Trace::names`] (the interned string table).
    pub name: u32,
    /// Nanoseconds since the process trace epoch (monotonic clock).
    pub ts_ns: u64,
    /// Payload: span field / instant detail / counter sample value.
    pub value: u64,
}

/// The drained timeline of one recording thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrackTrace {
    /// Stable per-thread track id (dense, assigned at first event).
    pub id: u64,
    /// Human-readable track label (thread name or an explicit
    /// [`set_track_label`], e.g. `sweep-worker-1`).
    pub label: String,
    /// Events in recording order (timestamps are non-decreasing).
    pub events: Vec<TraceEvent>,
    /// Events rejected because the ring was full, cumulative since
    /// session [`start`]. Saturation is visible, never blocking.
    pub dropped: u64,
}

/// A drained trace: the interned name table plus one timeline per track.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Interned event names; [`TraceEvent::name`] indexes into this.
    pub names: Vec<String>,
    /// Per-thread timelines, ordered by track id.
    pub tracks: Vec<TrackTrace>,
}

impl Trace {
    /// Total number of events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Total dropped-event count across all tracks.
    pub fn dropped_total(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).fold(0, u64::saturating_add)
    }

    /// True when no track recorded anything.
    pub fn is_empty(&self) -> bool {
        self.tracks.iter().all(|t| t.events.is_empty())
    }

    /// Resolves an interned name id, or a placeholder for out-of-range
    /// ids (only possible in hand-built traces).
    pub fn name(&self, id: u32) -> &str {
        self.names.get(id as usize).map_or("?", String::as_str)
    }

    /// Merges partial traces (e.g. periodic [`drain`]s of one session)
    /// into one. Tracks with the same id concatenate their events in
    /// part order; drop counts are cumulative per session, so the
    /// maximum is kept; the largest name table wins (it is append-only).
    pub fn merge(parts: impl IntoIterator<Item = Trace>) -> Trace {
        let mut names: Vec<String> = Vec::new();
        let mut by_id: BTreeMap<u64, TrackTrace> = BTreeMap::new();
        for part in parts {
            if part.names.len() > names.len() {
                names = part.names;
            }
            for track in part.tracks {
                match by_id.entry(track.id) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(track);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        let merged = e.get_mut();
                        merged.events.extend(track.events);
                        merged.dropped = merged.dropped.max(track.dropped);
                        if !track.label.is_empty() {
                            merged.label = track.label;
                        }
                    }
                }
            }
        }
        Trace { names, tracks: by_id.into_values().collect() }
    }

    /// Checks the well-formedness contract every drained trace must
    /// satisfy: every name id resolves, timestamps are non-decreasing
    /// per track, and begin/end events balance with matching names
    /// (LIFO). Returns the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for track in &self.tracks {
            let mut prev_ts = 0u64;
            let mut stack: Vec<u32> = Vec::new();
            for (i, ev) in track.events.iter().enumerate() {
                if ev.name as usize >= self.names.len() {
                    return Err(format!(
                        "track {} ({}): event {i} references unknown name id {}",
                        track.id, track.label, ev.name
                    ));
                }
                if ev.ts_ns < prev_ts {
                    return Err(format!(
                        "track {} ({}): event {i} timestamp {} precedes {}",
                        track.id, track.label, ev.ts_ns, prev_ts
                    ));
                }
                prev_ts = ev.ts_ns;
                match ev.kind {
                    TraceEventKind::Begin => stack.push(ev.name),
                    TraceEventKind::End => match stack.pop() {
                        Some(open) if open == ev.name => {}
                        Some(open) => {
                            return Err(format!(
                                "track {} ({}): end '{}' closes open span '{}'",
                                track.id,
                                track.label,
                                self.name(ev.name),
                                self.name(open)
                            ));
                        }
                        None => {
                            return Err(format!(
                                "track {} ({}): end '{}' without a matching begin",
                                track.id,
                                track.label,
                                self.name(ev.name)
                            ));
                        }
                    },
                    TraceEventKind::Instant | TraceEventKind::Counter => {}
                }
            }
            if !stack.is_empty() {
                return Err(format!(
                    "track {} ({}): {} unclosed span(s), innermost '{}'",
                    track.id,
                    track.label,
                    stack.len(),
                    stack.last().map_or("?", |&n| self.name(n))
                ));
            }
        }
        Ok(())
    }

    /// Exports the trace as Chrome Trace Event JSON (object form), one
    /// named thread per track, loadable in Perfetto or `chrome://tracing`.
    ///
    /// Schema per event: `ph` is `B`/`E` (span), `i` (instant, thread
    /// scope) or `C` (counter); `ts` is microseconds (fractional) since
    /// the trace epoch; `pid` is always 1; `tid` is the track id. Track
    /// labels are emitted as `thread_name` metadata events, and the
    /// total dropped-event count as `otherData.dropped_events`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.event_count() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let emit = |out: &mut String, first: &mut bool, body: &str| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(body);
        };
        emit(
            &mut out,
            &mut first,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"trajc\"}}",
        );
        for track in &self.tracks {
            let mut meta = String::new();
            meta.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            meta.push_str(&track.id.to_string());
            meta.push_str(",\"args\":{\"name\":\"");
            push_json_escaped(&mut meta, &track.label);
            meta.push_str("\"}}");
            emit(&mut out, &mut first, &meta);
            for ev in &track.events {
                let mut body = String::with_capacity(96);
                body.push_str("{\"name\":\"");
                push_json_escaped(&mut body, self.name(ev.name));
                body.push_str("\",\"cat\":\"trajc\",\"ph\":\"");
                body.push_str(match ev.kind {
                    TraceEventKind::Begin => "B",
                    TraceEventKind::End => "E",
                    TraceEventKind::Instant => "i",
                    TraceEventKind::Counter => "C",
                });
                body.push_str("\",\"pid\":1,\"tid\":");
                body.push_str(&track.id.to_string());
                body.push_str(",\"ts\":");
                push_ts_us(&mut body, ev.ts_ns);
                match ev.kind {
                    TraceEventKind::Instant => {
                        body.push_str(",\"s\":\"t\",\"args\":{\"value\":");
                        body.push_str(&ev.value.to_string());
                        body.push('}');
                    }
                    TraceEventKind::Counter => {
                        body.push_str(",\"args\":{\"value\":");
                        body.push_str(&ev.value.to_string());
                        body.push('}');
                    }
                    TraceEventKind::Begin if ev.value != 0 => {
                        body.push_str(",\"args\":{\"value\":");
                        body.push_str(&ev.value.to_string());
                        body.push('}');
                    }
                    TraceEventKind::Begin | TraceEventKind::End => {}
                }
                body.push('}');
                emit(&mut out, &mut first, &body);
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"");
        out.push_str(&self.dropped_total().to_string());
        out.push_str("\"}}\n");
        out
    }

    /// Exports the trace as folded-stack text for flamegraph tooling:
    /// one line per distinct stack, `label;outer;inner self_ns`, where
    /// the count is the stack's **self time** in nanoseconds (total span
    /// time minus time attributed to child spans). Instants and counter
    /// samples are omitted; unbalanced tails (spans still open at drain
    /// time) contribute nothing.
    pub fn to_folded(&self) -> String {
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for track in &self.tracks {
            // (name, begin_ts, ns attributed to completed children)
            let mut stack: Vec<(u32, u64, u64)> = Vec::new();
            for ev in &track.events {
                match ev.kind {
                    TraceEventKind::Begin => stack.push((ev.name, ev.ts_ns, 0)),
                    TraceEventKind::End => {
                        let Some((name, begin_ts, child_ns)) = stack.pop() else {
                            continue;
                        };
                        let total = ev.ts_ns.saturating_sub(begin_ts);
                        let self_ns = total.saturating_sub(child_ns);
                        if let Some(parent) = stack.last_mut() {
                            parent.2 = parent.2.saturating_add(total);
                        }
                        let mut key = String::new();
                        push_folded_frame(&mut key, &track.label);
                        for &(frame, _, _) in &stack {
                            key.push(';');
                            push_folded_frame(&mut key, self.name(frame));
                        }
                        key.push(';');
                        push_folded_frame(&mut key, self.name(name));
                        let slot = agg.entry(key).or_insert(0);
                        *slot = slot.saturating_add(self_ns);
                    }
                    TraceEventKind::Instant | TraceEventKind::Counter => {}
                }
            }
        }
        let mut out = String::new();
        for (key, ns) in &agg {
            out.push_str(key);
            out.push(' ');
            out.push_str(&ns.to_string());
            out.push('\n');
        }
        out
    }
}

/// Appends one stack frame to a folded-stack key, replacing the two
/// characters the format reserves (`;` separates frames, space separates
/// the count).
fn push_folded_frame(out: &mut String, frame: &str) {
    for c in frame.chars() {
        out.push(match c {
            ';' => ':',
            ' ' => '_',
            c => c,
        });
    }
}

/// Appends `ts_ns` as fractional microseconds (`123.456`).
fn push_ts_us(out: &mut String, ts_ns: u64) {
    out.push_str(&(ts_ns / 1_000).to_string());
    out.push('.');
    out.push_str(&format!("{:03}", ts_ns % 1_000));
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(feature = "enabled")]
mod recorder {
    use super::{Trace, TraceEvent, TraceEventKind, TrackTrace};
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::marker::PhantomData;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    /// Default per-track ring capacity (events). At 24 bytes/event a
    /// track costs ~384 KiB once it records its first event.
    pub const DEFAULT_CAPACITY: usize = 16 * 1024;

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

    /// One ring slot: three words, written by the owning thread and
    /// published via the track's `len` (release) to drains (acquire).
    #[derive(Debug)]
    struct Slot {
        w0: AtomicU64,
        w1: AtomicU64,
        w2: AtomicU64,
    }

    #[derive(Debug)]
    pub(super) struct Track {
        id: u64,
        label: Mutex<String>,
        /// Allocated on the first recorded event, with the session
        /// capacity current at that moment.
        ring: OnceLock<Box<[Slot]>>,
        /// Events ever published (monotone). Writer-owned; release-stored
        /// to publish slot payloads to drains.
        len: AtomicU64,
        /// Events ever consumed (monotone). Drain-owned; release-stored
        /// to hand slots back to the writer.
        drained: AtomicU64,
        /// Slots reserved for the `End` events of accepted `Begin`s.
        /// Only the owning thread touches it.
        reserved: AtomicU64,
        /// Events rejected because the ring was full (cumulative per
        /// session; reset by `start`).
        dropped: AtomicU64,
    }

    impl Track {
        fn ring(&self) -> &[Slot] {
            self.ring.get_or_init(|| {
                // Relaxed ordering: capacity is set before ACTIVE flips on
                // and is advisory thereafter; any racing value is a valid
                // capacity.
                let cap = CAPACITY.load(Ordering::Relaxed).max(8);
                (0..cap)
                    .map(|_| Slot {
                        w0: AtomicU64::new(0),
                        w1: AtomicU64::new(0),
                        w2: AtomicU64::new(0),
                    })
                    .collect()
            })
        }

        /// Writes one event into the next slot and publishes it.
        /// Caller guarantees a free slot. Owning thread only.
        fn write(&self, len: u64, kind: TraceEventKind, name: u32, value: u64) {
            let ring = self.ring();
            let cap = ring.len() as u64;
            let slot = &ring[(len % cap) as usize];
            let packed = (kind.as_u64() << 32) | u64::from(name);
            // Relaxed ordering on the payload words: the release store of
            // `len` below is the publication point; a drain's acquire load
            // of `len` makes these visible before it reads them.
            slot.w0.store(packed, Ordering::Relaxed);
            slot.w1.store(now_ns(), Ordering::Relaxed); // ordering: relaxed payload, published by `len` below
            slot.w2.store(value, Ordering::Relaxed); // ordering: relaxed payload, published by `len` below
            // Release ordering: publishes the three payload stores above to
            // the drain's acquire load of `len`.
            self.len.store(len + 1, Ordering::Release);
        }

        /// Attempts to record an event, reserving `extra_reserve` further
        /// slots (a `Begin` reserves one for its `End`). Returns false —
        /// and counts a drop — when the ring is full. Owning thread only.
        fn try_push(
            &self,
            kind: TraceEventKind,
            name: u32,
            value: u64,
            extra_reserve: u64,
        ) -> bool {
            let ring = self.ring();
            let cap = ring.len() as u64;
            // Relaxed ordering: `len` and `reserved` are only written by
            // this (owning) thread, so these reads are exact.
            let len = self.len.load(Ordering::Relaxed);
            let reserved = self.reserved.load(Ordering::Relaxed); // ordering: relaxed, writer-owned (see above)
            // Acquire ordering: pairs with the drain's release store of
            // `drained`, so a slot is only reused after the drain has
            // finished reading it.
            let drained = self.drained.load(Ordering::Acquire);
            if (len - drained) + reserved + 1 + extra_reserve > cap {
                // Relaxed ordering: advisory drop count.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            if extra_reserve > 0 {
                // Relaxed ordering: writer-owned reservation count.
                self.reserved.fetch_add(extra_reserve, Ordering::Relaxed);
            }
            self.write(len, kind, name, value);
            true
        }

        /// Records the `End` for an accepted `Begin`; the reservation made
        /// then guarantees the slot. Owning thread only.
        fn push_end(&self, name: u32, value: u64) {
            // Relaxed ordering: `len`/`reserved` are writer-owned.
            let len = self.len.load(Ordering::Relaxed);
            self.reserved.fetch_sub(1, Ordering::Relaxed); // ordering: relaxed, writer-owned (see above)
            self.write(len, TraceEventKind::End, name, value);
        }

        /// Consumes every published-but-undrained event. Callers hold the
        /// global drain lock, so `drained` cannot move concurrently.
        fn drain_events(&self) -> Vec<TraceEvent> {
            let Some(ring) = self.ring.get() else {
                return Vec::new();
            };
            let cap = ring.len() as u64;
            // Acquire ordering: pairs with the writer's release store of
            // `len`, making the slot payload words visible below.
            let len = self.len.load(Ordering::Acquire);
            // Relaxed ordering: `drained` only moves under the drain lock
            // we hold.
            let drained = self.drained.load(Ordering::Relaxed);
            let mut out = Vec::with_capacity((len - drained) as usize);
            for i in drained..len {
                let slot = &ring[(i % cap) as usize];
                // Relaxed ordering on payload reads: ordered by the
                // acquire load of `len` above.
                let w0 = slot.w0.load(Ordering::Relaxed);
                let ts_ns = slot.w1.load(Ordering::Relaxed); // ordering: relaxed payload read (see above)
                let value = slot.w2.load(Ordering::Relaxed); // ordering: relaxed payload read (see above)
                let Some(kind) = TraceEventKind::from_u64(w0 >> 32) else {
                    continue;
                };
                out.push(TraceEvent { kind, name: (w0 & 0xFFFF_FFFF) as u32, ts_ns, value });
            }
            // Release ordering: hands the consumed slots back to the
            // writer's acquire load of `drained` in `try_push`.
            self.drained.store(len, Ordering::Release);
            out
        }
    }

    fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Process-wide trace epoch; timestamps are nanoseconds since the
    /// first trace activity, monotone across sessions.
    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    fn now_ns() -> u64 {
        u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    struct Interner {
        names: Vec<&'static str>,
        index: HashMap<&'static str, u32>,
    }

    fn interner() -> &'static Mutex<Interner> {
        static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
        INTERNER.get_or_init(|| Mutex::new(Interner { names: Vec::new(), index: HashMap::new() }))
    }

    /// Interns an event name, returning its stable string-table id. The
    /// table is append-only for the process lifetime, so ids cached in
    /// call-site statics stay valid across sessions.
    pub fn intern(name: &'static str) -> u32 {
        let mut table = lock_or_recover(interner());
        if let Some(&id) = table.index.get(name) {
            return id;
        }
        // Saturation at u32::MAX merges all further names into one slot;
        // unreachable in practice (call sites are finite).
        let id = u32::try_from(table.names.len()).unwrap_or(u32::MAX);
        table.names.push(name);
        table.index.insert(name, id);
        id
    }

    fn collector() -> &'static Mutex<Vec<Arc<Track>>> {
        static COLLECTOR: OnceLock<Mutex<Vec<Arc<Track>>>> = OnceLock::new();
        COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static TRACK: RefCell<Option<Arc<Track>>> = const { RefCell::new(None) };
    }

    fn register_track() -> Arc<Track> {
        let mut tracks = lock_or_recover(collector());
        let id = tracks.len() as u64;
        let label = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{id}"), str::to_string);
        let track = Arc::new(Track {
            id,
            label: Mutex::new(label),
            ring: OnceLock::new(),
            len: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            reserved: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        });
        tracks.push(Arc::clone(&track));
        track
    }

    fn with_track<R>(f: impl FnOnce(&Arc<Track>) -> R) -> Option<R> {
        TRACK
            .try_with(|cell| {
                if cell.borrow().is_none() {
                    *cell.borrow_mut() = Some(register_track());
                }
                cell.borrow().as_ref().map(f)
            })
            .ok()
            .flatten()
    }

    /// Whether a trace session is currently recording.
    #[inline]
    pub fn is_active() -> bool {
        // Relaxed ordering: the flag is advisory; events racing a stop
        // are either recorded (drained later) or not.
        ACTIVE.load(Ordering::Relaxed)
    }

    /// Starts a trace session with [`DEFAULT_CAPACITY`] rings.
    pub fn start() {
        start_with_capacity(DEFAULT_CAPACITY);
    }

    /// Starts a trace session; rings allocated from here on hold
    /// `capacity` events (minimum 8). Discards any undrained events and
    /// resets drop counts, so the session starts clean.
    pub fn start_with_capacity(capacity: usize) {
        // Relaxed ordering: advisory configuration, read by lazy ring
        // allocation.
        CAPACITY.store(capacity.max(8), Ordering::Relaxed);
        let _discarded = drain();
        let tracks: Vec<Arc<Track>> = lock_or_recover(collector()).clone();
        for t in &tracks {
            // Relaxed ordering: session boundary bookkeeping; no recorder
            // should be running concurrently with start().
            t.dropped.store(0, Ordering::Relaxed);
        }
        // Relaxed ordering: flag flip; recorders sample it with a relaxed
        // load (see is_active).
        ACTIVE.store(true, Ordering::Relaxed);
    }

    /// Stops the session and returns everything recorded since the last
    /// drain.
    pub fn stop() -> Trace {
        // Relaxed ordering: flag flip, see is_active.
        ACTIVE.store(false, Ordering::Relaxed);
        drain()
    }

    /// Harvests all published-but-undrained events from every track
    /// without stopping the session. Concurrent drains are serialized;
    /// each event is observed exactly once. Tracks that recorded nothing
    /// (and dropped nothing) are omitted.
    pub fn drain() -> Trace {
        static DRAIN: Mutex<()> = Mutex::new(());
        let _serialize = lock_or_recover(&DRAIN);
        let tracks: Vec<Arc<Track>> = lock_or_recover(collector()).clone();
        let names: Vec<String> = lock_or_recover(interner())
            .names
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let mut out = Vec::new();
        for t in tracks {
            let events = t.drain_events();
            // Relaxed ordering: advisory count read.
            let dropped = t.dropped.load(Ordering::Relaxed);
            if events.is_empty() && dropped == 0 {
                continue;
            }
            let label = lock_or_recover(&t.label).clone();
            out.push(TrackTrace { id: t.id, label, events, dropped });
        }
        Trace { names, tracks: out }
    }

    /// Names the calling thread's track (e.g. `sweep-worker-1`) for the
    /// Chrome export. No-op when no session is active.
    pub fn set_track_label(label: &str) {
        if !is_active() {
            return;
        }
        let _ = with_track(|t| {
            *lock_or_recover(&t.label) = label.to_string();
        });
    }

    /// Guard closing a trace span on drop. `!Send`: the `End` event must
    /// land on the track that recorded the `Begin`.
    #[must_use = "the span closes when the guard drops"]
    #[derive(Debug)]
    pub struct TraceSpanGuard {
        name: u32,
        track: Option<Arc<Track>>,
        _single_thread: PhantomData<*const ()>,
    }

    impl TraceSpanGuard {
        /// A guard that records nothing (tracing inactive or compiled
        /// out).
        #[inline]
        pub fn inert() -> Self {
            TraceSpanGuard { name: 0, track: None, _single_thread: PhantomData }
        }
    }

    impl Drop for TraceSpanGuard {
        fn drop(&mut self) {
            if let Some(track) = self.track.take() {
                track.push_end(self.name, 0);
            }
        }
    }

    /// Records a span `Begin` (see [`span_with`]).
    #[inline]
    pub fn span(name: u32) -> TraceSpanGuard {
        span_with(name, 0)
    }

    /// Records a span `Begin` carrying `value`, returning the guard that
    /// records the `End`. If the ring is full the whole span is dropped
    /// (counted once) and the guard is inert — traces stay balanced.
    pub fn span_with(name: u32, value: u64) -> TraceSpanGuard {
        if !is_active() {
            return TraceSpanGuard::inert();
        }
        let track = with_track(|t| {
            if t.try_push(TraceEventKind::Begin, name, value, 1) {
                Some(Arc::clone(t))
            } else {
                None
            }
        })
        .flatten();
        TraceSpanGuard { name, track, _single_thread: PhantomData }
    }

    /// Records an instant event carrying `value`.
    pub fn instant(name: u32, value: u64) {
        if !is_active() {
            return;
        }
        let _ = with_track(|t| t.try_push(TraceEventKind::Instant, name, value, 0));
    }

    /// Records a counter sample (rendered as a counter track in the
    /// Chrome export).
    pub fn counter_sample(name: u32, value: u64) {
        if !is_active() {
            return;
        }
        let _ = with_track(|t| t.try_push(TraceEventKind::Counter, name, value, 0));
    }
}

#[cfg(not(feature = "enabled"))]
mod recorder {
    use super::Trace;

    /// Default per-track ring capacity (unused when compiled out).
    pub const DEFAULT_CAPACITY: usize = 16 * 1024;

    /// No-op.
    #[inline(always)]
    pub fn start() {}

    /// No-op.
    #[inline(always)]
    pub fn start_with_capacity(_capacity: usize) {}

    /// Always returns an empty trace.
    #[inline(always)]
    pub fn stop() -> Trace {
        Trace::default()
    }

    /// Always returns an empty trace.
    #[inline(always)]
    pub fn drain() -> Trace {
        Trace::default()
    }

    /// Always false.
    #[inline(always)]
    pub fn is_active() -> bool {
        false
    }

    /// Always 0.
    #[inline(always)]
    pub fn intern(_name: &'static str) -> u32 {
        0
    }

    /// No-op.
    #[inline(always)]
    pub fn set_track_label(_label: &str) {}

    /// Inert guard; dropping it does nothing.
    #[derive(Debug)]
    pub struct TraceSpanGuard;

    impl TraceSpanGuard {
        /// The inert guard.
        #[inline(always)]
        pub fn inert() -> Self {
            TraceSpanGuard
        }
    }

    /// Returns an inert guard.
    #[inline(always)]
    pub fn span(_name: u32) -> TraceSpanGuard {
        TraceSpanGuard
    }

    /// Returns an inert guard.
    #[inline(always)]
    pub fn span_with(_name: u32, _value: u64) -> TraceSpanGuard {
        TraceSpanGuard
    }

    /// No-op.
    #[inline(always)]
    pub fn instant(_name: u32, _value: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn counter_sample(_name: u32, _value: u64) {}
}

pub use recorder::{
    counter_sample, drain, instant, intern, is_active, set_track_label, span, span_with, start,
    start_with_capacity, stop, TraceSpanGuard, DEFAULT_CAPACITY,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that start/stop/drain the global recorder.
    #[cfg(feature = "enabled")]
    fn session_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn ev(kind: TraceEventKind, name: u32, ts_ns: u64) -> TraceEvent {
        TraceEvent { kind, name, ts_ns, value: 0 }
    }

    fn two_name_trace(events: Vec<TraceEvent>) -> Trace {
        Trace {
            names: vec!["outer".to_string(), "inner".to_string()],
            tracks: vec![TrackTrace { id: 0, label: "main".to_string(), events, dropped: 0 }],
        }
    }

    #[test]
    fn validate_accepts_balanced_nesting() {
        let t = two_name_trace(vec![
            ev(TraceEventKind::Begin, 0, 10),
            ev(TraceEventKind::Begin, 1, 20),
            ev(TraceEventKind::Instant, 1, 25),
            ev(TraceEventKind::End, 1, 30),
            ev(TraceEventKind::End, 0, 40),
        ]);
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_unbalanced_and_misnested() {
        let open = two_name_trace(vec![ev(TraceEventKind::Begin, 0, 10)]);
        assert!(open.validate().is_err());
        let stray = two_name_trace(vec![ev(TraceEventKind::End, 0, 10)]);
        assert!(stray.validate().is_err());
        let crossed = two_name_trace(vec![
            ev(TraceEventKind::Begin, 0, 10),
            ev(TraceEventKind::Begin, 1, 20),
            ev(TraceEventKind::End, 0, 30),
        ]);
        assert!(crossed.validate().is_err());
    }

    #[test]
    fn validate_rejects_time_travel_and_bad_names() {
        let backwards = two_name_trace(vec![
            ev(TraceEventKind::Instant, 0, 20),
            ev(TraceEventKind::Instant, 0, 10),
        ]);
        assert!(backwards.validate().is_err());
        let unknown = two_name_trace(vec![ev(TraceEventKind::Instant, 7, 10)]);
        assert!(unknown.validate().is_err());
    }

    #[test]
    fn folded_attributes_self_time() {
        let t = two_name_trace(vec![
            ev(TraceEventKind::Begin, 0, 0),
            ev(TraceEventKind::Begin, 1, 100),
            ev(TraceEventKind::End, 1, 400),
            ev(TraceEventKind::End, 0, 1000),
        ]);
        let folded = t.to_folded();
        assert!(folded.contains("main;outer 700\n"), "{folded}");
        assert!(folded.contains("main;outer;inner 300\n"), "{folded}");
    }

    #[test]
    fn folded_escapes_reserved_characters() {
        let mut t = two_name_trace(vec![
            ev(TraceEventKind::Begin, 0, 0),
            ev(TraceEventKind::End, 0, 10),
        ]);
        t.names[0] = "a b;c".to_string();
        assert!(t.to_folded().contains("main;a_b:c 10\n"), "{}", t.to_folded());
    }

    #[test]
    fn chrome_json_has_thread_names_and_pairs() {
        let t = two_name_trace(vec![
            ev(TraceEventKind::Begin, 0, 1_500),
            ev(TraceEventKind::End, 0, 2_500),
        ]);
        let json = t.to_chrome_json();
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"name\":\"main\""), "{json}");
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        assert!(json.contains("\"ph\":\"E\""), "{json}");
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dropped_events\":\"0\""), "{json}");
    }

    #[test]
    fn merge_concatenates_partial_drains() {
        let part1 = two_name_trace(vec![ev(TraceEventKind::Begin, 0, 10)]);
        let mut part2 = two_name_trace(vec![ev(TraceEventKind::End, 0, 20)]);
        part2.tracks[0].dropped = 3;
        let merged = Trace::merge([part1, part2]);
        assert_eq!(merged.tracks.len(), 1);
        assert_eq!(merged.tracks[0].events.len(), 2);
        assert_eq!(merged.tracks[0].dropped, 3);
        assert_eq!(merged.validate(), Ok(()));
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn session_records_spans_instants_and_counters() {
        let _serial = session_lock();
        start_with_capacity(256);
        set_track_label("trace-unit-test");
        {
            let _outer = span_with(intern("unit.outer"), 42);
            let _inner = span(intern("unit.inner"));
            instant(intern("unit.mark"), 7);
            counter_sample(intern("unit.level"), 3);
        }
        let trace = stop();
        assert_eq!(trace.validate(), Ok(()));
        let track = trace
            .tracks
            .iter()
            .find(|t| t.label == "trace-unit-test")
            .expect("track recorded on this thread");
        assert_eq!(track.dropped, 0);
        let kinds: Vec<TraceEventKind> = track.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&TraceEventKind::Begin));
        assert!(kinds.contains(&TraceEventKind::Instant));
        assert!(kinds.contains(&TraceEventKind::Counter));
        let names: Vec<&str> = track.events.iter().map(|e| trace.name(e.name)).collect();
        assert!(names.contains(&"unit.outer"), "{names:?}");
        assert!(names.contains(&"unit.mark"), "{names:?}");
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn saturation_drops_whole_spans_and_counts_them() {
        let _serial = session_lock();
        start_with_capacity(8);
        let name = intern("unit.saturate");
        let guards: Vec<TraceSpanGuard> = (0..32).map(|_| span(name)).collect();
        drop(guards);
        let trace = stop();
        assert_eq!(trace.validate(), Ok(()), "drops must never unbalance");
        let track = trace
            .tracks
            .iter()
            .find(|t| t.events.iter().any(|e| trace.name(e.name) == "unit.saturate"));
        let track = track.expect("at least the accepted spans are present");
        assert!(track.dropped > 0, "expected drops at capacity 8");
        let begins = track
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Begin)
            .count();
        let ends = track
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::End)
            .count();
        assert_eq!(begins, ends);
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn inactive_recorder_records_nothing() {
        let _serial = session_lock();
        let _ = stop();
        let before = drain();
        instant(intern("unit.ignored"), 1);
        let _g = span(intern("unit.ignored_span"));
        let after = drain();
        assert_eq!(before.event_count(), 0);
        assert_eq!(after.event_count(), 0);
    }
}
