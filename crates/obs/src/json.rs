//! A minimal, zero-dependency JSON parser.
//!
//! Backs the sidecar readback paths — [`sink::parse_json_lines`]
//! (metrics sidecars for `trajc obs merge`) and the trace-smoke tests
//! that re-parse Chrome Trace Event exports. It parses the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null) into a [`Json`] tree; numbers become `f64`, objects preserve
//! key order. It is a reader for files this workspace wrote, not a
//! general-purpose validator: nesting deeper than [`MAX_DEPTH`] is
//! rejected rather than recursed into.
//!
//! [`sink::parse_json_lines`]: crate::sink::parse_json_lines

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always parsed as `f64`).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source key order (duplicate keys are kept).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value rounded to `u64`, if this is a non-negative
    /// number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && *n <= 1.8446744073709552e19 => Some(n.round() as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error. Errors carry a byte offset and a short description.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.consume(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + lo.wrapping_sub(0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                            // hex4 leaves pos after the digits; skip the
                            // unconditional advance below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Ok(Json::Null));
        assert_eq!(parse("true"), Ok(Json::Bool(true)));
        assert_eq!(parse("42"), Ok(Json::Number(42.0)));
        assert_eq!(parse("-1.5e3"), Ok(Json::Number(-1500.0)));
        assert_eq!(parse(r#""hi""#), Ok(Json::String("hi".to_string())));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{"e":null}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(3));
        assert_eq!(
            v.get("a").and_then(Json::as_array).and_then(|a| a[2].get("b")).and_then(Json::as_str),
            Some("c")
        );
        assert_eq!(v.get("d").and_then(|d| d.get("e")), Some(&Json::Null));
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""line\nquote\" tab\t A snowman☃""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nquote\" tab\t A snowman☃"));
    }

    #[test]
    fn decodes_surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nulL").is_err());
    }

    #[test]
    fn round_trips_sink_output() {
        let line = r#"{"subsystem":"compress","name":"sed_evals","labels":{"algo":"td-tr"},"kind":"counter","value":841}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("subsystem").and_then(Json::as_str), Some("compress"));
        assert_eq!(v.get("value").and_then(Json::as_u64), Some(841));
        assert_eq!(
            v.get("labels").and_then(|l| l.get("algo")).and_then(Json::as_str),
            Some("td-tr")
        );
    }

    #[test]
    fn u64_conversion_bounds() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e30").unwrap().as_u64(), None);
    }
}
