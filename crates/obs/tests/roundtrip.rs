//! Round-trip tests for the JSON-lines and CSV sinks: serialize a
//! snapshot, parse it back with independent minimal parsers, and check
//! the parsed data matches — including labels containing commas, quotes
//! and newlines, and the documented schema/column order.

use traj_obs::sink::{to_csv, to_json_lines, CSV_HEADER};
use traj_obs::{HistogramSummary, MetricKind, MetricSample};

fn sample_set() -> Vec<MetricSample> {
    vec![
        MetricSample {
            subsystem: "compress".into(),
            name: "sed_evals".into(),
            labels: vec![("algo".into(), "td-tr".into())],
            kind: MetricKind::Counter,
            value: 841.0,
            histogram: None,
        },
        MetricSample {
            subsystem: "compress".into(),
            name: "notes".into(),
            // Hostile label value: comma, RFC-4180 quote, newline, backslash.
            labels: vec![("detail".into(), "eps=\"30,5\"\nline2\\end".into())],
            kind: MetricKind::Counter,
            value: 1.0,
            histogram: None,
        },
        MetricSample {
            subsystem: "store".into(),
            name: "utilization".into(),
            labels: vec![],
            kind: MetricKind::Gauge,
            value: 0.625,
            histogram: None,
        },
        MetricSample {
            subsystem: "span".into(),
            name: "cli.compress".into(),
            labels: vec![],
            kind: MetricKind::Histogram,
            value: 0.0,
            histogram: Some(HistogramSummary {
                count: 12,
                sum: 48_000,
                min: 1_000,
                max: 9_000,
                p50: 4_000,
                p90: 8_000,
                p99: 9_000,
            }),
        },
    ]
}

// ---- minimal RFC-4180 CSV reader (independent of the writer) ----

fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                c => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => row.push(std::mem::take(&mut field)),
                '\r' if chars.peek() == Some(&'\n') => {
                    chars.next();
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                c => field.push(c),
            }
        }
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

// ---- minimal JSON object reader (flat objects + one nested "labels") ----

fn parse_json_object(line: &str) -> Vec<(String, String)> {
    // Returns flattened (key, raw-value) pairs; nested labels flatten to
    // ("labels.k", v). Only handles the subset the sink emits.
    fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> String {
        let mut out = String::new();
        assert_eq!(chars.next(), Some('"'));
        while let Some(c) = chars.next() {
            match c {
                '"' => return out,
                '\\' => match chars.next().expect("escape") {
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'u' => {
                        let hex: String = (0..4).map(|_| chars.next().unwrap()).collect();
                        out.push(char::from_u32(u32::from_str_radix(&hex, 16).unwrap()).unwrap());
                    }
                    other => panic!("unexpected escape \\{other}"),
                },
                c => out.push(c),
            }
        }
        panic!("unterminated string");
    }

    fn parse_value(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> String {
        match chars.peek() {
            Some('"') => parse_string(chars),
            _ => {
                let mut out = String::new();
                while let Some(&c) = chars.peek() {
                    if c == ',' || c == '}' {
                        break;
                    }
                    out.push(c);
                    chars.next();
                }
                out
            }
        }
    }

    let mut pairs = Vec::new();
    let mut chars = line.chars().peekable();
    assert_eq!(chars.next(), Some('{'));
    loop {
        match chars.peek() {
            Some('}') | None => break,
            Some(',') => {
                chars.next();
            }
            _ => {}
        }
        let key = parse_string(&mut chars);
        assert_eq!(chars.next(), Some(':'));
        if chars.peek() == Some(&'{') {
            chars.next();
            loop {
                match chars.peek() {
                    Some('}') => {
                        chars.next();
                        break;
                    }
                    Some(',') => {
                        chars.next();
                    }
                    _ => {}
                }
                let k = parse_string(&mut chars);
                assert_eq!(chars.next(), Some(':'));
                let v = parse_value(&mut chars);
                pairs.push((format!("{key}.{k}"), v));
            }
        } else {
            let v = parse_value(&mut chars);
            pairs.push((key, v));
        }
    }
    pairs
}

fn field<'a>(pairs: &'a [(String, String)], key: &str) -> &'a str {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("missing field {key}"))
}

#[test]
fn csv_round_trips_hostile_labels_and_schema() {
    let samples = sample_set();
    let csv = to_csv(&samples);
    let rows = parse_csv(&csv);

    // Schema stability: exact header, exact column order.
    assert_eq!(rows[0].join(","), CSV_HEADER);
    assert_eq!(rows.len(), samples.len() + 1);

    for (row, sample) in rows[1..].iter().zip(&samples) {
        assert_eq!(row.len(), 12, "every row has all 12 columns");
        assert_eq!(row[0], sample.subsystem);
        assert_eq!(row[1], sample.name);
        let labels = sample
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(";");
        assert_eq!(row[2], labels, "labels survive CSV quoting verbatim");
        assert_eq!(row[3], sample.kind.as_str());
        match sample.kind {
            MetricKind::Histogram => {
                let h = sample.histogram.unwrap();
                assert_eq!(row[4], "");
                let parsed: Vec<u64> = row[5..12].iter().map(|v| v.parse().unwrap()).collect();
                assert_eq!(parsed, vec![h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99]);
            }
            _ => {
                assert_eq!(row[4].parse::<f64>().unwrap(), sample.value);
                assert!(row[5..12].iter().all(String::is_empty));
            }
        }
    }
}

#[test]
fn json_lines_round_trip_hostile_labels() {
    let samples = sample_set();
    let json = to_json_lines(&samples);
    let lines: Vec<&str> = json.lines().collect();
    assert_eq!(lines.len(), samples.len());

    for (line, sample) in lines.iter().zip(&samples) {
        let pairs = parse_json_object(line);
        assert_eq!(field(&pairs, "subsystem"), sample.subsystem);
        assert_eq!(field(&pairs, "name"), sample.name);
        assert_eq!(field(&pairs, "kind"), sample.kind.as_str());
        for (k, v) in &sample.labels {
            assert_eq!(field(&pairs, &format!("labels.{k}")), v, "label {k} survives escaping");
        }
        match sample.kind {
            MetricKind::Histogram => {
                let h = sample.histogram.unwrap();
                assert_eq!(field(&pairs, "count").parse::<u64>().unwrap(), h.count);
                assert_eq!(field(&pairs, "sum").parse::<u64>().unwrap(), h.sum);
                assert_eq!(field(&pairs, "p99").parse::<u64>().unwrap(), h.p99);
            }
            _ => {
                assert_eq!(field(&pairs, "value").parse::<f64>().unwrap(), sample.value);
            }
        }
    }
}

#[test]
#[cfg(feature = "enabled")]
fn global_registry_snapshot_flows_through_both_sinks() {
    traj_obs::counter!("rt_test", "events").add(3);
    traj_obs::histogram!("rt_test", "latency_ns").record(1500);
    traj_obs::gauge!("rt_test", "fill").set(0.5);
    let snapshot: Vec<MetricSample> = traj_obs::registry()
        .snapshot()
        .into_iter()
        .filter(|s| s.subsystem == "rt_test")
        .collect();
    assert_eq!(snapshot.len(), 3);

    let csv = to_csv(&snapshot);
    let rows = parse_csv(&csv);
    assert_eq!(rows.len(), 4);

    let json = to_json_lines(&snapshot);
    for line in json.lines() {
        parse_json_object(line); // must parse cleanly
    }
    let table = traj_obs::sink::render_table(&snapshot);
    assert!(table.contains("rt_test.events"), "{table}");
}
