//! Trace well-formedness properties (satellite: proptest coverage).
//!
//! Every drained trace must have balanced begin/end events, non-
//! decreasing timestamps per track, and valid interned-name references —
//! under random op sequences, tiny rings forced into wraparound and
//! saturation, cross-thread drains racing the writers, and partial
//! drains recombined with [`Trace::merge`]. Drops are *counted*, never
//! torn: a span either contributes both events or neither.
//!
//! The recorder is process-global, so every test serializes on
//! [`session_lock`]; the file is an integration test to keep its
//! sessions out of the unit suite's way.

#![cfg(feature = "enabled")]

use proptest::prelude::*;
use traj_obs::trace::{self, Trace, TraceEventKind};

fn session_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Counts (begins, ends, instants, counters) in one track.
fn kind_counts(track: &traj_obs::trace::TrackTrace) -> (u64, u64, u64, u64) {
    let mut counts = (0u64, 0u64, 0u64, 0u64);
    for ev in &track.events {
        match ev.kind {
            TraceEventKind::Begin => counts.0 += 1,
            TraceEventKind::End => counts.1 += 1,
            TraceEventKind::Instant => counts.2 += 1,
            TraceEventKind::Counter => counts.3 += 1,
        }
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random op sequences on one thread, with a tiny ring and random
    /// mid-run drains, always produce a valid, fully-accounted trace.
    #[test]
    fn single_thread_random_ops_stay_wellformed(
        ops in proptest::collection::vec(0u8..5, 0..120),
        capacity in 8usize..24,
    ) {
        let _serial = session_lock();
        trace::start_with_capacity(capacity);
        trace::set_track_label("props-single");
        let span_name = trace::intern("props.span");
        let instant_name = trace::intern("props.instant");
        let counter_name = trace::intern("props.counter");

        let mut guards = Vec::new();
        let mut parts = Vec::new();
        let mut span_attempts = 0u64;
        let mut instant_attempts = 0u64;
        for op in ops {
            match op {
                0 | 1 => {
                    span_attempts += 1;
                    guards.push(trace::span_with(span_name, guards.len() as u64));
                }
                2 => {
                    drop(guards.pop());
                }
                3 => {
                    instant_attempts += 1;
                    trace::instant(instant_name, 7);
                }
                _ => {
                    instant_attempts += 1;
                    trace::counter_sample(counter_name, 3);
                }
            }
            if guards.len() % 5 == 4 {
                parts.push(trace::drain());
            }
        }
        drop(guards);
        parts.push(trace::stop());
        let merged = Trace::merge(parts);
        prop_assert_eq!(merged.validate(), Ok(()));

        let track = merged.tracks.iter().find(|t| t.label == "props-single");
        if span_attempts + instant_attempts > 0 {
            let track = track.expect("ops were attempted, track must exist");
            let (begins, ends, instants, counters) = kind_counts(track);
            prop_assert_eq!(begins, ends, "drops must never unbalance spans");
            // Every attempt is either recorded or counted as dropped.
            prop_assert_eq!(
                span_attempts + instant_attempts,
                begins + instants + counters + track.dropped
            );
        }
    }

    /// A capacity-8 ring cycled through many drain rounds loses nothing
    /// and preserves order: wraparound reuses slots only after the drain
    /// released them.
    #[test]
    fn wraparound_preserves_every_event_in_order(
        rounds in 1usize..40,
        batch in 1usize..5,
    ) {
        let _serial = session_lock();
        trace::start_with_capacity(8);
        trace::set_track_label("props-wrap");
        let name = trace::intern("props.wrap");
        let mut parts = Vec::new();
        let mut sent = 0u64;
        for _ in 0..rounds {
            for _ in 0..batch.min(6) {
                trace::instant(name, sent);
                sent += 1;
            }
            parts.push(trace::drain());
        }
        parts.push(trace::stop());
        let merged = Trace::merge(parts);
        prop_assert_eq!(merged.validate(), Ok(()));
        let track = merged
            .tracks
            .iter()
            .find(|t| t.label == "props-wrap")
            .expect("events were recorded");
        prop_assert_eq!(track.dropped, 0, "drains kept pace; nothing may drop");
        let values: Vec<u64> = track.events.iter().map(|e| e.value).collect();
        let expected: Vec<u64> = (0..sent).collect();
        prop_assert_eq!(values, expected);
    }

    /// Writers on several threads racing a continuously-draining reader:
    /// merged parts validate, and each writer's track accounts for every
    /// attempt (recorded or dropped, never torn).
    #[test]
    fn cross_thread_drains_never_tear(
        spans_per_thread in 1u64..60,
        instants_per_thread in 0u64..60,
        capacity in 8usize..64,
    ) {
        let _serial = session_lock();
        trace::start_with_capacity(capacity);
        const WRITERS: usize = 3;
        let mut parts = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..WRITERS)
                .map(|w| {
                    scope.spawn(move || {
                        trace::set_track_label(&format!("props-writer-{w}"));
                        let span_name = trace::intern("props.x.span");
                        let instant_name = trace::intern("props.x.instant");
                        for i in 0..spans_per_thread {
                            let _g = trace::span_with(span_name, i);
                            if i < instants_per_thread {
                                trace::instant(instant_name, i);
                            }
                        }
                        for i in spans_per_thread.min(instants_per_thread)..instants_per_thread {
                            trace::instant(instant_name, i);
                        }
                    })
                })
                .collect();
            // Drain concurrently while the writers are running.
            for _ in 0..8 {
                parts.push(trace::drain());
                std::thread::yield_now();
            }
            for h in handles {
                h.join().expect("writer thread");
            }
        });
        parts.push(trace::stop());
        let merged = Trace::merge(parts);
        prop_assert_eq!(merged.validate(), Ok(()));
        for w in 0..WRITERS {
            let label = format!("props-writer-{w}");
            let track = merged
                .tracks
                .iter()
                .find(|t| t.label == label)
                .expect("every writer recorded at least one span attempt");
            let (begins, ends, instants, counters) = kind_counts(track);
            prop_assert_eq!(begins, ends, "torn span in {}", label);
            prop_assert_eq!(counters, 0);
            prop_assert_eq!(
                spans_per_thread + instants_per_thread,
                begins + instants + track.dropped,
                "unaccounted events in {}",
                label
            );
        }
    }
}

/// Interned ids are stable across sessions, so call-site caches stay
/// valid; names drained in one session resolve in the next.
#[test]
fn interned_names_stay_valid_across_sessions() {
    let _serial = session_lock();
    let id = trace::intern("props.stable");
    trace::start_with_capacity(32);
    trace::instant(id, 1);
    let first = trace::stop();
    assert_eq!(trace::intern("props.stable"), id);
    trace::start_with_capacity(32);
    trace::instant(id, 2);
    let second = trace::stop();
    assert_eq!(first.validate(), Ok(()));
    assert_eq!(second.validate(), Ok(()));
    assert_eq!(first.name(id), "props.stable");
    assert_eq!(second.name(id), "props.stable");
}

/// A new session discards undrained leftovers and resets drop counts —
/// sessions compose without bleeding into each other.
#[test]
fn sessions_start_clean() {
    let _serial = session_lock();
    trace::start_with_capacity(8);
    let name = trace::intern("props.leftover");
    for i in 0..32 {
        trace::instant(name, i); // saturate: guarantees drops
    }
    // No drain: stop-less leftovers and a non-zero drop count linger.
    trace::start_with_capacity(8);
    trace::set_track_label("props-clean");
    let trace_out = trace::stop();
    let track = trace_out.tracks.iter().find(|t| t.label == "props-clean");
    if let Some(track) = track {
        assert_eq!(track.events.len(), 0, "leftovers must be discarded");
        assert_eq!(track.dropped, 0, "drop counts must reset");
    }
}
