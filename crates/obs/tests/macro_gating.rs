//! The labeled `counter!`/`gauge!`/`histogram!` macros must not evaluate
//! their label values (allocation, arbitrary side effects) when
//! instrumentation is compiled out — and must evaluate them exactly once
//! per lookup when it is enabled. This test runs in both feature states;
//! CI's no-default-features job is the one that pins the zero-cost
//! claim.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A label value whose `Display` impl counts how often it is rendered.
struct CountingLabel<'a>(&'a AtomicUsize);

impl fmt::Display for CountingLabel<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Relaxed ordering: single-threaded test bookkeeping.
        self.0.fetch_add(1, Ordering::Relaxed);
        write!(f, "probe")
    }
}

#[test]
fn labeled_macros_evaluate_labels_only_when_enabled() {
    let evals = AtomicUsize::new(0);
    let c = traj_obs::counter!("gating", "hits", run = CountingLabel(&evals));
    c.inc();
    let g = traj_obs::gauge!("gating", "level", run = CountingLabel(&evals));
    g.set(1.0);
    let h = traj_obs::histogram!("gating", "sizes", run = CountingLabel(&evals));
    h.record(3);
    let expected = if traj_obs::metrics_enabled() { 3 } else { 0 };
    // Relaxed ordering: single-threaded test bookkeeping.
    assert_eq!(evals.load(Ordering::Relaxed), expected);
}

#[test]
fn disabled_builds_record_nothing() {
    if traj_obs::metrics_enabled() {
        return;
    }
    let c = traj_obs::counter!("gating", "disabled_hits", run = "x");
    c.inc();
    assert_eq!(c.get(), 0);
    assert!(traj_obs::registry().snapshot().is_empty());
    // The trace recorder is compiled out too: sessions yield nothing.
    traj_obs::trace::start();
    {
        let _span = traj_obs::trace_span!("gating.span");
        traj_obs::trace_instant!("gating.instant", 1u64);
    }
    let trace = traj_obs::trace::stop();
    assert!(trace.is_empty());
    assert_eq!(trace.dropped_total(), 0);
}
