//! Benchmark-only crate. All content lives in `benches/`; see the crate
//! manifest for the one-bench-per-paper-figure targets.
