//! One-pass evaluation engine vs the reference per-cell path — the PR 5
//! headline.
//!
//! Both sides produce bit-identical `Evaluation`s (pinned by
//! `crates/core/tests/eval_engine.rs` and
//! `crates/eval/tests/sweep_equivalence.rs`); this bench measures the
//! work saved by (a) the single cursor merge replacing per-notion
//! `apply()` + `elementary_times` rebuilds, (b) the cross-threshold
//! segment cache, and (c) fanning the experiment harness across worker
//! threads. The committed baseline lives at `BENCH_PR5.json` in the repo
//! root.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use traj_compress::{
    evaluate, evaluate_sweep, evaluate_with, CompressionResult, EvalWorkspace, TopDown, Workspace,
};
use traj_eval::PAPER_THRESHOLDS;
use traj_model::Trajectory;

fn bench(c: &mut Criterion) {
    let dataset = traj_gen::paper_dataset(42);
    let td = TopDown::time_ratio(0.0);
    let mut cws = Workspace::new();
    // Precompute the grid's compression results so the bench isolates
    // evaluation cost from compression cost.
    let grids: Vec<(&Trajectory, Vec<CompressionResult>)> = dataset
        .iter()
        .map(|t| (t, td.sweep_with(t, &PAPER_THRESHOLDS, &mut cws)))
        .collect();

    let mut g = c.benchmark_group("eval");
    g.sample_size(20);

    // The headline pair: full 10 × 15 grid evaluation, reference
    // per-cell path vs one engine pass per trajectory.
    g.bench_function("grid/per_cell_evaluate", |b| {
        b.iter(|| {
            for (t, results) in &grids {
                for r in results {
                    black_box(evaluate(black_box(t), black_box(r)));
                }
            }
        })
    });
    g.bench_function("grid/one_pass_sweep", |b| {
        let mut ws = EvalWorkspace::new();
        b.iter(|| {
            for (t, results) in &grids {
                black_box(evaluate_sweep(black_box(t), black_box(results), &mut ws));
            }
        })
    });

    // Single-cell cost with a cold cache: the kernel win alone, no
    // cross-threshold sharing.
    let (t0, r0) = (&dataset[0], &grids[0].1[7]);
    g.bench_function("cell/reference_evaluate", |b| {
        b.iter(|| black_box(evaluate(black_box(t0), black_box(r0))))
    });
    g.bench_function("cell/one_pass_cold", |b| {
        b.iter(|| {
            let mut ws = EvalWorkspace::new();
            black_box(evaluate_with(black_box(t0), black_box(r0), &mut ws))
        })
    });

    // The full experiment harness: serial vs fanned across 4 workers.
    g.sample_size(10);
    let algo = traj_eval::Algo::top_down("TD-TR", TopDown::time_ratio(0.0));
    g.bench_function("sweep_algo/serial", |b| {
        b.iter(|| {
            black_box(traj_eval::sweep_algo(
                black_box(&algo),
                black_box(&dataset),
                &PAPER_THRESHOLDS,
            ))
        })
    });
    g.bench_function("sweep_algo/parallel_4", |b| {
        b.iter(|| {
            black_box(traj_eval::sweep_algo_parallel(
                black_box(&algo),
                black_box(&dataset),
                &PAPER_THRESHOLDS,
                4,
            ))
        })
    });

    // Factory path (OPW-TR rebuilt per threshold): compression dominates
    // each cell, so this is where the thread fan-out earns its keep — the
    // TD-TR pair above mostly measures spawn overhead once both
    // compression and evaluation are one-pass.
    let opw = traj_eval::Algo::factory("OPW-TR", |e| {
        Box::new(traj_compress::OpeningWindow::opw_tr(e))
    });
    g.bench_function("sweep_algo_opw/serial", |b| {
        b.iter(|| {
            black_box(traj_eval::sweep_algo(
                black_box(&opw),
                black_box(&dataset),
                &PAPER_THRESHOLDS,
            ))
        })
    });
    g.bench_function("sweep_algo_opw/parallel_4", |b| {
        b.iter(|| {
            black_box(traj_eval::sweep_algo_parallel(
                black_box(&opw),
                black_box(&dataset),
                &PAPER_THRESHOLDS,
                4,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
