//! Fig. 7 — NDP vs TD-TR: the cost of each compressor over the dataset
//! at representative thresholds, plus the full-figure regeneration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use traj_compress::{Compressor, DouglasPeucker, TdTr};

fn bench(c: &mut Criterion) {
    let dataset = traj_gen::paper_dataset(42);
    let mut g = c.benchmark_group("fig7_ndp_vs_tdtr");
    g.sample_size(20);

    for eps in [30.0, 60.0, 100.0] {
        g.bench_with_input(BenchmarkId::new("ndp", eps as u32), &eps, |b, &eps| {
            let algo = DouglasPeucker::new(eps);
            b.iter(|| {
                for t in &dataset {
                    black_box(algo.compress(black_box(t)));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("td_tr", eps as u32), &eps, |b, &eps| {
            let algo = TdTr::new(eps);
            b.iter(|| {
                for t in &dataset {
                    black_box(algo.compress(black_box(t)));
                }
            })
        });
    }

    g.sample_size(10);
    g.bench_function("regenerate_figure", |b| {
        b.iter(|| black_box(traj_eval::fig7(black_box(&dataset))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
