//! Empirical scaling of every algorithm family with trajectory length.
//!
//! The paper states `O(N²)` for the original Douglas–Peucker and the
//! opening-window family; this bench measures the actual curves on a
//! noisy random-walk workload (frequent cuts keep the OW family near its
//! typical, not worst, case) and on a straight line (the OW worst case,
//! bounded to small N).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use traj_compress::{BottomUp, Compressor, DouglasPeucker, OpeningWindow, SlidingWindow, TdTr};
use traj_gen::simple::random_walk;
use traj_model::Trajectory;

fn walk(n: usize) -> Trajectory {
    random_walk(&mut StdRng::seed_from_u64(9), n, 10.0, 40.0)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_random_walk");
    g.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        let t = walk(n);
        g.throughput(Throughput::Elements(n as u64));
        let algos: Vec<(&str, Box<dyn Compressor>)> = vec![
            ("ndp", Box::new(DouglasPeucker::new(60.0))),
            ("td_tr", Box::new(TdTr::new(60.0))),
            ("opw_tr", Box::new(OpeningWindow::opw_tr(60.0))),
            ("bottom_up_tr", Box::new(BottomUp::time_ratio(60.0))),
            (
                "sliding_window_tr",
                Box::new(SlidingWindow::time_ratio(60.0, 32)),
            ),
        ];
        for (name, algo) in algos {
            g.bench_with_input(BenchmarkId::new(name, n), &t, |b, t| {
                b.iter(|| black_box(algo.compress(black_box(t))))
            });
        }
    }
    g.finish();

    // OW worst case: a straight line never cuts, so the window reopens
    // over the whole prefix — O(N²). Kept small deliberately.
    let mut g = c.benchmark_group("scaling_ow_worst_case_straight");
    g.sample_size(10);
    for n in [100usize, 400, 1_600] {
        let t = traj_gen::simple::straight(n, 10.0, 15.0);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("opw_tr", n), &t, |b, t| {
            let algo = OpeningWindow::opw_tr(60.0);
            b.iter(|| black_box(algo.compress(black_box(t))))
        });
        g.bench_with_input(BenchmarkId::new("td_tr", n), &t, |b, t| {
            let algo = TdTr::new(60.0);
            b.iter(|| black_box(algo.compress(black_box(t))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
