//! Ablation benches for the design choices called out in `DESIGN.md`.
//!
//! * `dp_variants` — iterative vs recursive vs keep-best-N top-down
//!   engines (same outputs, different control flow);
//! * `error_eval` — closed-form average synchronous error vs adaptive
//!   quadrature (the accuracy cross-check's cost);
//! * `ow_restart` — NOPW (restart at the violating point, the paper's
//!   SPT choice) vs BOPW (restart just before the float), and the
//!   streaming engine vs the batch engine on identical input.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use traj_compress::error::{average_synchronous_error, average_synchronous_error_numeric};
use traj_compress::streaming::{OwStream, StreamingCompressor};
use traj_compress::{Compressor, OpeningWindow, TdTr, TopDown};

fn bench(c: &mut Criterion) {
    let dataset = traj_gen::paper_dataset(42);
    let trip = &dataset[6];

    let mut g = c.benchmark_group("ablation_dp_variants");
    g.sample_size(30);
    let td = TopDown::time_ratio(50.0);
    g.bench_function("iterative", |b| b.iter(|| black_box(td.compress(black_box(trip)))));
    g.bench_function("recursive", |b| {
        b.iter(|| black_box(td.compress_recursive(black_box(trip))))
    });
    let target = td.compress(trip).kept_len();
    g.bench_function("keep_best_n", |b| {
        b.iter(|| black_box(td.compress_to_count(black_box(trip), target)))
    });
    let hull = traj_compress::HullDouglasPeucker::new(50.0);
    let textbook = traj_compress::DouglasPeucker::new(50.0);
    g.bench_function("perp_textbook", |b| {
        b.iter(|| black_box(textbook.compress(black_box(trip))))
    });
    g.bench_function("perp_hull_accelerated", |b| {
        b.iter(|| black_box(hull.compress(black_box(trip))))
    });
    g.finish();

    let mut g = c.benchmark_group("ablation_error_eval");
    g.sample_size(20);
    let approx = TdTr::new(50.0).compress(trip).apply(trip);
    g.bench_function("closed_form", |b| {
        b.iter(|| black_box(average_synchronous_error(black_box(trip), black_box(&approx))))
    });
    g.bench_function("numeric_quadrature", |b| {
        b.iter(|| {
            black_box(average_synchronous_error_numeric(
                black_box(trip),
                black_box(&approx),
                1e-6,
            ))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("ablation_ow_restart");
    g.sample_size(30);
    g.bench_function("restart_at_violation_nopw", |b| {
        let algo = OpeningWindow::opw_tr(50.0);
        b.iter(|| black_box(algo.compress(black_box(trip))))
    });
    g.bench_function("restart_before_float_bopw", |b| {
        let algo = OpeningWindow::new(
            traj_compress::Criterion::TimeRatio { epsilon: 50.0 },
            traj_compress::BreakStrategy::BeforeFloat,
        );
        b.iter(|| black_box(algo.compress(black_box(trip))))
    });
    g.bench_function("streaming_engine", |b| {
        b.iter(|| {
            let mut s = OwStream::opw_tr(50.0);
            let mut kept = 0usize;
            for f in trip.fixes() {
                kept += s.push(*f).expect("valid fixes").len();
            }
            kept += s.finish().len();
            black_box(kept)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
