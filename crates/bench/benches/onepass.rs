//! The one-pass SED family against OPW-TR on long trajectories.
//!
//! OPW-TR revalidates every buffered point each time the window grows,
//! so a long smooth stretch (few cuts, wide windows) drives it toward
//! its O(n²) worst case. OP-FIT and OP-CONE answer the same question —
//! "does a strict SED bound hold for the current segment?" — from an
//! O(1) fitting region per point, so they stay O(n) on exactly that
//! workload. `BENCH_PR7.json` pins the headline ratio (≥5× on the
//! 10k-fix smooth trajectory); the noisy group shows the typical case
//! where frequent cuts keep OPW-TR's windows short.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use traj_compress::{
    Compressor, OnePassCone, OnePassFit, OnePassStream, OpeningWindow, StreamingCompressor,
};
use traj_gen::simple::random_walk;
use traj_model::Trajectory;

/// A gently winding vehicle track: 20 m/s forward, a ±10 m lateral
/// sine. At eps = 50 m the SED criterion almost never fires, so the
/// opening window keeps growing — the OW family's worst-case shape on
/// a workload that still looks like real movement.
fn smooth(n: usize) -> Trajectory {
    Trajectory::from_triples((0..n).map(|i| {
        let t = i as f64 * 10.0;
        (t, i as f64 * 20.0, 10.0 * (i as f64 * 0.01).sin())
    }))
    .expect("smooth workload is finite and monotone")
}

fn algos(eps: f64) -> Vec<(&'static str, Box<dyn Compressor>)> {
    vec![
        ("opw_tr", Box::new(OpeningWindow::opw_tr(eps))),
        ("op_fit", Box::new(OnePassFit::new(eps))),
        ("op_cone", Box::new(OnePassCone::new(eps))),
    ]
}

fn bench(c: &mut Criterion) {
    let eps = 50.0;

    // The headline: ≥10k fixes, few cuts. This is the BENCH_PR7.json
    // ratio — op_fit/op_cone must beat opw_tr by ≥5× here.
    let mut g = c.benchmark_group("onepass_smooth");
    g.sample_size(10);
    for n in [10_000usize, 20_000] {
        let t = smooth(n);
        g.throughput(Throughput::Elements(n as u64));
        for (name, algo) in algos(eps) {
            g.bench_with_input(BenchmarkId::new(name, n), &t, |b, t| {
                b.iter(|| black_box(algo.compress(black_box(t))))
            });
        }
    }
    g.finish();

    // Typical case: a noisy random walk cuts every few fixes, so the
    // opening window stays short and everyone is near-linear.
    let mut g = c.benchmark_group("onepass_noisy");
    g.sample_size(10);
    let n = 10_000usize;
    let t = random_walk(&mut StdRng::seed_from_u64(9), n, 10.0, 40.0);
    g.throughput(Throughput::Elements(n as u64));
    for (name, algo) in algos(eps) {
        g.bench_with_input(BenchmarkId::new(name, n), &t, |b, t| {
            b.iter(|| black_box(algo.compress(black_box(t))))
        });
    }
    g.finish();

    // The record-at-a-time adapter: same decisions as the batch kernel,
    // paid one push at a time (includes the per-push Vec allocation).
    let mut g = c.benchmark_group("onepass_stream");
    g.sample_size(10);
    let t = smooth(n);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_with_input(BenchmarkId::new("op_cone_push", n), &t, |b, t| {
        b.iter(|| {
            let mut s = OnePassStream::cone(eps);
            let mut kept = 0usize;
            for &fix in t.fixes() {
                kept += s.push(fix).expect("bench fixes are clean").len();
            }
            kept += s.finish().len();
            black_box(kept)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
