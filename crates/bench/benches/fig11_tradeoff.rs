//! Fig. 11 — the final error-versus-compression comparison: evaluation
//! cost (compression + the full error calculus) per algorithm, and the
//! full-figure regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use traj_compress::{evaluate, Compressor, DouglasPeucker, OpeningWindow, TdTr};

fn bench(c: &mut Criterion) {
    let dataset = traj_gen::paper_dataset(42);
    let mut g = c.benchmark_group("fig11_tradeoff");
    g.sample_size(15);

    let algos: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("ndp", Box::new(DouglasPeucker::new(50.0))),
        ("td_tr", Box::new(TdTr::new(50.0))),
        ("nopw", Box::new(OpeningWindow::nopw(50.0))),
        ("opw_tr", Box::new(OpeningWindow::opw_tr(50.0))),
        ("opw_sp_5", Box::new(OpeningWindow::opw_sp(50.0, 5.0))),
    ];
    for (name, algo) in &algos {
        g.bench_function(format!("compress_evaluate/{name}"), |b| {
            b.iter(|| {
                for t in &dataset {
                    let r = algo.compress(black_box(t));
                    black_box(evaluate(t, &r));
                }
            })
        });
    }

    g.sample_size(10);
    g.bench_function("regenerate_figure", |b| {
        b.iter(|| black_box(traj_eval::fig11(black_box(&dataset))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
