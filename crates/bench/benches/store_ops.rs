//! Moving-object store benchmarks: ingest throughput (raw vs compressed)
//! and window-query cost (scan vs grid vs R-tree) on the paper workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use traj_geom::Point2;
use traj_store::query::{build_segment_rtree, rtree_objects_in_window};
use traj_store::{GridIndex, IngestMode, MovingObjectStore, QueryWindow};

fn loaded_store(mode: IngestMode) -> MovingObjectStore {
    let dataset = traj_gen::paper_dataset(42);
    let mut store = MovingObjectStore::new(mode);
    for (id, trip) in dataset.iter().enumerate() {
        store.insert_trajectory(id as u64, trip).expect("valid trip");
    }
    store
}

fn bench(c: &mut Criterion) {
    let dataset = traj_gen::paper_dataset(42);
    let total_fixes: usize = dataset.iter().map(|t| t.len()).sum();

    let mut g = c.benchmark_group("store_ingest");
    g.sample_size(20);
    g.throughput(Throughput::Elements(total_fixes as u64));
    g.bench_function("raw", |b| {
        b.iter(|| {
            let mut store = MovingObjectStore::new(IngestMode::Raw);
            for (id, trip) in dataset.iter().enumerate() {
                store.insert_trajectory(id as u64, trip).expect("valid trip");
            }
            black_box(store.stats())
        })
    });
    g.bench_function("compressed_opw_tr_30m", |b| {
        b.iter(|| {
            let mut store = MovingObjectStore::new(IngestMode::Compressed {
                epsilon: 30.0,
                speed_epsilon: None,
                max_window: 256,
            });
            for (id, trip) in dataset.iter().enumerate() {
                store.insert_trajectory(id as u64, trip).expect("valid trip");
            }
            black_box(store.stats())
        })
    });
    g.finish();

    let store = loaded_store(IngestMode::Raw);
    let windows: Vec<QueryWindow> = (0..16)
        .map(|i| {
            let x = (i % 4) as f64 * 4_500.0;
            let y = (i / 4) as f64 * 4_500.0;
            QueryWindow::new(
                Point2::new(x, y),
                Point2::new(x + 5_000.0, y + 5_000.0),
                i as f64 * 120.0,
                i as f64 * 120.0 + 900.0,
            )
        })
        .collect();

    let mut g = c.benchmark_group("store_window_query");
    g.sample_size(30);
    g.bench_function("full_scan", |b| {
        b.iter(|| {
            for w in &windows {
                black_box(traj_store::objects_in_window(&store, w));
            }
        })
    });
    let grid = GridIndex::build(&store, 800.0, 300.0);
    g.bench_function("grid_index", |b| {
        b.iter(|| {
            for w in &windows {
                black_box(grid.objects_in_window(w));
            }
        })
    });
    let tree = build_segment_rtree(&store);
    g.bench_function("str_rtree", |b| {
        b.iter(|| {
            for w in &windows {
                black_box(rtree_objects_in_window(&tree, w));
            }
        })
    });
    g.bench_function("grid_build", |b| {
        b.iter(|| black_box(GridIndex::build(&store, 800.0, 300.0)))
    });
    g.bench_function("rtree_build", |b| {
        b.iter(|| black_box(build_segment_rtree(&store)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
