//! AoS vs SoA data layout — the PR 9 headline.
//!
//! Both sides compute the same quantities (pinned bit-identical by
//! `crates/core/tests/layout_equivalence.rs`); this bench measures what
//! the column layout buys:
//!
//! * `dp_scan` — one full farthest-point scan over a 10k-fix track, the
//!   inner loop of every top-down split. The AoS side is the
//!   pre-refactor kernel verbatim (`split_value` per index, endpoint
//!   fixes re-loaded each element); the SoA side is
//!   `SegmentCriterion::scan_segment` over a [`TrajColumns`] view.
//! * `eval_grid` — the full 15-threshold evaluation grid on the same
//!   track via `evaluate_sweep`. The pre-refactor baseline for this id
//!   is recorded in `BENCH_PR9.json` (measured from a clean checkout of
//!   the parent commit; the old interleaved `seg_terms` no longer
//!   exists in-tree to benchmark directly).
//! * `op_cone` — the one-pass cone family, batch and streaming. These
//!   kernels are O(1)-state online loops that never revisit earlier
//!   fixes, so they gain nothing from columns; the pair documents that
//!   the refactor left them alone.
//!
//! The committed numbers live at `BENCH_PR9.json` in the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use traj_compress::{
    evaluate_sweep, Compressor, EvalWorkspace, OnePassCone, OnePassStream, SegmentCriterion,
    StreamingCompressor, TimeRatio, TopDown, Workspace,
};
use traj_eval::PAPER_THRESHOLDS;
use traj_model::{TrajColumns, Trajectory};

/// A gently winding vehicle track: 20 m/s forward, ±10 m lateral sine
/// (the `onepass.rs` smooth workload). Spatially almost straight, so
/// top-down recursion stays shallow and the single whole-track scan
/// below dominates — the shape where scan cost is purest.
fn winding(n: usize) -> Trajectory {
    Trajectory::from_triples((0..n).map(|i| {
        let t = i as f64 * 10.0;
        (t, i as f64 * 20.0, 10.0 * (i as f64 * 0.01).sin())
    }))
    .expect("winding workload is finite and monotone")
}

fn bench(c: &mut Criterion) {
    let t = winding(10_000);
    let fixes = t.fixes();
    let n = t.len();
    let cols = TrajColumns::from_fixes(fixes);
    let v = cols.view();
    let crit = TimeRatio { epsilon: 50.0 };

    let mut g = c.benchmark_group("layout");

    // Pre-refactor farthest-point scan: first-argmax over per-index
    // `split_value` calls, exactly as `DouglasPeucker::farthest` did
    // (and its recursive variants still do).
    g.bench_function("dp_scan/aos", |b| {
        b.iter(|| {
            let fixes = black_box(fixes);
            let mut best = (1usize, f64::NEG_INFINITY);
            for i in 1..n - 1 {
                let d = crit.split_value(fixes, 0, n - 1, i);
                if d > best.1 {
                    best = (i, d);
                }
            }
            black_box(best)
        })
    });
    g.bench_function("dp_scan/soa", |b| {
        b.iter(|| black_box(crit.scan_segment(black_box(v), 0, n - 1)))
    });

    // Full evaluation grid: compress at each paper threshold once, then
    // time the sweep evaluation over all 15 results. The workspace stays
    // warm across iterations, as it does in `traj-eval`'s harness.
    let td = TopDown::time_ratio(0.0);
    let mut cws = Workspace::new();
    let results = td.sweep_with(&t, &PAPER_THRESHOLDS, &mut cws);
    g.bench_function("eval_grid/sweep", |b| {
        let mut ws = EvalWorkspace::new();
        b.iter(|| black_box(evaluate_sweep(black_box(&t), black_box(&results), &mut ws)))
    });

    // Layout-insensitive control: the one-pass cone never looks back at
    // earlier fixes, so AoS vs SoA cannot matter — these ids exist to
    // catch accidental regressions from the refactor, not to show a win.
    let cone = OnePassCone::new(50.0);
    g.bench_function("op_cone/batch", |b| {
        b.iter(|| black_box(cone.compress(black_box(&t))))
    });
    g.bench_function("op_cone/stream", |b| {
        b.iter(|| {
            let mut s = OnePassStream::cone(50.0);
            for f in t.fixes() {
                let _ = black_box(s.push(*f));
            }
            black_box(s.finish())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
