//! Table 2 — the dataset behind every experiment: generation cost and
//! statistics computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use traj_model::stats::DatasetStats;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_dataset");
    g.sample_size(10);

    g.bench_function("generate_paper_dataset", |b| {
        b.iter(|| black_box(traj_gen::paper_dataset(black_box(42))))
    });

    let dataset = traj_gen::paper_dataset(42);
    g.bench_function("dataset_statistics", |b| {
        b.iter(|| black_box(DatasetStats::of(black_box(&dataset))))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
