//! The observability overhead budget: what instrumentation costs when
//! it is on, off for the build, or compiled in but inactive.
//!
//! Four families:
//! - `macro/*` — a single span / labeled counter / trace span, the unit
//!   costs of the instrumentation macros. The span path asserts the
//!   per-thread path cache stays warm (no `format!` after the first
//!   enter — the histogram-lookup cache this crate's PR introduced).
//! - `trace/*` — one trace span with the recorder active vs inactive:
//!   the cost a `--trace-out` run adds per event, and the cost of
//!   leaving tracing compiled in but unused.
//! - `sweep/*` — the paper-grid sweep (TD-TR over the ten-trajectory
//!   dataset × fifteen thresholds) with tracing off vs on. The budget:
//!   the traced run stays within 5% of the untraced run (pinned in
//!   `BENCH_PR6.json`).
//! - `parallel/*` — `sweep_algo_parallel` serial vs explicit workers vs
//!   `0` (adaptive): the re-baseline after the adaptive-worker fix. On
//!   a single-core host the adaptive path must match serial.
//!
//! Run with `--test` for a one-iteration smoke pass (CI does, in both
//! feature states).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use traj_compress::{Compressor, TdTr, TopDown, Workspace};
use traj_eval::{sweep_algo, sweep_algo_parallel, Algo, PAPER_THRESHOLDS};

fn bench(c: &mut Criterion) {
    let dataset = traj_gen::paper_dataset(42);

    let mut g = c.benchmark_group("macro");
    g.sample_size(20);
    g.bench_function("span_enter_exit", |b| {
        // Warm the per-thread span path cache, then pin it: re-entering
        // a known path must not grow the cache (i.e. no re-format of
        // "parent/child" strings on the hot path).
        {
            let (_s, _t) = traj_obs::span!("bench.overhead");
        }
        let warm = traj_obs::Span::thread_cache_len();
        b.iter(|| {
            let (_s, _t) = traj_obs::span!("bench.overhead");
        });
        assert_eq!(
            traj_obs::Span::thread_cache_len(),
            warm,
            "span cache must stay warm across re-enters"
        );
    });
    g.bench_function("labeled_counter", |b| {
        b.iter(|| {
            traj_obs::counter!("bench", "ticks", algo = "td-tr").inc();
        })
    });
    g.finish();

    let mut g = c.benchmark_group("trace");
    g.sample_size(20);
    g.bench_function("span_inactive", |b| {
        // Compiled in, no session: the is_active() fast path.
        b.iter(|| {
            let _t = traj_obs::trace_span!("bench.trace");
            black_box(());
        })
    });
    g.bench_function("span_active", |b| {
        traj_obs::trace::start();
        b.iter(|| {
            let _t = traj_obs::trace_span!("bench.trace");
            black_box(());
        });
        let trace = traj_obs::trace::stop();
        black_box(trace.event_count());
    });
    g.finish();

    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    let grid_sweep = |ws: &mut Workspace| {
        let td = TopDown::time_ratio(0.0);
        for t in &dataset {
            black_box(td.sweep_with(black_box(t), &PAPER_THRESHOLDS, ws));
        }
    };
    g.bench_function("paper_grid_untraced", |b| {
        let mut ws = Workspace::new();
        b.iter(|| grid_sweep(&mut ws));
    });
    g.bench_function("paper_grid_traced", |b| {
        traj_obs::trace::start();
        let mut ws = Workspace::new();
        b.iter(|| grid_sweep(&mut ws));
        let trace = traj_obs::trace::stop();
        black_box(trace.event_count());
    });
    g.finish();

    let mut g = c.benchmark_group("parallel");
    g.sample_size(10);
    let algo = Algo::top_down("TD-TR", TopDown::time_ratio(0.0));
    g.bench_function("sweep_algo_serial", |b| {
        b.iter(|| black_box(sweep_algo(&algo, &dataset, &PAPER_THRESHOLDS)))
    });
    g.bench_function("sweep_algo_parallel_4", |b| {
        b.iter(|| black_box(sweep_algo_parallel(&algo, &dataset, &PAPER_THRESHOLDS, 4)))
    });
    g.bench_function("sweep_algo_parallel_auto", |b| {
        b.iter(|| black_box(sweep_algo_parallel(&algo, &dataset, &PAPER_THRESHOLDS, 0)))
    });
    g.finish();

    // A compressed single-cell sanity: compression itself unaffected by
    // an inactive recorder (tracing compiled in, no session).
    let mut g = c.benchmark_group("compress");
    g.sample_size(20);
    g.bench_function("td_tr_cell", |b| {
        let c = TdTr::new(30.0);
        b.iter(|| black_box(c.compress(black_box(&dataset[0]))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
