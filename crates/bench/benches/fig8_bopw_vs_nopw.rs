//! Fig. 8 — BOPW vs NOPW break strategies: compressor cost and figure
//! regeneration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use traj_compress::{Compressor, OpeningWindow};

fn bench(c: &mut Criterion) {
    let dataset = traj_gen::paper_dataset(42);
    let mut g = c.benchmark_group("fig8_bopw_vs_nopw");
    g.sample_size(20);

    for eps in [30.0, 60.0, 100.0] {
        g.bench_with_input(BenchmarkId::new("bopw", eps as u32), &eps, |b, &eps| {
            let algo = OpeningWindow::bopw(eps);
            b.iter(|| {
                for t in &dataset {
                    black_box(algo.compress(black_box(t)));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("nopw", eps as u32), &eps, |b, &eps| {
            let algo = OpeningWindow::nopw(eps);
            b.iter(|| {
                for t in &dataset {
                    black_box(algo.compress(black_box(t)));
                }
            })
        });
    }

    g.sample_size(10);
    g.bench_function("regenerate_figure", |b| {
        b.iter(|| black_box(traj_eval::fig8(black_box(&dataset))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
