//! Fig. 9 — NOPW vs OPW-TR: the perpendicular vs time-ratio criterion at
//! equal engine, plus figure regeneration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use traj_compress::{Compressor, OpeningWindow};

fn bench(c: &mut Criterion) {
    let dataset = traj_gen::paper_dataset(42);
    let mut g = c.benchmark_group("fig9_nopw_vs_opwtr");
    g.sample_size(20);

    for eps in [30.0, 60.0, 100.0] {
        g.bench_with_input(BenchmarkId::new("nopw", eps as u32), &eps, |b, &eps| {
            let algo = OpeningWindow::nopw(eps);
            b.iter(|| {
                for t in &dataset {
                    black_box(algo.compress(black_box(t)));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("opw_tr", eps as u32), &eps, |b, &eps| {
            let algo = OpeningWindow::opw_tr(eps);
            b.iter(|| {
                for t in &dataset {
                    black_box(algo.compress(black_box(t)));
                }
            })
        });
    }

    g.sample_size(10);
    g.bench_function("regenerate_figure", |b| {
        b.iter(|| black_box(traj_eval::fig9(black_box(&dataset))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
