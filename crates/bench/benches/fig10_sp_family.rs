//! Fig. 10 — the spatiotemporal family (OPW-TR, TD-SP, OPW-SP): cost per
//! speed threshold, plus figure regeneration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use traj_compress::{Compressor, OpeningWindow, TdSp};

fn bench(c: &mut Criterion) {
    let dataset = traj_gen::paper_dataset(42);
    let mut g = c.benchmark_group("fig10_sp_family");
    g.sample_size(20);

    let eps = 50.0;
    for v in [5.0, 15.0, 25.0] {
        g.bench_with_input(BenchmarkId::new("opw_sp", v as u32), &v, |b, &v| {
            let algo = OpeningWindow::opw_sp(eps, v);
            b.iter(|| {
                for t in &dataset {
                    black_box(algo.compress(black_box(t)));
                }
            })
        });
    }
    g.bench_function("td_sp_5", |b| {
        let algo = TdSp::new(eps, 5.0);
        b.iter(|| {
            for t in &dataset {
                black_box(algo.compress(black_box(t)));
            }
        })
    });
    g.bench_function("spt_reference_recursion", |b| {
        b.iter(|| {
            for t in &dataset {
                black_box(traj_compress::spt(black_box(t), eps, 5.0));
            }
        })
    });

    g.sample_size(10);
    g.bench_function("regenerate_figure", |b| {
        b.iter(|| black_box(traj_eval::fig10(black_box(&dataset))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
