//! One-pass sweep vs per-threshold compression — the PR 4 headline.
//!
//! Both sides produce byte-identical results (pinned by
//! `crates/eval/tests/sweep_equivalence.rs`); this bench measures the
//! work saved by answering all fifteen paper thresholds from a single
//! split-tree pass per trajectory instead of fifteen independent runs.
//! The committed baseline lives at `BENCH_PR4.json` in the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use traj_compress::{Compressor, TdSp, TdTr, TopDown, Workspace};
use traj_eval::PAPER_THRESHOLDS;

fn bench(c: &mut Criterion) {
    let dataset = traj_gen::paper_dataset(42);

    let mut g = c.benchmark_group("sweep_vs_per_threshold");
    g.sample_size(20);

    // TD-TR over the paper grid: the protocol behind Figs. 7 and 11.
    g.bench_function("td_tr/per_threshold", |b| {
        b.iter(|| {
            for t in &dataset {
                for &eps in &PAPER_THRESHOLDS {
                    black_box(TdTr::new(eps).compress(black_box(t)));
                }
            }
        })
    });
    g.bench_function("td_tr/one_pass_sweep", |b| {
        let td = TopDown::time_ratio(0.0);
        let mut ws = Workspace::new();
        b.iter(|| {
            for t in &dataset {
                black_box(td.sweep_with(black_box(t), &PAPER_THRESHOLDS, &mut ws));
            }
        })
    });

    // NDP (perpendicular): same tree trick, cheaper distance.
    g.bench_function("ndp/per_threshold", |b| {
        b.iter(|| {
            for t in &dataset {
                for &eps in &PAPER_THRESHOLDS {
                    black_box(traj_compress::DouglasPeucker::new(eps).compress(black_box(t)));
                }
            }
        })
    });
    g.bench_function("ndp/one_pass_sweep", |b| {
        let td = TopDown::perpendicular(0.0);
        let mut ws = Workspace::new();
        b.iter(|| {
            for t in &dataset {
                black_box(td.sweep_with(black_box(t), &PAPER_THRESHOLDS, &mut ws));
            }
        })
    });

    // TD-SP: the memoized interval-stats path (blended criterion).
    g.bench_function("td_sp_5ms/per_threshold", |b| {
        b.iter(|| {
            for t in &dataset {
                for &eps in &PAPER_THRESHOLDS {
                    black_box(TdSp::new(eps, 5.0).compress(black_box(t)));
                }
            }
        })
    });
    g.bench_function("td_sp_5ms/one_pass_sweep", |b| {
        let td = TopDown::time_ratio_speed(0.0, 5.0);
        let mut ws = Workspace::new();
        b.iter(|| {
            for t in &dataset {
                black_box(td.sweep_with(black_box(t), &PAPER_THRESHOLDS, &mut ws));
            }
        })
    });

    // The full experiment runner, slow path vs registry fast path.
    g.sample_size(10);
    g.bench_function("experiment/factory_sweep", |b| {
        b.iter(|| {
            black_box(traj_eval::sweep(
                "TD-TR",
                black_box(&dataset),
                &PAPER_THRESHOLDS,
                |e| Box::new(TdTr::new(e)),
            ))
        })
    });
    g.bench_function("experiment/registry_sweep_algo", |b| {
        let algo = traj_eval::Algo::top_down("TD-TR", TopDown::time_ratio(0.0));
        b.iter(|| {
            black_box(traj_eval::sweep_algo(
                black_box(&algo),
                black_box(&dataset),
                &PAPER_THRESHOLDS,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
