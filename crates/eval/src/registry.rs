//! The algorithm registry: labeled, sweep-aware experiment entries.
//!
//! The experiment runner originally took a *factory* closure
//! `Fn(f64) -> Box<dyn Compressor>` and rebuilt + reran the compressor
//! per threshold. [`Algo`] generalizes that: an entry knows whether its
//! algorithm supports the one-pass multi-threshold sweep of
//! [`traj_compress::TopDown::sweep`] (the whole top-down family does) or
//! must be rebuilt per threshold (the online/window families, whose
//! anchor decisions genuinely depend on the threshold). Either way the
//! per-threshold results are byte-identical to constructing and running
//! the compressor separately at each threshold — the registry only
//! removes redundant work, never changes outputs.

use traj_compress::{CompressionResult, CompressionResultBuf, Compressor, TopDown, Workspace};
use traj_model::Trajectory;

/// How an [`Algo`] produces per-threshold results.
enum AlgoKind {
    /// Top-down family: one split-tree pass answers every threshold.
    TopDown(TopDown),
    /// Anything else: rebuild via the factory and compress per threshold.
    Factory(Box<dyn Fn(f64) -> Box<dyn Compressor> + Send + Sync>),
}

/// A labeled experiment algorithm, runnable over a threshold grid.
pub struct Algo {
    label: String,
    kind: AlgoKind,
}

impl std::fmt::Debug for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            AlgoKind::TopDown(_) => "top-down (one-pass sweep)",
            AlgoKind::Factory(_) => "factory (per-threshold)",
        };
        write!(f, "Algo({:?}, {kind})", self.label)
    }
}

impl Algo {
    /// Registers a top-down algorithm; the distance threshold of `td` is
    /// irrelevant (each sweep threshold replaces it), the criterion
    /// shape and any speed threshold are preserved.
    pub fn top_down(label: impl Into<String>, td: TopDown) -> Self {
        Algo { label: label.into(), kind: AlgoKind::TopDown(td) }
    }

    /// Registers an algorithm via a per-threshold factory.
    pub fn factory<F>(label: impl Into<String>, make: F) -> Self
    where
        F: Fn(f64) -> Box<dyn Compressor> + Send + Sync + 'static,
    {
        Algo { label: label.into(), kind: AlgoKind::Factory(Box::new(make)) }
    }

    /// The display label, e.g. `"TD-TR"` or `"OPW-SP(5m/s)"`.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Compresses `traj` at every threshold, in threshold order,
    /// borrowing scratch space from `ws`. Results are byte-identical to
    /// running the algorithm separately per threshold.
    pub fn run(
        &self,
        traj: &Trajectory,
        thresholds: &[f64],
        ws: &mut Workspace,
    ) -> Vec<CompressionResult> {
        match &self.kind {
            AlgoKind::TopDown(td) => td.sweep_with(traj, thresholds, ws),
            AlgoKind::Factory(make) => {
                let mut out = CompressionResultBuf::new();
                thresholds
                    .iter()
                    .map(|&eps| {
                        make(eps).compress_into(traj, ws, &mut out);
                        out.take()
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_compress::{OpeningWindow, TdTr};

    fn traj() -> Trajectory {
        Trajectory::from_triples((0..80).map(|i| {
            let t = i as f64 * 10.0;
            (t, t * 9.0, ((i % 6) * (i % 4)) as f64 * 25.0)
        }))
        .unwrap()
    }

    #[test]
    fn top_down_entry_matches_factory_entry() {
        let t = traj();
        let grid = [10.0, 40.0, 90.0];
        let mut ws = Workspace::new();
        let fast = Algo::top_down("TD-TR", TopDown::time_ratio(0.0));
        let slow = Algo::factory("TD-TR", |e| Box::new(TdTr::new(e)));
        assert_eq!(fast.run(&t, &grid, &mut ws), slow.run(&t, &grid, &mut ws));
    }

    #[test]
    fn factory_entry_runs_window_algorithms() {
        let t = traj();
        let mut ws = Workspace::new();
        let a = Algo::factory("OPW-TR", |e| Box::new(OpeningWindow::opw_tr(e)));
        let rs = a.run(&t, &[20.0, 60.0], &mut ws);
        assert_eq!(rs.len(), 2);
        for (r, eps) in rs.iter().zip([20.0, 60.0]) {
            assert_eq!(r, &OpeningWindow::opw_tr(eps).compress(&t));
        }
    }

    #[test]
    fn labels_and_debug() {
        let a = Algo::top_down("NDP", TopDown::perpendicular(0.0));
        assert_eq!(a.label(), "NDP");
        assert!(format!("{a:?}").contains("one-pass"));
    }
}
