//! The algorithm registry: labeled, sweep-aware experiment entries.
//!
//! The experiment runner originally took a *factory* closure
//! `Fn(f64) -> Box<dyn Compressor>` and rebuilt + reran the compressor
//! per threshold. [`Algo`] generalizes that: an entry knows whether its
//! algorithm supports the one-pass multi-threshold sweep of
//! [`traj_compress::TopDown::sweep`] (the whole top-down family does) or
//! must be rebuilt per threshold (the online/window families, whose
//! anchor decisions genuinely depend on the threshold). Either way the
//! per-threshold results are byte-identical to constructing and running
//! the compressor separately at each threshold — the registry only
//! removes redundant work, never changes outputs.

use traj_compress::{CompressionResult, CompressionResultBuf, Compressor, TopDown, Workspace};
use traj_model::Trajectory;

/// How tightly a compressor's declared threshold bounds the error of its
/// output, under the algorithm's *own* criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorBound {
    /// Every dropped point provably satisfies the declared threshold
    /// against the kept segment that covers it.
    Strict,
    /// The threshold steers per-point decisions but the error of the
    /// final kept subsequence may exceed it.
    Heuristic,
    /// The parameter is not an error threshold at all (e.g. a sampling
    /// step).
    None,
}

impl ErrorBound {
    /// The catalog-table cell text: `strict` / `heuristic` / `none`.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorBound::Strict => "strict",
            ErrorBound::Heuristic => "heuristic",
            ErrorBound::None => "none",
        }
    }
}

/// One row of the live algorithm catalog — the machine-readable source
/// of truth that `ALGORITHMS.md` is diffed against (see
/// `crates/eval/tests/catalog_sync.rs`).
pub struct AlgoMeta {
    /// The `trajc compress --algo` name (primary alias).
    pub cli_name: &'static str,
    /// The discarding criterion, in one phrase.
    pub criterion: &'static str,
    /// Whether the declared threshold is a strict bound on the output.
    pub bound: ErrorBound,
    /// Asymptotic time complexity (worst case unless noted).
    pub complexity: &'static str,
    /// Whether a record-at-a-time streaming form exists.
    pub streaming: bool,
    /// Where the algorithm comes from.
    pub reference: &'static str,
    /// Builds the compressor at a given primary threshold (speed-blended
    /// algorithms use the paper's 5 m/s default speed threshold).
    pub make: fn(f64) -> Box<dyn Compressor>,
}

impl std::fmt::Debug for AlgoMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgoMeta")
            .field("cli_name", &self.cli_name)
            .field("criterion", &self.criterion)
            .field("bound", &self.bound)
            .field("complexity", &self.complexity)
            .field("streaming", &self.streaming)
            .field("reference", &self.reference)
            .finish_non_exhaustive()
    }
}

/// Every registered compressor, in the order `ALGORITHMS.md` documents
/// them. Each row carries a live constructor, so the catalog cannot
/// drift from the code: the sync test compresses with every `make` and
/// diffs `cli_name`s against the documentation table.
pub fn algorithm_catalog() -> &'static [AlgoMeta] {
    use traj_compress::{
        BottomUp, DeadReckoning, DistanceThreshold, DouglasPeucker, HullDouglasPeucker,
        OnePassCone, OnePassFit, OpeningWindow, SlidingWindow, TdSp, TdTr, UniformSample,
    };
    const CATALOG: &[AlgoMeta] = &[
        AlgoMeta {
            cli_name: "uniform",
            criterion: "keep every i-th point",
            bound: ErrorBound::None,
            complexity: "O(n)",
            streaming: true,
            reference: "Tobler; paper §2",
            make: |eps| Box::new(UniformSample::new(eps.round().max(1.0) as usize)),
        },
        AlgoMeta {
            cli_name: "dist",
            criterion: "distance to last kept point",
            bound: ErrorBound::None,
            complexity: "O(n)",
            streaming: true,
            reference: "paper §2",
            make: |eps| Box::new(DistanceThreshold::new(eps)),
        },
        AlgoMeta {
            cli_name: "ndp",
            criterion: "perpendicular distance (top-down split)",
            bound: ErrorBound::Strict,
            complexity: "O(n²) worst",
            streaming: false,
            reference: "Douglas & Peucker; paper §2.1",
            make: |eps| Box::new(DouglasPeucker::new(eps)),
        },
        AlgoMeta {
            cli_name: "ndp-hull",
            criterion: "perpendicular distance (hull-accelerated split)",
            bound: ErrorBound::Strict,
            complexity: "O(n log n) expected",
            streaming: false,
            reference: "Hershberger & Snoeyink [17]",
            make: |eps| Box::new(HullDouglasPeucker::new(eps)),
        },
        AlgoMeta {
            cli_name: "td-tr",
            criterion: "synchronized (time-ratio) distance, top-down",
            bound: ErrorBound::Strict,
            complexity: "O(n²) worst",
            streaming: false,
            reference: "paper §3.2",
            make: |eps| Box::new(TdTr::new(eps)),
        },
        AlgoMeta {
            cli_name: "td-sp",
            criterion: "SED + derived-speed difference, top-down",
            bound: ErrorBound::Strict,
            complexity: "O(n²) worst",
            streaming: false,
            reference: "paper §4.3",
            make: |eps| Box::new(TdSp::new(eps, 5.0)),
        },
        AlgoMeta {
            cli_name: "nopw",
            criterion: "perpendicular distance, opening window",
            bound: ErrorBound::Strict,
            complexity: "O(n²) worst",
            streaming: true,
            reference: "paper §2.2",
            make: |eps| Box::new(OpeningWindow::nopw(eps)),
        },
        AlgoMeta {
            cli_name: "bopw",
            criterion: "perpendicular distance, opening window (cut before float)",
            bound: ErrorBound::Strict,
            complexity: "O(n²) worst",
            streaming: true,
            reference: "paper §2.2",
            make: |eps| Box::new(OpeningWindow::bopw(eps)),
        },
        AlgoMeta {
            cli_name: "opw-tr",
            criterion: "synchronized (time-ratio) distance, opening window",
            bound: ErrorBound::Strict,
            complexity: "O(n²) worst",
            streaming: true,
            reference: "paper §3.3",
            make: |eps| Box::new(OpeningWindow::opw_tr(eps)),
        },
        AlgoMeta {
            cli_name: "opw-sp",
            criterion: "SED + derived-speed difference, opening window",
            bound: ErrorBound::Strict,
            complexity: "O(n²) worst",
            streaming: true,
            reference: "paper §3.3 (SPT)",
            make: |eps| Box::new(OpeningWindow::opw_sp(eps, 5.0)),
        },
        AlgoMeta {
            cli_name: "dead-reckoning",
            criterion: "dead-reckoned prediction error",
            bound: ErrorBound::Heuristic,
            complexity: "O(n)",
            streaming: true,
            reference: "Wolfson et al.; DESIGN.md extension",
            make: |eps| Box::new(DeadReckoning::new(eps)),
        },
        AlgoMeta {
            cli_name: "bottom-up",
            criterion: "cheapest-merge criterion deviation",
            bound: ErrorBound::Strict,
            complexity: "O(n log n) heap ops, O(span) re-eval",
            streaming: false,
            reference: "Keogh et al.; paper §2",
            make: |eps| Box::new(BottomUp::time_ratio(eps)),
        },
        AlgoMeta {
            cli_name: "sliding-window",
            criterion: "synchronized distance in a fixed window",
            bound: ErrorBound::Strict,
            complexity: "O(n·w²) worst",
            streaming: true,
            reference: "Keogh et al.; paper §2",
            make: |eps| Box::new(SlidingWindow::time_ratio(eps, 32)),
        },
        AlgoMeta {
            cli_name: "op-fit",
            criterion: "SED via rectangular velocity fitting region",
            bound: ErrorBound::Strict,
            complexity: "O(n)",
            streaming: true,
            reference: "Lin et al., arXiv 1801.05360 (OPERB)",
            make: |eps| Box::new(OnePassFit::new(eps)),
        },
        AlgoMeta {
            cli_name: "op-cone",
            criterion: "SED via inscribed-polygon velocity region",
            bound: ErrorBound::Strict,
            complexity: "O(n·m), m directions",
            streaming: true,
            reference: "Lin et al., arXiv 1801.05360 (CISED)",
            make: |eps| Box::new(OnePassCone::new(eps)),
        },
    ];
    CATALOG
}

/// How an [`Algo`] produces per-threshold results.
enum AlgoKind {
    /// Top-down family: one split-tree pass answers every threshold.
    TopDown(TopDown),
    /// Anything else: rebuild via the factory and compress per threshold.
    Factory(Box<dyn Fn(f64) -> Box<dyn Compressor> + Send + Sync>),
}

/// A labeled experiment algorithm, runnable over a threshold grid.
pub struct Algo {
    label: String,
    kind: AlgoKind,
}

impl std::fmt::Debug for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            AlgoKind::TopDown(_) => "top-down (one-pass sweep)",
            AlgoKind::Factory(_) => "factory (per-threshold)",
        };
        write!(f, "Algo({:?}, {kind})", self.label)
    }
}

impl Algo {
    /// Registers a top-down algorithm; the distance threshold of `td` is
    /// irrelevant (each sweep threshold replaces it), the criterion
    /// shape and any speed threshold are preserved.
    pub fn top_down(label: impl Into<String>, td: TopDown) -> Self {
        Algo { label: label.into(), kind: AlgoKind::TopDown(td) }
    }

    /// Registers an algorithm via a per-threshold factory.
    pub fn factory<F>(label: impl Into<String>, make: F) -> Self
    where
        F: Fn(f64) -> Box<dyn Compressor> + Send + Sync + 'static,
    {
        Algo { label: label.into(), kind: AlgoKind::Factory(Box::new(make)) }
    }

    /// The display label, e.g. `"TD-TR"` or `"OPW-SP(5m/s)"`.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Compresses `traj` at every threshold, in threshold order,
    /// borrowing scratch space from `ws`. Results are byte-identical to
    /// running the algorithm separately per threshold.
    pub fn run(
        &self,
        traj: &Trajectory,
        thresholds: &[f64],
        ws: &mut Workspace,
    ) -> Vec<CompressionResult> {
        match &self.kind {
            AlgoKind::TopDown(td) => td.sweep_with(traj, thresholds, ws),
            AlgoKind::Factory(make) => {
                let mut out = CompressionResultBuf::new();
                thresholds
                    .iter()
                    .map(|&eps| {
                        make(eps).compress_into(traj, ws, &mut out);
                        out.take()
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_compress::{OpeningWindow, TdTr};

    fn traj() -> Trajectory {
        Trajectory::from_triples((0..80).map(|i| {
            let t = i as f64 * 10.0;
            (t, t * 9.0, ((i % 6) * (i % 4)) as f64 * 25.0)
        }))
        .unwrap()
    }

    #[test]
    fn top_down_entry_matches_factory_entry() {
        let t = traj();
        let grid = [10.0, 40.0, 90.0];
        let mut ws = Workspace::new();
        let fast = Algo::top_down("TD-TR", TopDown::time_ratio(0.0));
        let slow = Algo::factory("TD-TR", |e| Box::new(TdTr::new(e)));
        assert_eq!(fast.run(&t, &grid, &mut ws), slow.run(&t, &grid, &mut ws));
    }

    #[test]
    fn factory_entry_runs_window_algorithms() {
        let t = traj();
        let mut ws = Workspace::new();
        let a = Algo::factory("OPW-TR", |e| Box::new(OpeningWindow::opw_tr(e)));
        let rs = a.run(&t, &[20.0, 60.0], &mut ws);
        assert_eq!(rs.len(), 2);
        for (r, eps) in rs.iter().zip([20.0, 60.0]) {
            assert_eq!(r, &OpeningWindow::opw_tr(eps).compress(&t));
        }
    }

    #[test]
    fn labels_and_debug() {
        let a = Algo::top_down("NDP", TopDown::perpendicular(0.0));
        assert_eq!(a.label(), "NDP");
        assert!(format!("{a:?}").contains("one-pass"));
    }

    #[test]
    fn catalog_has_fifteen_unique_live_entries() {
        let cat = algorithm_catalog();
        assert_eq!(cat.len(), 15);
        let mut names: Vec<&str> = cat.iter().map(|m| m.cli_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15, "duplicate cli names in catalog");
        assert!(names.contains(&"op-fit") && names.contains(&"op-cone"));
        // Every constructor actually compresses.
        let t = traj();
        for meta in cat {
            let r = (meta.make)(30.0).compress(&t);
            assert_eq!(r.original_len(), t.len(), "{}", meta.cli_name);
        }
    }

    #[test]
    fn error_bound_cells_are_the_documented_vocabulary() {
        for meta in algorithm_catalog() {
            assert!(
                matches!(meta.bound.as_str(), "strict" | "heuristic" | "none"),
                "{}",
                meta.cli_name
            );
        }
    }
}
