//! Text/CSV rendering of experiment results and the paper-shape checker.

use std::fmt::Write as _;

use traj_model::stats::DatasetStats;
use traj_model::TimeDelta;

use crate::experiment::AlgoSweep;
use crate::figures::FigureData;

/// Renders Table 2 next to the paper's published values.
pub fn format_table2(stats: &DatasetStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2 — statistics of the ten trajectories");
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>14} {:>14}",
        "statistic", "ours(avg)", "ours(std)", "paper(avg)", "paper(std)"
    );
    let dur = |s: f64| TimeDelta::from_secs(s).to_string();
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>14} {:>14}",
        "duration",
        dur(stats.duration_s.mean),
        dur(stats.duration_s.std),
        "00:32:16",
        "00:14:33"
    );
    let row = |out: &mut String, name: &str, ours: &traj_model::MeanStd, pa: &str, ps: &str| {
        let _ = writeln!(
            out,
            "{:<16} {:>12.2} {:>12.2} {:>14} {:>14}",
            name, ours.mean, ours.std, pa, ps
        );
    };
    row(&mut out, "speed (km/h)", &stats.speed_kmh, "40.85", "12.63");
    row(&mut out, "length (km)", &stats.length_km, "19.95", "12.84");
    row(
        &mut out,
        "displacement",
        &stats.displacement_km,
        "10.58",
        "8.97",
    );
    row(&mut out, "# data points", &stats.n_points, "200", "100.9");
    out
}

/// Renders a figure's sweeps as one aligned table: a threshold column
/// followed by `compression% / error m` pairs per algorithm.
pub fn format_figure(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} — {}", fig.id, fig.title);
    let _ = write!(out, "{:>9}", "thresh");
    for s in &fig.sweeps {
        let _ = write!(out, " | {:^21}", s.label);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:>9}", "(m)");
    for _ in &fig.sweeps {
        let _ = write!(out, " | {:>9} {:>11}", "comp%", "err(m)");
    }
    let _ = writeln!(out);
    let n = fig.sweeps.first().map_or(0, |s| s.points.len());
    for i in 0..n {
        let _ = write!(out, "{:>9.0}", fig.sweeps[0].points[i].threshold_m);
        for s in &fig.sweeps {
            let p = &s.points[i];
            let _ = write!(out, " | {:>9.2} {:>11.2}", p.compression_pct, p.error_m);
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:>9}", "mean");
    for s in &fig.sweeps {
        let _ = write!(
            out,
            " | {:>9.2} {:>11.2}",
            s.mean_compression(),
            s.mean_error()
        );
    }
    let _ = writeln!(out);
    out
}

/// Renders a figure as a GitHub-flavoured Markdown table (threshold rows,
/// one `comp % / err m` column pair per algorithm) — the format used in
/// `EXPERIMENTS.md`.
pub fn figure_to_markdown(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {} — {}\n", fig.id, fig.title);
    let _ = write!(out, "| ε (m) |");
    for s in &fig.sweeps {
        let _ = write!(out, " {} comp % | {} err (m) |", s.label, s.label);
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in &fig.sweeps {
        let _ = write!(out, "---|---|");
    }
    let _ = writeln!(out);
    let n = fig.sweeps.first().map_or(0, |s| s.points.len());
    for i in 0..n {
        let _ = write!(out, "| {:.0} |", fig.sweeps[0].points[i].threshold_m);
        for s in &fig.sweeps {
            let p = &s.points[i];
            let _ = write!(out, " {:.2} | {:.2} |", p.compression_pct, p.error_m);
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "| **mean** |");
    for s in &fig.sweeps {
        let _ = write!(
            out,
            " **{:.2}** | **{:.2}** |",
            s.mean_compression(),
            s.mean_error()
        );
    }
    let _ = writeln!(out);
    out
}

/// Serializes a figure's sweeps as CSV with per-threshold means and
/// across-trajectory standard deviations:
/// `algo,threshold_m,compression_pct,compression_std,error_m,error_std,perp_error_m,mean_sed_m,max_sed_m`.
pub fn figure_to_csv(fig: &FigureData) -> String {
    let mut out = String::from(
        "algo,threshold_m,compression_pct,compression_std,error_m,error_std,perp_error_m,mean_sed_m,max_sed_m\n",
    );
    for s in &fig.sweeps {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{}",
                s.label,
                p.threshold_m,
                p.compression_pct,
                p.compression_std,
                p.error_m,
                p.error_std,
                p.perp_error_m,
                p.mean_sed_m,
                p.max_sed_m
            );
        }
    }
    out
}

/// Verifies the paper's qualitative claims on the reproduced figures.
/// Returns a list of violations (empty = every expected shape holds).
///
/// Checked claims (paper §4.3):
///
/// * Fig. 7 — "TD-TR produces much lower errors, while the compression
///   rate is only slightly lower": TD-TR mean error < 60% of NDP's;
///   compression within 25 points of NDP.
/// * Fig. 7 — compression increases monotonically with threshold for
///   NDP/TD-TR (the paper notes monotone increase toward an asymptote).
/// * Fig. 8 — "BOPW results in higher compression but worse errors".
/// * Fig. 9 — OPW-TR's error is below NOPW's, and OPW-TR's error varies
///   little with the threshold ("a change in threshold value does not
///   dramatically impact error level").
/// * Fig. 10 — OPW-SP(25 m/s) behaves like OPW-TR (the curves coincide
///   in the paper); OPW-SP(5 m/s) yields improved (at least equal)
///   compression — the paper's §4.3 observation.
/// * Fig. 11 — the spatiotemporal algorithms dominate: at comparable
///   compression, TD-TR/OPW-TR error is below NDP/NOPW error.
pub fn check_expectations(
    fig7: &FigureData,
    fig8: &FigureData,
    fig9: &FigureData,
    fig10: &FigureData,
    fig11: &FigureData,
) -> Vec<String> {
    let mut violations = Vec::new();
    fn expect(violations: &mut Vec<String>, ok: bool, msg: String) {
        if !ok {
            violations.push(msg);
        }
    }
    // Fetches a labeled sweep; a figure missing an expected sweep is
    // itself a recorded violation, not a panic — callers assemble the
    // figures from config and deserve a diagnosis, not an abort.
    fn sweep_of<'a>(
        violations: &mut Vec<String>,
        fig: &'a FigureData,
        id: &str,
        label: &str,
    ) -> Option<&'a AlgoSweep> {
        let s = fig.sweep(label);
        if s.is_none() {
            violations.push(format!("{id}: missing expected sweep {label}"));
        }
        s
    }

    // Fig. 7.
    let (ndp, tdtr) = (
        sweep_of(&mut violations, fig7, "fig7", "NDP"),
        sweep_of(&mut violations, fig7, "fig7", "TD-TR"),
    );
    if let (Some(ndp), Some(tdtr)) = (ndp, tdtr) {
        expect(
            &mut violations,
            tdtr.mean_error() < 0.6 * ndp.mean_error(),
            format!(
                "fig7: TD-TR error {:.1} not ≪ NDP error {:.1}",
                tdtr.mean_error(),
                ndp.mean_error()
            ),
        );
        expect(
            &mut violations,
            (ndp.mean_compression() - tdtr.mean_compression()).abs() < 25.0,
            format!(
                "fig7: compression gap too large (NDP {:.1} vs TD-TR {:.1})",
                ndp.mean_compression(),
                tdtr.mean_compression()
            ),
        );
        for s in [ndp, tdtr] {
            let monotone = s
                .points
                .windows(2)
                .all(|w| w[1].compression_pct >= w[0].compression_pct - 1e-9);
            expect(
                &mut violations,
                monotone,
                format!("fig7: {} compression not monotone", s.label),
            );
        }
    }

    // Fig. 8.
    let (bopw, nopw) = (
        sweep_of(&mut violations, fig8, "fig8", "BOPW"),
        sweep_of(&mut violations, fig8, "fig8", "NOPW"),
    );
    if let (Some(bopw), Some(nopw)) = (bopw, nopw) {
        expect(
            &mut violations,
            bopw.mean_compression() >= nopw.mean_compression(),
            format!(
                "fig8: BOPW compression {:.1} below NOPW {:.1}",
                bopw.mean_compression(),
                nopw.mean_compression()
            ),
        );
        expect(
            &mut violations,
            bopw.mean_error() >= nopw.mean_error(),
            format!(
                "fig8: BOPW error {:.1} below NOPW {:.1}",
                bopw.mean_error(),
                nopw.mean_error()
            ),
        );
    }

    // Fig. 9.
    let (nopw9, opwtr) = (
        sweep_of(&mut violations, fig9, "fig9", "NOPW"),
        sweep_of(&mut violations, fig9, "fig9", "OPW-TR"),
    );
    if let (Some(nopw9), Some(opwtr)) = (nopw9, opwtr) {
        expect(
            &mut violations,
            opwtr.mean_error() < nopw9.mean_error(),
            format!(
                "fig9: OPW-TR error {:.1} not below NOPW {:.1}",
                opwtr.mean_error(),
                nopw9.mean_error()
            ),
        );
        expect(
            &mut violations,
            opwtr.error_spread() < nopw9.error_spread(),
            format!(
                "fig9: OPW-TR error spread {:.1} not tighter than NOPW {:.1}",
                opwtr.error_spread(),
                nopw9.error_spread()
            ),
        );
    }

    // Fig. 10.
    let (opwtr10, sp25, sp5) = (
        sweep_of(&mut violations, fig10, "fig10", "OPW-TR"),
        sweep_of(&mut violations, fig10, "fig10", "OPW-SP(25m/s)"),
        sweep_of(&mut violations, fig10, "fig10", "OPW-SP(5m/s)"),
    );
    if let (Some(opwtr10), Some(sp25), Some(sp5)) = (opwtr10, sp25, sp5) {
        let coincide = opwtr10
            .points
            .iter()
            .zip(&sp25.points)
            .all(|(a, b)| (a.compression_pct - b.compression_pct).abs() < 5.0);
        expect(
            &mut violations,
            coincide,
            "fig10: OPW-SP(25m/s) does not track OPW-TR".to_string(),
        );
        // "Choosing a speed difference threshold of 5 m/s … results in
        // improved compression" (§4.3): the earlier cuts the speed criterion
        // forces re-anchor the window at kinks, which pays off downstream.
        expect(
            &mut violations,
            sp5.mean_compression() >= opwtr10.mean_compression() - 2.0,
            format!(
                "fig10: OPW-SP(5m/s) compression {:.1} not at/above OPW-TR {:.1}",
                sp5.mean_compression(),
                opwtr10.mean_compression()
            ),
        );
    }

    // Fig. 11: spatiotemporal dominance.
    let (ndp11, tdtr11, nopw11, opwtr11) = (
        sweep_of(&mut violations, fig11, "fig11", "NDP"),
        sweep_of(&mut violations, fig11, "fig11", "TD-TR"),
        sweep_of(&mut violations, fig11, "fig11", "NOPW"),
        sweep_of(&mut violations, fig11, "fig11", "OPW-TR"),
    );
    if let (Some(ndp11), Some(tdtr11), Some(nopw11), Some(opwtr11)) =
        (ndp11, tdtr11, nopw11, opwtr11)
    {
        expect(
            &mut violations,
            tdtr11.mean_error() < ndp11.mean_error(),
            "fig11: TD-TR does not dominate NDP on error".to_string(),
        );
        expect(
            &mut violations,
            opwtr11.mean_error() < nopw11.mean_error(),
            "fig11: OPW-TR does not dominate NOPW on error".to_string(),
        );
        expect(
            &mut violations,
            tdtr11.mean_compression() >= opwtr11.mean_compression() - 5.0,
            format!(
                "fig11: TD-TR compression {:.1} not ranked at/above OPW-TR {:.1}",
                tdtr11.mean_compression(),
                opwtr11.mean_compression()
            ),
        );
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{AlgoSweep, SweepPoint};

    fn sweep(label: &str, rows: &[(f64, f64, f64)]) -> AlgoSweep {
        AlgoSweep {
            label: label.into(),
            points: rows
                .iter()
                .map(|&(t, c, e)| SweepPoint {
                    threshold_m: t,
                    compression_pct: c,
                    compression_std: 0.0,
                    error_m: e,
                    error_std: 0.0,
                    perp_error_m: e / 2.0,
                    mean_sed_m: e / 3.0,
                    max_sed_m: e,
                })
                .collect(),
        }
    }

    fn fig(id: &'static str, sweeps: Vec<AlgoSweep>) -> FigureData {
        FigureData {
            id,
            title: "test",
            sweeps,
        }
    }

    #[test]
    fn format_figure_contains_all_labels_and_rows() {
        let f = fig(
            "figX",
            vec![
                sweep("A", &[(30.0, 50.0, 100.0), (40.0, 60.0, 120.0)]),
                sweep("B", &[(30.0, 55.0, 80.0), (40.0, 65.0, 90.0)]),
            ],
        );
        let text = format_figure(&f);
        assert!(text.contains("figX"));
        assert!(text.contains('A') && text.contains('B'));
        assert!(text.contains("30") && text.contains("40"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn markdown_has_header_rows_and_means() {
        let f = fig(
            "figM",
            vec![
                sweep("A", &[(30.0, 50.0, 100.0), (40.0, 60.0, 120.0)]),
                sweep("B", &[(30.0, 55.0, 80.0), (40.0, 65.0, 90.0)]),
            ],
        );
        let md = figure_to_markdown(&f);
        assert!(md.starts_with("### figM"));
        assert!(md.contains("| ε (m) |"));
        assert!(md.contains("| 30 |"));
        assert!(md.contains("**mean**"));
        // Column count consistent on every data row.
        let cols: Vec<usize> = md
            .lines()
            .filter(|l| l.starts_with('|'))
            .map(|l| l.matches('|').count())
            .collect();
        assert!(
            cols.windows(2).all(|w| w[0] == w[1]),
            "ragged table: {cols:?}"
        );
    }

    #[test]
    fn csv_roundtrip_field_count() {
        let f = fig("figY", vec![sweep("A", &[(30.0, 50.0, 100.0)])]);
        let csv = figure_to_csv(&f);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "algo,threshold_m,compression_pct,compression_std,error_m,error_std,perp_error_m,mean_sed_m,max_sed_m"
        );
        let data = lines.next().unwrap();
        assert_eq!(data.split(',').count(), 9);
        assert!(data.starts_with("A,30"));
    }

    #[test]
    fn checker_accepts_paper_shaped_data() {
        // Hand-built data exhibiting every expected relation.
        let f7 = fig(
            "fig7",
            vec![
                sweep("NDP", &[(30.0, 70.0, 800.0), (40.0, 75.0, 900.0)]),
                sweep("TD-TR", &[(30.0, 65.0, 200.0), (40.0, 70.0, 250.0)]),
            ],
        );
        let f8 = fig(
            "fig8",
            vec![
                sweep("BOPW", &[(30.0, 80.0, 1200.0)]),
                sweep("NOPW", &[(30.0, 70.0, 800.0)]),
            ],
        );
        let f9 = fig(
            "fig9",
            vec![
                sweep("NOPW", &[(30.0, 70.0, 700.0), (40.0, 72.0, 1000.0)]),
                sweep("OPW-TR", &[(30.0, 60.0, 180.0), (40.0, 62.0, 200.0)]),
            ],
        );
        let f10 = fig(
            "fig10",
            vec![
                sweep("OPW-TR", &[(30.0, 60.0, 180.0)]),
                sweep("TD-SP(5m/s)", &[(30.0, 70.0, 300.0)]),
                sweep("OPW-SP(5m/s)", &[(30.0, 63.0, 220.0)]),
                sweep("OPW-SP(15m/s)", &[(30.0, 59.0, 185.0)]),
                sweep("OPW-SP(25m/s)", &[(30.0, 60.0, 180.0)]),
            ],
        );
        let f11 = fig(
            "fig11",
            vec![
                sweep("NDP", &[(30.0, 70.0, 800.0)]),
                sweep("TD-TR", &[(30.0, 68.0, 200.0)]),
                sweep("NOPW", &[(30.0, 66.0, 700.0)]),
                sweep("OPW-TR", &[(30.0, 60.0, 180.0)]),
                sweep("OPW-SP(5m/s)", &[(30.0, 63.0, 220.0)]),
                sweep("OPW-SP(15m/s)", &[(30.0, 59.0, 185.0)]),
                sweep("OPW-SP(25m/s)", &[(30.0, 60.0, 180.0)]),
            ],
        );
        let v = check_expectations(&f7, &f8, &f9, &f10, &f11);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn checker_flags_inverted_fig7() {
        // TD-TR worse than NDP must be flagged.
        let f7 = fig(
            "fig7",
            vec![
                sweep("NDP", &[(30.0, 70.0, 200.0)]),
                sweep("TD-TR", &[(30.0, 65.0, 800.0)]),
            ],
        );
        let ok8 = fig(
            "fig8",
            vec![
                sweep("BOPW", &[(30.0, 80.0, 1200.0)]),
                sweep("NOPW", &[(30.0, 70.0, 800.0)]),
            ],
        );
        let ok9 = fig(
            "fig9",
            vec![
                sweep("NOPW", &[(30.0, 70.0, 700.0), (40.0, 70.0, 1000.0)]),
                sweep("OPW-TR", &[(30.0, 60.0, 180.0), (40.0, 61.0, 190.0)]),
            ],
        );
        let ok10 = fig(
            "fig10",
            vec![
                sweep("OPW-TR", &[(30.0, 60.0, 180.0)]),
                sweep("TD-SP(5m/s)", &[(30.0, 70.0, 300.0)]),
                sweep("OPW-SP(5m/s)", &[(30.0, 63.0, 220.0)]),
                sweep("OPW-SP(15m/s)", &[(30.0, 59.0, 185.0)]),
                sweep("OPW-SP(25m/s)", &[(30.0, 60.0, 180.0)]),
            ],
        );
        let ok11 = fig(
            "fig11",
            vec![
                sweep("NDP", &[(30.0, 70.0, 800.0)]),
                sweep("TD-TR", &[(30.0, 68.0, 200.0)]),
                sweep("NOPW", &[(30.0, 66.0, 700.0)]),
                sweep("OPW-TR", &[(30.0, 60.0, 180.0)]),
                sweep("OPW-SP(5m/s)", &[(30.0, 63.0, 220.0)]),
                sweep("OPW-SP(15m/s)", &[(30.0, 59.0, 185.0)]),
                sweep("OPW-SP(25m/s)", &[(30.0, 60.0, 180.0)]),
            ],
        );
        let v = check_expectations(&f7, &ok8, &ok9, &ok10, &ok11);
        assert!(
            v.iter().any(|m| m.contains("fig7")),
            "fig7 violation not flagged: {v:?}"
        );
    }

    #[test]
    fn table2_formatting_mentions_paper_values() {
        let stats = traj_model::stats::DatasetStats {
            duration_s: traj_model::MeanStd {
                mean: 1800.0,
                std: 800.0,
            },
            speed_kmh: traj_model::MeanStd {
                mean: 42.0,
                std: 5.0,
            },
            length_km: traj_model::MeanStd {
                mean: 20.0,
                std: 9.0,
            },
            displacement_km: traj_model::MeanStd {
                mean: 12.0,
                std: 6.0,
            },
            n_points: traj_model::MeanStd {
                mean: 180.0,
                std: 80.0,
            },
        };
        let text = format_table2(&stats);
        assert!(text.contains("40.85"));
        assert!(text.contains("00:32:16"));
        assert!(text.contains("00:30:00")); // our formatted duration
        assert!(text.contains("# data points"));
    }
}
