//! The experiment runner: threshold sweeps averaged over the dataset.

use crate::registry::Algo;
use traj_compress::{evaluate, evaluate_sweep, Compressor, EvalWorkspace, Evaluation, Workspace};
use traj_model::Trajectory;

/// The paper's fifteen spatial thresholds: 30–100 m in 5 m steps (§4.3).
pub const PAPER_THRESHOLDS: [f64; 15] = [
    30.0, 35.0, 40.0, 45.0, 50.0, 55.0, 60.0, 65.0, 70.0, 75.0, 80.0, 85.0, 90.0, 95.0, 100.0,
];

/// The paper's speed-difference thresholds: 5, 15, 25 m/s (§4.3).
pub const PAPER_SPEED_THRESHOLDS: [f64; 3] = [5.0, 15.0, 25.0];

/// One cell of a sweep: dataset-average compression and error at a
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Spatial threshold, metres.
    pub threshold_m: f64,
    /// Mean compression over the dataset, percent of points removed.
    pub compression_pct: f64,
    /// Std-dev of compression across the dataset's trajectories.
    pub compression_std: f64,
    /// Mean average-synchronous error `α` over the dataset, metres.
    pub error_m: f64,
    /// Std-dev of `α` across the dataset's trajectories, metres.
    pub error_std: f64,
    /// Mean of the classic perpendicular error over the dataset, metres
    /// (reported alongside for the §4.1 comparison).
    pub perp_error_m: f64,
    /// Mean SED at the original sample instants, averaged over the
    /// dataset, metres.
    pub mean_sed_m: f64,
    /// Worst SED at the original sample instants across the whole
    /// dataset, metres — for strict-bound algorithms this never exceeds
    /// `threshold_m`.
    pub max_sed_m: f64,
}

/// A full threshold sweep for one algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoSweep {
    /// Display label, e.g. `"TD-TR"` or `"OPW-SP(5m/s)"`.
    pub label: String,
    /// One point per threshold, in threshold order.
    pub points: Vec<SweepPoint>,
}

impl AlgoSweep {
    /// Mean error across all thresholds (used by shape checks).
    pub fn mean_error(&self) -> f64 {
        mean(self.points.iter().map(|p| p.error_m))
    }

    /// Mean compression across all thresholds.
    pub fn mean_compression(&self) -> f64 {
        mean(self.points.iter().map(|p| p.compression_pct))
    }

    /// Error spread: max − min across thresholds (the paper's
    /// "threshold-insensitivity" observation for OPW-TR, Fig. 9).
    /// An empty sweep has no spread: 0 (the folds' seeds would
    /// otherwise produce `0 − ∞ = -inf`).
    pub fn error_spread(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let lo = self
            .points
            .iter()
            .map(|p| p.error_m)
            .fold(f64::INFINITY, f64::min);
        let hi = self.points.iter().map(|p| p.error_m).fold(0.0f64, f64::max);
        hi - lo
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Runs `make(threshold)` over every trajectory of `dataset` for every
/// threshold, averaging compression and error per threshold — the
/// protocol behind each curve of Figs. 7–11 ("figures given are averages
/// over ten different trajectories").
///
/// Prefer [`sweep_algo`] for registered algorithms: top-down entries
/// then share one split-tree pass across all thresholds. The per-point
/// numbers are bit-identical either way.
pub fn sweep<F>(label: &str, dataset: &[Trajectory], thresholds: &[f64], make: F) -> AlgoSweep
where
    F: Fn(f64) -> Box<dyn Compressor>,
{
    // Stays on the reference `evaluate()` path deliberately: the factory
    // sweep is the independent cross-check for the one-pass engine used
    // by `sweep_algo` (see `tests/sweep_equivalence.rs`).
    aggregate(
        label,
        dataset.len(),
        thresholds,
        dataset.iter().map(|traj| {
            thresholds
                .iter()
                .map(|&eps| evaluate(traj, &make(eps).compress(traj)))
                .collect()
        }),
    )
}

/// Runs a registered [`Algo`] over the dataset × threshold grid: one
/// [`Algo::run`] call per trajectory (a single split-tree pass for
/// top-down entries) and one [`evaluate_sweep`] engine pass per
/// trajectory (anchor segments shared across thresholds are evaluated
/// once), averaged per threshold exactly like [`sweep`].
pub fn sweep_algo(algo: &Algo, dataset: &[Trajectory], thresholds: &[f64]) -> AlgoSweep {
    let mut ws = Workspace::new();
    let mut ews = EvalWorkspace::new();
    aggregate(
        algo.label(),
        dataset.len(),
        thresholds,
        dataset.iter().map(|traj| {
            let results = algo.run(traj, thresholds, &mut ws);
            evaluate_sweep(traj, &results, &mut ews)
        }),
    )
}

/// [`sweep_algo`] with the dataset fanned across up to `threads` scoped
/// worker threads (`0` = auto: all available cores, falling back to the
/// inline path on single-core hosts or when the grid is too small to
/// amortise thread startup — see [`traj_compress::auto_workers`];
/// `1` = inline with no thread overhead). Each worker owns one
/// compression [`Workspace`] and one [`EvalWorkspace`] for its whole
/// stripe; per-trajectory rows are merged back in input order before
/// aggregation, so the returned sweep is **bit-identical** to the
/// serial path — parallelism is observable only in wall time.
///
/// When a [`traj_obs::trace`] session is active, each worker labels its
/// own timeline track (`sweep-worker-{w}`) and brackets its stripe in a
/// `parallel.stripe` span whose value is the stripe's trajectory count.
///
/// # Panics
/// Panics on an empty dataset, or if a worker panics (propagated).
pub fn sweep_algo_parallel(
    algo: &Algo,
    dataset: &[Trajectory],
    thresholds: &[f64],
    threads: usize,
) -> AlgoSweep {
    let n = dataset.len();
    // Grid work: every input point is visited once per threshold.
    let total_points: usize = dataset.iter().map(Trajectory::len).sum();
    let grid_work = total_points.saturating_mul(thresholds.len().max(1));
    let workers = traj_compress::auto_workers(threads, n, grid_work);
    if workers == 1 {
        return sweep_algo(algo, dataset, thresholds);
    }
    let mut slots: Vec<Option<Vec<Evaluation>>> = vec![None; n];
    std::thread::scope(|scope| {
        // Striped partition, as in `traj_compress::compress_all`.
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            handles.push(scope.spawn(move || {
                if traj_obs::trace::is_active() {
                    traj_obs::trace::set_track_label(&format!("sweep-worker-{w}"));
                }
                let _stripe = traj_obs::trace_span!("parallel.stripe", (n - w).div_ceil(workers));
                let mut ws = Workspace::new();
                let mut ews = EvalWorkspace::new();
                let mut out = Vec::new();
                let mut i = w;
                while i < n {
                    let traj = &dataset[i];
                    let results = algo.run(traj, thresholds, &mut ws);
                    out.push((i, evaluate_sweep(traj, &results, &mut ews)));
                    i += workers;
                }
                out
            }));
        }
        for h in handles {
            // lint: allow(panic) a worker panic is an algorithm bug; re-raising
            // it on the caller thread is deliberate panic propagation
            for (i, row) in h.join().expect("worker panicked") {
                slots[i] = Some(row);
            }
        }
    });
    aggregate(algo.label(), n, thresholds, slots.into_iter().flatten())
}

/// Shared aggregation: one row of per-threshold [`Evaluation`]s per
/// trajectory, consumed in dataset order. Per-threshold statistics
/// accumulate in that order, so any two producers of identical rows
/// yield bit-identical sweeps — the hinge of the parallel/serial
/// equivalence guarantee.
fn aggregate(
    label: &str,
    dataset_len: usize,
    thresholds: &[f64],
    rows: impl IntoIterator<Item = Vec<Evaluation>>,
) -> AlgoSweep {
    assert!(dataset_len > 0, "sweep needs a non-empty dataset");
    let nt = thresholds.len();
    let mut comps = vec![Vec::with_capacity(dataset_len); nt];
    let mut errs = vec![Vec::with_capacity(dataset_len); nt];
    let mut perp = vec![0.0f64; nt];
    let mut sed_mean = vec![0.0f64; nt];
    let mut sed_max = vec![0.0f64; nt];
    for row in rows {
        debug_assert_eq!(row.len(), nt, "one evaluation per threshold");
        for (j, e) in row.iter().enumerate() {
            comps[j].push(e.compression_pct);
            errs[j].push(e.avg_sync_err_m);
            perp[j] += e.mean_perp_m;
            sed_mean[j] += e.mean_sed_m;
            sed_max[j] = sed_max[j].max(e.max_sed_m);
        }
    }
    let points = thresholds
        .iter()
        .enumerate()
        .map(|(j, &eps)| {
            let comp = traj_model::MeanStd::of(&comps[j]);
            let err = traj_model::MeanStd::of(&errs[j]);
            SweepPoint {
                threshold_m: eps,
                compression_pct: comp.mean,
                compression_std: comp.std,
                error_m: err.mean,
                error_std: err.std,
                perp_error_m: perp[j] / dataset_len as f64,
                mean_sed_m: sed_mean[j] / dataset_len as f64,
                max_sed_m: sed_max[j],
            }
        })
        .collect();
    AlgoSweep {
        label: label.to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_compress::TdTr;

    fn tiny_dataset() -> Vec<Trajectory> {
        (0..3)
            .map(|k| {
                Trajectory::from_triples((0..40).map(|i| {
                    let t = i as f64 * 10.0;
                    (t, t * 10.0, ((i + k) % 5) as f64 * 30.0)
                }))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn sweep_produces_one_point_per_threshold() {
        let ds = tiny_dataset();
        let s = sweep("TD-TR", &ds, &[10.0, 50.0, 90.0], |e| {
            Box::new(TdTr::new(e))
        });
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.label, "TD-TR");
        for (p, eps) in s.points.iter().zip([10.0, 50.0, 90.0]) {
            assert_eq!(p.threshold_m, eps);
            assert!(p.compression_pct >= 0.0 && p.compression_pct <= 100.0);
            assert!(p.error_m >= 0.0);
        }
    }

    #[test]
    fn compression_monotone_in_threshold_for_td_tr() {
        let ds = tiny_dataset();
        let s = sweep("TD-TR", &ds, &PAPER_THRESHOLDS, |e| Box::new(TdTr::new(e)));
        for w in s.points.windows(2) {
            assert!(
                w[1].compression_pct >= w[0].compression_pct - 1e-9,
                "compression dropped between thresholds"
            );
        }
    }

    #[test]
    fn aggregates() {
        let ds = tiny_dataset();
        let s = sweep("TD-TR", &ds, &[30.0, 100.0], |e| Box::new(TdTr::new(e)));
        assert!(s.mean_error() >= 0.0);
        assert!(s.mean_compression() > 0.0);
        assert!(s.error_spread() >= 0.0);
    }

    #[test]
    fn error_spread_of_empty_sweep_is_zero() {
        let s = AlgoSweep {
            label: "empty".into(),
            points: Vec::new(),
        };
        assert_eq!(s.error_spread(), 0.0);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let ds = tiny_dataset();
        let algo =
            crate::registry::Algo::top_down("TD-TR", traj_compress::TopDown::time_ratio(0.0));
        let serial = sweep_algo(&algo, &ds, &PAPER_THRESHOLDS);
        for threads in [0, 2, 8] {
            let par = sweep_algo_parallel(&algo, &ds, &PAPER_THRESHOLDS, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn paper_constants() {
        assert_eq!(PAPER_THRESHOLDS.len(), 15);
        assert_eq!(PAPER_THRESHOLDS[0], 30.0);
        assert_eq!(PAPER_THRESHOLDS[14], 100.0);
        assert_eq!(PAPER_SPEED_THRESHOLDS, [5.0, 15.0, 25.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dataset_rejected() {
        let _ = sweep("x", &[], &[10.0], |e| Box::new(TdTr::new(e)));
    }
}
