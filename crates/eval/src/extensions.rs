//! Extension experiments beyond the paper's figures, implementing its
//! §5 future-work agenda.
//!
//! * [`object_classes`] — "moving objects of different nature": the same
//!   TD-TR/OPW-TR trade-off measured on cars, pedestrians and animal
//!   tracks, with thresholds scaled to each class's spatial extent;
//! * [`noise_ablation`] — how GPS noise moves the Fig. 7 comparison
//!   (the paper: "we know our raw data to already contain error");
//! * [`sampling_ablation`] — how the reporting interval moves it
//!   (the paper's 10 s example stream versus denser/sparser devices);
//! * [`interpolation_gap`] — "other, more advanced, interpolation
//!   techniques and consequently other error notions": the average gap
//!   between the linear and Catmull–Rom interpretations of each dataset
//!   trajectory, bounding how much the motion-model choice can move any
//!   error figure.

use traj_compress::error::interpolation_model_gap;
use traj_compress::{DouglasPeucker, OpeningWindow, TdTr};
use traj_gen::{animal_track, paper_dataset, pedestrian_trip, AnimalParams, PedestrianParams};
use traj_model::Trajectory;

use crate::experiment::{sweep, AlgoSweep};
use crate::figures::FigureData;

/// A labelled dataset of one object class.
#[derive(Debug, Clone)]
pub struct ClassDataset {
    /// Class name (`"car"`, `"pedestrian"`, `"animal"`).
    pub class: &'static str,
    /// Thresholds appropriate to the class's spatial scale, metres.
    pub thresholds: Vec<f64>,
    /// The trajectories.
    pub trajectories: Vec<Trajectory>,
}

/// Builds the three object-class datasets (ten trajectories each).
pub fn class_datasets(seed: u64) -> Vec<ClassDataset> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let cars = ClassDataset {
        class: "car",
        thresholds: vec![30.0, 50.0, 70.0, 100.0],
        trajectories: paper_dataset(seed),
    };
    let pedestrians = ClassDataset {
        class: "pedestrian",
        thresholds: vec![2.0, 5.0, 10.0, 20.0],
        trajectories: (0..10)
            .map(|i| {
                pedestrian_trip(
                    &PedestrianParams::default(),
                    &mut StdRng::seed_from_u64(seed.wrapping_add(2000 + i)),
                )
            })
            .collect(),
    };
    let animals = ClassDataset {
        class: "animal",
        thresholds: vec![10.0, 25.0, 50.0, 100.0],
        trajectories: (0..10)
            .map(|i| {
                animal_track(
                    &AnimalParams::default(),
                    &mut StdRng::seed_from_u64(seed.wrapping_add(3000 + i)),
                )
            })
            .collect(),
    };
    vec![cars, pedestrians, animals]
}

/// The object-class experiment: TD-TR and OPW-TR sweeps per class, with
/// class-appropriate thresholds. Returns one [`FigureData`] per class.
pub fn object_classes(seed: u64) -> Vec<(String, FigureData)> {
    class_datasets(seed)
        .into_iter()
        .map(|ds| {
            let fig = FigureData {
                id: "ext_classes",
                title: "TD-TR vs OPW-TR per object class (extension)",
                sweeps: vec![
                    sweep("TD-TR", &ds.trajectories, &ds.thresholds, |e| {
                        Box::new(TdTr::new(e))
                    }),
                    sweep("OPW-TR", &ds.trajectories, &ds.thresholds, |e| {
                        Box::new(OpeningWindow::opw_tr(e))
                    }),
                ],
            };
            (ds.class.to_string(), fig)
        })
        .collect()
}

/// Fig. 7 rebuilt at several GPS noise levels: `(sigma_m, NDP sweep,
/// TD-TR sweep)` per level.
pub fn noise_ablation(seed: u64, thresholds: &[f64]) -> Vec<(f64, AlgoSweep, AlgoSweep)> {
    [0.0f64, 4.0, 8.0]
        .iter()
        .map(|&sigma| {
            let cfg = traj_gen::TripConfig {
                noise: if traj_geom::numeric::approx_zero(sigma, 0.0) {
                    traj_gen::GpsNoise::white(0.0)
                } else {
                    traj_gen::GpsNoise::new(sigma, 0.8)
                },
                ..traj_gen::TripConfig::default()
            };
            let ds = traj_gen::dataset::paper_dataset_with(seed, &cfg);
            let ndp = sweep("NDP", &ds, thresholds, |e| Box::new(DouglasPeucker::new(e)));
            let tdtr = sweep("TD-TR", &ds, thresholds, |e| Box::new(TdTr::new(e)));
            (sigma, ndp, tdtr)
        })
        .collect()
}

/// Fig. 7 rebuilt at several sampling intervals: `(interval_s, NDP
/// sweep, TD-TR sweep)` per interval.
pub fn sampling_ablation(seed: u64, thresholds: &[f64]) -> Vec<(f64, AlgoSweep, AlgoSweep)> {
    [5.0f64, 10.0, 20.0]
        .iter()
        .map(|&interval| {
            let cfg = traj_gen::TripConfig {
                sample_interval: interval,
                ..traj_gen::TripConfig::default()
            };
            let ds = traj_gen::dataset::paper_dataset_with(seed, &cfg);
            let ndp = sweep("NDP", &ds, thresholds, |e| Box::new(DouglasPeucker::new(e)));
            let tdtr = sweep("TD-TR", &ds, thresholds, |e| Box::new(TdTr::new(e)));
            (interval, ndp, tdtr)
        })
        .collect()
}

/// Behavioural signature per object class: mean stop-time ratio
/// (fraction of the duration spent in detected dwell episodes). The
/// signature explains the class-specific threshold guidance: high stop
/// ratios are where the time-aware algorithms earn their keep.
pub fn class_signatures(seed: u64) -> Vec<(String, f64)> {
    use traj_compress::stop_ratio;
    use traj_model::TimeDelta;
    class_datasets(seed)
        .into_iter()
        .map(|ds| {
            // Radius scaled to the class (first threshold), 30 s minimum.
            let radius = ds.thresholds[0].max(5.0);
            let ratios: Vec<f64> = ds
                .trajectories
                .iter()
                .map(|t| stop_ratio(t, radius, TimeDelta::from_secs(30.0)))
                .collect();
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            (ds.class.to_string(), mean)
        })
        .collect()
}

/// The online spectrum (extension): dead-reckoning (`O(1)` state) vs
/// OPW-TR (`O(w)` window) vs batch TD-TR, swept over the paper
/// thresholds — what giving up look-back (and then batch access) buys.
pub fn online_spectrum(seed: u64, thresholds: &[f64]) -> FigureData {
    let ds = paper_dataset(seed);
    FigureData {
        id: "ext_online",
        title: "Online spectrum: dead-reckoning vs OPW-TR vs TD-TR (extension)",
        sweeps: vec![
            sweep("DR", &ds, thresholds, |e| {
                Box::new(traj_compress::DeadReckoning::new(e))
            }),
            sweep("OPW-TR", &ds, thresholds, |e| {
                Box::new(OpeningWindow::opw_tr(e))
            }),
            sweep("TD-TR", &ds, thresholds, |e| Box::new(TdTr::new(e))),
        ],
    }
}

/// Mean Catmull–Rom-vs-linear interpretation gap over the dataset,
/// metres — how much the piecewise-linear motion assumption can move any
/// error figure (paper §5).
pub fn interpolation_gap(seed: u64) -> f64 {
    let ds = paper_dataset(seed);
    let gaps: Vec<f64> = ds
        .iter()
        .map(|t| interpolation_model_gap(t, 1e-4))
        .collect();
    gaps.iter().sum::<f64>() / gaps.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_datasets_have_three_classes_of_ten() {
        let ds = class_datasets(42);
        assert_eq!(ds.len(), 3);
        for d in &ds {
            assert_eq!(d.trajectories.len(), 10, "{}", d.class);
            assert!(!d.thresholds.is_empty());
        }
    }

    #[test]
    fn object_classes_produce_complete_figures() {
        let figs = object_classes(42);
        assert_eq!(figs.len(), 3);
        for (class, fig) in &figs {
            assert_eq!(fig.sweeps.len(), 2, "{class}");
            for s in &fig.sweeps {
                for p in &s.points {
                    assert!(p.compression_pct >= 0.0 && p.compression_pct <= 100.0);
                    assert!(p.error_m.is_finite());
                }
            }
        }
    }

    #[test]
    fn td_tr_beats_ndp_regardless_of_noise() {
        for (sigma, ndp, tdtr) in noise_ablation(42, &[30.0, 60.0]) {
            assert!(
                tdtr.mean_error() < ndp.mean_error(),
                "σ={sigma}: TD-TR {} vs NDP {}",
                tdtr.mean_error(),
                ndp.mean_error()
            );
        }
    }

    #[test]
    fn class_signatures_reflect_behaviour() {
        let sigs = class_signatures(42);
        assert_eq!(sigs.len(), 3);
        for (class, ratio) in &sigs {
            assert!((0.0..=1.0).contains(ratio), "{class}: ratio {ratio}");
        }
        // Cars stop at lights; pedestrians pause; both should show some
        // dwell time on average.
        let car = sigs.iter().find(|(c, _)| c == "car").unwrap().1;
        assert!(car > 0.0, "car stop ratio {car}");
    }

    #[test]
    fn online_spectrum_errors_are_bounded_and_ordered() {
        let fig = online_spectrum(42, &[30.0, 60.0]);
        let dr = fig.sweep("DR").unwrap();
        let opwtr = fig.sweep("OPW-TR").unwrap();
        let tdtr = fig.sweep("TD-TR").unwrap();
        // The look-back hierarchy on compression: batch ≥ windowed; and
        // every member compresses something.
        assert!(tdtr.mean_compression() >= opwtr.mean_compression() - 1.0);
        for s in [dr, opwtr, tdtr] {
            assert!(
                s.mean_compression() > 5.0,
                "{}: {}",
                s.label,
                s.mean_compression()
            );
            assert!(s.mean_error().is_finite());
        }
    }

    #[test]
    fn interpolation_gap_is_small_but_positive() {
        let gap = interpolation_gap(42);
        assert!(gap > 0.0, "curved car motion must have a model gap");
        assert!(
            gap < 10.0,
            "gap {gap} m — the 10 s-sampled car data should be near-linear between fixes"
        );
    }
}
