//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [all|table2|fig7|fig8|fig9|fig10|fig11|onepass|check|ext] [--seed N]
//!       [--csv DIR] [--metrics-out FILE] [--trace-out FILE] [--threads N] [--fast]
//! ```
//!
//! With no arguments, runs `all`: prints Table 2, Figures 7–11 and the
//! one-pass comparison as aligned text tables (averages over the
//! ten-trajectory dataset) and finishes with the paper-shape check.
//! `onepass` prints just the one-pass SED family (OP-FIT / OP-CONE)
//! against NDP, TD-TR and OPW-TR — compression, α error, SED max/mean —
//! plus a wall-time/throughput table for the same sweeps.
//! `--csv DIR` additionally writes
//! one CSV per figure into `DIR`, plus a `metrics.csv` sidecar with the
//! instrumentation snapshot of the whole run; `--metrics-out FILE`
//! redirects the sidecar (JSON lines for `.json` paths, CSV otherwise).
//!
//! `--threads N` fans each figure's sweeps over N worker threads
//! (`0` = auto: all cores, or serial when the grid is too small to
//! amortise thread startup; default 1). The aggregates are bit-identical
//! to the serial run — parallelism is observable only in wall time.
//! `--fast` shrinks the protocol (three trajectories, four thresholds)
//! for smoke runs; figures lose their paper meaning, so `check`/`all`
//! refuse it.
//!
//! `--trace-out FILE` records a timeline of the whole run (one track
//! per worker thread) and writes it on exit: flamegraph folded stacks
//! for `.folded` paths, Chrome Trace Event JSON otherwise (load it at
//! `ui.perfetto.dev` or `chrome://tracing`). Requires the `obs`
//! feature; without it the file holds an empty trace.

use std::path::PathBuf;
use std::process::ExitCode;

use traj_eval::{
    check_expectations, fig10_threaded, fig11_threaded, fig7_threaded, fig8_threaded,
    fig9_threaded, fig_onepass_threaded, figure_to_csv, format_figure, format_table2,
    sweep_algo_parallel, table2, Algo, FigureData, PAPER_THRESHOLDS,
};

struct Args {
    what: String,
    seed: u64,
    csv_dir: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    threads: usize,
    fast: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut what = "all".to_string();
    let mut seed = 42u64;
    let mut csv_dir = None;
    let mut metrics_out = None;
    let mut trace_out = None;
    let mut threads = 1usize;
    let mut fast = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|e| format!("bad seed {v:?}: {e}"))?;
            }
            "--csv" => {
                let v = it.next().ok_or("--csv needs a directory")?;
                csv_dir = Some(PathBuf::from(v));
            }
            "--metrics-out" => {
                let v = it.next().ok_or("--metrics-out needs a path")?;
                metrics_out = Some(PathBuf::from(v));
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a path")?;
                trace_out = Some(PathBuf::from(v));
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value (0 = all cores)")?;
                threads = v
                    .parse()
                    .map_err(|e| format!("bad thread count {v:?}: {e}"))?;
            }
            "--fast" => fast = true,
            "--help" | "-h" => {
                return Err(
                    "usage: repro [all|table2|fig7..fig11|onepass|check|ext] [--seed N] \
                            [--csv DIR] [--metrics-out FILE] [--trace-out FILE] [--threads N] \
                            [--fast]"
                        .to_string(),
                )
            }
            other if !other.starts_with('-') => what = other.to_string(),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Args {
        what,
        seed,
        csv_dir,
        metrics_out,
        trace_out,
        threads,
        fast,
    })
}

/// Writes the instrumentation snapshot of the whole run: to
/// `--metrics-out` when given, else to `DIR/metrics.csv` next to the
/// figure CSVs. JSON lines for `.json` paths, CSV otherwise.
fn write_metrics(args: &Args) {
    let path = match (&args.metrics_out, &args.csv_dir) {
        (Some(p), _) => p.clone(),
        (None, Some(dir)) => dir.join("metrics.csv"),
        (None, None) => return,
    };
    let snapshot = traj_obs::registry().snapshot();
    let body = if path.extension().is_some_and(|e| e == "json") {
        traj_obs::sink::to_json_lines(&snapshot)
    } else {
        traj_obs::sink::to_csv(&snapshot)
    };
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&path, body) {
        Ok(()) => eprintln!("(metrics → {})", path.display()),
        Err(e) => eprintln!(
            "warning: could not write metrics to {}: {e}",
            path.display()
        ),
    }
}

/// Stops the trace session and writes it to `--trace-out`: folded
/// stacks for `.folded` paths, Chrome Trace Event JSON otherwise.
fn write_trace(args: &Args) {
    let Some(path) = &args.trace_out else { return };
    let trace = traj_obs::trace::stop();
    let body = if path.extension().is_some_and(|e| e == "folded") {
        trace.to_folded()
    } else {
        trace.to_chrome_json()
    };
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(path, body) {
        Ok(()) => eprintln!(
            "(trace → {}: {} events on {} tracks, {} dropped)",
            path.display(),
            trace.event_count(),
            trace.tracks.len(),
            trace.dropped_total()
        ),
        Err(e) => eprintln!("warning: could not write trace to {}: {e}", path.display()),
    }
}

fn emit(fig: &FigureData, csv_dir: &Option<PathBuf>) {
    println!("{}", format_figure(fig));
    if let Some(dir) = csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create csv dir {}: {e}", dir.display());
            std::process::exit(1);
        }
        let path = dir.join(format!("{}.csv", fig.id));
        if let Err(e) = std::fs::write(&path, figure_to_csv(fig)) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("(wrote {})", path.display());
    }
}

/// Times each one-pass-figure sweep separately and prints wall time
/// and throughput (million input fixes per second, counting every
/// threshold of the grid as one full pass over the dataset).
fn run_onepass_throughput(dataset: &[traj_model::Trajectory], grid: &[f64], threads: usize) {
    use traj_compress::{OnePassCone, OnePassFit, OpeningWindow, TopDown};
    let algos = [
        Algo::top_down("NDP", TopDown::perpendicular(0.0)),
        Algo::top_down("TD-TR", TopDown::time_ratio(0.0)),
        Algo::factory("OPW-TR", |e| Box::new(OpeningWindow::opw_tr(e))),
        Algo::factory("OP-FIT", |e| Box::new(OnePassFit::new(e))),
        Algo::factory("OP-CONE", |e| Box::new(OnePassCone::new(e))),
    ];
    let fixes: usize = dataset.iter().map(|t| t.len()).sum();
    let total = fixes * grid.len();
    println!("sweep wall time ({} fixes x {} thresholds):", fixes, grid.len());
    println!("{:>10} | {:>10} {:>12}", "algo", "wall (ms)", "Mfix/s");
    for algo in &algos {
        let start = std::time::Instant::now();
        let sweep = sweep_algo_parallel(algo, dataset, grid, threads);
        let secs = start.elapsed().as_secs_f64();
        debug_assert_eq!(sweep.points.len(), grid.len());
        println!(
            "{:>10} | {:>10.1} {:>12.2}",
            sweep.label,
            secs * 1e3,
            total as f64 / secs / 1e6
        );
    }
}

/// The §5 future-work extensions: object classes, noise and sampling
/// ablations, interpolation-model gap.
fn run_extensions(seed: u64) {
    println!("— extension: moving objects of different nature (paper §5) —\n");
    let signatures = traj_eval::class_signatures(seed);
    for (class, fig) in traj_eval::object_classes(seed) {
        let sig = signatures
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, r)| *r)
            .unwrap_or(0.0);
        println!(
            "object class: {class} (mean stop-time ratio {:.0} %)",
            sig * 100.0
        );
        println!("{}", format_figure(&fig));
    }

    let thresholds = [30.0, 50.0, 70.0, 100.0];
    println!("— extension: GPS-noise ablation of Fig. 7 —");
    println!(
        "{:>8} | {:>10} {:>12} | {:>10} {:>12}",
        "σ (m)", "NDP comp%", "NDP err(m)", "TDTR comp%", "TDTR err(m)"
    );
    for (sigma, ndp, tdtr) in traj_eval::noise_ablation(seed, &thresholds) {
        println!(
            "{:>8.1} | {:>10.2} {:>12.2} | {:>10.2} {:>12.2}",
            sigma,
            ndp.mean_compression(),
            ndp.mean_error(),
            tdtr.mean_compression(),
            tdtr.mean_error()
        );
    }

    println!("\n— extension: sampling-interval ablation of Fig. 7 —");
    println!(
        "{:>8} | {:>10} {:>12} | {:>10} {:>12}",
        "Δt (s)", "NDP comp%", "NDP err(m)", "TDTR comp%", "TDTR err(m)"
    );
    for (interval, ndp, tdtr) in traj_eval::sampling_ablation(seed, &thresholds) {
        println!(
            "{:>8.0} | {:>10.2} {:>12.2} | {:>10.2} {:>12.2}",
            interval,
            ndp.mean_compression(),
            ndp.mean_error(),
            tdtr.mean_compression(),
            tdtr.mean_error()
        );
    }

    println!("\n— extension: the online spectrum (DR vs OPW-TR vs TD-TR) —");
    println!(
        "{}",
        format_figure(&traj_eval::online_spectrum(seed, &thresholds))
    );

    println!(
        "— extension: interpolation-model gap (Catmull–Rom vs linear) —\n\
         mean gap over the dataset: {:.3} m",
        traj_eval::interpolation_gap(seed)
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.trace_out.is_some() {
        traj_obs::trace::start();
        traj_obs::trace::set_track_label("main");
    }
    eprintln!("generating dataset (seed {}) ...", args.seed);
    let mut dataset = {
        let _gen = traj_obs::trace_span!("repro.generate_dataset");
        traj_gen::paper_dataset(args.seed)
    };
    // Reduced smoke protocol: fewer trajectories and a coarse grid. The
    // figures lose their paper meaning, so the shape check refuses it.
    let fast_grid = [30.0, 50.0, 70.0, 100.0];
    let grid: &[f64] = if args.fast {
        dataset.truncate(3);
        eprintln!("(--fast: 3 trajectories, {} thresholds)", fast_grid.len());
        &fast_grid
    } else {
        &PAPER_THRESHOLDS
    };
    let threads = args.threads;

    let run_table2 = || println!("{}", format_table2(&table2(&dataset)));

    match args.what.as_str() {
        "table2" => run_table2(),
        "fig7" => emit(&fig7_threaded(&dataset, grid, threads), &args.csv_dir),
        "fig8" => emit(&fig8_threaded(&dataset, grid, threads), &args.csv_dir),
        "fig9" => emit(&fig9_threaded(&dataset, grid, threads), &args.csv_dir),
        "fig10" => emit(&fig10_threaded(&dataset, grid, threads), &args.csv_dir),
        "fig11" => emit(&fig11_threaded(&dataset, grid, threads), &args.csv_dir),
        "onepass" => {
            emit(&fig_onepass_threaded(&dataset, grid, threads), &args.csv_dir);
            run_onepass_throughput(&dataset, grid, threads);
        }
        "check" | "all" => {
            if args.fast {
                eprintln!(
                    "--fast changes the protocol; the paper-shape check would be meaningless"
                );
                return ExitCode::FAILURE;
            }
            let f7 = fig7_threaded(&dataset, grid, threads);
            let f8 = fig8_threaded(&dataset, grid, threads);
            let f9 = fig9_threaded(&dataset, grid, threads);
            let f10 = fig10_threaded(&dataset, grid, threads);
            let f11 = fig11_threaded(&dataset, grid, threads);
            if args.what == "all" {
                run_table2();
                for f in [&f7, &f8, &f9, &f10, &f11] {
                    emit(f, &args.csv_dir);
                }
                // Beyond the paper: the one-pass SED family on the same
                // grid. Not part of check_expectations — the figure's
                // own tests pin its shape (strict bound, label set).
                emit(&fig_onepass_threaded(&dataset, grid, threads), &args.csv_dir);
            }
            let violations = check_expectations(&f7, &f8, &f9, &f10, &f11);
            if violations.is_empty() {
                println!("paper-shape check: all expected relations hold ✓");
            } else {
                println!("paper-shape check: {} violation(s):", violations.len());
                for v in &violations {
                    println!("  ✗ {v}");
                }
                return ExitCode::FAILURE;
            }
        }
        "ext" => run_extensions(args.seed),
        other => {
            eprintln!("unknown experiment {other:?}");
            return ExitCode::FAILURE;
        }
    }
    write_metrics(&args);
    write_trace(&args);
    ExitCode::SUCCESS
}
