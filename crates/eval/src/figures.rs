//! One constructor per table/figure of the paper's evaluation.

use traj_compress::{OnePassCone, OnePassFit, OpeningWindow, TopDown};
use traj_model::stats::DatasetStats;
use traj_model::Trajectory;

use crate::experiment::{sweep_algo_parallel, AlgoSweep, PAPER_SPEED_THRESHOLDS, PAPER_THRESHOLDS};
use crate::registry::Algo;

/// The data behind one figure: a set of per-algorithm threshold sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Identifier, e.g. `"fig7"`.
    pub id: &'static str,
    /// Human title as in the paper.
    pub title: &'static str,
    /// One sweep per algorithm (curve / bar group).
    pub sweeps: Vec<AlgoSweep>,
}

impl FigureData {
    /// The sweep with the given label.
    pub fn sweep(&self, label: &str) -> Option<&AlgoSweep> {
        self.sweeps.iter().find(|s| s.label == label)
    }
}

/// Table 2: statistics of the ten trajectories.
pub fn table2(dataset: &[Trajectory]) -> DatasetStats {
    DatasetStats::of(dataset)
}

/// Fig. 7: conventional top-down Douglas–Peucker (NDP) versus the
/// top-down time-ratio algorithm (TD-TR), per distance threshold.
pub fn fig7(dataset: &[Trajectory]) -> FigureData {
    fig7_with(dataset, &PAPER_THRESHOLDS)
}

/// [`fig7`] over custom thresholds (reduced sweeps for fast CI runs).
pub fn fig7_with(dataset: &[Trajectory], thresholds: &[f64]) -> FigureData {
    fig7_threaded(dataset, thresholds, 1)
}

/// [`fig7_with`] with each sweep fanned over `threads` workers
/// (`0` = all cores); bit-identical to the serial figure.
pub fn fig7_threaded(dataset: &[Trajectory], thresholds: &[f64], threads: usize) -> FigureData {
    FigureData {
        id: "fig7",
        title: "NDP vs TD-TR: compression and error per distance threshold",
        sweeps: vec![
            sweep_algo_parallel(
                &Algo::top_down("NDP", TopDown::perpendicular(0.0)),
                dataset,
                thresholds,
                threads,
            ),
            sweep_algo_parallel(
                &Algo::top_down("TD-TR", TopDown::time_ratio(0.0)),
                dataset,
                thresholds,
                threads,
            ),
        ],
    }
}

/// Fig. 8: the two opening-window break strategies, BOPW vs NOPW.
pub fn fig8(dataset: &[Trajectory]) -> FigureData {
    fig8_with(dataset, &PAPER_THRESHOLDS)
}

/// [`fig8`] over custom thresholds.
pub fn fig8_with(dataset: &[Trajectory], thresholds: &[f64]) -> FigureData {
    fig8_threaded(dataset, thresholds, 1)
}

/// [`fig8_with`] with each sweep fanned over `threads` workers
/// (`0` = all cores); bit-identical to the serial figure.
pub fn fig8_threaded(dataset: &[Trajectory], thresholds: &[f64], threads: usize) -> FigureData {
    FigureData {
        id: "fig8",
        title: "BOPW vs NOPW: error and compression per distance threshold",
        sweeps: vec![
            sweep_algo_parallel(
                &Algo::factory("BOPW", |e| Box::new(OpeningWindow::bopw(e))),
                dataset,
                thresholds,
                threads,
            ),
            sweep_algo_parallel(
                &Algo::factory("NOPW", |e| Box::new(OpeningWindow::nopw(e))),
                dataset,
                thresholds,
                threads,
            ),
        ],
    }
}

/// Fig. 9: NOPW vs the opening-window time-ratio algorithm (OPW-TR).
pub fn fig9(dataset: &[Trajectory]) -> FigureData {
    fig9_with(dataset, &PAPER_THRESHOLDS)
}

/// [`fig9`] over custom thresholds.
pub fn fig9_with(dataset: &[Trajectory], thresholds: &[f64]) -> FigureData {
    fig9_threaded(dataset, thresholds, 1)
}

/// [`fig9_with`] with each sweep fanned over `threads` workers
/// (`0` = all cores); bit-identical to the serial figure.
pub fn fig9_threaded(dataset: &[Trajectory], thresholds: &[f64], threads: usize) -> FigureData {
    FigureData {
        id: "fig9",
        title: "NOPW vs OPW-TR: error and compression per distance threshold",
        sweeps: vec![
            sweep_algo_parallel(
                &Algo::factory("NOPW", |e| Box::new(OpeningWindow::nopw(e))),
                dataset,
                thresholds,
                threads,
            ),
            sweep_algo_parallel(
                &Algo::factory("OPW-TR", |e| Box::new(OpeningWindow::opw_tr(e))),
                dataset,
                thresholds,
                threads,
            ),
        ],
    }
}

/// Fig. 10: the spatiotemporal family — OPW-TR, TD-SP(5 m/s) and
/// OPW-SP at 5/15/25 m/s — error and compression versus threshold.
pub fn fig10(dataset: &[Trajectory]) -> FigureData {
    fig10_with(dataset, &PAPER_THRESHOLDS)
}

/// [`fig10`] over custom thresholds.
pub fn fig10_with(dataset: &[Trajectory], thresholds: &[f64]) -> FigureData {
    fig10_threaded(dataset, thresholds, 1)
}

/// [`fig10_with`] with each sweep fanned over `threads` workers
/// (`0` = all cores); bit-identical to the serial figure.
pub fn fig10_threaded(dataset: &[Trajectory], thresholds: &[f64], threads: usize) -> FigureData {
    let mut sweeps = vec![
        sweep_algo_parallel(
            &Algo::factory("OPW-TR", |e| Box::new(OpeningWindow::opw_tr(e))),
            dataset,
            thresholds,
            threads,
        ),
        sweep_algo_parallel(
            &Algo::top_down("TD-SP(5m/s)", TopDown::time_ratio_speed(0.0, 5.0)),
            dataset,
            thresholds,
            threads,
        ),
    ];
    for v in PAPER_SPEED_THRESHOLDS {
        sweeps.push(sweep_algo_parallel(
            &Algo::factory(format!("OPW-SP({v}m/s)"), move |e| {
                Box::new(OpeningWindow::opw_sp(e, v))
            }),
            dataset,
            thresholds,
            threads,
        ));
    }
    FigureData {
        id: "fig10",
        title: "OPW-TR vs TD-SP vs OPW-SP: error and compression per threshold",
        sweeps,
    }
}

/// Fig. 11: error versus compression for NDP, TD-TR, NOPW, OPW-TR and
/// OPW-SP(5/15/25) — the final ranking figure.
pub fn fig11(dataset: &[Trajectory]) -> FigureData {
    fig11_with(dataset, &PAPER_THRESHOLDS)
}

/// [`fig11`] over custom thresholds.
pub fn fig11_with(dataset: &[Trajectory], thresholds: &[f64]) -> FigureData {
    fig11_threaded(dataset, thresholds, 1)
}

/// [`fig11_with`] with each sweep fanned over `threads` workers
/// (`0` = all cores); bit-identical to the serial figure.
pub fn fig11_threaded(dataset: &[Trajectory], thresholds: &[f64], threads: usize) -> FigureData {
    let mut sweeps = vec![
        sweep_algo_parallel(
            &Algo::top_down("NDP", TopDown::perpendicular(0.0)),
            dataset,
            thresholds,
            threads,
        ),
        sweep_algo_parallel(
            &Algo::top_down("TD-TR", TopDown::time_ratio(0.0)),
            dataset,
            thresholds,
            threads,
        ),
        sweep_algo_parallel(
            &Algo::factory("NOPW", |e| Box::new(OpeningWindow::nopw(e))),
            dataset,
            thresholds,
            threads,
        ),
        sweep_algo_parallel(
            &Algo::factory("OPW-TR", |e| Box::new(OpeningWindow::opw_tr(e))),
            dataset,
            thresholds,
            threads,
        ),
    ];
    for v in PAPER_SPEED_THRESHOLDS {
        sweeps.push(sweep_algo_parallel(
            &Algo::factory(format!("OPW-SP({v}m/s)"), move |e| {
                Box::new(OpeningWindow::opw_sp(e, v))
            }),
            dataset,
            thresholds,
            threads,
        ));
    }
    FigureData {
        id: "fig11",
        title: "Error versus compression across algorithms",
        sweeps,
    }
}

/// One-pass family comparison (beyond the paper): the O(n) OP-FIT and
/// OP-CONE simplifiers against the paper's strongest batch (NDP, TD-TR)
/// and online (OPW-TR) algorithms on the same grid — compression ratio,
/// α error and SED statistics per threshold.
pub fn fig_onepass(dataset: &[Trajectory]) -> FigureData {
    fig_onepass_with(dataset, &PAPER_THRESHOLDS)
}

/// [`fig_onepass`] over custom thresholds.
pub fn fig_onepass_with(dataset: &[Trajectory], thresholds: &[f64]) -> FigureData {
    fig_onepass_threaded(dataset, thresholds, 1)
}

/// [`fig_onepass_with`] with each sweep fanned over `threads` workers
/// (`0` = all cores); bit-identical to the serial figure.
pub fn fig_onepass_threaded(
    dataset: &[Trajectory],
    thresholds: &[f64],
    threads: usize,
) -> FigureData {
    FigureData {
        id: "onepass",
        title: "One-pass SED family (OP-FIT / OP-CONE) vs NDP, TD-TR and OPW-TR",
        sweeps: vec![
            sweep_algo_parallel(
                &Algo::top_down("NDP", TopDown::perpendicular(0.0)),
                dataset,
                thresholds,
                threads,
            ),
            sweep_algo_parallel(
                &Algo::top_down("TD-TR", TopDown::time_ratio(0.0)),
                dataset,
                thresholds,
                threads,
            ),
            sweep_algo_parallel(
                &Algo::factory("OPW-TR", |e| Box::new(OpeningWindow::opw_tr(e))),
                dataset,
                thresholds,
                threads,
            ),
            sweep_algo_parallel(
                &Algo::factory("OP-FIT", |e| Box::new(OnePassFit::new(e))),
                dataset,
                thresholds,
                threads,
            ),
            sweep_algo_parallel(
                &Algo::factory("OP-CONE", |e| Box::new(OnePassCone::new(e))),
                dataset,
                thresholds,
                threads,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast three-trajectory stand-in for figure-construction tests
    /// (the full paper-shape assertions run on the real dataset in
    /// `tests/paper_shapes.rs`).
    fn mini_dataset() -> Vec<Trajectory> {
        (0..3)
            .map(|k| {
                Trajectory::from_triples((0..60).map(|i| {
                    let t = i as f64 * 10.0;
                    let x = t * (8.0 + k as f64);
                    let y = 200.0 * ((t / 200.0) + k as f64).sin();
                    (t, x, y)
                }))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn fig7_has_two_sweeps_over_paper_thresholds() {
        let f = fig7(&mini_dataset());
        assert_eq!(f.sweeps.len(), 2);
        assert!(f.sweep("NDP").is_some());
        assert!(f.sweep("TD-TR").is_some());
        for s in &f.sweeps {
            assert_eq!(s.points.len(), 15);
        }
    }

    #[test]
    fn fig10_has_five_sweeps() {
        let f = fig10(&mini_dataset());
        let labels: Vec<&str> = f.sweeps.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "OPW-TR",
                "TD-SP(5m/s)",
                "OPW-SP(5m/s)",
                "OPW-SP(15m/s)",
                "OPW-SP(25m/s)"
            ]
        );
    }

    #[test]
    fn fig11_includes_all_ranked_algorithms() {
        let f = fig11(&mini_dataset());
        assert_eq!(f.sweeps.len(), 7);
        assert!(f.sweep("NDP").is_some());
        assert!(f.sweep("OPW-SP(25m/s)").is_some());
    }

    #[test]
    fn fig_onepass_compares_the_family_against_the_paper_winners() {
        let f = fig_onepass(&mini_dataset());
        let labels: Vec<&str> = f.sweeps.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["NDP", "TD-TR", "OPW-TR", "OP-FIT", "OP-CONE"]);
        assert_eq!(f.id, "onepass");
        for s in &f.sweeps {
            assert_eq!(s.points.len(), 15);
        }
    }

    #[test]
    fn one_pass_bound_is_strict_in_figure_output() {
        // The one-pass sweeps' max SED never exceeds the threshold —
        // the strictness contract visible at the experiment level.
        let f = fig_onepass(&mini_dataset());
        for label in ["OP-FIT", "OP-CONE"] {
            let s = f.sweep(label).unwrap();
            for p in &s.points {
                assert!(
                    p.max_sed_m <= p.threshold_m + 1e-9,
                    "{label}: max SED {} at threshold {}",
                    p.max_sed_m,
                    p.threshold_m
                );
            }
        }
    }

    #[test]
    fn table2_reports_dataset_statistics() {
        let s = table2(&mini_dataset());
        assert!(s.duration_s.mean > 0.0);
        assert!(s.n_points.mean > 0.0);
    }

    #[test]
    fn td_tr_error_below_ndp_even_on_mini_dataset() {
        // The core qualitative claim of Fig. 7 shows up on any dataset
        // with time structure.
        let f = fig7(&mini_dataset());
        let ndp = f.sweep("NDP").unwrap().mean_error();
        let tdtr = f.sweep("TD-TR").unwrap().mean_error();
        assert!(tdtr <= ndp, "TD-TR {tdtr} vs NDP {ndp}");
    }
}
