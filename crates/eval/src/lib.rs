//! # traj-eval — the paper's experiments, reproduced
//!
//! One function per table/figure of *Meratnia & de By (EDBT 2004)* §4:
//!
//! * [`figures::table2`] — dataset statistics (Table 2);
//! * [`figures::fig7`] — NDP vs TD-TR, compression and error per
//!   threshold;
//! * [`figures::fig8`] — BOPW vs NOPW;
//! * [`figures::fig9`] — NOPW vs OPW-TR;
//! * [`figures::fig10`] — OPW-TR vs TD-SP(5) vs OPW-SP(5/15/25);
//! * [`figures::fig11`] — error versus compression across all
//!   algorithms.
//!
//! Beyond the paper, [`figures::fig_onepass`] compares the one-pass SED
//! family (OP-FIT / OP-CONE, Lin et al., arXiv 1801.05360) against NDP,
//! TD-TR and OPW-TR on the same grid, and
//! [`registry::algorithm_catalog`] is the live, test-synced source of
//! truth behind the root `ALGORITHMS.md` catalog.
//!
//! All experiments follow the paper's §4.3 protocol: ten trajectories
//! (the calibrated synthetic dataset of `traj-gen`), fifteen spatial
//! thresholds from 30 to 100 m, speed thresholds {5, 15, 25} m/s, the
//! time-synchronous error notion of §4.2, and per-threshold averages
//! over the ten trajectories.
//!
//! The `repro` binary prints each table/figure as aligned text and can
//! emit CSV series; [`report::check_expectations`] verifies the paper's
//! qualitative claims hold on the reproduction (who wins, roughly by how
//! much, where the curves coincide).

pub mod experiment;
pub mod extensions;
pub mod figures;
pub mod registry;
pub mod report;

pub use experiment::{
    sweep, sweep_algo, sweep_algo_parallel, AlgoSweep, SweepPoint, PAPER_SPEED_THRESHOLDS,
    PAPER_THRESHOLDS,
};
pub use registry::{algorithm_catalog, Algo, AlgoMeta, ErrorBound};
pub use extensions::{
    class_datasets, class_signatures, interpolation_gap, noise_ablation, object_classes,
    online_spectrum, sampling_ablation,
};
pub use figures::{
    fig10, fig10_threaded, fig10_with, fig11, fig11_threaded, fig11_with, fig7, fig7_threaded,
    fig7_with, fig8, fig8_threaded, fig8_with, fig9, fig9_threaded, fig9_with, fig_onepass,
    fig_onepass_threaded, fig_onepass_with, table2, FigureData,
};
pub use report::{
    check_expectations, figure_to_csv, figure_to_markdown, format_figure, format_table2,
};
