//! End-to-end reproduction check: the paper's qualitative claims must
//! hold on the calibrated dataset.
//!
//! Runs a reduced threshold sweep (5 of the paper's 15 thresholds) so the
//! test stays fast in debug builds; the `repro` binary runs the full
//! sweep. Shape claims are threshold-set-independent.

use traj_eval::{
    check_expectations, fig10_with, fig11_with, fig7_with, fig8_with, fig9_with, table2,
};

const FAST_THRESHOLDS: [f64; 5] = [30.0, 45.0, 60.0, 80.0, 100.0];

#[test]
fn paper_shape_claims_hold_on_calibrated_dataset() {
    let dataset = traj_gen::paper_dataset(42);
    let f7 = fig7_with(&dataset, &FAST_THRESHOLDS);
    let f8 = fig8_with(&dataset, &FAST_THRESHOLDS);
    let f9 = fig9_with(&dataset, &FAST_THRESHOLDS);
    let f10 = fig10_with(&dataset, &FAST_THRESHOLDS);
    let f11 = fig11_with(&dataset, &FAST_THRESHOLDS);
    let violations = check_expectations(&f7, &f8, &f9, &f10, &f11);
    assert!(
        violations.is_empty(),
        "paper-shape violations: {violations:#?}"
    );
}

#[test]
fn shape_claims_are_seed_robust() {
    // The reproduction must not hinge on one lucky dataset.
    for seed in [7, 1234] {
        let dataset = traj_gen::paper_dataset(seed);
        let f7 = fig7_with(&dataset, &FAST_THRESHOLDS);
        let f8 = fig8_with(&dataset, &FAST_THRESHOLDS);
        let f9 = fig9_with(&dataset, &FAST_THRESHOLDS);
        let f10 = fig10_with(&dataset, &FAST_THRESHOLDS);
        let f11 = fig11_with(&dataset, &FAST_THRESHOLDS);
        let violations = check_expectations(&f7, &f8, &f9, &f10, &f11);
        assert!(violations.is_empty(), "seed {seed}: {violations:#?}");
    }
}

#[test]
fn table2_statistics_match_paper_bands() {
    let dataset = traj_gen::paper_dataset(42);
    let s = table2(&dataset);
    // Means within ±50% of the paper's Table 2 values.
    let close = |ours: f64, paper: f64| (ours - paper).abs() <= 0.5 * paper;
    assert!(
        close(s.duration_s.mean, 1936.0),
        "duration {}",
        s.duration_s.mean
    );
    assert!(close(s.speed_kmh.mean, 40.85), "speed {}", s.speed_kmh.mean);
    assert!(
        close(s.length_km.mean, 19.95),
        "length {}",
        s.length_km.mean
    );
    assert!(
        close(s.displacement_km.mean, 10.58),
        "displacement {}",
        s.displacement_km.mean
    );
    assert!(close(s.n_points.mean, 200.0), "points {}", s.n_points.mean);
}

#[test]
fn error_magnitudes_are_plausible() {
    // Beyond shape: errors must be in sane metre ranges for 30–100 m
    // thresholds (not micrometres, not kilometres).
    let dataset = traj_gen::paper_dataset(42);
    let f7 = fig7_with(&dataset, &FAST_THRESHOLDS);
    for s in &f7.sweeps {
        for p in &s.points {
            assert!(
                p.error_m > 0.1 && p.error_m < 2000.0,
                "{} at {} m: error {} m out of range",
                s.label,
                p.threshold_m,
                p.error_m
            );
            assert!(p.compression_pct > 10.0 && p.compression_pct < 100.0);
        }
    }
    // TD-TR error stays below its own threshold at sample instants, so
    // the average synchronous error must be well below the threshold.
    let tdtr = f7.sweep("TD-TR").unwrap();
    for p in &tdtr.points {
        assert!(
            p.error_m < p.threshold_m,
            "TD-TR average error {} above threshold {}",
            p.error_m,
            p.threshold_m
        );
    }
}
