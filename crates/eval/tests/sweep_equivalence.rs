//! Pins the one-pass sweep's byte-identical contract on the *actual
//! reproduction protocol*: the calibrated ten-trajectory dataset and the
//! paper's 30–100 m threshold grid. If the sweep and the per-threshold
//! compressors ever disagree — on any trajectory, threshold, or
//! speed-threshold — the figures silently change meaning; this test
//! makes that a hard failure.

use traj_compress::{
    evaluate, evaluate_sweep, Compressor, EvalWorkspace, OpeningWindow, TdSp, TopDown, Workspace,
};
use traj_eval::{
    sweep, sweep_algo, sweep_algo_parallel, Algo, PAPER_SPEED_THRESHOLDS, PAPER_THRESHOLDS,
};

#[test]
fn sweep_is_byte_identical_to_per_threshold_compress_on_paper_grid() {
    let dataset = traj_gen::paper_dataset(42);
    let mut ws = Workspace::new();
    let tds = [
        ("NDP", TopDown::perpendicular(0.0)),
        ("TD-TR", TopDown::time_ratio(0.0)),
        ("TD-SP(5m/s)", TopDown::time_ratio_speed(0.0, 5.0)),
        ("TD-SP(15m/s)", TopDown::time_ratio_speed(0.0, 15.0)),
        ("TD-SP(25m/s)", TopDown::time_ratio_speed(0.0, 25.0)),
    ];
    for (label, td) in tds {
        for traj in &dataset {
            let swept = td.sweep_with(traj, &PAPER_THRESHOLDS, &mut ws);
            for (r, &eps) in swept.iter().zip(&PAPER_THRESHOLDS) {
                let single = TopDown::new(td.criterion().with_epsilon(eps)).compress(traj);
                assert_eq!(r, &single, "{label} eps={eps}");
            }
        }
    }
}

#[test]
fn tdsp_wrapper_sweep_matches_on_paper_grid() {
    let dataset = traj_gen::paper_dataset(42);
    for &veps in &PAPER_SPEED_THRESHOLDS {
        let sp = TdSp::new(30.0, veps);
        for traj in &dataset {
            let swept = sp.sweep(traj, &PAPER_THRESHOLDS);
            for (r, &eps) in swept.iter().zip(&PAPER_THRESHOLDS) {
                assert_eq!(r, &TdSp::new(eps, veps).compress(traj), "veps={veps} eps={eps}");
            }
        }
    }
}

#[test]
fn sweep_algo_aggregates_bit_identically_to_factory_sweep() {
    // The registry path must not change a single float in the figures.
    let dataset = traj_gen::paper_dataset(42);
    let fast = sweep_algo(
        &Algo::top_down("TD-TR", TopDown::time_ratio(0.0)),
        &dataset,
        &PAPER_THRESHOLDS,
    );
    let slow = sweep("TD-TR", &dataset, &PAPER_THRESHOLDS, |e| {
        Box::new(traj_compress::TdTr::new(e))
    });
    assert_eq!(fast, slow);
}

#[test]
fn evaluate_sweep_matches_per_cell_evaluate_on_paper_grid() {
    // The memoized engine pass behind `sweep_algo` must reproduce the
    // reference per-cell evaluation exactly on the real protocol.
    let dataset = traj_gen::paper_dataset(42);
    let td = TopDown::time_ratio(0.0);
    let mut ws = Workspace::new();
    let mut ews = EvalWorkspace::new();
    for traj in &dataset {
        let results = td.sweep_with(traj, &PAPER_THRESHOLDS, &mut ws);
        let swept = evaluate_sweep(traj, &results, &mut ews);
        for ((e, r), &eps) in swept.iter().zip(&results).zip(&PAPER_THRESHOLDS) {
            assert_eq!(*e, evaluate(traj, r), "eps={eps}");
        }
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial_on_paper_grid() {
    // The acceptance pin: fanning the reproduction grid across workers
    // must not change a single float in the aggregates, for both the
    // one-pass top-down path and the per-threshold factory path.
    let dataset = traj_gen::paper_dataset(42);
    let algos = [
        Algo::top_down("TD-TR", TopDown::time_ratio(0.0)),
        Algo::factory("OPW-TR", |e| Box::new(OpeningWindow::opw_tr(e))),
    ];
    for algo in &algos {
        let serial = sweep_algo(algo, &dataset, &PAPER_THRESHOLDS);
        for threads in [0, 2, 3, 8] {
            let par = sweep_algo_parallel(algo, &dataset, &PAPER_THRESHOLDS, threads);
            assert_eq!(par, serial, "{} threads={threads}", algo.label());
        }
    }
}
