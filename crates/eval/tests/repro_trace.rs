//! Drives the `repro` binary with `--trace-out` and validates the
//! Chrome Trace Event export end to end: the file parses as JSON, the
//! `--threads 2` sweep produces at least two distinct `sweep-worker-*`
//! tracks with `parallel.stripe` spans, and every track's begin/end
//! events balance.
//!
//! Requires the `obs` feature — without it the recorder compiles to
//! no-ops and the export is legitimately empty.

#![cfg(feature = "obs")]

use std::collections::{BTreeMap, BTreeSet};
use std::process::Command;

use traj_obs::json::{self, Json};

#[test]
fn repro_trace_out_has_per_worker_tracks() {
    let dir = std::env::temp_dir().join("repro_trace_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");

    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig7", "--fast", "--threads", "2", "--trace-out"])
        .arg(&trace_path)
        .output()
        .expect("repro must run");
    assert!(
        output.status.success(),
        "repro failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let body = std::fs::read_to_string(&trace_path).expect("trace file written");
    let doc = json::parse(&body).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace must contain events");

    // Track labels arrive as thread_name metadata events.
    let mut labels = BTreeSet::new();
    for e in events {
        if e.get("name").and_then(Json::as_str) == Some("thread_name") {
            if let Some(n) = e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str) {
                labels.insert(n.to_string());
            }
        }
    }
    let workers = labels.iter().filter(|n| n.starts_with("sweep-worker-")).count();
    assert!(
        workers >= 2,
        "--threads 2 must yield >= 2 sweep worker tracks, got {labels:?}"
    );
    assert!(labels.contains("main"), "main track labeled, got {labels:?}");

    // The stripe spans bracket each worker's share of the dataset.
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("parallel.stripe")),
        "stripe spans must be recorded"
    );

    // Well-formedness: per track, begins balance ends and timestamps
    // never go backwards.
    let mut balance: BTreeMap<u64, i64> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    for e in events {
        let Some(ph) = e.get("ph").and_then(Json::as_str) else { continue };
        let Some(tid) = e.get("tid").and_then(Json::as_u64) else { continue };
        match ph {
            "B" => *balance.entry(tid).or_insert(0) += 1,
            "E" => *balance.entry(tid).or_insert(0) -= 1,
            _ => {}
        }
        if let Some(ts) = e.get("ts").and_then(Json::as_f64) {
            let prev = last_ts.entry(tid).or_insert(ts);
            assert!(ts >= *prev, "timestamps regress on tid {tid}");
            *prev = ts;
        }
    }
    for (tid, b) in balance {
        assert_eq!(b, 0, "unbalanced begin/end on tid {tid}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_trace_out_folded_is_flamegraph_input() {
    let dir = std::env::temp_dir().join("repro_trace_folded_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.folded");

    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig8", "--fast", "--threads", "1", "--trace-out"])
        .arg(&trace_path)
        .output()
        .expect("repro must run");
    assert!(
        output.status.success(),
        "repro failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let body = std::fs::read_to_string(&trace_path).expect("folded file written");
    assert!(!body.trim().is_empty(), "folded output must not be empty");
    // Every line is `frame;frame;... self_ns` — flamegraph.pl's input.
    for line in body.lines() {
        let (stack, self_ns) = line.rsplit_once(' ').expect("stack and self time");
        assert!(!stack.is_empty());
        self_ns.parse::<u64>().expect("integral self time");
    }
    assert!(
        body.lines().any(|l| l.contains("compress")),
        "compression spans must appear:\n{body}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
