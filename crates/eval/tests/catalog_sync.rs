//! Pins `ALGORITHMS.md` to the live registry: the documentation table's
//! rows must list exactly the `algorithm_catalog()` entries, in order,
//! with the bound / complexity / streaming / reference cells matching
//! the machine-readable metadata. Editing either side alone fails here.

use traj_eval::algorithm_catalog;

/// One parsed row of the markdown table: the cells between pipes, with
/// code spans unwrapped.
struct Row {
    cli_name: String,
    criterion: String,
    bound: String,
    complexity: String,
    streaming: String,
    reference: String,
}

fn parse_table(doc: &str) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut in_table = false;
    for line in doc.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            in_table = false;
            continue;
        }
        let cells: Vec<String> = line
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim().trim_matches('`').to_string())
            .collect();
        if cells.first().map(String::as_str) == Some("--algo") {
            in_table = true;
            continue;
        }
        if !in_table || cells.first().is_some_and(|c| c.starts_with("---")) {
            continue;
        }
        assert_eq!(cells.len(), 6, "table row with wrong cell count: {line:?}");
        let mut it = cells.into_iter();
        rows.push(Row {
            cli_name: it.next().unwrap(),
            criterion: it.next().unwrap(),
            bound: it.next().unwrap(),
            complexity: it.next().unwrap(),
            streaming: it.next().unwrap(),
            reference: it.next().unwrap(),
        });
    }
    rows
}

fn load_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ALGORITHMS.md");
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} — is ALGORITHMS.md missing?"))
}

#[test]
fn documented_table_matches_live_catalog() {
    let rows = parse_table(&load_doc());
    let catalog = algorithm_catalog();
    let documented: Vec<&str> = rows.iter().map(|r| r.cli_name.as_str()).collect();
    let registered: Vec<&str> = catalog.iter().map(|m| m.cli_name).collect();
    assert_eq!(
        documented, registered,
        "ALGORITHMS.md rows and algorithm_catalog() entries differ \
         (names or order) — update whichever side is stale"
    );
    for (row, meta) in rows.iter().zip(catalog) {
        let name = meta.cli_name;
        assert_eq!(row.criterion, meta.criterion, "{name}: criterion cell");
        assert_eq!(row.bound, meta.bound.as_str(), "{name}: bound cell");
        assert_eq!(row.complexity, meta.complexity, "{name}: complexity cell");
        let streaming = if meta.streaming { "yes" } else { "no" };
        assert_eq!(row.streaming, streaming, "{name}: streaming cell");
        assert_eq!(row.reference, meta.reference, "{name}: reference cell");
    }
}

#[test]
fn catalog_covers_the_one_pass_family() {
    let names: Vec<&str> = algorithm_catalog().iter().map(|m| m.cli_name).collect();
    assert_eq!(names.len(), 15);
    assert!(names.contains(&"op-fit"));
    assert!(names.contains(&"op-cone"));
}
