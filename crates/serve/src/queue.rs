//! The bounded per-shard ingest queue.
//!
//! One queue sits between the submitters (any number of reporter /
//! load-generator threads) and a shard's single worker thread. It is
//! deliberately *bounded* and *non-blocking on the submit side*: when a
//! shard falls behind, [`Sender::try_send`] fails fast with a typed
//! backpressure error instead of stalling the reporter or buffering
//! without limit — the service's overload behaviour is an explicit,
//! testable contract, not an out-of-memory surprise.
//!
//! The receive side batches: [`Receiver::recv_batch`] blocks for the
//! first item, then gathers more until the batch bound or the group
//! commit delay bound is hit — the queue shapes traffic into exactly
//! the batches one fsync will cover.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use traj_model::Fix;

/// One queued report: a mover's fix plus its submit timestamp, so the
/// worker can measure full submit→fsync ack latency.
#[derive(Debug, Clone, Copy)]
pub struct Item {
    /// The reporting mover.
    pub mover: u64,
    /// The reported fix.
    pub fix: Fix,
    /// When the report entered the service (or, for open-loop load
    /// generation, when it was *scheduled* to — which charges queueing
    /// delay honestly instead of hiding coordinated omission).
    pub submitted: Instant,
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The shard's queue is full: the service is ingesting faster than
    /// the shard can make durable. Callers may retry later, shed the
    /// fix, or slow down — the service never blocks them.
    Backpressure {
        /// The shard whose queue is full.
        shard: usize,
        /// Its configured capacity.
        capacity: usize,
    },
    /// The service is shutting down; no further fix will be accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backpressure { shard, capacity } => write!(
                f,
                "shard {shard} ingest queue full ({capacity} fixes buffered): backpressure"
            ),
            SubmitError::Closed => write!(f, "ingest service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct State {
    items: VecDeque<Item>,
    closed: bool,
}

struct Shared {
    state: Mutex<State>,
    available: Condvar,
    capacity: usize,
    shard: usize,
}

/// Recovers the guard from a poisoned lock: the queue's state (a deque
/// and a flag) has no invariant a panicking holder could have broken
/// half-way.
fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The submit half; clone one per submitter thread.
#[derive(Clone)]
pub struct Sender {
    shared: Arc<Shared>,
}

/// The worker half; exactly one per shard.
pub struct Receiver {
    shared: Arc<Shared>,
}

/// Creates a bounded queue for `shard` holding at most `capacity`
/// in-flight fixes (clamped to at least 1).
pub fn bounded(shard: usize, capacity: usize) -> (Sender, Receiver) {
    let capacity = capacity.max(1);
    let shared = Arc::new(Shared {
        state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
        available: Condvar::new(),
        capacity,
        shard,
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

impl Sender {
    /// Enqueues without blocking.
    ///
    /// # Errors
    /// [`SubmitError::Backpressure`] when the queue is at capacity,
    /// [`SubmitError::Closed`] after [`Sender::close`].
    pub fn try_send(&self, item: Item) -> Result<(), SubmitError> {
        let mut st = lock(&self.shared);
        if st.closed {
            return Err(SubmitError::Closed);
        }
        if st.items.len() >= self.shared.capacity {
            return Err(SubmitError::Backpressure {
                shard: self.shared.shard,
                capacity: self.shared.capacity,
            });
        }
        st.items.push_back(item);
        drop(st);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Marks the queue closed. Buffered items still drain; further
    /// sends fail with [`SubmitError::Closed`].
    pub fn close(&self) {
        lock(&self.shared).closed = true;
        self.shared.available.notify_all();
    }

    /// Current queue depth (racy by nature; for gauges and tests).
    #[must_use]
    pub fn depth(&self) -> usize {
        lock(&self.shared).items.len()
    }
}

impl Receiver {
    /// Blocks for the first available item, then keeps gathering into
    /// `out` until `max` items are collected or `max_delay` has passed
    /// since the first one — the group-commit batching discipline.
    /// Returns `false` once the queue is closed *and* fully drained;
    /// `out` may still hold a final batch when that happens.
    pub fn recv_batch(&self, out: &mut Vec<Item>, max: usize, max_delay: Duration) -> bool {
        let max = max.max(1);
        let mut st = lock(&self.shared);
        loop {
            if !st.items.is_empty() {
                break;
            }
            if st.closed {
                return false;
            }
            st = self
                .shared
                .available
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let deadline = Instant::now() + max_delay;
        loop {
            while out.len() < max {
                match st.items.pop_front() {
                    Some(item) => out.push(item),
                    None => break,
                }
            }
            if out.len() >= max || st.closed {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return true;
            }
            let (guard, timeout) = self
                .shared
                .available
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
            if timeout.timed_out() && st.items.is_empty() {
                return true;
            }
        }
    }

    /// Current queue depth (for the per-shard gauge).
    #[must_use]
    pub fn depth(&self) -> usize {
        lock(&self.shared).items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(mover: u64, t: f64) -> Item {
        Item { mover, fix: Fix::from_parts(t, 0.0, 0.0), submitted: Instant::now() }
    }

    #[test]
    fn full_queue_surfaces_typed_backpressure() {
        let (tx, _rx) = bounded(3, 2);
        tx.try_send(item(1, 0.0)).unwrap();
        tx.try_send(item(1, 1.0)).unwrap();
        let err = tx.try_send(item(1, 2.0)).unwrap_err();
        assert_eq!(err, SubmitError::Backpressure { shard: 3, capacity: 2 });
        assert!(err.to_string().contains("backpressure"), "{err}");
        assert_eq!(tx.depth(), 2);
    }

    #[test]
    fn close_rejects_new_but_drains_old() {
        let (tx, rx) = bounded(0, 8);
        tx.try_send(item(1, 0.0)).unwrap();
        tx.try_send(item(2, 0.0)).unwrap();
        tx.close();
        assert_eq!(tx.try_send(item(3, 0.0)), Err(SubmitError::Closed));
        let mut batch = Vec::new();
        assert!(rx.recv_batch(&mut batch, 16, Duration::from_millis(1)));
        assert_eq!(batch.len(), 2);
        batch.clear();
        assert!(!rx.recv_batch(&mut batch, 16, Duration::from_millis(1)));
        assert!(batch.is_empty());
    }

    #[test]
    fn recv_batch_caps_at_max() {
        let (tx, rx) = bounded(0, 64);
        for i in 0..10 {
            tx.try_send(item(1, i as f64)).unwrap();
        }
        let mut batch = Vec::new();
        assert!(rx.recv_batch(&mut batch, 4, Duration::from_millis(1)));
        assert_eq!(batch.len(), 4);
        assert_eq!(rx.depth(), 6);
    }

    #[test]
    fn recv_batch_blocks_until_an_item_arrives() {
        let (tx, rx) = bounded(0, 8);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.try_send(item(9, 1.0)).unwrap();
            tx.close();
        });
        let mut batch = Vec::new();
        assert!(rx.recv_batch(&mut batch, 8, Duration::from_millis(1)));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].mover, 9);
        handle.join().unwrap();
    }
}
