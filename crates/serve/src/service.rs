//! The ingest service: shard ownership, submit routing and lifecycle.
//!
//! [`Service::start`] lays a store out as `dir/shard-K/` — each shard a
//! completely standard [`DurableStore`](traj_store::DurableStore)
//! directory, so `trajc store recover` (and every other store tool)
//! works on any shard in isolation — and spawns one worker thread per
//! shard. [`Service::submit`] routes by [`crate::shard::shard_of`] and
//! never blocks: a full shard queue is a typed
//! [`SubmitError::Backpressure`]. [`Service::shutdown`] closes the
//! queues, lets every worker drain, flush its sessions and commit, then
//! merges the per-shard statistics.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use traj_model::Fix;
use traj_store::storage::{FsStorage, Storage};
use traj_store::{DurableOptions, GroupCommitOptions, GroupCommitStore, IngestMode};

use crate::queue::{self, Item, Sender, SubmitError};
use crate::report::LatencyHist;
use crate::session::CodecSpec;
use crate::shard::shard_of;
use crate::worker::{self, ShardStats, WorkerConfig};

/// When a fix becomes durable relative to its acknowledgement.
///
/// Both modes acknowledge only after an fsync covering the fix — the
/// same durability classification; they differ in how many fixes share
/// each fsync (see [`traj_store::SyncPolicy`] for the tradeoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// One fsync per batch ([`GroupCommitOptions`] bounds); the
    /// throughput configuration.
    GroupCommit,
    /// One fsync per fix; the paper-simple baseline `BENCH_PR10.json`
    /// measures group commit against.
    EveryAppend,
}

impl SyncMode {
    /// Parses the CLI `--sync` value.
    ///
    /// # Errors
    /// Unknown names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "group-commit" => Ok(SyncMode::GroupCommit),
            "every-append" => Ok(SyncMode::EveryAppend),
            other => Err(format!(
                "serve: --sync must be group-commit or every-append, got {other:?}"
            )),
        }
    }

    /// The canonical CLI name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SyncMode::GroupCommit => "group-commit",
            SyncMode::EveryAppend => "every-append",
        }
    }
}

/// Service configuration; see field docs for defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Store shards (worker threads); default 2.
    pub shards: usize,
    /// Per-shard queue capacity; default 4096 fixes.
    pub queue_cap: usize,
    /// Per-mover session codec; default `op-cone` at 30 m.
    pub codec: CodecSpec,
    /// Durability mode; default [`SyncMode::GroupCommit`].
    pub sync: SyncMode,
    /// Group commit bounds (batch size doubles as the queue drain
    /// batch bound).
    pub group: GroupCommitOptions,
    /// WAL/snapshot options for each shard store.
    pub durable: DurableOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            queue_cap: 4096,
            codec: CodecSpec::default_with(30.0),
            sync: SyncMode::GroupCommit,
            group: GroupCommitOptions::default(),
            durable: DurableOptions::default(),
        }
    }
}

/// Merged result of a clean [`Service::shutdown`].
#[derive(Debug)]
pub struct ShutdownStats {
    /// Fixes acknowledged across all shards.
    pub acked: u64,
    /// Fixes rejected by session codecs.
    pub invalid: u64,
    /// Compressed points written across all shard WALs.
    pub emitted: u64,
    /// Fsync batches across all shards.
    pub commits: u64,
    /// Distinct mover sessions across all shards.
    pub sessions: usize,
    /// Merged submit→fsync ack latency.
    pub ack: LatencyHist,
    /// Per-shard breakdowns, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Storage errors that stopped workers early (empty on a healthy
    /// run).
    pub errors: Vec<String>,
}

/// A running sharded ingest service; see the [module docs](self).
pub struct Service {
    senders: Vec<Sender>,
    workers: Vec<JoinHandle<ShardStats>>,
    shards: usize,
    dir: PathBuf,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("shards", &self.shards)
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Starts the service over the real filesystem at `dir` (created if
    /// missing), recovering any existing shard stores in place.
    ///
    /// # Errors
    /// Shard store open/recovery failures, as strings.
    pub fn start(dir: &Path, cfg: ServeConfig) -> Result<Self, String> {
        Self::start_with(Arc::new(FsStorage), dir, cfg)
    }

    /// [`Service::start`] over an injectable storage backend (the tests
    /// run entire services against `MemStorage`).
    ///
    /// # Errors
    /// Shard store open/recovery failures, as strings.
    pub fn start_with(
        storage: Arc<dyn Storage>,
        dir: &Path,
        cfg: ServeConfig,
    ) -> Result<Self, String> {
        let shards = cfg.shards.max(1);
        // Open every shard store before spawning anything, so an open
        // failure surfaces synchronously with no threads to unwind.
        let mut stores = Vec::with_capacity(shards);
        for k in 0..shards {
            let shard_dir = dir.join(format!("shard-{k}"));
            let (store, _report) = GroupCommitStore::open_with(
                storage.clone(),
                &shard_dir,
                IngestMode::Raw,
                cfg.durable,
                cfg.group,
            )
            .map_err(|e| format!("shard {k}: {e}"))?;
            stores.push(store);
        }
        let mut senders: Vec<Sender> = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (k, store) in stores.into_iter().enumerate() {
            let (tx, rx) = queue::bounded(k, cfg.queue_cap);
            let worker_cfg = WorkerConfig {
                shard: k,
                store,
                codec: cfg.codec,
                sync: cfg.sync,
                max_batch: cfg.group.max_batch,
                max_delay: cfg.group.max_delay,
            };
            let handle = std::thread::Builder::new()
                .name(format!("serve-shard-{k}"))
                .spawn(move || worker::run(worker_cfg, &rx))
                .map_err(|e| {
                    // Unwind the shards that did start; their workers
                    // exit once their queues close.
                    for tx in &senders {
                        tx.close();
                    }
                    format!("shard {k}: spawn failed: {e}")
                })?;
            senders.push(tx);
            workers.push(handle);
        }
        Ok(Service { senders, workers, shards, dir: dir.to_path_buf() })
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The service's root directory (`shard-K/` subdirectories).
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current depth of one shard's queue (gauge/test support).
    #[must_use]
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.senders.get(shard).map_or(0, Sender::depth)
    }

    /// Submits one fix, stamped now. Non-blocking.
    ///
    /// # Errors
    /// [`SubmitError::Backpressure`] when the owning shard's queue is
    /// full; [`SubmitError::Closed`] during shutdown.
    pub fn submit(&self, mover: u64, fix: Fix) -> Result<(), SubmitError> {
        self.submit_at(mover, fix, Instant::now())
    }

    /// [`Service::submit`] with an explicit submit stamp — the open-loop
    /// load generator passes the *scheduled* arrival time so queueing
    /// delay under overload is charged to the latency numbers instead
    /// of silently omitted.
    ///
    /// # Errors
    /// As [`Service::submit`].
    pub fn submit_at(
        &self,
        mover: u64,
        fix: Fix,
        submitted: Instant,
    ) -> Result<(), SubmitError> {
        traj_obs::counter!("serve", "submitted").inc();
        let shard = shard_of(mover, self.shards);
        match self.senders[shard].try_send(Item { mover, fix, submitted }) {
            Ok(()) => Ok(()),
            Err(e) => {
                if matches!(e, SubmitError::Backpressure { .. }) {
                    traj_obs::counter!("serve", "backpressure").inc();
                }
                Err(e)
            }
        }
    }

    /// Stops ingest, drains every shard, flushes every session, commits
    /// every WAL and returns the merged statistics.
    ///
    /// # Errors
    /// A worker thread panic (a bug, distinct from the storage errors
    /// reported inside [`ShutdownStats::errors`]).
    pub fn shutdown(self) -> Result<ShutdownStats, String> {
        for tx in &self.senders {
            tx.close();
        }
        let mut merged = ShutdownStats {
            acked: 0,
            invalid: 0,
            emitted: 0,
            commits: 0,
            sessions: 0,
            ack: LatencyHist::new(),
            shards: Vec::with_capacity(self.workers.len()),
            errors: Vec::new(),
        };
        for handle in self.workers {
            let stats = handle
                .join()
                .map_err(|_| "shard worker panicked (bug)".to_string())?;
            merged.acked += stats.acked;
            merged.invalid += stats.invalid;
            merged.emitted += stats.emitted;
            merged.commits += stats.commits;
            merged.sessions += stats.sessions;
            merged.ack.merge(&stats.ack);
            if let Some(e) = &stats.error {
                merged.errors.push(format!("shard {}: {e}", stats.shard));
            }
            merged.shards.push(stats);
        }
        Ok(merged)
    }
}
