//! Deterministic shard routing: `hash(mover) % shards`.
//!
//! Routing must be a pure function of the mover id and the shard count:
//! a mover's whole history has to land in one shard directory so its
//! per-object WAL replay order (and the per-session compressor state)
//! stays linear. [`traj_gen::fleet::splitmix64`] supplies the mixing —
//! consecutive mover ids would otherwise all fall into shard
//! `id % shards` in lock-step and load-gen fleets (ids `0..movers`)
//! would hammer shards unevenly under any stride pattern.

use traj_gen::fleet::splitmix64;

/// The shard that owns `mover` in an `shards`-way layout. Pure and
/// stable: the same `(mover, shards)` always maps to the same shard, on
/// every thread and across restarts. `shards` is clamped to at least 1.
#[must_use]
pub fn shard_of(mover: u64, shards: usize) -> usize {
    let n = shards.max(1) as u64;
    // A u64 % shard-count fits usize on every supported target.
    (splitmix64(mover) % n) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_shards_is_clamped() {
        assert_eq!(shard_of(17, 0), 0);
        assert_eq!(shard_of(17, 1), 0);
    }

    #[test]
    fn sequential_ids_spread_over_shards() {
        // The load generator numbers movers 0..N; routing must not send
        // arithmetic progressions to one shard.
        let shards = 4;
        let mut counts = vec![0u64; shards];
        for mover in 0..10_000u64 {
            counts[shard_of(mover, shards)] += 1;
        }
        for (k, c) in counts.iter().enumerate() {
            assert!(
                (2_000..=3_000).contains(c),
                "shard {k} got {c} of 10000 movers (expected ~2500)"
            );
        }
    }

    proptest! {
        #[test]
        fn routing_is_deterministic_and_in_range(mover in 0u64..u64::MAX, shards in 1usize..64) {
            let s = shard_of(mover, shards);
            prop_assert!(s < shards);
            // Same inputs, same shard — the property recovery relies on.
            prop_assert_eq!(s, shard_of(mover, shards));
        }

        #[test]
        fn all_shards_are_reachable(shards in 1usize..16) {
            let mut seen = vec![false; shards];
            for mover in 0..4_096u64 {
                seen[shard_of(mover, shards)] = true;
            }
            prop_assert!(seen.iter().all(|s| *s), "unreachable shard in {seen:?}");
        }
    }
}
