//! Open-loop fleet load generation for `trajc serve --load-gen`.
//!
//! Replays a [`Fleet`] (closed-form synthetic movers, O(1) per fix)
//! into a running [`Service`] on an *open-loop* arrival schedule: fix
//! arrivals are scheduled at the offered rate regardless of how fast
//! the service acknowledges, and each submission is stamped with its
//! **scheduled** time, not the instant `try_send` happened to run — so
//! when the service lags, the latency histograms absorb the queueing
//! delay instead of quietly omitting it (the classic coordinated-
//! omission mistake). A full queue sheds the fix (counted as rejected)
//! rather than stalling the schedule.

use std::time::{Duration, Instant};

use traj_gen::fleet::{Fleet, FleetConfig};

use crate::queue::SubmitError;
use crate::service::Service;

/// Load generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenConfig {
    /// Fleet size (mover ids `0..movers`).
    pub movers: u64,
    /// Fixes submitted per mover.
    pub fixes_per_mover: u64,
    /// Offered rate over the whole fleet, fixes/second; 0 = submit as
    /// fast as possible (closed only by backpressure).
    pub rate: f64,
    /// Fleet synthesis seed.
    pub seed: u64,
    /// Submitter threads; movers are partitioned `mover % threads`.
    pub threads: usize,
    /// Simulated seconds between a mover's consecutive fixes.
    pub report_dt: f64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            movers: 1_000,
            fixes_per_mover: 10,
            rate: 0.0,
            seed: 42,
            threads: 1,
            report_dt: 10.0,
        }
    }
}

/// What the generator offered and what the service refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadGenOutcome {
    /// Fixes accepted into shard queues.
    pub submitted: u64,
    /// Fixes shed with [`SubmitError::Backpressure`].
    pub rejected: u64,
}

/// One submitter thread's share of the schedule.
fn submit_share(
    service: &Service,
    fleet: &Fleet,
    cfg: &LoadGenConfig,
    thread: usize,
    threads: usize,
) -> LoadGenOutcome {
    let mut out = LoadGenOutcome { submitted: 0, rejected: 0 };
    let my_movers = (thread as u64..cfg.movers).step_by(threads).count() as u64;
    if my_movers == 0 {
        return out;
    }
    // This thread owns `my_movers / movers` of the fleet, so it carries
    // the same share of the offered rate.
    let my_rate = cfg.rate * my_movers as f64 / cfg.movers as f64;
    let start = Instant::now();
    let mut sent = 0u64;
    for k in 0..cfg.fixes_per_mover {
        for mover in (thread as u64..cfg.movers).step_by(threads) {
            let stamp = if my_rate > 0.0 {
                let scheduled =
                    start + Duration::from_secs_f64(sent as f64 / my_rate);
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                scheduled
            } else {
                Instant::now()
            };
            sent += 1;
            match service.submit_at(mover, fleet.fix_for(mover, k), stamp) {
                Ok(()) => out.submitted += 1,
                Err(SubmitError::Backpressure { .. }) => out.rejected += 1,
                Err(SubmitError::Closed) => return out,
            }
        }
    }
    out
}

/// Runs the whole schedule to completion and returns the totals. Does
/// not shut the service down — callers decide when to stop ingest.
pub fn run(service: &Service, cfg: &LoadGenConfig) -> LoadGenOutcome {
    let fleet = Fleet::new(FleetConfig {
        movers: cfg.movers.max(1),
        seed: cfg.seed,
        report_dt: cfg.report_dt,
    });
    let threads = cfg.threads.clamp(1, 256);
    if threads == 1 {
        return submit_share(service, &fleet, cfg, 0, 1);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let fleet = &fleet;
                scope.spawn(move || submit_share(service, fleet, cfg, t, threads))
            })
            .collect();
        let mut total = LoadGenOutcome { submitted: 0, rejected: 0 };
        for h in handles {
            // A submitter panic would be a bug in this crate; surface it.
            // lint: allow(panic) propagating a child thread's panic
            let share = h.join().expect("load-gen thread panicked");
            total.submitted += share.submitted;
            total.rejected += share.rejected;
        }
        total
    })
}
