//! Per-mover ingest sessions: the online codec between a mover's raw
//! report stream and its shard's WAL.
//!
//! Every mover gets its own session codec; fixes the codec *emits* are
//! what the shard buffers into the durable store, so compression
//! happens before the log — it shrinks WAL volume and fsync payloads,
//! not just the in-memory representation. The default is the one-pass
//! cone (`op-cone`): O(1) state per session, no buffered window to
//! replay, and the strongest point reduction of the one-pass family
//! (see `ALGORITHMS.md`).
//!
//! The durability consequence is documented rather than hidden: with a
//! lossy codec, a crash loses at most the codec's *open tail* (the
//! fixes since its last emitted point) per mover; `raw` sessions keep
//! the exact per-fix durability of the store layer. A clean shutdown
//! always [`SessionCodec::finish`]es every session, so nothing is lost
//! in the graceful case either way.

use traj_compress::streaming::{OnePassStream, OwStream, StreamingCompressor};
use traj_model::{Fix, ModelError};

/// Which online codec a session runs, with its thresholds. Parsed from
/// the CLI `--algo` name by [`CodecSpec::parse`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CodecSpec {
    /// No compression: every accepted fix is logged. Exact per-fix
    /// durability; maximum WAL volume.
    Raw,
    /// One-pass cone intersection (the ingest default).
    OpCone {
        /// SED tolerance, metres.
        eps: f64,
    },
    /// One-pass linear-fit test.
    OpFit {
        /// SED tolerance, metres.
        eps: f64,
    },
    /// Opening-window with the time-ratio (SED) criterion.
    OpwTr {
        /// SED tolerance, metres.
        eps: f64,
    },
    /// Opening-window with the spatiotemporal (SED + speed) criterion.
    OpwSp {
        /// SED tolerance, metres.
        eps: f64,
        /// Speed-difference tolerance, m/s.
        speed_eps: f64,
    },
}

/// Opening-window sessions cap their buffered window so one mover's
/// pathological stream cannot grow a shard's memory without bound.
const OPW_SESSION_MAX_WINDOW: usize = 64;

impl CodecSpec {
    /// The ingest default: one-pass cone at `eps` metres.
    #[must_use]
    pub fn default_with(eps: f64) -> Self {
        CodecSpec::OpCone { eps }
    }

    /// Parses a CLI `--algo` name. Only *streaming* algorithms are
    /// valid here — batch algorithms (`td-tr`, `ndp`, …) need the whole
    /// trajectory and cannot run inside an ingest session.
    ///
    /// # Errors
    /// Unknown or non-streaming names, and `opw-sp` without a speed
    /// threshold.
    pub fn parse(algo: &str, eps: f64, speed_eps: Option<f64>) -> Result<Self, String> {
        match algo {
            "raw" => Ok(CodecSpec::Raw),
            "op-cone" => Ok(CodecSpec::OpCone { eps }),
            "op-fit" => Ok(CodecSpec::OpFit { eps }),
            "opw-tr" => Ok(CodecSpec::OpwTr { eps }),
            "opw-sp" => match speed_eps {
                Some(v) if v > 0.0 => Ok(CodecSpec::OpwSp { eps, speed_eps: v }),
                _ => Err("serve: opw-sp sessions need --speed-eps > 0".into()),
            },
            other => Err(format!(
                "serve: unknown session algorithm {other:?} \
                 (streaming algorithms: raw op-cone op-fit opw-tr opw-sp)"
            )),
        }
    }

    /// The canonical CLI name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CodecSpec::Raw => "raw",
            CodecSpec::OpCone { .. } => "op-cone",
            CodecSpec::OpFit { .. } => "op-fit",
            CodecSpec::OpwTr { .. } => "opw-tr",
            CodecSpec::OpwSp { .. } => "opw-sp",
        }
    }

    /// Builds a fresh session codec for one mover.
    #[must_use]
    pub fn build(&self) -> SessionCodec {
        match *self {
            CodecSpec::Raw => SessionCodec::Raw,
            CodecSpec::OpCone { eps } => SessionCodec::OnePass(OnePassStream::cone(eps)),
            CodecSpec::OpFit { eps } => SessionCodec::OnePass(OnePassStream::fit(eps)),
            CodecSpec::OpwTr { eps } => SessionCodec::Ow(
                OwStream::opw_tr(eps).with_max_window(OPW_SESSION_MAX_WINDOW),
            ),
            CodecSpec::OpwSp { eps, speed_eps } => SessionCodec::Ow(
                OwStream::opw_sp(eps, speed_eps).with_max_window(OPW_SESSION_MAX_WINDOW),
            ),
        }
    }
}

/// One mover's live codec state. An enum rather than a boxed trait
/// object because [`StreamingCompressor::finish`] consumes `self`.
#[derive(Debug)]
pub enum SessionCodec {
    /// Pass-through.
    Raw,
    /// An opening-window stream.
    Ow(OwStream),
    /// A one-pass (fit or cone) stream.
    OnePass(OnePassStream),
}

impl SessionCodec {
    /// Feeds one fix, appending whatever the codec emits (possibly
    /// nothing, possibly several buffered points on a window break)
    /// onto `out`.
    ///
    /// # Errors
    /// Rejects non-finite fixes and non-monotone timestamps, leaving
    /// the session state unchanged.
    pub fn push_into(&mut self, fix: Fix, out: &mut Vec<Fix>) -> Result<(), ModelError> {
        match self {
            SessionCodec::Raw => {
                out.push(fix);
                Ok(())
            }
            SessionCodec::Ow(s) => {
                out.extend(s.push(fix)?);
                Ok(())
            }
            SessionCodec::OnePass(s) => {
                out.extend(s.push(fix)?);
                Ok(())
            }
        }
    }

    /// Flushes the session's open tail (clean-shutdown path). `Raw`
    /// sessions have nothing buffered.
    #[must_use]
    pub fn finish(self) -> Vec<Fix> {
        match self {
            SessionCodec::Raw => Vec::new(),
            SessionCodec::Ow(s) => s.finish(),
            SessionCodec::OnePass(s) => s.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(t: f64, x: f64) -> Fix {
        Fix::from_parts(t, x, 0.0)
    }

    #[test]
    fn parse_covers_the_streaming_family_and_rejects_batch_algos() {
        for name in ["raw", "op-cone", "op-fit", "opw-tr"] {
            let spec = CodecSpec::parse(name, 30.0, None).unwrap();
            assert_eq!(spec.name(), name);
        }
        assert!(CodecSpec::parse("opw-sp", 30.0, None).is_err(), "needs speed");
        assert_eq!(
            CodecSpec::parse("opw-sp", 30.0, Some(5.0)).unwrap().name(),
            "opw-sp"
        );
        // Batch algorithms are real elsewhere but invalid as sessions.
        assert!(CodecSpec::parse("td-tr", 30.0, None).is_err());
        assert!(CodecSpec::parse("ndp", 30.0, None).is_err());
        assert_eq!(CodecSpec::default_with(25.0), CodecSpec::OpCone { eps: 25.0 });
    }

    #[test]
    fn raw_sessions_pass_every_fix_through() {
        let mut codec = CodecSpec::Raw.build();
        let mut out = Vec::new();
        for i in 0..5 {
            codec.push_into(fix(i as f64, i as f64), &mut out).unwrap();
        }
        assert_eq!(out.len(), 5);
        assert!(codec.finish().is_empty());
    }

    #[test]
    fn lossy_sessions_emit_fewer_points_on_a_straight_line() {
        for spec in [
            CodecSpec::OpCone { eps: 10.0 },
            CodecSpec::OpFit { eps: 10.0 },
            CodecSpec::OpwTr { eps: 10.0 },
            CodecSpec::OpwSp { eps: 10.0, speed_eps: 5.0 },
        ] {
            let mut codec = spec.build();
            let mut out = Vec::new();
            for i in 0..100 {
                codec.push_into(fix(i as f64 * 10.0, i as f64 * 100.0), &mut out).unwrap();
            }
            out.extend(codec.finish());
            assert!(
                out.len() < 10,
                "{}: straight line kept {} of 100 points",
                spec.name(),
                out.len()
            );
            assert!(out.len() >= 2, "{}: endpoints must survive", spec.name());
            for w in out.windows(2) {
                assert!(w[1].t > w[0].t, "{}: emitted times not monotone", spec.name());
            }
        }
    }

    #[test]
    fn sessions_reject_non_monotone_time_without_breaking() {
        let mut codec = CodecSpec::default_with(10.0).build();
        let mut out = Vec::new();
        codec.push_into(fix(10.0, 0.0), &mut out).unwrap();
        assert!(codec.push_into(fix(5.0, 1.0), &mut out).is_err());
        // The session keeps working after a rejected fix.
        codec.push_into(fix(20.0, 2.0), &mut out).unwrap();
        out.extend(codec.finish());
        assert!(!out.is_empty());
    }
}
