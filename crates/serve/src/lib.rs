//! # traj-serve — sharded multi-tenant trajectory ingest
//!
//! The paper's setting (§1) is a server ingesting position reports from
//! fleets of moving objects; this crate is that server's ingest core,
//! built on the rest of the workspace:
//!
//! * [`shard`] — deterministic mover→shard routing
//!   (`splitmix64(mover) % shards`), so each mover's history lives in
//!   exactly one shard directory;
//! * [`queue`] — bounded per-shard queues whose overload behaviour is a
//!   typed [`queue::SubmitError::Backpressure`], never blocking and
//!   never unbounded buffering;
//! * [`session`] — per-mover online codecs (default: one-pass cone)
//!   that compress *before* the WAL, shrinking log volume and fsync
//!   payloads;
//! * [`worker`] — one thread per shard owning a
//!   [`traj_store::GroupCommitStore`]: drain a batch, compress, buffer,
//!   **one fsync**, then acknowledge everything it covered
//!   (ack-after-fsync, pinned by the store's crash sweeps);
//! * [`service`] — lifecycle: start/recover shards laid out as standard
//!   durable-store directories (`dir/shard-K/`, readable by
//!   `trajc store recover`), route submissions, clean shutdown that
//!   flushes every session and commits every WAL;
//! * [`loadgen`] — an open-loop fleet replay for throughput and tail
//!   latency measurement (`trajc serve --load-gen`, results in
//!   `BENCH_PR10.json`);
//! * [`report`] — a dependency-free latency histogram and the
//!   `--report-json` format.
//!
//! The throughput story is the group commit: per-append fsync caps a
//! shard at the disk's sync rate, while batching N appends behind one
//! fsync multiplies acknowledged throughput by ~N at the same
//! durability classification (nothing is acknowledged before it is on
//! disk). `DESIGN.md` §2h walks through the architecture.

pub mod loadgen;
pub mod queue;
pub mod report;
pub mod service;
pub mod session;
pub mod shard;
pub mod worker;

pub use loadgen::{LoadGenConfig, LoadGenOutcome};
pub use queue::SubmitError;
pub use report::{LatencyHist, ReportConfig, ServeReport};
pub use service::{ServeConfig, Service, ShutdownStats, SyncMode};
pub use session::CodecSpec;
pub use shard::shard_of;
pub use worker::ShardStats;
