//! The shard worker: single owner of one shard's [`GroupCommitStore`].
//!
//! One thread per shard turns the concurrent ingest problem into a
//! sequence of single-threaded batches: drain a batch from the shard
//! queue, run each fix through its mover's session codec, buffer the
//! emitted points into the WAL, then make the whole batch durable with
//! *one* fsync and acknowledge everything it covered. All cross-thread
//! coordination lives in the queue; the store itself is never shared.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use traj_store::GroupCommitStore;

use crate::queue::Receiver;
use crate::report::LatencyHist;
use crate::service::SyncMode;
use crate::session::{CodecSpec, SessionCodec};

/// What one shard worker did over its lifetime.
#[derive(Debug)]
pub struct ShardStats {
    /// The shard index.
    pub shard: usize,
    /// Fixes acknowledged (processed and covered by their fsync).
    pub acked: u64,
    /// Fixes a session codec rejected (non-finite / non-monotone).
    pub invalid: u64,
    /// Compressed points written to this shard's WAL.
    pub emitted: u64,
    /// Fsync batches this shard committed.
    pub commits: u64,
    /// Distinct mover sessions this shard hosted.
    pub sessions: usize,
    /// Submit→fsync ack latency of this shard's fixes.
    pub ack: LatencyHist,
    /// A storage failure that stopped the worker early, if any.
    pub error: Option<String>,
}

impl ShardStats {
    fn new(shard: usize) -> Self {
        ShardStats {
            shard,
            acked: 0,
            invalid: 0,
            emitted: 0,
            commits: 0,
            sessions: 0,
            ack: LatencyHist::new(),
            error: None,
        }
    }
}

/// Everything a worker needs; built by the service, moved into the
/// worker thread.
pub(crate) struct WorkerConfig {
    pub shard: usize,
    pub store: GroupCommitStore,
    pub codec: CodecSpec,
    pub sync: SyncMode,
    pub max_batch: usize,
    pub max_delay: Duration,
}

/// Commits the store's pending records, returning `false` (with the
/// error recorded) when the handle is poisoned — the worker must stop.
fn commit(store: &mut GroupCommitStore, stats: &mut ShardStats) -> bool {
    if store.pending() == 0 {
        return true;
    }
    match store.commit() {
        Ok(_) => {
            stats.commits += 1;
            true
        }
        Err(e) => {
            stats.error = Some(e.to_string());
            false
        }
    }
}

/// The worker body; runs until the queue closes or storage fails.
pub(crate) fn run(cfg: WorkerConfig, rx: &Receiver) -> ShardStats {
    let WorkerConfig { shard, mut store, codec, sync, max_batch, max_delay } = cfg;
    let mut stats = ShardStats::new(shard);
    let shard_label = shard.to_string();
    traj_obs::trace::set_track_label(&format!("serve-shard-{shard}"));
    let depth_gauge =
        traj_obs::registry().gauge_with("serve", "queue_depth", &[("shard", &shard_label)]);
    let acks_ctr = traj_obs::counter!("serve", "acks");
    let invalid_ctr = traj_obs::counter!("serve", "invalid");
    let ack_hist = traj_obs::histogram!("serve", "ack_latency_ns");
    let batch_hist = traj_obs::histogram!("serve", "batch_fixes");

    let mut sessions: BTreeMap<u64, SessionCodec> = BTreeMap::new();
    let mut batch = Vec::with_capacity(max_batch);
    let mut emitted = Vec::new();
    // Submit stamps of fixes whose ack waits for the batch commit.
    let mut waiting = Vec::with_capacity(max_batch);

    loop {
        batch.clear();
        let open = rx.recv_batch(&mut batch, max_batch, max_delay);
        if !batch.is_empty() {
            let _span = traj_obs::span!("serve.batch", fixes = batch.len() as u64);
            batch_hist.record(batch.len() as u64);
            waiting.clear();
            for item in batch.drain(..) {
                let session =
                    sessions.entry(item.mover).or_insert_with(|| codec.build());
                emitted.clear();
                if session.push_into(item.fix, &mut emitted).is_err() {
                    stats.invalid += 1;
                    invalid_ctr.inc();
                    continue;
                }
                for f in emitted.drain(..) {
                    match store.buffer(item.mover, f) {
                        Ok(_) => stats.emitted += 1,
                        Err(e) => {
                            stats.error = Some(e.to_string());
                            stats.sessions = sessions.len();
                            return stats;
                        }
                    }
                }
                match sync {
                    // The baseline durability mode: one fsync per
                    // report, ack immediately after it.
                    SyncMode::EveryAppend => {
                        if !commit(&mut store, &mut stats) {
                            stats.sessions = sessions.len();
                            return stats;
                        }
                        ack(&mut stats, acks_ctr, ack_hist, item.submitted);
                    }
                    SyncMode::GroupCommit => waiting.push(item.submitted),
                }
            }
            if matches!(sync, SyncMode::GroupCommit) {
                // One fsync covers the whole batch (a batch that emitted
                // nothing — all fixes absorbed into open codec windows —
                // commits nothing and acks immediately).
                if !commit(&mut store, &mut stats) {
                    stats.sessions = sessions.len();
                    return stats;
                }
                for submitted in waiting.drain(..) {
                    ack(&mut stats, acks_ctr, ack_hist, submitted);
                }
            }
            depth_gauge.set(rx.depth() as f64);
        }
        if !open {
            break;
        }
    }

    // Clean shutdown: flush every session's open tail, then one final
    // commit so the WAL ends at a durable point.
    let _span = traj_obs::span!("serve.flush", sessions = sessions.len() as u64);
    stats.sessions = sessions.len();
    for (mover, session) in std::mem::take(&mut sessions) {
        for f in session.finish() {
            match store.buffer(mover, f) {
                Ok(_) => stats.emitted += 1,
                Err(e) => {
                    stats.error = Some(e.to_string());
                    return stats;
                }
            }
        }
    }
    commit(&mut store, &mut stats);
    stats
}

fn ack(
    stats: &mut ShardStats,
    acks_ctr: &traj_obs::Counter,
    ack_hist: &traj_obs::Histogram,
    submitted: Instant,
) {
    let ns = u64::try_from(
        Instant::now().saturating_duration_since(submitted).as_nanos(),
    )
    .unwrap_or(u64::MAX);
    stats.acked += 1;
    stats.ack.record(ns);
    acks_ctr.inc();
    ack_hist.record(ns);
}
