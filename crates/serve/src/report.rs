//! Run reports: a dependency-free latency histogram and the JSON
//! summary `trajc serve --report-json` writes (the format
//! `BENCH_PR10.json` aggregates).
//!
//! The histogram deliberately duplicates the shape of
//! `traj_obs::Histogram` (log₂ buckets) *without* atomics or the `obs`
//! feature: each shard worker owns one, records plain integers on its
//! own thread, and the service merges them at shutdown — so the report
//! carries real tail latencies even in a `--no-default-features` build
//! where all instrumentation compiles out.

use std::time::Duration;

/// Log₂-bucketed latency histogram (nanoseconds). Bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`; bucket 0 holds zero.
#[derive(Debug, Clone)]
pub struct LatencyHist {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHist { buckets: [0; 64], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    fn bucket_index(v: u64) -> usize {
        // 0 → bucket 0; otherwise one bucket per bit length, capped.
        (64 - v.leading_zeros() as usize).min(63)
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        if let Some(b) = self.buckets.get_mut(Self::bucket_index(v)) {
            *b += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a duration in nanoseconds (saturating).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds `other` into `self` (shutdown-time shard merge).
    pub fn merge(&mut self, other: &LatencyHist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) as the midpoint of the
    /// bucket holding that rank, clamped into the observed `[min, max]`
    /// range. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max; // tracked exactly, no bucket estimate needed
        }
        let rank = {
            let r = (q * self.count as f64).ceil();
            if r < 1.0 {
                1
            } else if r >= self.count as f64 {
                self.count
            } else {
                // In-range by the guards above.
                r as u64
            }
        };
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let est = if i == 0 {
                    0
                } else {
                    let lo = 1u64 << (i - 1);
                    let hi = if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
                    lo / 2 + hi / 2 + 1
                };
                return est.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// The configuration block echoed at the head of a serve report, so a
/// result file is self-describing.
#[derive(Debug, Clone)]
pub struct ReportConfig {
    /// Store shard count.
    pub shards: usize,
    /// Durability mode name (`group-commit` / `every-append`).
    pub sync: String,
    /// Session codec name (`raw`, `op-cone`, …).
    pub algo: String,
    /// Session SED tolerance, metres (unused by `raw`).
    pub eps: f64,
    /// Group commit batch bound.
    pub max_batch: usize,
    /// Group commit delay bound, microseconds.
    pub max_delay_us: u64,
    /// Per-shard queue capacity.
    pub queue_cap: usize,
    /// Load-generator fleet size.
    pub movers: u64,
    /// Fixes per mover.
    pub fixes_per_mover: u64,
    /// Open-loop offered rate, fixes/s over the whole fleet (0 = as
    /// fast as possible).
    pub rate: f64,
    /// Load-generator submitter threads.
    pub threads: usize,
}

/// Everything one `trajc serve --load-gen` run measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The configuration that produced these numbers.
    pub config: ReportConfig,
    /// Wall-clock seconds from first submit to full shutdown (all
    /// sessions finished, all shards committed).
    pub duration_s: f64,
    /// Fixes offered to the service.
    pub submitted: u64,
    /// Fixes shed with typed backpressure.
    pub rejected: u64,
    /// Fixes a session codec rejected (non-finite / non-monotone).
    pub invalid: u64,
    /// Fixes acknowledged after their covering fsync.
    pub acked: u64,
    /// Compressed points actually written to the WALs.
    pub emitted: u64,
    /// Fsync batches across all shards.
    pub commits: u64,
    /// Total WAL bytes on disk after shutdown (absent for in-memory
    /// test backends).
    pub wal_bytes: Option<u64>,
    /// Submit→fsync ack latency, nanoseconds.
    pub ack: LatencyHist,
}

impl ServeReport {
    /// Acknowledged fixes per wall-clock second.
    #[must_use]
    pub fn acks_per_sec(&self) -> f64 {
        if self.duration_s > 0.0 {
            self.acked as f64 / self.duration_s
        } else {
            0.0
        }
    }

    /// Mean fixes per fsync (the group-commit amortization factor).
    #[must_use]
    pub fn mean_group_size(&self) -> f64 {
        if self.commits > 0 {
            self.emitted as f64 / self.commits as f64
        } else {
            0.0
        }
    }

    /// Renders the report as a self-contained JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let wal_bytes =
            self.wal_bytes.map_or_else(|| "null".to_string(), |b| b.to_string());
        format!(
            "{{\n  \"config\": {{\n    \"shards\": {},\n    \"sync\": \"{}\",\n    \
             \"algo\": \"{}\",\n    \"eps_m\": {},\n    \"max_batch\": {},\n    \
             \"max_delay_us\": {},\n    \"queue_cap\": {},\n    \"movers\": {},\n    \
             \"fixes_per_mover\": {},\n    \"rate_fixes_per_s\": {},\n    \"threads\": {}\n  }},\n  \
             \"duration_s\": {:.6},\n  \"submitted\": {},\n  \"rejected\": {},\n  \
             \"invalid\": {},\n  \"acked\": {},\n  \"emitted\": {},\n  \"commits\": {},\n  \
             \"wal_bytes\": {},\n  \"acks_per_sec\": {:.1},\n  \"mean_group_size\": {:.2},\n  \
             \"ack_latency_ns\": {{\n    \"count\": {},\n    \"mean\": {},\n    \"p50\": {},\n    \
             \"p90\": {},\n    \"p99\": {},\n    \"p999\": {},\n    \"max\": {}\n  }}\n}}\n",
            c.shards,
            c.sync,
            c.algo,
            c.eps,
            c.max_batch,
            c.max_delay_us,
            c.queue_cap,
            c.movers,
            c.fixes_per_mover,
            c.rate,
            c.threads,
            self.duration_s,
            self.submitted,
            self.rejected,
            self.invalid,
            self.acked,
            self.emitted,
            self.commits,
            wal_bytes,
            self.acks_per_sec(),
            self.mean_group_size(),
            self.ack.count(),
            self.ack.mean(),
            self.ack.quantile(0.50),
            self.ack.quantile(0.90),
            self.ack.quantile(0.99),
            self.ack.quantile(0.999),
            if self.ack.count() == 0 { 0 } else { self.ack.quantile(1.0) },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_reach_the_tail() {
        let mut h = LatencyHist::new();
        for _ in 0..998 {
            h.record(100);
        }
        h.record(90_000);
        h.record(100_000);
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        assert!((64..=128).contains(&p50), "p50 {p50}");
        let p999 = h.quantile(0.999);
        assert!((65_536..=100_000).contains(&p999), "p999 {p999}");
        assert_eq!(h.quantile(1.0), 100_000, "max is exact");
        assert!(h.mean() > 100 && h.mean() < 1_000);
    }

    #[test]
    fn merge_combines_shards() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        a.record(10);
        b.record(1_000_000);
        b.record_duration(Duration::from_nanos(20));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        let p99 = a.quantile(0.99);
        assert!(p99 > 100_000, "tail from the merged shard: {p99}");
        assert_eq!(LatencyHist::new().quantile(0.99), 0, "empty histogram");
    }

    #[test]
    fn report_json_is_parseable_and_complete() {
        let mut ack = LatencyHist::new();
        for i in 1..=100u64 {
            ack.record(i * 1_000);
        }
        let report = ServeReport {
            config: ReportConfig {
                shards: 2,
                sync: "group-commit".into(),
                algo: "op-cone".into(),
                eps: 30.0,
                max_batch: 256,
                max_delay_us: 500,
                queue_cap: 1024,
                movers: 100,
                fixes_per_mover: 50,
                rate: 0.0,
                threads: 1,
            },
            duration_s: 2.5,
            submitted: 5_000,
            rejected: 10,
            invalid: 0,
            acked: 4_990,
            emitted: 800,
            commits: 40,
            wal_bytes: Some(32_800),
            ack,
        };
        let json = report.to_json();
        let doc = traj_obs::json::parse(&json).expect("report must be valid JSON");
        let get = |k: &str| doc.get(k).expect(k);
        assert_eq!(get("acked").as_f64(), Some(4_990.0));
        assert_eq!(
            doc.get("config").and_then(|c| c.get("shards")).and_then(|v| v.as_f64()),
            Some(2.0)
        );
        assert_eq!(get("acks_per_sec").as_f64(), Some(1996.0));
        assert_eq!(get("mean_group_size").as_f64(), Some(20.0));
        let tail = doc.get("ack_latency_ns").and_then(|h| h.get("p999")).unwrap();
        assert!(tail.as_f64().unwrap() > 0.0);
        assert_eq!(get("wal_bytes").as_f64(), Some(32_800.0));
    }
}
