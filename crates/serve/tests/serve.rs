//! End-to-end service tests over the in-memory storage backend: full
//! ingest→shutdown runs, multi-shard recovery reassembly, and the
//! backpressure contract under a stalled worker.

use std::path::Path;
use std::sync::Arc;

use traj_gen::fleet::{Fleet, FleetConfig};
use traj_serve::{
    loadgen, shard_of, CodecSpec, LoadGenConfig, ServeConfig, Service, SubmitError, SyncMode,
};
use traj_store::storage::MemStorage;
use traj_store::{DurableOptions, DurableStore, GroupCommitOptions, IngestMode};

const DIR: &str = "/serve";

fn raw_config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        codec: CodecSpec::Raw,
        ..ServeConfig::default()
    }
}

/// Raw sessions + clean shutdown: every accepted fix is durable, and
/// reopening each shard directory as a plain [`DurableStore`]
/// reassembles exactly the submitted fleet.
#[test]
fn multi_shard_recovery_reassembles_the_fleet() {
    let disk = Arc::new(MemStorage::new());
    let shards = 3;
    let service =
        Service::start_with(disk.clone(), Path::new(DIR), raw_config(shards)).unwrap();
    let fleet = Fleet::new(FleetConfig { movers: 20, ..FleetConfig::default() });
    let fixes_per_mover = 15u64;
    for k in 0..fixes_per_mover {
        for mover in 0..fleet.movers() {
            service.submit(mover, fleet.fix_for(mover, k)).unwrap();
        }
    }
    let stats = service.shutdown().unwrap();
    assert!(stats.errors.is_empty(), "{:?}", stats.errors);
    assert_eq!(stats.acked, 20 * fixes_per_mover);
    assert_eq!(stats.emitted, 20 * fixes_per_mover, "raw sessions log 1:1");
    assert_eq!(stats.sessions, 20);
    assert!(stats.commits > 0);
    assert_eq!(stats.ack.count(), stats.acked);

    // Recover every shard independently — each is a standard durable
    // store directory — and reassemble the fleet across them.
    let mut recovered_total = 0u64;
    for k in 0..shards {
        let shard_dir = Path::new(DIR).join(format!("shard-{k}"));
        let (store, report) = DurableStore::open_with(
            disk.clone(),
            &shard_dir,
            IngestMode::Raw,
            DurableOptions::default(),
        )
        .unwrap();
        assert!(report.clean(), "shard {k}: {report:?}");
        for mover in store.store().object_ids().collect::<Vec<_>>() {
            // Routing invariant: the mover is in the shard the hash says.
            assert_eq!(shard_of(mover, shards), k, "mover {mover} in wrong shard");
            let t = store.store().trajectory(mover).unwrap();
            assert_eq!(t.len() as u64, fixes_per_mover, "mover {mover}");
            for (i, f) in t.fixes().iter().enumerate() {
                assert_eq!(*f, fleet.fix_for(mover, i as u64), "mover {mover} fix {i}");
            }
            recovered_total += t.len() as u64;
        }
    }
    assert_eq!(recovered_total, 20 * fixes_per_mover, "no mover lost or duplicated");
}

/// Compressed sessions: fewer WAL records than submissions, and a clean
/// shutdown flushes every session tail so each mover's recovered
/// trajectory spans the full submitted time range.
#[test]
fn compressed_sessions_shrink_the_wal_and_flush_on_shutdown() {
    let disk = Arc::new(MemStorage::new());
    let cfg = ServeConfig {
        shards: 2,
        codec: CodecSpec::default_with(20.0),
        ..ServeConfig::default()
    };
    let service = Service::start_with(disk.clone(), Path::new(DIR), cfg).unwrap();
    let fleet = Fleet::new(FleetConfig { movers: 8, ..FleetConfig::default() });
    let n = 200u64;
    for k in 0..n {
        for mover in 0..fleet.movers() {
            service.submit(mover, fleet.fix_for(mover, k)).unwrap();
        }
    }
    let stats = service.shutdown().unwrap();
    assert!(stats.errors.is_empty(), "{:?}", stats.errors);
    assert_eq!(stats.acked, 8 * n);
    assert!(
        stats.emitted < stats.acked / 2,
        "op-cone should compress: {} emitted of {} acked",
        stats.emitted,
        stats.acked
    );
    for k in 0..2usize {
        let shard_dir = Path::new(DIR).join(format!("shard-{k}"));
        let (store, _) = DurableStore::open_with(
            disk.clone(),
            &shard_dir,
            IngestMode::Raw,
            DurableOptions::default(),
        )
        .unwrap();
        for mover in store.store().object_ids().collect::<Vec<_>>() {
            let t = store.store().trajectory(mover).unwrap();
            let first = fleet.fix_for(mover, 0);
            let last = fleet.fix_for(mover, n - 1);
            assert_eq!(t.fixes()[0].t, first.t, "mover {mover}: head kept");
            assert_eq!(
                t.fixes()[t.len() - 1].t,
                last.t,
                "mover {mover}: shutdown flushed the open tail"
            );
        }
    }
}

/// The every-append baseline acks everything too — one fsync per fix.
#[test]
fn every_append_mode_acks_with_per_fix_commits() {
    let disk = Arc::new(MemStorage::new());
    let cfg = ServeConfig { sync: SyncMode::EveryAppend, ..raw_config(1) };
    let service = Service::start_with(disk, Path::new(DIR), cfg).unwrap();
    for k in 0..10u64 {
        service.submit(7, fix_at(k)).unwrap();
    }
    let stats = service.shutdown().unwrap();
    assert!(stats.errors.is_empty());
    assert_eq!(stats.acked, 10);
    assert_eq!(stats.commits, 10, "one fsync batch per fix");
}

fn fix_at(k: u64) -> traj_model::Fix {
    traj_model::Fix::from_parts(k as f64, k as f64, 0.0)
}

/// A full queue surfaces typed backpressure to the submitter. The
/// worker is stalled by never starting it — we talk to the queue layer
/// through a service whose single shard has a tiny queue and a worker
/// kept busy behind a long commit delay with a huge batch bound, so the
/// queue genuinely fills.
#[test]
fn overload_surfaces_typed_backpressure() {
    let disk = Arc::new(MemStorage::new());
    let cfg = ServeConfig {
        shards: 1,
        queue_cap: 8,
        codec: CodecSpec::Raw,
        // A batch bound far above the queue size plus a long delay keeps
        // the worker gathering (asleep on the condvar timeout) while the
        // submitter floods the queue.
        group: GroupCommitOptions {
            max_batch: 1_000_000,
            max_delay: std::time::Duration::from_secs(5),
        },
        ..ServeConfig::default()
    };
    let service = Service::start_with(disk, Path::new(DIR), cfg).unwrap();
    let mut saw_backpressure = false;
    for k in 0..5_000u64 {
        match service.submit(1, fix_at(k)) {
            Ok(()) => {}
            Err(SubmitError::Backpressure { shard, capacity }) => {
                assert_eq!(shard, 0);
                assert_eq!(capacity, 8);
                saw_backpressure = true;
                break;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(saw_backpressure, "tiny queue never filled under a stalled worker");
    // Shutdown still drains and acks what was accepted.
    let stats = service.shutdown().unwrap();
    assert!(stats.errors.is_empty(), "{:?}", stats.errors);
    assert!(stats.acked >= 8, "buffered fixes drain on shutdown: {}", stats.acked);
}

/// The load generator round-trips through a real service and its
/// counters reconcile with the service's.
#[test]
fn load_gen_reconciles_with_service_stats() {
    let disk = Arc::new(MemStorage::new());
    let service = Service::start_with(disk, Path::new(DIR), raw_config(2)).unwrap();
    let outcome = loadgen::run(
        &service,
        &LoadGenConfig {
            movers: 50,
            fixes_per_mover: 20,
            threads: 2,
            ..LoadGenConfig::default()
        },
    );
    let stats = service.shutdown().unwrap();
    assert!(stats.errors.is_empty(), "{:?}", stats.errors);
    assert_eq!(outcome.submitted + outcome.rejected, 50 * 20);
    assert_eq!(stats.acked, outcome.submitted, "every accepted fix acks");
    assert_eq!(stats.invalid, 0, "fleet fixes are always valid");
}

/// A paced run (rate-limited open loop) also completes and acks.
#[test]
fn paced_load_gen_completes() {
    let disk = Arc::new(MemStorage::new());
    let service = Service::start_with(disk, Path::new(DIR), raw_config(1)).unwrap();
    let outcome = loadgen::run(
        &service,
        &LoadGenConfig {
            movers: 10,
            fixes_per_mover: 5,
            rate: 5_000.0,
            ..LoadGenConfig::default()
        },
    );
    let stats = service.shutdown().unwrap();
    assert_eq!(outcome.submitted, 50);
    assert_eq!(outcome.rejected, 0, "5k fixes/s is loafing for a MemStorage shard");
    assert_eq!(stats.acked, 50);
    assert!(stats.ack.quantile(0.99) > 0, "latencies were recorded");
}

/// Restarting a service over existing shard directories recovers them
/// (the report path) and keeps ingesting the same movers.
#[test]
fn restart_recovers_and_continues() {
    let disk = Arc::new(MemStorage::new());
    {
        let service =
            Service::start_with(disk.clone(), Path::new(DIR), raw_config(2)).unwrap();
        for k in 0..5u64 {
            service.submit(3, fix_at(k)).unwrap();
        }
        let stats = service.shutdown().unwrap();
        assert_eq!(stats.acked, 5);
    }
    let service = Service::start_with(disk.clone(), Path::new(DIR), raw_config(2)).unwrap();
    for k in 5..8u64 {
        service.submit(3, fix_at(k)).unwrap();
    }
    let stats = service.shutdown().unwrap();
    assert!(stats.errors.is_empty(), "{:?}", stats.errors);
    assert_eq!(stats.acked, 3);
    let shard = shard_of(3, 2);
    let (store, _) = DurableStore::open_with(
        disk,
        &Path::new(DIR).join(format!("shard-{shard}")),
        IngestMode::Raw,
        DurableOptions::default(),
    )
    .unwrap();
    assert_eq!(store.store().trajectory(3).unwrap().len(), 8, "both runs' fixes");
}
