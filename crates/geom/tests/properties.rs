//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use traj_geom::numeric::{approx_eq, integrate_adaptive};
use traj_geom::{Bbox, GeoPoint, LocalProjection, Point2, Segment};

fn coord() -> impl Strategy<Value = f64> {
    // Local-frame coordinates within ±100 km: the library's target domain.
    -1e5..1e5f64
}

fn point() -> impl Strategy<Value = Point2> {
    (coord(), coord()).prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    #[test]
    fn distance_triangle_inequality(a in point(), b in point(), c in point()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-6);
    }

    #[test]
    fn distance_is_nonnegative_and_symmetric(a in point(), b in point()) {
        let d = a.distance(b);
        prop_assert!(d >= 0.0);
        prop_assert!(approx_eq(d, b.distance(a), 1e-9, 1e-12));
    }

    #[test]
    fn lerp_stays_on_segment(a in point(), b in point(), f in 0.0..1.0f64) {
        let p = a.lerp(b, f);
        let seg = Segment::new(a, b);
        prop_assert!(seg.segment_distance(p) < 1e-6);
    }

    #[test]
    fn line_distance_le_segment_distance(a in point(), b in point(), p in point()) {
        let s = Segment::new(a, b);
        prop_assert!(s.line_distance(p) <= s.segment_distance(p) + 1e-6);
    }

    #[test]
    fn closest_point_is_at_segment_distance(a in point(), b in point(), p in point()) {
        let s = Segment::new(a, b);
        let c = s.closest_point(p);
        prop_assert!(approx_eq(c.distance(p), s.segment_distance(p), 1e-6, 1e-9));
        // No vertex is closer than the closest point.
        prop_assert!(c.distance(p) <= s.a.distance(p) + 1e-6);
        prop_assert!(c.distance(p) <= s.b.distance(p) + 1e-6);
    }

    #[test]
    fn bbox_union_contains_both(a in point(), b in point(), c in point(), d in point()) {
        let b1 = Bbox::from_corners(a, b);
        let b2 = Bbox::from_corners(c, d);
        let u = b1.union(&b2);
        prop_assert!(u.contains(a) && u.contains(b) && u.contains(c) && u.contains(d));
        prop_assert!(u.area() + 1e-9 >= b1.area().max(b2.area()));
    }

    #[test]
    fn bbox_intersects_is_symmetric(a in point(), b in point(), c in point(), d in point()) {
        let b1 = Bbox::from_corners(a, b);
        let b2 = Bbox::from_corners(c, d);
        prop_assert_eq!(b1.intersects(&b2), b2.intersects(&b1));
    }

    #[test]
    fn projection_roundtrip(lat in 50.0..54.0f64, lon in 5.0..8.0f64) {
        let proj = LocalProjection::new(GeoPoint::new(52.0, 6.5));
        let g = GeoPoint::new(lat, lon);
        let back = proj.to_geo(proj.to_plane(g));
        prop_assert!((back.lat_deg - g.lat_deg).abs() < 1e-9);
        prop_assert!((back.lon_deg - g.lon_deg).abs() < 1e-9);
    }

    #[test]
    fn projected_distance_close_to_haversine(
        dlat in -0.1..0.1f64, dlon in -0.1..0.1f64
    ) {
        let origin = GeoPoint::new(52.0, 6.5);
        let proj = LocalProjection::new(origin);
        let g = GeoPoint::new(52.0 + dlat, 6.5 + dlon);
        let planar = proj.to_plane(g).distance(Point2::ORIGIN);
        let sphere = origin.haversine_distance(g);
        prop_assert!(approx_eq(planar, sphere, 2.0, 1e-3), "planar={planar} sphere={sphere}");
    }

    /// Liang–Barsky segment/box intersection agrees with dense sampling:
    /// if any sampled point of the segment lies in the box, the test must
    /// report an intersection (soundness direction; the converse can
    /// fail only for grazing hits finer than the sampling).
    #[test]
    fn segment_box_intersection_is_sound(a in point(), b in point(), c in point(), d in point()) {
        let bbox = Bbox::from_corners(c, d);
        let seg = Segment::new(a, b);
        let mut sampled_hit = false;
        for k in 0..=64 {
            if bbox.contains(a.lerp(b, k as f64 / 64.0)) {
                sampled_hit = true;
                break;
            }
        }
        if sampled_hit {
            prop_assert!(bbox.intersects_segment(&seg), "sampled hit but intersection denied");
        }
        // And the exact test is never *wrong* the other way: when it
        // reports an intersection, the closest approach of the segment to
        // the box is (numerically) zero.
        if bbox.intersects_segment(&seg) {
            let closest = (0..=256)
                .map(|k| bbox.distance_to(a.lerp(b, k as f64 / 256.0)))
                .fold(f64::INFINITY, f64::min);
            // Coarse bound: sampling can miss the exact touching point by
            // up to half a step of the segment length.
            let step = a.distance(b) / 256.0;
            prop_assert!(closest <= step + 1e-6, "claimed hit but min distance {closest}");
        }
    }

    #[test]
    fn quadrature_linearity(a in -10.0..10.0f64, b in -10.0..10.0f64) {
        // ∫ (a·t + b) dt over [0, 2] = 2a + 2b.
        let q = integrate_adaptive(|t| a * t + b, 0.0, 2.0, 1e-10, 30);
        prop_assert!(approx_eq(q.value, 2.0 * a + 2.0 * b, 1e-7, 1e-9));
    }
}
