//! Points and vectors in the local planar frame.
//!
//! Coordinates are metres in a locally projected, axis-aligned frame
//! (easting `x`, northing `y`), matching the paper's `(x, y)` locations
//! (`IL ≅ IR × IR`).

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A position in the local planar frame, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Easting, metres.
    pub x: f64,
    /// Northing, metres.
    pub y: f64,
}

/// A displacement between two [`Point2`] values, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Easting component, metres.
    pub x: f64,
    /// Northing component, metres.
    pub y: f64,
}

impl Point2 {
    /// The origin of the local frame.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from easting/northing metres.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    ///
    /// This is the `dist` function of the paper's Table 1.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root on
    /// comparison-only paths).
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        (self - other).norm_sq()
    }

    /// Linear interpolation: `self` at `f = 0`, `other` at `f = 1`.
    ///
    /// `f` outside `[0, 1]` extrapolates along the same line, which is the
    /// behaviour required when evaluating a trajectory segment slightly
    /// outside its time span due to floating-point rounding.
    #[inline]
    pub fn lerp(self, other: Point2, f: f64) -> Point2 {
        Point2::new(self.x + (other.x - self.x) * f, self.y + (other.y - self.y) * f)
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point2) -> Point2 {
        self.lerp(other, 0.5)
    }

    /// Both coordinates are finite (not NaN/∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Interprets the point as a displacement from the origin.
    #[inline]
    pub fn to_vec(self) -> Vec2 {
        Vec2 { x: self.x, y: self.y }
    }
}

impl Vec2 {
    /// The zero displacement.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components in metres.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm (length), metres.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    ///
    /// Its absolute value is twice the area of the triangle spanned by the
    /// two vectors — the quantity behind perpendicular distances.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction, or `None` for the zero vector.
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n > 0.0 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Counter-clockwise perpendicular vector (rotate by +90°).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Angle of the vector from the +x axis, radians in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Both components are finite (not NaN/∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Sub for Point2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vec2> for Point2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vec2> for Point2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_euclidean() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(5.0, -6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point2::new(3.0, -2.0));
    }

    #[test]
    fn lerp_extrapolates_outside_unit_interval() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 1.0);
        assert_eq!(a.lerp(b, 2.0), Point2::new(2.0, 2.0));
        assert_eq!(a.lerp(b, -1.0), Point2::new(-1.0, -1.0));
    }

    #[test]
    fn cross_gives_signed_parallelogram_area() {
        let e1 = Vec2::new(1.0, 0.0);
        let e2 = Vec2::new(0.0, 1.0);
        assert_eq!(e1.cross(e2), 1.0);
        assert_eq!(e2.cross(e1), -1.0);
        assert_eq!(e1.cross(e1), 0.0);
    }

    #[test]
    fn normalized_zero_vector_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let n = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perp_is_orthogonal_and_ccw() {
        let v = Vec2::new(2.0, 1.0);
        let p = v.perp();
        assert_eq!(v.dot(p), 0.0);
        assert!(v.cross(p) > 0.0);
    }

    #[test]
    fn vector_arithmetic_roundtrips() {
        let a = Point2::new(1.5, -2.5);
        let v = Vec2::new(0.5, 4.0);
        assert_eq!((a + v) - v, a);
        assert_eq!((a + v) - a, v);
        let mut m = a;
        m += v;
        m -= v;
        assert_eq!(m, a);
    }

    #[test]
    fn angle_of_axes() {
        assert_eq!(Vec2::new(1.0, 0.0).angle(), 0.0);
        assert!((Vec2::new(0.0, 1.0).angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Point2::new(1.0, 2.0).is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(0.0, f64::INFINITY).is_finite());
    }
}
