//! Numerical helpers: adaptive quadrature and approximate comparison.
//!
//! The paper's average synchronous error `α(p, a)` (§4.2) has a closed-form
//! antiderivative with a three-way case analysis. `traj-compress` evaluates
//! that closed form on the hot path and uses the adaptive Simpson
//! integrator here to *cross-validate* it in tests — an independent path to
//! the same integral.

/// Result of [`integrate_adaptive`]: value and an error estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quadrature {
    /// Estimated integral value.
    pub value: f64,
    /// Estimated absolute error of `value`.
    pub error_estimate: f64,
}

/// Adaptive Simpson quadrature of `f` over `[a, b]`.
///
/// Subdivides until the local Richardson error estimate is below `tol`
/// (distributed over subintervals) or the recursion depth exceeds
/// `max_depth`. Suitable for the piecewise-smooth, non-negative distance
/// functions integrated by the error calculus; `√(quadratic)` integrands
/// are handled well because they are smooth away from isolated zeros.
pub fn integrate_adaptive<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_depth: u32,
) -> Quadrature {
    assert!(a.is_finite() && b.is_finite(), "integration bounds must be finite");
    assert!(tol > 0.0, "tolerance must be positive");
    if a == b {
        return Quadrature { value: 0.0, error_estimate: 0.0 };
    }
    let (lo, hi, sign) = if a < b { (a, b, 1.0) } else { (b, a, -1.0) };
    let flo = f(lo);
    let fhi = f(hi);
    let mid = 0.5 * (lo + hi);
    let fmid = f(mid);
    let whole = simpson(lo, hi, flo, fmid, fhi);
    let (value, err) = adaptive_step(&f, lo, hi, flo, fmid, fhi, whole, tol, max_depth);
    Quadrature { value: sign * value, error_estimate: err }
}

#[inline]
fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_step<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> (f64, f64) {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    // Standard Richardson criterion for Simpson's rule: |delta|/15 estimates
    // the error of the refined value.
    if depth == 0 || delta.abs() <= 15.0 * tol {
        (left + right + delta / 15.0, delta.abs() / 15.0)
    } else {
        let (lv, le) = adaptive_step(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1);
        let (rv, re) = adaptive_step(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
        (lv + rv, le + re)
    }
}

/// Approximate equality with combined absolute and relative tolerance.
///
/// Returns `true` when `|a - b| <= abs_tol + rel_tol * max(|a|, |b|)`.
#[inline]
pub fn approx_eq(a: f64, b: f64, abs_tol: f64, rel_tol: f64) -> bool {
    (a - b).abs() <= abs_tol + rel_tol * a.abs().max(b.abs())
}

/// NaN-safe zero guard with absolute tolerance.
///
/// True for `±0.0`, any magnitude at or below `abs_tol`, and — crucially
/// — **NaN**. Degenerate-case guards in the error calculus (zero-length
/// segments, zero-duration intervals, zero noise) must route a NaN input
/// into the degenerate branch rather than let it flow through a division;
/// `v == 0.0` is false for NaN and does the opposite. NaN is
/// incomparable (`partial_cmp` is `None`), so it falls through to `true`.
#[inline]
pub fn approx_zero(v: f64, abs_tol: f64) -> bool {
    !matches!(
        v.abs().partial_cmp(&abs_tol),
        Some(std::cmp::Ordering::Greater)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_polynomials_exactly() {
        // Simpson is exact for cubics.
        let q = integrate_adaptive(|t| t * t * t - 2.0 * t + 1.0, 0.0, 2.0, 1e-12, 30);
        // ∫₀² t³-2t+1 dt = 4 - 4 + 2 = 2.
        assert!((q.value - 2.0).abs() < 1e-10, "got {}", q.value);
    }

    #[test]
    fn integrates_sqrt_quadratic() {
        // ∫₀¹ √(1+t²) dt = (√2 + asinh 1)/2.
        let expect = (2.0_f64.sqrt() + 1.0_f64.asinh()) / 2.0;
        let q = integrate_adaptive(|t| (1.0 + t * t).sqrt(), 0.0, 1.0, 1e-12, 40);
        assert!((q.value - expect).abs() < 1e-9, "got {}", q.value);
    }

    #[test]
    fn handles_reversed_bounds_with_sign_flip() {
        let fwd = integrate_adaptive(|t| t, 0.0, 3.0, 1e-12, 30).value;
        let rev = integrate_adaptive(|t| t, 3.0, 0.0, 1e-12, 30).value;
        assert!((fwd + rev).abs() < 1e-12);
        assert!((fwd - 4.5).abs() < 1e-12);
    }

    #[test]
    fn zero_width_interval_is_zero() {
        let q = integrate_adaptive(|t| t.exp(), 1.0, 1.0, 1e-9, 30);
        assert_eq!(q.value, 0.0);
    }

    #[test]
    fn integrates_abs_kink() {
        // |t - 0.5| over [0,1] = 0.25; the kink forces subdivision.
        let q = integrate_adaptive(|t| (t - 0.5f64).abs(), 0.0, 1.0, 1e-10, 40);
        assert!((q.value - 0.25).abs() < 1e-8, "got {}", q.value);
    }

    #[test]
    fn error_estimate_is_reported() {
        let q = integrate_adaptive(|t| (1.0 + t * t).sqrt(), 0.0, 10.0, 1e-9, 40);
        assert!(q.error_estimate < 1e-6);
    }

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(approx_eq(1e9, 1e9 * (1.0 + 1e-12), 0.0, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-3, 1e-3));
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn rejects_nonpositive_tolerance() {
        let _ = integrate_adaptive(|t| t, 0.0, 1.0, 0.0, 10);
    }

    #[test]
    fn approx_zero_exact_and_tolerant() {
        assert!(approx_zero(0.0, 0.0));
        assert!(approx_zero(-0.0, 0.0));
        assert!(approx_zero(1e-15, 1e-12));
        assert!(!approx_zero(1e-9, 1e-12));
        assert!(!approx_zero(-3.0, 0.0));
    }

    #[test]
    fn approx_zero_treats_nan_as_degenerate() {
        // The whole point: a NaN length/duration must take the
        // degenerate branch, not flow through a division.
        assert!(approx_zero(f64::NAN, 0.0));
        assert!(approx_zero(f64::NAN, 1e-9));
        assert!(!approx_zero(f64::INFINITY, 1e-9));
    }
}
