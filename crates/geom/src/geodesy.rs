//! Geodesy: WGS-84 GPS fixes and their projection to the local plane.
//!
//! The paper's data stream is a sequence of `⟨t, x, y⟩` GPS samples. The
//! compression algorithms operate on planar metre coordinates; this module
//! supplies the conversion: a GPS receiver produces [`GeoPoint`]s
//! (latitude/longitude) that a [`LocalProjection`] maps into the planar
//! frame of [`crate::Point2`].
//!
//! For trajectories of a few tens of kilometres (the paper's Table 2:
//! ~20 km average length) an equirectangular projection around a local
//! origin is accurate to well under a metre, far below GPS noise, so no
//! full UTM machinery is needed.

use crate::point::Point2;

/// Mean Earth radius in metres (IUGG mean radius R₁).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 geographic position in degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude, degrees north, in `[-90, 90]`.
    pub lat_deg: f64,
    /// Longitude, degrees east, in `[-180, 180]`.
    pub lon_deg: f64,
}

impl GeoPoint {
    /// Creates a geographic point from degrees.
    #[inline]
    pub const fn new(lat_deg: f64, lon_deg: f64) -> Self {
        GeoPoint { lat_deg, lon_deg }
    }

    /// Great-circle (haversine) distance to `other`, in metres.
    pub fn haversine_distance(self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().min(1.0).asin()
    }
}

/// Equirectangular projection centred on a local origin.
///
/// Maps geographic coordinates to planar metres with `x` pointing east and
/// `y` pointing north. Exact at the origin; the distance distortion over a
/// span `d` is on the order of `(d / R)²·d`, i.e. sub-millimetre over the
/// tens of kilometres this library targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalProjection {
    origin: GeoPoint,
    cos_lat0: f64,
}

impl LocalProjection {
    /// Creates a projection centred at `origin`.
    ///
    /// # Panics
    /// Panics if the origin latitude is outside `(-89.9°, 89.9°)`; an
    /// equirectangular plane is meaningless at the poles.
    pub fn new(origin: GeoPoint) -> Self {
        assert!(
            origin.lat_deg.abs() < 89.9,
            "LocalProjection origin too close to a pole: {}°",
            origin.lat_deg
        );
        LocalProjection { origin, cos_lat0: origin.lat_deg.to_radians().cos() }
    }

    /// The projection origin (maps to the planar origin).
    #[inline]
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a geographic point into the local plane (metres).
    #[inline]
    pub fn to_plane(&self, g: GeoPoint) -> Point2 {
        let dlat = (g.lat_deg - self.origin.lat_deg).to_radians();
        let dlon = (g.lon_deg - self.origin.lon_deg).to_radians();
        Point2::new(EARTH_RADIUS_M * dlon * self.cos_lat0, EARTH_RADIUS_M * dlat)
    }

    /// Inverse projection: planar metres back to geographic degrees.
    #[inline]
    pub fn to_geo(&self, p: Point2) -> GeoPoint {
        GeoPoint::new(
            self.origin.lat_deg + (p.y / EARTH_RADIUS_M).to_degrees(),
            self.origin.lon_deg + (p.x / (EARTH_RADIUS_M * self.cos_lat0)).to_degrees(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Enschede, NL — where the paper's trajectories were collected.
    const ENSCHEDE: GeoPoint = GeoPoint::new(52.2215, 6.8937);

    #[test]
    fn haversine_zero_for_identical_points() {
        assert_eq!(ENSCHEDE.haversine_distance(ENSCHEDE), 0.0);
    }

    #[test]
    fn haversine_one_degree_latitude_is_about_111_km() {
        let a = GeoPoint::new(52.0, 6.0);
        let b = GeoPoint::new(53.0, 6.0);
        let d = a.haversine_distance(b);
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = GeoPoint::new(52.0, 6.0);
        let b = GeoPoint::new(52.5, 7.2);
        assert!((a.haversine_distance(b) - b.haversine_distance(a)).abs() < 1e-9);
    }

    #[test]
    fn projection_origin_maps_to_planar_origin() {
        let proj = LocalProjection::new(ENSCHEDE);
        let p = proj.to_plane(ENSCHEDE);
        assert_eq!(p, Point2::ORIGIN);
    }

    #[test]
    fn projection_roundtrip_is_exact_enough() {
        let proj = LocalProjection::new(ENSCHEDE);
        let g = GeoPoint::new(52.30, 7.01);
        let back = proj.to_geo(proj.to_plane(g));
        assert!((back.lat_deg - g.lat_deg).abs() < 1e-12);
        assert!((back.lon_deg - g.lon_deg).abs() < 1e-12);
    }

    #[test]
    fn projected_distance_matches_haversine_locally() {
        let proj = LocalProjection::new(ENSCHEDE);
        // ~10 km east.
        let g = GeoPoint::new(52.2215, 7.04);
        let planar = proj.to_plane(g).distance(Point2::ORIGIN);
        let sphere = ENSCHEDE.haversine_distance(g);
        let rel = (planar - sphere).abs() / sphere;
        assert!(rel < 1e-3, "relative error {rel}");
    }

    #[test]
    fn axes_point_east_and_north() {
        let proj = LocalProjection::new(ENSCHEDE);
        let north = proj.to_plane(GeoPoint::new(ENSCHEDE.lat_deg + 0.01, ENSCHEDE.lon_deg));
        let east = proj.to_plane(GeoPoint::new(ENSCHEDE.lat_deg, ENSCHEDE.lon_deg + 0.01));
        assert!(north.y > 0.0 && north.x.abs() < 1e-9);
        assert!(east.x > 0.0 && east.y.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn projection_rejects_polar_origin() {
        let _ = LocalProjection::new(GeoPoint::new(90.0, 0.0));
    }
}
