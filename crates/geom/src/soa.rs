//! Structure-of-arrays trajectory view and batched distance kernels.
//!
//! The compression hot paths scan one chord `lo → hi` against every
//! interior point. Walking an array-of-structs (`&[Fix]`) point-by-point
//! interleaves timestamps with coordinates in each cache line and hides
//! the loop's data parallelism from the compiler. [`TrajView`] exposes
//! the same series as three contiguous `f64` columns, and the
//! `*_dists_into` kernels below compute a whole run of distances into a
//! caller-provided slice: a branch-free elementwise loop over same-typed
//! columns that LLVM autovectorizes (including the `sqrt`).
//!
//! ## Bit-identity contract
//!
//! Every kernel replicates the scalar reference — [`crate::Segment`]
//! methods and the `Fix` interpolation in `traj-model` — operation for
//! operation: the chord-invariant subexpressions (time span, chord
//! direction, chord length, the degenerate-chord guard) are hoisted out
//! of the loop *because they are loop-invariant, not re-associated*, and
//! the per-point sequence (ratio division, lerp, difference, square,
//! add, `sqrt`) is unchanged. IEEE 754 operations are deterministic, so
//! hoisting an invariant computation yields the same bits as recomputing
//! it, and the outputs are bitwise equal to the scalar path. The
//! equivalence is pinned by proptests here and end-to-end over every
//! registered compressor in `traj-compress`.
//!
//! ## `simd` feature
//!
//! With the `simd` cargo feature the dispatching wrappers
//! ([`sed_dists_into`], [`perp_dists_into`]) run explicitly 4-lane
//! unrolled variants (stable Rust, no intrinsics: four independent
//! scalar pipelines the backend maps onto vector registers). The
//! unrolled loops perform exactly the same per-element operation
//! sequence, so feature-on output is bitwise equal to feature-off —
//! pinned by the `simd_matches_scalar` proptests compiled under the
//! feature. The `*_scalar` functions are always compiled and remain the
//! reference.

use crate::numeric::approx_zero;
use crate::point::Point2;

/// A borrowed structure-of-arrays view of a trajectory: timestamps and
/// coordinates as three parallel `f64` columns.
///
/// Columns are built once per trajectory by `traj-model`'s
/// `TrajColumns` and reused across thresholds; all three slices have
/// equal length and `ts` is expected to be strictly increasing (the
/// invariant of a validated trajectory), though the kernels themselves
/// only require equal lengths.
#[derive(Debug, Clone, Copy)]
pub struct TrajView<'a> {
    /// Sample instants, seconds.
    pub ts: &'a [f64],
    /// Easting coordinates, metres.
    pub xs: &'a [f64],
    /// Northing coordinates, metres.
    pub ys: &'a [f64],
}

impl<'a> TrajView<'a> {
    /// Wraps three equal-length columns.
    ///
    /// # Panics
    /// Panics if the column lengths differ.
    pub fn new(ts: &'a [f64], xs: &'a [f64], ys: &'a [f64]) -> Self {
        assert!(
            ts.len() == xs.len() && ts.len() == ys.len(),
            "column lengths differ: ts={} xs={} ys={}",
            ts.len(),
            xs.len(),
            ys.len()
        );
        TrajView { ts, xs, ys }
    }

    /// Number of points in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the view holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// The position of point `i` as a [`Point2`] (same bits as the
    /// originating fix's position).
    #[inline]
    pub fn point(&self, i: usize) -> Point2 {
        Point2::new(self.xs[i], self.ys[i])
    }
}

/// Writes the synchronized Euclidean distance of points
/// `start .. start + out.len()` against the chord `lo → hi` into `out`.
///
/// Replicates `Fix::interpolate(a, b, p.t).distance(p.pos)` bit for bit
/// (see the module docs); with a zero-duration chord every point
/// measures against the chord start, exactly as the scalar
/// interpolation's degenerate branch does.
///
/// # Panics
/// Panics if `lo`, `hi`, or the `start .. start + out.len()` range is
/// out of bounds for the view.
#[inline]
pub fn sed_dists_into(v: TrajView<'_>, lo: usize, hi: usize, start: usize, out: &mut [f64]) {
    #[cfg(feature = "simd")]
    sed_dists_into_unrolled(v, lo, hi, start, out);
    #[cfg(not(feature = "simd"))]
    sed_dists_into_scalar(v, lo, hi, start, out);
}

/// Scalar reference implementation of [`sed_dists_into`]; always
/// compiled so the `simd` variant can be pinned against it.
pub fn sed_dists_into_scalar(v: TrajView<'_>, lo: usize, hi: usize, start: usize, out: &mut [f64]) {
    sed_scalar_checked(v, lo, hi, start, out)
        // lint: allow(panic) out-of-bounds ranges are caller bugs; the
        // documented panic is the contract, the checked body never panics
        .expect("sed_dists_into: chord or point range out of bounds for the view");
}

/// Body of [`sed_dists_into_scalar`] with every lookup checked — `None`
/// means an out-of-bounds chord or point range (a caller bug the public
/// wrapper turns into the documented panic). Keeping the kernel itself
/// free of indexing makes it provably panic-free under
/// `cargo xtask reach`.
fn sed_scalar_checked(
    v: TrajView<'_>,
    lo: usize,
    hi: usize,
    start: usize,
    out: &mut [f64],
) -> Option<()> {
    let (&ta, &ax, &ay) = (v.ts.get(lo)?, v.xs.get(lo)?, v.ys.get(lo)?);
    let end = start.checked_add(out.len())?;
    let (xs, ys) = (v.xs.get(start..end)?, v.ys.get(start..end)?);
    let span = *v.ts.get(hi)? - ta;
    if approx_zero(span, 0.0) {
        // Degenerate chord: interpolate() returns the chord start.
        for (o, (&px, &py)) in out.iter_mut().zip(xs.iter().zip(ys)) {
            let dx = ax - px;
            let dy = ay - py;
            *o = (dx * dx + dy * dy).sqrt();
        }
        return Some(());
    }
    let bax = *v.xs.get(hi)? - ax;
    let bay = *v.ys.get(hi)? - ay;
    let ts = v.ts.get(start..end)?;
    for (o, (&t, (&px, &py))) in out.iter_mut().zip(ts.iter().zip(xs.iter().zip(ys))) {
        let f = (t - ta) / span;
        let ix = ax + bax * f;
        let iy = ay + bay * f;
        let dx = ix - px;
        let dy = iy - py;
        *o = (dx * dx + dy * dy).sqrt();
    }
    Some(())
}

/// Writes the perpendicular distance of points
/// `start .. start + out.len()` to the infinite line through points `lo`
/// and `hi` into `out`.
///
/// Replicates `Segment::line_distance` bit for bit: hoisted chord
/// direction and length, `|cross| / len` per point, and the coincident
/// endpoint fallback to plain point distance.
///
/// # Panics
/// Panics if `lo`, `hi`, or the `start .. start + out.len()` range is
/// out of bounds for the view.
#[inline]
pub fn perp_dists_into(v: TrajView<'_>, lo: usize, hi: usize, start: usize, out: &mut [f64]) {
    #[cfg(feature = "simd")]
    perp_dists_into_unrolled(v, lo, hi, start, out);
    #[cfg(not(feature = "simd"))]
    perp_dists_into_scalar(v, lo, hi, start, out);
}

/// Scalar reference implementation of [`perp_dists_into`]; always
/// compiled so the `simd` variant can be pinned against it.
pub fn perp_dists_into_scalar(v: TrajView<'_>, lo: usize, hi: usize, start: usize, out: &mut [f64]) {
    perp_scalar_checked(v, lo, hi, start, out)
        // lint: allow(panic) see sed_dists_into_scalar: the documented
        // panic is the out-of-bounds contract, the checked body never panics
        .expect("perp_dists_into: chord or point range out of bounds for the view");
}

/// Checked body of [`perp_dists_into_scalar`]; see
/// [`sed_scalar_checked`] for the `Option` convention.
fn perp_scalar_checked(
    v: TrajView<'_>,
    lo: usize,
    hi: usize,
    start: usize,
    out: &mut [f64],
) -> Option<()> {
    let (&ax, &ay) = (v.xs.get(lo)?, v.ys.get(lo)?);
    let dx = *v.xs.get(hi)? - ax;
    let dy = *v.ys.get(hi)? - ay;
    let len = (dx * dx + dy * dy).sqrt();
    let end = start.checked_add(out.len())?;
    let (xs, ys) = (v.xs.get(start..end)?, v.ys.get(start..end)?);
    if approx_zero(len, 0.0) {
        for (o, (&px, &py)) in out.iter_mut().zip(xs.iter().zip(ys)) {
            let ex = ax - px;
            let ey = ay - py;
            *o = (ex * ex + ey * ey).sqrt();
        }
        return Some(());
    }
    for (o, (&px, &py)) in out.iter_mut().zip(xs.iter().zip(ys)) {
        let cross = dx * (py - ay) - dy * (px - ax);
        *o = cross.abs() / len;
    }
    Some(())
}

/// First strict argmax over `vals`: the smallest index whose value every
/// later value fails to exceed, with the running best seeded at
/// `f64::NEG_INFINITY` — exactly the farthest-point selection rule of
/// the top-down kernels. Returns `(0, f64::NEG_INFINITY)` for an empty
/// slice (and keeps the seed if every value is NaN, as the scalar scan
/// does).
#[inline]
pub fn argmax_over(vals: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, &d) in vals.iter().enumerate() {
        if d > best.1 {
            best = (i, d);
        }
    }
    best
}

/// 4-lane unrolled variant of [`sed_dists_into_scalar`]: four
/// independent per-element pipelines the backend can keep in vector
/// registers. Identical per-element operation sequence → identical bits.
#[cfg(feature = "simd")]
pub fn sed_dists_into_unrolled(
    v: TrajView<'_>,
    lo: usize,
    hi: usize,
    start: usize,
    out: &mut [f64],
) {
    sed_unrolled_checked(v, lo, hi, start, out)
        // lint: allow(panic) see sed_dists_into_scalar: the documented
        // panic is the out-of-bounds contract, the checked body never panics
        .expect("sed_dists_into: chord or point range out of bounds for the view");
}

/// Checked body of [`sed_dists_into_unrolled`]; see
/// [`sed_scalar_checked`] for the `Option` convention. The quad loop
/// walks `chunks_exact(4)` of the input columns against a shared output
/// cursor, so the whole kernel is index-free; the slice-pattern `else`
/// arms are unreachable (`chunks_exact(4)` yields exact quads).
#[cfg(feature = "simd")]
fn sed_unrolled_checked(
    v: TrajView<'_>,
    lo: usize,
    hi: usize,
    start: usize,
    out: &mut [f64],
) -> Option<()> {
    let (&ta, &ax, &ay) = (v.ts.get(lo)?, v.xs.get(lo)?, v.ys.get(lo)?);
    let span = *v.ts.get(hi)? - ta;
    if approx_zero(span, 0.0) {
        sed_dists_into_scalar(v, lo, hi, start, out);
        return Some(());
    }
    let bax = *v.xs.get(hi)? - ax;
    let bay = *v.ys.get(hi)? - ay;
    let end = start.checked_add(out.len())?;
    let ts = v.ts.get(start..end)?;
    let xs = v.xs.get(start..end)?;
    let ys = v.ys.get(start..end)?;
    let n = out.len();
    let lanes = n - n % 4;
    let mut outs = out.iter_mut();
    for ((tq, xq), yq) in ts
        .get(..lanes)?
        .chunks_exact(4)
        .zip(xs.get(..lanes)?.chunks_exact(4))
        .zip(ys.get(..lanes)?.chunks_exact(4))
    {
        let (&[t0, t1, t2, t3], &[x0, x1, x2, x3], &[y0, y1, y2, y3]) = (tq, xq, yq) else {
            continue;
        };
        let (f0, f1, f2, f3) =
            ((t0 - ta) / span, (t1 - ta) / span, (t2 - ta) / span, (t3 - ta) / span);
        let (dx0, dx1, dx2, dx3) = (
            ax + bax * f0 - x0,
            ax + bax * f1 - x1,
            ax + bax * f2 - x2,
            ax + bax * f3 - x3,
        );
        let (dy0, dy1, dy2, dy3) = (
            ay + bay * f0 - y0,
            ay + bay * f1 - y1,
            ay + bay * f2 - y2,
            ay + bay * f3 - y3,
        );
        let ds = [
            (dx0 * dx0 + dy0 * dy0).sqrt(),
            (dx1 * dx1 + dy1 * dy1).sqrt(),
            (dx2 * dx2 + dy2 * dy2).sqrt(),
            (dx3 * dx3 + dy3 * dy3).sqrt(),
        ];
        for (o, d) in outs.by_ref().take(4).zip(ds) {
            *o = d;
        }
    }
    let tail = ts
        .get(lanes..)?
        .iter()
        .zip(xs.get(lanes..)?.iter().zip(ys.get(lanes..)?));
    for (o, (&t, (&px, &py))) in outs.zip(tail) {
        let f = (t - ta) / span;
        let dx = ax + bax * f - px;
        let dy = ay + bay * f - py;
        *o = (dx * dx + dy * dy).sqrt();
    }
    Some(())
}

/// 4-lane unrolled variant of [`perp_dists_into_scalar`]; see
/// [`sed_dists_into_unrolled`] for the lane discipline.
#[cfg(feature = "simd")]
pub fn perp_dists_into_unrolled(
    v: TrajView<'_>,
    lo: usize,
    hi: usize,
    start: usize,
    out: &mut [f64],
) {
    perp_unrolled_checked(v, lo, hi, start, out)
        // lint: allow(panic) see sed_dists_into_scalar: the documented
        // panic is the out-of-bounds contract, the checked body never panics
        .expect("perp_dists_into: chord or point range out of bounds for the view");
}

/// Checked body of [`perp_dists_into_unrolled`]; see
/// [`sed_unrolled_checked`] for the quad-loop discipline.
#[cfg(feature = "simd")]
fn perp_unrolled_checked(
    v: TrajView<'_>,
    lo: usize,
    hi: usize,
    start: usize,
    out: &mut [f64],
) -> Option<()> {
    let (&ax, &ay) = (v.xs.get(lo)?, v.ys.get(lo)?);
    let dx = *v.xs.get(hi)? - ax;
    let dy = *v.ys.get(hi)? - ay;
    let len = (dx * dx + dy * dy).sqrt();
    if approx_zero(len, 0.0) {
        perp_dists_into_scalar(v, lo, hi, start, out);
        return Some(());
    }
    let end = start.checked_add(out.len())?;
    let xs = v.xs.get(start..end)?;
    let ys = v.ys.get(start..end)?;
    let n = out.len();
    let lanes = n - n % 4;
    let mut outs = out.iter_mut();
    for (xq, yq) in xs
        .get(..lanes)?
        .chunks_exact(4)
        .zip(ys.get(..lanes)?.chunks_exact(4))
    {
        let (&[x0, x1, x2, x3], &[y0, y1, y2, y3]) = (xq, yq) else {
            continue;
        };
        let c0 = dx * (y0 - ay) - dy * (x0 - ax);
        let c1 = dx * (y1 - ay) - dy * (x1 - ax);
        let c2 = dx * (y2 - ay) - dy * (x2 - ax);
        let c3 = dx * (y3 - ay) - dy * (x3 - ax);
        let ds = [c0.abs() / len, c1.abs() / len, c2.abs() / len, c3.abs() / len];
        for (o, d) in outs.by_ref().take(4).zip(ds) {
            *o = d;
        }
    }
    for (o, (&px, &py)) in outs.zip(xs.get(lanes..)?.iter().zip(ys.get(lanes..)?)) {
        let c = dx * (py - ay) - dy * (px - ax);
        *o = c.abs() / len;
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;
    use crate::segment::Segment;
    use proptest::prelude::*;

    fn columns(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 1000.0 - 500.0
        };
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * 10.0).collect();
        let xs: Vec<f64> = (0..n).map(|_| next()).collect();
        let ys: Vec<f64> = (0..n).map(|_| next()).collect();
        (ts, xs, ys)
    }

    /// The scalar reference computed through the AoS code path
    /// (`Segment::line_distance`), point by point.
    fn perp_reference(v: TrajView<'_>, lo: usize, hi: usize, i: usize) -> f64 {
        Segment::new(v.point(lo), v.point(hi)).line_distance(v.point(i))
    }

    /// SED through the AoS path: lerp by time ratio, then distance.
    fn sed_reference(v: TrajView<'_>, lo: usize, hi: usize, i: usize) -> f64 {
        let span = v.ts[hi] - v.ts[lo];
        let interp = if approx_zero(span, 0.0) {
            v.point(lo)
        } else {
            v.point(lo).lerp(v.point(hi), (v.ts[i] - v.ts[lo]) / span)
        };
        interp.distance(v.point(i))
    }

    #[test]
    fn sed_batch_matches_pointwise_reference() {
        let (ts, xs, ys) = columns(200, 7);
        let v = TrajView::new(&ts, &xs, &ys);
        let mut out = vec![0.0; 198];
        sed_dists_into(v, 0, 199, 1, &mut out);
        for (k, &d) in out.iter().enumerate() {
            let want = sed_reference(v, 0, 199, 1 + k);
            assert!(d.to_bits() == want.to_bits(), "i={} got {d} want {want}", 1 + k);
        }
    }

    #[test]
    fn perp_batch_matches_pointwise_reference() {
        let (ts, xs, ys) = columns(200, 8);
        let v = TrajView::new(&ts, &xs, &ys);
        let mut out = vec![0.0; 100];
        perp_dists_into(v, 40, 160, 41, &mut out);
        for (k, &d) in out.iter().enumerate() {
            let want = perp_reference(v, 40, 160, 41 + k);
            assert!(d.to_bits() == want.to_bits(), "i={} got {d} want {want}", 41 + k);
        }
    }

    #[test]
    fn degenerate_chord_measures_against_start() {
        // Duplicate timestamps at lo/hi: zero span routes through the
        // interpolate-degenerate branch (distance to the chord start).
        let ts = vec![5.0, 6.0, 5.0];
        let xs = vec![0.0, 3.0, 10.0];
        let ys = vec![0.0, 4.0, 0.0];
        let v = TrajView::new(&ts, &xs, &ys);
        let mut out = [0.0];
        sed_dists_into(v, 0, 2, 1, &mut out);
        assert_eq!(out[0], 5.0);
        // Coincident endpoints: perpendicular falls back to point
        // distance.
        let xs2 = vec![0.0, 3.0, 0.0];
        let ys2 = vec![0.0, 4.0, 0.0];
        let v2 = TrajView::new(&ts, &xs2, &ys2);
        let mut out2 = [0.0];
        perp_dists_into(v2, 0, 2, 1, &mut out2);
        assert_eq!(out2[0], 5.0);
    }

    #[test]
    fn argmax_is_first_strict_max() {
        assert_eq!(argmax_over(&[]), (0, f64::NEG_INFINITY));
        assert_eq!(argmax_over(&[1.0, 3.0, 3.0, 2.0]), (1, 3.0));
        assert_eq!(argmax_over(&[f64::NAN, 2.0, f64::NAN]), (1, 2.0));
        // All-NaN keeps the seed, as the scalar scan does.
        assert_eq!(argmax_over(&[f64::NAN]), (0, f64::NEG_INFINITY));
    }

    #[test]
    fn view_accessors() {
        let (ts, xs, ys) = columns(5, 1);
        let v = TrajView::new(&ts, &xs, &ys);
        assert_eq!(v.len(), 5);
        assert!(!v.is_empty());
        assert_eq!(v.point(2), Point2::new(xs[2], ys[2]));
        let empty = TrajView::new(&[], &[], &[]);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "column lengths differ")]
    fn mismatched_columns_rejected() {
        let _ = TrajView::new(&[0.0], &[0.0, 1.0], &[0.0]);
    }

    proptest! {
        /// Batched kernels equal the pointwise AoS reference bit for bit
        /// on arbitrary finite columns and chords.
        #[test]
        fn batched_kernels_match_reference(
            pts in prop::collection::vec(
                (0.0f64..1e6, -1e6f64..1e6, -1e6f64..1e6), 3..80),
            sel in prop::collection::vec(any::<prop::sample::Index>(), 2),
        ) {
            let ts: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let xs: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.2).collect();
            let v = TrajView::new(&ts, &xs, &ys);
            let n = pts.len();
            let mut ends = [sel[0].index(n), sel[1].index(n)];
            ends.sort_unstable();
            let [lo, hi] = ends;
            prop_assume!(hi > lo + 1);
            let m = hi - lo - 1;
            let mut sed_out = vec![0.0; m];
            let mut perp_out = vec![0.0; m];
            sed_dists_into(v, lo, hi, lo + 1, &mut sed_out);
            perp_dists_into(v, lo, hi, lo + 1, &mut perp_out);
            for k in 0..m {
                let i = lo + 1 + k;
                prop_assert_eq!(sed_out[k].to_bits(), sed_reference(v, lo, hi, i).to_bits());
                prop_assert_eq!(perp_out[k].to_bits(), perp_reference(v, lo, hi, i).to_bits());
            }
        }
    }

    #[cfg(feature = "simd")]
    proptest! {
        /// The unrolled `simd` variants are bitwise equal to the scalar
        /// reference (same per-element operation sequence).
        #[test]
        fn simd_matches_scalar(
            pts in prop::collection::vec(
                (0.0f64..1e6, -1e6f64..1e6, -1e6f64..1e6), 3..80),
        ) {
            let ts: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let xs: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.2).collect();
            let v = TrajView::new(&ts, &xs, &ys);
            let n = pts.len();
            let m = n - 2;
            let (mut a, mut b) = (vec![0.0; m], vec![0.0; m]);
            sed_dists_into_unrolled(v, 0, n - 1, 1, &mut a);
            sed_dists_into_scalar(v, 0, n - 1, 1, &mut b);
            for k in 0..m {
                prop_assert_eq!(a[k].to_bits(), b[k].to_bits());
            }
            perp_dists_into_unrolled(v, 0, n - 1, 1, &mut a);
            perp_dists_into_scalar(v, 0, n - 1, 1, &mut b);
            for k in 0..m {
                prop_assert_eq!(a[k].to_bits(), b[k].to_bits());
            }
        }
    }
}
