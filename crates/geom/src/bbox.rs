//! Axis-aligned bounding boxes for spatial indexing.

use crate::point::Point2;
use crate::segment::Segment;

/// An axis-aligned bounding box in the local planar frame.
///
/// An *empty* box (`min > max` on either axis) is representable via
/// [`Bbox::EMPTY`] and behaves as the identity of [`Bbox::union`]; it
/// contains nothing and intersects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bbox {
    /// Lower-left corner.
    pub min: Point2,
    /// Upper-right corner.
    pub max: Point2,
}

impl Bbox {
    /// The empty box: identity for [`Bbox::union`].
    pub const EMPTY: Bbox = Bbox {
        min: Point2 { x: f64::INFINITY, y: f64::INFINITY },
        max: Point2 { x: f64::NEG_INFINITY, y: f64::NEG_INFINITY },
    };

    /// Box from two corner points given in any order.
    #[inline]
    pub fn from_corners(a: Point2, b: Point2) -> Self {
        Bbox {
            min: Point2::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Degenerate box containing a single point.
    #[inline]
    pub fn from_point(p: Point2) -> Self {
        Bbox { min: p, max: p }
    }

    /// Tight box around a segment.
    #[inline]
    pub fn from_segment(s: &Segment) -> Self {
        Bbox::from_corners(s.a, s.b)
    }

    /// Tight box around a set of points; [`Bbox::EMPTY`] for an empty set.
    pub fn from_points<I: IntoIterator<Item = Point2>>(points: I) -> Self {
        points.into_iter().fold(Bbox::EMPTY, |b, p| b.include(p))
    }

    /// Whether the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width (x extent); zero for empty boxes.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height (y extent); zero for empty boxes.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area; zero for empty and degenerate boxes.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point. Meaningless for empty boxes.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside the box (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether the two boxes share at least one point (boundary inclusive).
    #[inline]
    pub fn intersects(&self, other: &Bbox) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Smallest box covering both boxes.
    #[inline]
    pub fn union(&self, other: &Bbox) -> Bbox {
        Bbox {
            min: Point2::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point2::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Smallest box covering this box and `p`.
    #[inline]
    pub fn include(&self, p: Point2) -> Bbox {
        self.union(&Bbox::from_point(p))
    }

    /// Box grown by `margin` metres on every side.
    #[inline]
    pub fn expanded(&self, margin: f64) -> Bbox {
        if self.is_empty() {
            *self
        } else {
            Bbox {
                min: Point2::new(self.min.x - margin, self.min.y - margin),
                max: Point2::new(self.max.x + margin, self.max.y + margin),
            }
        }
    }

    /// Whether the segment intersects the box (boundary inclusive), via
    /// Liang–Barsky parametric clipping.
    pub fn intersects_segment(&self, seg: &Segment) -> bool {
        if self.is_empty() {
            return false;
        }
        let d = seg.direction();
        let (mut t0, mut t1) = (0.0f64, 1.0f64);
        // Each slab clips the parametric interval [t0, t1].
        for (p, q_min, q_max) in [
            (d.x, self.min.x - seg.a.x, self.max.x - seg.a.x),
            (d.y, self.min.y - seg.a.y, self.max.y - seg.a.y),
        ] {
            if crate::numeric::approx_zero(p, 0.0) {
                // Parallel to the slab: inside it or not at all.
                if q_min > 0.0 || q_max < 0.0 {
                    return false;
                }
            } else {
                let (r0, r1) = (q_min / p, q_max / p);
                let (lo, hi) = if r0 <= r1 { (r0, r1) } else { (r1, r0) };
                t0 = t0.max(lo);
                t1 = t1.min(hi);
                if t0 > t1 {
                    return false;
                }
            }
        }
        true
    }

    /// Minimum distance from `p` to the box (zero when inside).
    #[inline]
    pub fn distance_to(&self, p: Point2) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Bbox {
        Bbox::from_corners(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0))
    }

    #[test]
    fn corners_are_ordered_automatically() {
        let b = Bbox::from_corners(Point2::new(5.0, -1.0), Point2::new(-2.0, 3.0));
        assert_eq!(b.min, Point2::new(-2.0, -1.0));
        assert_eq!(b.max, Point2::new(5.0, 3.0));
    }

    #[test]
    fn empty_box_properties() {
        let e = Bbox::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert!(!e.contains(Point2::ORIGIN));
        assert!(!e.intersects(&unit()));
        assert!(!unit().intersects(&e));
        // Union identity.
        assert_eq!(e.union(&unit()), unit());
    }

    #[test]
    fn contains_boundary_inclusive() {
        let b = unit();
        assert!(b.contains(Point2::new(0.0, 0.0)));
        assert!(b.contains(Point2::new(1.0, 1.0)));
        assert!(b.contains(Point2::new(0.5, 0.5)));
        assert!(!b.contains(Point2::new(1.000001, 0.5)));
    }

    #[test]
    fn intersection_cases() {
        let b = unit();
        let overlapping = Bbox::from_corners(Point2::new(0.5, 0.5), Point2::new(2.0, 2.0));
        let touching = Bbox::from_corners(Point2::new(1.0, 0.0), Point2::new(2.0, 1.0));
        let disjoint = Bbox::from_corners(Point2::new(2.0, 2.0), Point2::new(3.0, 3.0));
        assert!(b.intersects(&overlapping));
        assert!(b.intersects(&touching));
        assert!(!b.intersects(&disjoint));
    }

    #[test]
    fn union_and_include_grow_monotonically() {
        let b = unit().include(Point2::new(5.0, -3.0));
        assert!(b.contains(Point2::new(5.0, -3.0)));
        assert!(b.contains(Point2::new(0.5, 0.5)));
        assert_eq!(b.width(), 5.0);
        assert_eq!(b.height(), 4.0);
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [Point2::new(0.0, 0.0), Point2::new(2.0, 5.0), Point2::new(-1.0, 1.0)];
        let b = Bbox::from_points(pts);
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(Bbox::from_points(std::iter::empty()), Bbox::EMPTY);
    }

    #[test]
    fn distance_to_inside_is_zero_outside_is_euclidean() {
        let b = unit();
        assert_eq!(b.distance_to(Point2::new(0.5, 0.5)), 0.0);
        assert!((b.distance_to(Point2::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
        assert_eq!(b.distance_to(Point2::new(0.5, 3.0)), 2.0);
    }

    #[test]
    fn segment_intersection_cases() {
        let b = unit();
        let seg = |ax: f64, ay: f64, bx: f64, by: f64| {
            Segment::new(Point2::new(ax, ay), Point2::new(bx, by))
        };
        // Fully inside.
        assert!(b.intersects_segment(&seg(0.2, 0.2, 0.8, 0.8)));
        // Crossing through without endpoints inside.
        assert!(b.intersects_segment(&seg(-1.0, 0.5, 2.0, 0.5)));
        // Diagonal crossing a corner region.
        assert!(b.intersects_segment(&seg(-0.5, 0.5, 0.5, 1.5)));
        // Touching the boundary exactly.
        assert!(b.intersects_segment(&seg(1.0, -1.0, 1.0, 2.0)));
        // Disjoint, parallel to an edge.
        assert!(!b.intersects_segment(&seg(1.5, -1.0, 1.5, 2.0)));
        // Disjoint diagonal passing near a corner.
        assert!(!b.intersects_segment(&seg(1.5, 0.8, 0.8, 1.5)));
        // Degenerate segment inside / outside.
        assert!(b.intersects_segment(&seg(0.5, 0.5, 0.5, 0.5)));
        assert!(!b.intersects_segment(&seg(2.0, 2.0, 2.0, 2.0)));
        // Empty box intersects nothing.
        assert!(!Bbox::EMPTY.intersects_segment(&seg(0.0, 0.0, 1.0, 1.0)));
    }

    #[test]
    fn expanded_grows_every_side() {
        let b = unit().expanded(2.0);
        assert_eq!(b.min, Point2::new(-2.0, -2.0));
        assert_eq!(b.max, Point2::new(3.0, 3.0));
        assert_eq!(Bbox::EMPTY.expanded(2.0), Bbox::EMPTY);
    }
}
