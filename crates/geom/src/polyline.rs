//! Operations over sequences of points interpreted as piecewise-linear
//! paths.

use crate::point::Point2;

/// Total length of the piecewise-linear path through `points`, in metres.
///
/// Zero for fewer than two points.
pub fn polyline_length(points: &[Point2]) -> f64 {
    points.windows(2).map(|w| w[0].distance(w[1])).sum()
}

/// Cumulative arc length at every vertex: `out[0] = 0`,
/// `out[i] = out[i-1] + |p[i-1] p[i]|`.
///
/// Empty input yields an empty vector.
pub fn cumulative_lengths(points: &[Point2]) -> Vec<f64> {
    let mut out = Vec::with_capacity(points.len());
    let mut acc = 0.0;
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            acc += points[i - 1].distance(*p);
        }
        out.push(acc);
    }
    out
}

/// Point at arc-length `s` along the path (clamped to the path's ends).
///
/// Returns `None` for an empty path.
pub fn point_at_length(points: &[Point2], s: f64) -> Option<Point2> {
    let (first, rest) = points.split_first()?;
    if s <= 0.0 || rest.is_empty() {
        return Some(*first);
    }
    let mut remaining = s;
    let mut prev = *first;
    for &p in rest {
        let seg = prev.distance(p);
        if remaining <= seg {
            if crate::numeric::approx_zero(seg, 0.0) {
                return Some(p);
            }
            return Some(prev.lerp(p, remaining / seg));
        }
        remaining -= seg;
        prev = p;
    }
    Some(prev)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_path() -> Vec<Point2> {
        vec![Point2::new(0.0, 0.0), Point2::new(3.0, 0.0), Point2::new(3.0, 4.0)]
    }

    #[test]
    fn length_of_l_shape() {
        assert_eq!(polyline_length(&l_path()), 7.0);
        assert_eq!(polyline_length(&[]), 0.0);
        assert_eq!(polyline_length(&[Point2::ORIGIN]), 0.0);
    }

    #[test]
    fn cumulative_lengths_match_prefix_sums() {
        assert_eq!(cumulative_lengths(&l_path()), vec![0.0, 3.0, 7.0]);
        assert!(cumulative_lengths(&[]).is_empty());
    }

    #[test]
    fn point_at_length_walks_the_path() {
        let p = l_path();
        assert_eq!(point_at_length(&p, 0.0), Some(Point2::new(0.0, 0.0)));
        assert_eq!(point_at_length(&p, 1.5), Some(Point2::new(1.5, 0.0)));
        assert_eq!(point_at_length(&p, 3.0), Some(Point2::new(3.0, 0.0)));
        assert_eq!(point_at_length(&p, 5.0), Some(Point2::new(3.0, 2.0)));
        // Clamped beyond the end.
        assert_eq!(point_at_length(&p, 100.0), Some(Point2::new(3.0, 4.0)));
        // Negative clamps to the start.
        assert_eq!(point_at_length(&p, -1.0), Some(Point2::new(0.0, 0.0)));
        assert_eq!(point_at_length(&[], 1.0), None);
    }

    #[test]
    fn point_at_length_handles_repeated_vertices() {
        let p = vec![Point2::new(0.0, 0.0), Point2::new(0.0, 0.0), Point2::new(2.0, 0.0)];
        assert_eq!(point_at_length(&p, 1.0), Some(Point2::new(1.0, 0.0)));
    }
}
