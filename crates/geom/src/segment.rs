//! Straight line segments and perpendicular-distance operations.
//!
//! Classic line generalization (Douglas–Peucker, the opening-window family)
//! discards a data point based on its *perpendicular* distance to the line
//! through the current anchor and float points (paper §2). Both the
//! infinite-line and the clamped-to-segment distance are provided: the
//! original Douglas–Peucker formulation uses the infinite line, while
//! spatial indexes and robustness-minded variants prefer the segment
//! distance.

use crate::point::{Point2, Vec2};

/// A directed straight segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point2,
    /// End point.
    pub b: Point2,
}

impl Segment {
    /// Creates the segment `a → b`.
    #[inline]
    pub const fn new(a: Point2, b: Point2) -> Self {
        Segment { a, b }
    }

    /// Segment length in metres.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// The displacement `b - a`.
    #[inline]
    pub fn direction(&self) -> Vec2 {
        self.b - self.a
    }

    /// Whether the two endpoints coincide exactly.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// Point at parameter `f` along the segment (`a` at 0, `b` at 1).
    #[inline]
    pub fn point_at(&self, f: f64) -> Point2 {
        self.a.lerp(self.b, f)
    }

    /// Parameter of the orthogonal projection of `p` onto the *infinite*
    /// line through the segment. Unclamped; `None` if the segment is
    /// degenerate.
    #[inline]
    pub fn project_param(&self, p: Point2) -> Option<f64> {
        let d = self.direction();
        let len_sq = d.norm_sq();
        if crate::numeric::approx_zero(len_sq, 0.0) {
            None
        } else {
            Some((p - self.a).dot(d) / len_sq)
        }
    }

    /// Perpendicular distance from `p` to the *infinite line* through the
    /// segment.
    ///
    /// This is the discarding criterion of the original Douglas–Peucker
    /// algorithm \[12\] and of the NOPW/BOPW baselines (paper §2.1–2.2).
    /// For a degenerate segment the distance to the (single) endpoint is
    /// returned, which keeps the top-down recursion well-defined on
    /// trajectories that revisit a location.
    #[inline]
    pub fn line_distance(&self, p: Point2) -> f64 {
        let d = self.direction();
        let len = d.norm();
        if crate::numeric::approx_zero(len, 0.0) {
            self.a.distance(p)
        } else {
            (d.cross(p - self.a)).abs() / len
        }
    }

    /// Distance from `p` to the segment itself (projection clamped to
    /// `[a, b]`).
    #[inline]
    pub fn segment_distance(&self, p: Point2) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Closest point on the segment to `p`.
    #[inline]
    pub fn closest_point(&self, p: Point2) -> Point2 {
        match self.project_param(p) {
            None => self.a,
            Some(f) => self.point_at(f.clamp(0.0, 1.0)),
        }
    }

    /// Reversed segment `b → a`.
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point2::new(ax, ay), Point2::new(bx, by))
    }

    #[test]
    fn length_and_direction() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.direction(), Vec2::new(3.0, 4.0));
        assert_eq!(s.reversed().direction(), Vec2::new(-3.0, -4.0));
    }

    #[test]
    fn line_distance_perpendicular_offset() {
        // Horizontal segment; point 2 m above it.
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.line_distance(Point2::new(5.0, 2.0)), 2.0);
        // Same for a point beyond the segment end: the *line* distance
        // ignores the clamping.
        assert_eq!(s.line_distance(Point2::new(25.0, 2.0)), 2.0);
    }

    #[test]
    fn segment_distance_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.segment_distance(Point2::new(5.0, 2.0)), 2.0);
        // Beyond the end: distance to endpoint b = (10,0).
        let d = s.segment_distance(Point2::new(13.0, 4.0));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_distances_fall_back_to_point_distance() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert!(s.is_degenerate());
        assert_eq!(s.line_distance(Point2::new(4.0, 5.0)), 5.0);
        assert_eq!(s.segment_distance(Point2::new(4.0, 5.0)), 5.0);
        assert!(s.project_param(Point2::new(4.0, 5.0)).is_none());
        assert_eq!(s.closest_point(Point2::new(4.0, 5.0)), s.a);
    }

    #[test]
    fn nan_endpoints_route_to_the_degenerate_branch() {
        // A NaN coordinate must fall into the degenerate fallback, not
        // flow through the division: `NaN == NaN` is false, so the old
        // `len_sq == 0.0` guard would have missed it and returned NaN
        // from a well-formed query point's projection.
        let s = seg(f64::NAN, 0.0, 1.0, 1.0);
        assert!(s.project_param(Point2::new(4.0, 5.0)).is_none());
        // The fallback endpoint itself carries the NaN (it IS `a`), so
        // compare fields: NaN-x propagates, y is untouched.
        let c = s.closest_point(Point2::new(4.0, 5.0));
        assert!(c.x.is_nan());
        assert_eq!(c.y, s.a.y);
    }

    #[test]
    fn project_param_is_affine_along_segment() {
        let s = seg(0.0, 0.0, 4.0, 0.0);
        assert_eq!(s.project_param(Point2::new(1.0, 7.0)), Some(0.25));
        assert_eq!(s.project_param(Point2::new(-4.0, 0.0)), Some(-1.0));
        assert_eq!(s.project_param(Point2::new(8.0, -3.0)), Some(2.0));
    }

    #[test]
    fn closest_point_interior_and_exterior() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_point(Point2::new(5.0, 3.0)), Point2::new(5.0, 0.0));
        assert_eq!(s.closest_point(Point2::new(-5.0, 3.0)), Point2::new(0.0, 0.0));
        assert_eq!(s.closest_point(Point2::new(15.0, 3.0)), Point2::new(10.0, 0.0));
    }

    #[test]
    fn point_on_line_has_zero_line_distance() {
        let s = seg(-3.0, -3.0, 5.0, 5.0);
        assert!(s.line_distance(Point2::new(100.0, 100.0)) < 1e-9);
    }
}
