//! Planar geometry and geodesy substrate for moving-object trajectories.
//!
//! This crate provides the geometric vocabulary used throughout `trajc`:
//!
//! * [`Point2`] / [`Vec2`] — positions and displacements in a local planar
//!   (metric) coordinate frame, in metres;
//! * [`Segment`] — straight line segments with the perpendicular-distance
//!   operations that classic line-generalization algorithms
//!   (Douglas–Peucker, opening-window) are built on;
//! * [`Bbox`] — axis-aligned boxes used by spatial indexes;
//! * [`geodesy`] — conversion between WGS-84 GPS fixes and the local plane;
//! * [`numeric`] — small numerical helpers (adaptive Simpson quadrature,
//!   approximate comparisons) used to cross-validate closed-form integrals;
//! * [`soa`] — a structure-of-arrays trajectory view ([`TrajView`]) with
//!   batched distance kernels that autovectorize (optionally 4-lane
//!   unrolled under the `simd` cargo feature, bitwise equal to scalar).
//!
//! Everything is `f64`-based and allocation-free; these types are hot-path
//! values for the compression kernels in `traj-compress`.

pub mod bbox;
pub mod geodesy;
pub mod numeric;
pub mod point;
pub mod polyline;
pub mod segment;
pub mod soa;

pub use bbox::Bbox;
pub use geodesy::{GeoPoint, LocalProjection, EARTH_RADIUS_M};
pub use point::{Point2, Vec2};
pub use polyline::polyline_length;
pub use segment::Segment;
pub use soa::TrajView;
