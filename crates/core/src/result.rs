//! Compression results and the batch compressor interface.

use std::fmt;

use crate::workspace::Workspace;
use traj_model::Trajectory;

/// Why a kept-index set is not a valid [`CompressionResult`].
///
/// Returned by [`CompressionResult::try_new`]; the panicking
/// [`CompressionResult::new`] formats the same variants into its panic
/// message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidResult {
    /// No kept indices although the original trajectory was non-empty.
    Empty,
    /// Kept indices are not strictly increasing.
    NotIncreasing,
    /// A kept index is `>=` the original length.
    OutOfRange {
        /// The offending index.
        index: usize,
        /// The original trajectory length.
        len: usize,
    },
    /// Index `0` is missing although the original has `>= 2` points.
    MissingFirst,
    /// The final index is missing although the original has `>= 2` points.
    MissingLast {
        /// The required final index (`original_len - 1`).
        last: usize,
    },
}

impl fmt::Display for InvalidResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            InvalidResult::Empty => {
                write!(f, "a compression result keeps at least one point")
            }
            InvalidResult::NotIncreasing => {
                write!(f, "kept indices must be strictly increasing")
            }
            InvalidResult::OutOfRange { index, len } => {
                write!(f, "kept index out of range: {index} >= original length {len}")
            }
            InvalidResult::MissingFirst => {
                write!(f, "first sample must be kept (index 0 missing)")
            }
            InvalidResult::MissingLast { last } => {
                write!(f, "last sample must be kept (index {last} missing)")
            }
        }
    }
}

impl std::error::Error for InvalidResult {}

/// The outcome of compressing a trajectory: the strictly increasing set of
/// *original sample indices* that were kept.
///
/// Every compressor in this crate discards data points but never invents
/// new ones (the paper: "we never invented new data points, let alone time
/// stamps", §4.2). Keeping indices rather than fixes lets the error
/// calculus compare original and approximation without re-association.
///
/// Invariants (upheld by [`CompressionResult::new`] and checked fallibly
/// by [`CompressionResult::try_new`]):
/// * at least one index, unless the original itself was empty (the only
///   lossless representation of zero input points is zero kept points);
/// * strictly increasing;
/// * for inputs of length ≥ 2, the first (`0`) and last (`n-1`) samples
///   are kept, so the approximation spans the same time interval — the
///   countermeasure the paper prescribes for the opening-window family
///   losing its last points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressionResult {
    kept: Vec<usize>,
    original_len: usize,
}

impl CompressionResult {
    /// Wraps a kept-index set, checking the invariants.
    ///
    /// The library's own kernels construct their index sets to satisfy
    /// the invariants, so a violation is a bug in the algorithm, not a
    /// data error; external constructions with untrusted indices should
    /// prefer [`CompressionResult::try_new`].
    ///
    /// # Panics
    /// Panics if the invariants are violated.
    pub fn new(kept: Vec<usize>, original_len: usize) -> Self {
        match Self::try_new(kept, original_len) {
            Ok(r) => r,
            // lint: allow(panic) the panicking constructor is the documented
            // contract: invariant violations are compressor bugs
            Err(e) => panic!("{e}"),
        }
    }

    /// Wraps a kept-index set, returning the violated invariant instead
    /// of panicking.
    ///
    /// # Errors
    /// The first violated [`InvalidResult`] invariant, in the order the
    /// invariants are documented on [`CompressionResult`].
    ///
    /// ```
    /// use traj_compress::{CompressionResult, InvalidResult};
    ///
    /// assert!(CompressionResult::try_new(vec![0, 3, 9], 10).is_ok());
    /// assert_eq!(
    ///     CompressionResult::try_new(vec![0, 2], 5),
    ///     Err(InvalidResult::MissingLast { last: 4 }),
    /// );
    /// ```
    pub fn try_new(kept: Vec<usize>, original_len: usize) -> Result<Self, InvalidResult> {
        if kept.is_empty() && original_len != 0 {
            return Err(InvalidResult::Empty);
        }
        if !kept.windows(2).all(|w| w[0] < w[1]) {
            return Err(InvalidResult::NotIncreasing);
        }
        if let Some(&last) = kept.last() {
            if last >= original_len {
                return Err(InvalidResult::OutOfRange { index: last, len: original_len });
            }
        }
        if original_len >= 2 {
            if kept.first() != Some(&0) {
                return Err(InvalidResult::MissingFirst);
            }
            if kept.last() != Some(&(original_len - 1)) {
                return Err(InvalidResult::MissingLast { last: original_len - 1 });
            }
        }
        Ok(CompressionResult { kept, original_len })
    }

    /// The identity result: every point kept.
    pub fn identity(original_len: usize) -> Self {
        CompressionResult::new((0..original_len).collect(), original_len)
    }

    /// Kept original indices, strictly increasing.
    #[inline]
    pub fn kept(&self) -> &[usize] {
        &self.kept
    }

    /// Number of kept points.
    #[inline]
    pub fn kept_len(&self) -> usize {
        self.kept.len()
    }

    /// Length of the original trajectory.
    #[inline]
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Number of removed points.
    #[inline]
    pub fn removed(&self) -> usize {
        self.original_len - self.kept.len()
    }

    /// Compression rate as a percentage of points removed — the
    /// "Compression (percent)" axis of the paper's figures.
    #[inline]
    pub fn compression_pct(&self) -> f64 {
        if self.original_len == 0 {
            0.0
        } else {
            100.0 * self.removed() as f64 / self.original_len as f64
        }
    }

    /// Whether original index `i` was kept. `O(log n)`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.kept.binary_search(&i).is_ok()
    }

    /// Materializes the approximation trajectory `a` from the original
    /// `p`.
    ///
    /// # Panics
    /// Panics if `p` is not the trajectory this result was computed from
    /// (length mismatch).
    pub fn apply(&self, original: &Trajectory) -> Trajectory {
        assert_eq!(
            original.len(),
            self.original_len,
            "result applied to a different trajectory"
        );
        original.select(&self.kept)
    }
}

/// A reusable output buffer for [`Compressor::compress_into`].
///
/// Kernels write kept indices directly into the buffer's backing `Vec`,
/// so a buffer reused across calls amortizes the output allocation the
/// same way a [`Workspace`] amortizes scratch. Convert to an owned
/// [`CompressionResult`] with [`CompressionResultBuf::take`] (moves the
/// indices out) or [`CompressionResultBuf::to_result`] (clones, keeping
/// the buffer warm).
#[derive(Debug, Clone, Default)]
pub struct CompressionResultBuf {
    pub(crate) kept: Vec<usize>,
    pub(crate) original_len: usize,
}

impl CompressionResultBuf {
    /// An empty buffer; kernels size it on first use.
    pub fn new() -> Self {
        CompressionResultBuf::default()
    }

    /// Kept original indices written by the last `compress_into` call.
    #[inline]
    pub fn kept(&self) -> &[usize] {
        &self.kept
    }

    /// Original length recorded by the last `compress_into` call.
    #[inline]
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Clears the buffer (keeping its allocation) and records the
    /// original length of the trajectory about to be compressed.
    #[inline]
    pub(crate) fn reset(&mut self, original_len: usize) {
        self.kept.clear();
        self.original_len = original_len;
    }

    /// Fills the buffer with the identity result over `n` points.
    #[inline]
    pub(crate) fn set_identity(&mut self, n: usize) {
        self.reset(n);
        self.kept.extend(0..n);
    }

    /// Moves the indices out as a checked [`CompressionResult`], leaving
    /// the buffer empty (its allocation moves with the result).
    ///
    /// # Panics
    /// Panics if the buffered indices violate the [`CompressionResult`]
    /// invariants — a kernel bug, same contract as
    /// [`CompressionResult::new`].
    pub fn take(&mut self) -> CompressionResult {
        let kept = std::mem::take(&mut self.kept);
        CompressionResult::new(kept, self.original_len)
    }

    /// Clones the buffered indices into a checked [`CompressionResult`],
    /// keeping the buffer (and its allocation) intact.
    ///
    /// # Panics
    /// Panics if the buffered indices violate the [`CompressionResult`]
    /// invariants, same contract as [`CompressionResultBuf::take`].
    pub fn to_result(&self) -> CompressionResult {
        CompressionResult::new(self.kept.clone(), self.original_len)
    }
}

/// A batch trajectory compressor (the paper's "batch algorithms" need the
/// full series up front; §2).
pub trait Compressor {
    /// Short lowercase identifier used in experiment reports (e.g.
    /// `"td-tr"`, `"nopw"`).
    fn name(&self) -> String;

    /// Compresses `traj`, returning the kept original indices.
    ///
    /// Implementations must uphold the [`CompressionResult`] invariants
    /// for every valid trajectory, including the degenerate 1- and
    /// 2-point inputs (which are returned unchanged).
    fn compress(&self, traj: &Trajectory) -> CompressionResult;

    /// Compresses `traj` into a reusable output buffer, borrowing
    /// scratch from `ws` — the allocation-free form of
    /// [`Compressor::compress`].
    ///
    /// `out` is overwritten (its previous contents are discarded); on
    /// return it holds exactly the indices `compress` would have
    /// returned. The default implementation delegates to `compress` and
    /// copies, so exotic implementors get the API for free; the kernels
    /// in this crate override it to run allocation-free once `ws` and
    /// `out` are warm.
    fn compress_into(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        let _ = ws;
        let r = self.compress(traj);
        out.reset(r.original_len());
        out.kept.extend_from_slice(r.kept());
    }
}

impl<C: Compressor + ?Sized> Compressor for &C {
    fn name(&self) -> String {
        (**self).name()
    }
    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        (**self).compress(traj)
    }
    fn compress_into(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        (**self).compress_into(traj, ws, out)
    }
}

impl<C: Compressor + ?Sized> Compressor for Box<C> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        (**self).compress(traj)
    }
    fn compress_into(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        (**self).compress_into(traj, ws, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariants_accept_valid_results() {
        let r = CompressionResult::new(vec![0, 3, 9], 10);
        assert_eq!(r.kept_len(), 3);
        assert_eq!(r.removed(), 7);
        assert_eq!(r.compression_pct(), 70.0);
        assert!(r.contains(3));
        assert!(!r.contains(4));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty() {
        let _ = CompressionResult::new(vec![], 5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted() {
        let _ = CompressionResult::new(vec![0, 2, 2, 4], 5);
    }

    #[test]
    #[should_panic(expected = "first sample")]
    fn rejects_missing_first() {
        let _ = CompressionResult::new(vec![1, 4], 5);
    }

    #[test]
    #[should_panic(expected = "last sample")]
    fn rejects_missing_last() {
        let _ = CompressionResult::new(vec![0, 2], 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = CompressionResult::new(vec![0, 7], 5);
    }

    #[test]
    fn try_new_reports_each_invariant() {
        assert_eq!(CompressionResult::try_new(vec![], 5), Err(InvalidResult::Empty));
        assert_eq!(
            CompressionResult::try_new(vec![0, 2, 2, 4], 5),
            Err(InvalidResult::NotIncreasing)
        );
        assert_eq!(
            CompressionResult::try_new(vec![0, 7], 5),
            Err(InvalidResult::OutOfRange { index: 7, len: 5 })
        );
        assert_eq!(
            CompressionResult::try_new(vec![1, 4], 5),
            Err(InvalidResult::MissingFirst)
        );
        assert_eq!(
            CompressionResult::try_new(vec![0, 2], 5),
            Err(InvalidResult::MissingLast { last: 4 })
        );
        assert!(CompressionResult::try_new(vec![], 0).is_ok());
        assert!(CompressionResult::try_new(vec![0], 1).is_ok());
    }

    #[test]
    fn invalid_result_displays_are_actionable() {
        let msg = InvalidResult::OutOfRange { index: 7, len: 5 }.to_string();
        assert!(msg.contains('7') && msg.contains('5'), "{msg}");
        // std::error::Error is implemented for ? ergonomics downstream.
        let e: Box<dyn std::error::Error> = Box::new(InvalidResult::Empty);
        assert!(e.to_string().contains("at least one point"));
    }

    #[test]
    fn identity_keeps_everything() {
        let r = CompressionResult::identity(4);
        assert_eq!(r.kept(), &[0, 1, 2, 3]);
        assert_eq!(r.compression_pct(), 0.0);
    }

    #[test]
    fn apply_selects_kept_fixes() {
        let t = Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (1.0, 1.0, 0.0),
            (2.0, 2.0, 0.0),
            (3.0, 3.0, 0.0),
        ])
        .unwrap();
        let r = CompressionResult::new(vec![0, 2, 3], 4);
        let a = r.apply(&t);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(1).unwrap().t.as_secs(), 2.0);
    }

    #[test]
    fn single_point_result_is_allowed() {
        let r = CompressionResult::new(vec![0], 1);
        assert_eq!(r.compression_pct(), 0.0);
    }

    #[test]
    fn empty_original_is_representable_and_not_nan() {
        // The empty trajectory compresses to itself; the rate must be a
        // plain 0 %, not a 0/0 NaN.
        let r = CompressionResult::identity(0);
        assert_eq!(r.kept(), &[] as &[usize]);
        assert_eq!(r.original_len(), 0);
        assert_eq!(r.removed(), 0);
        assert_eq!(r.compression_pct(), 0.0);
        assert!(!r.compression_pct().is_nan());
    }

    #[test]
    fn keeping_every_point_is_zero_percent() {
        let r = CompressionResult::new(vec![0, 1, 2, 3, 4], 5);
        assert_eq!(r.kept_len(), r.original_len());
        assert_eq!(r.compression_pct(), 0.0);
    }

    #[test]
    fn buf_take_and_to_result_round_trip() {
        let mut buf = CompressionResultBuf::new();
        buf.set_identity(3);
        assert_eq!(buf.kept(), &[0, 1, 2]);
        assert_eq!(buf.original_len(), 3);
        let cloned = buf.to_result();
        assert_eq!(cloned.kept(), &[0, 1, 2]);
        assert_eq!(buf.kept(), &[0, 1, 2], "to_result leaves the buffer intact");
        let taken = buf.take();
        assert_eq!(taken, cloned);
        assert!(buf.kept().is_empty(), "take drains the buffer");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn buf_take_checks_invariants() {
        let mut buf = CompressionResultBuf::new();
        buf.reset(5);
        buf.kept.extend_from_slice(&[0, 3, 1, 4]);
        let _ = buf.take();
    }

    #[test]
    fn default_compress_into_matches_compress() {
        struct KeepEnds;
        impl Compressor for KeepEnds {
            fn name(&self) -> String {
                "keep-ends".into()
            }
            fn compress(&self, traj: &Trajectory) -> CompressionResult {
                CompressionResult::new(vec![0, traj.len() - 1], traj.len())
            }
        }
        let t = Trajectory::from_triples((0..5).map(|i| (i as f64, i as f64, 0.0))).unwrap();
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        KeepEnds.compress_into(&t, &mut ws, &mut out);
        assert_eq!(out.take(), KeepEnds.compress(&t));
    }
}
