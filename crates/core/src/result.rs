//! Compression results and the batch compressor interface.

use traj_model::Trajectory;

/// The outcome of compressing a trajectory: the strictly increasing set of
/// *original sample indices* that were kept.
///
/// Every compressor in this crate discards data points but never invents
/// new ones (the paper: "we never invented new data points, let alone time
/// stamps", §4.2). Keeping indices rather than fixes lets the error
/// calculus compare original and approximation without re-association.
///
/// Invariants (upheld by [`CompressionResult::new`]):
/// * at least one index, unless the original itself was empty (the only
///   lossless representation of zero input points is zero kept points);
/// * strictly increasing;
/// * for inputs of length ≥ 2, the first (`0`) and last (`n-1`) samples
///   are kept, so the approximation spans the same time interval — the
///   countermeasure the paper prescribes for the opening-window family
///   losing its last points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressionResult {
    kept: Vec<usize>,
    original_len: usize,
}

impl CompressionResult {
    /// Wraps a kept-index set, checking the invariants.
    ///
    /// # Panics
    /// Panics if the invariants are violated; compressors construct their
    /// index sets to satisfy them, so a violation is a bug in the
    /// algorithm, not a data error.
    pub fn new(kept: Vec<usize>, original_len: usize) -> Self {
        assert!(
            !kept.is_empty() || original_len == 0,
            "a compression result keeps at least one point"
        );
        assert!(
            kept.windows(2).all(|w| w[0] < w[1]),
            "kept indices must be strictly increasing"
        );
        if let Some(&last) = kept.last() {
            assert!(last < original_len, "kept index out of range");
        }
        if original_len >= 2 {
            assert_eq!(kept[0], 0, "first sample must be kept");
            assert_eq!(kept.last(), Some(&(original_len - 1)), "last sample must be kept");
        }
        CompressionResult { kept, original_len }
    }

    /// The identity result: every point kept.
    pub fn identity(original_len: usize) -> Self {
        CompressionResult::new((0..original_len).collect(), original_len)
    }

    /// Kept original indices, strictly increasing.
    #[inline]
    pub fn kept(&self) -> &[usize] {
        &self.kept
    }

    /// Number of kept points.
    #[inline]
    pub fn kept_len(&self) -> usize {
        self.kept.len()
    }

    /// Length of the original trajectory.
    #[inline]
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Number of removed points.
    #[inline]
    pub fn removed(&self) -> usize {
        self.original_len - self.kept.len()
    }

    /// Compression rate as a percentage of points removed — the
    /// "Compression (percent)" axis of the paper's figures.
    #[inline]
    pub fn compression_pct(&self) -> f64 {
        if self.original_len == 0 {
            0.0
        } else {
            100.0 * self.removed() as f64 / self.original_len as f64
        }
    }

    /// Whether original index `i` was kept. `O(log n)`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.kept.binary_search(&i).is_ok()
    }

    /// Materializes the approximation trajectory `a` from the original
    /// `p`.
    ///
    /// # Panics
    /// Panics if `p` is not the trajectory this result was computed from
    /// (length mismatch).
    pub fn apply(&self, original: &Trajectory) -> Trajectory {
        assert_eq!(
            original.len(),
            self.original_len,
            "result applied to a different trajectory"
        );
        original.select(&self.kept)
    }
}

/// A batch trajectory compressor (the paper's "batch algorithms" need the
/// full series up front; §2).
pub trait Compressor {
    /// Short lowercase identifier used in experiment reports (e.g.
    /// `"td-tr"`, `"nopw"`).
    fn name(&self) -> String;

    /// Compresses `traj`, returning the kept original indices.
    ///
    /// Implementations must uphold the [`CompressionResult`] invariants
    /// for every valid trajectory, including the degenerate 1- and
    /// 2-point inputs (which are returned unchanged).
    fn compress(&self, traj: &Trajectory) -> CompressionResult;
}

impl<C: Compressor + ?Sized> Compressor for &C {
    fn name(&self) -> String {
        (**self).name()
    }
    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        (**self).compress(traj)
    }
}

impl<C: Compressor + ?Sized> Compressor for Box<C> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        (**self).compress(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariants_accept_valid_results() {
        let r = CompressionResult::new(vec![0, 3, 9], 10);
        assert_eq!(r.kept_len(), 3);
        assert_eq!(r.removed(), 7);
        assert_eq!(r.compression_pct(), 70.0);
        assert!(r.contains(3));
        assert!(!r.contains(4));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty() {
        let _ = CompressionResult::new(vec![], 5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted() {
        let _ = CompressionResult::new(vec![0, 2, 2, 4], 5);
    }

    #[test]
    #[should_panic(expected = "first sample")]
    fn rejects_missing_first() {
        let _ = CompressionResult::new(vec![1, 4], 5);
    }

    #[test]
    #[should_panic(expected = "last sample")]
    fn rejects_missing_last() {
        let _ = CompressionResult::new(vec![0, 2], 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = CompressionResult::new(vec![0, 7], 5);
    }

    #[test]
    fn identity_keeps_everything() {
        let r = CompressionResult::identity(4);
        assert_eq!(r.kept(), &[0, 1, 2, 3]);
        assert_eq!(r.compression_pct(), 0.0);
    }

    #[test]
    fn apply_selects_kept_fixes() {
        let t = Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (1.0, 1.0, 0.0),
            (2.0, 2.0, 0.0),
            (3.0, 3.0, 0.0),
        ])
        .unwrap();
        let r = CompressionResult::new(vec![0, 2, 3], 4);
        let a = r.apply(&t);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(1).unwrap().t.as_secs(), 2.0);
    }

    #[test]
    fn single_point_result_is_allowed() {
        let r = CompressionResult::new(vec![0], 1);
        assert_eq!(r.compression_pct(), 0.0);
    }

    #[test]
    fn empty_original_is_representable_and_not_nan() {
        // The empty trajectory compresses to itself; the rate must be a
        // plain 0 %, not a 0/0 NaN.
        let r = CompressionResult::identity(0);
        assert_eq!(r.kept(), &[] as &[usize]);
        assert_eq!(r.original_len(), 0);
        assert_eq!(r.removed(), 0);
        assert_eq!(r.compression_pct(), 0.0);
        assert!(!r.compression_pct().is_nan());
    }

    #[test]
    fn keeping_every_point_is_zero_percent() {
        let r = CompressionResult::new(vec![0, 1, 2, 3, 4], 5);
        assert_eq!(r.kept_len(), r.original_len());
        assert_eq!(r.compression_pct(), 0.0);
    }
}
