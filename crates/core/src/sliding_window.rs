//! Sliding-window compression (the fourth class of the paper's §2
//! taxonomy).
//!
//! "Starting from one end of the data series, a window of fixed size is
//! moved over the data points, and compression takes place only on the
//! data points inside the window." (paper §2.)
//!
//! The implementation anchors a segment at the current position and
//! considers at most `window` points ahead (the fixed window): the float
//! is placed at the window's far edge and pulled back to the first
//! violating point, which becomes the next anchor. Unlike the
//! opening-window family the look-ahead is bounded by the window size, so
//! per-point work is `O(window²)` at worst and memory for the online case
//! is fixed — the trade-off being that no segment can ever span more than
//! `window` points, capping the achievable compression.

use crate::criterion::{Criterion, SegmentCriterion};
use crate::result::{CompressionResult, CompressionResultBuf, Compressor};
use crate::workspace::Workspace;
use traj_geom::TrajView;
use traj_model::Trajectory;

/// Fixed-size sliding-window compressor over a pluggable [`Criterion`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlidingWindow {
    criterion: Criterion,
    window: usize,
}

impl SlidingWindow {
    /// Creates a sliding-window compressor: segments satisfy `criterion`
    /// and span at most `window` points.
    ///
    /// # Panics
    /// Panics unless the criterion's thresholds are valid and
    /// `window >= 2`.
    pub fn new(criterion: Criterion, window: usize) -> Self {
        criterion.validate();
        assert!(window >= 2, "window must span at least 2 points");
        SlidingWindow { criterion, window }
    }

    /// Sliding window over the synchronized time-ratio distance.
    pub fn time_ratio(epsilon: f64, window: usize) -> Self {
        SlidingWindow::new(Criterion::TimeRatio { epsilon }, window)
    }

    /// Sliding window over the perpendicular distance.
    pub fn perpendicular(epsilon: f64, window: usize) -> Self {
        SlidingWindow::new(Criterion::Perpendicular { epsilon }, window)
    }

    /// The active criterion.
    pub fn criterion(&self) -> Criterion {
        self.criterion
    }

    /// The maximum number of points one output segment may span.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The farthest float in `(anchor, limit]` such that no intermediate
    /// point violates; falls back to `anchor + 1` (always valid: no
    /// intermediates).
    fn best_float(&self, v: TrajView<'_>, anchor: usize, limit: usize) -> usize {
        let mut float = anchor + 1;
        for cand in anchor + 2..=limit {
            if self.criterion.first_violation_view(v, anchor, cand).is_some() {
                break;
            }
            float = cand;
        }
        float
    }

    fn kernel(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        let n = traj.len();
        ws.begin(n);
        if n <= 2 {
            out.set_identity(n);
            return;
        }
        ws.bind_columns(traj);
        let v = ws.cols.view();
        out.reset(n);
        out.kept.push(0);
        let mut anchor = 0usize;
        while anchor < n - 1 {
            let limit = (anchor + self.window).min(n - 1);
            let float = self.best_float(v, anchor, limit);
            out.kept.push(float);
            anchor = float;
        }
    }
}

impl Compressor for SlidingWindow {
    fn name(&self) -> String {
        format!("sliding-window({},w={})", self.criterion.label(), self.window)
    }

    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        self.kernel(traj, &mut ws, &mut out);
        out.take()
    }

    fn compress_into(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        self.kernel(traj, ws, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::sed;

    fn noisy_line(n: usize) -> Trajectory {
        Trajectory::from_triples((0..n).map(|i| {
            (
                i as f64 * 10.0,
                i as f64 * 80.0,
                if i % 5 == 2 { 12.0 } else { 0.0 },
            )
        }))
        .unwrap()
    }

    #[test]
    fn segments_never_exceed_window() {
        let t = noisy_line(50);
        let w = 6;
        let r = SlidingWindow::time_ratio(1e9, w).compress(&t);
        for pair in r.kept().windows(2) {
            assert!(pair[1] - pair[0] <= w, "segment {pair:?} exceeds window");
        }
    }

    #[test]
    fn respects_threshold_postcondition() {
        let t = noisy_line(50);
        let eps = 8.0;
        let r = SlidingWindow::time_ratio(eps, 10).compress(&t);
        let f = t.fixes();
        for w in r.kept().windows(2) {
            for i in w[0] + 1..w[1] {
                assert!(sed(&f[w[0]], &f[w[1]], &f[i]) <= eps + 1e-9);
            }
        }
    }

    #[test]
    fn straight_line_compresses_to_window_strides() {
        let t =
            Trajectory::from_triples((0..21).map(|i| (i as f64, i as f64 * 5.0, 0.0))).unwrap();
        let r = SlidingWindow::time_ratio(1.0, 5).compress(&t);
        assert_eq!(r.kept(), &[0, 5, 10, 15, 20]);
    }

    #[test]
    fn window_two_keeps_everything() {
        let t = noisy_line(10);
        let r = SlidingWindow::perpendicular(1e9, 2).compress(&t);
        // Window of 2 → every segment spans at most 2 points, but valid
        // 2-spans have one intermediate... a 2-span anchor..anchor+2 has
        // one intermediate; with huge eps it is always taken.
        for pair in r.kept().windows(2) {
            assert!(pair[1] - pair[0] <= 2);
        }
    }

    #[test]
    fn progress_is_guaranteed_even_at_zero_epsilon() {
        let t = noisy_line(30);
        let r = SlidingWindow::time_ratio(0.0, 8).compress(&t);
        assert_eq!(*r.kept().last().unwrap(), 29);
    }

    #[test]
    fn compress_into_matches_compress() {
        let t = noisy_line(40);
        let sw = SlidingWindow::time_ratio(8.0, 12);
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        sw.compress_into(&t, &mut ws, &mut out);
        assert_eq!(out.take(), sw.compress(&t));
    }

    #[test]
    fn degenerate_inputs() {
        let two = Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]).unwrap();
        let r = SlidingWindow::time_ratio(1.0, 4).compress(&two);
        assert_eq!(r.kept_len(), 2);
    }

    #[test]
    fn name_lists_criterion_and_window() {
        assert_eq!(
            SlidingWindow::time_ratio(30.0, 32).name(),
            "sliding-window(tr,30m,w=32)"
        );
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_tiny_window() {
        let _ = SlidingWindow::time_ratio(1.0, 1);
    }
}
