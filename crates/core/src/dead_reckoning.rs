//! Dead-reckoning compression — the tracking-protocol baseline.
//!
//! The moving-object-database literature contemporary with the paper
//! (Wolfson et al.'s dead-reckoning policies) keeps a data point only
//! when the position *predicted* from the last kept point and its
//! velocity drifts more than a threshold from the reported position.
//! Unlike the opening-window family this needs `O(1)` state and `O(1)`
//! work per fix — the cheapest online policy — at the cost of keeping
//! more points, since the linear prediction is anchored at commit time
//! and never revised.
//!
//! This is an *extension* relative to the paper (recorded in
//! `DESIGN.md`): it completes the online spectrum
//! `dead-reckoning (O(1)) → OPW (O(w)) → batch top-down` that the
//! evaluation harness uses for context.

use crate::result::{CompressionResult, Compressor};
use traj_model::{Fix, Trajectory};
use traj_geom::Vec2;

/// Dead-reckoning compressor with a prediction-error threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadReckoning {
    epsilon: f64,
}

impl DeadReckoning {
    /// Keep a fix when the dead-reckoned prediction misses it by more
    /// than `epsilon` metres.
    ///
    /// # Panics
    /// Panics unless `epsilon` is finite and non-negative.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and >= 0"
        );
        DeadReckoning { epsilon }
    }

    /// The prediction-error threshold, metres.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

/// Velocity estimate at commit time: from the kept fix and the fix right
/// before it in the *original* stream (a tracker knows its own recent
/// motion), or zero for the very first fix.
fn commit_velocity(fixes: &[Fix], kept_idx: usize) -> Vec2 {
    if kept_idx == 0 {
        return Vec2::ZERO;
    }
    let prev = &fixes[kept_idx - 1];
    let cur = &fixes[kept_idx];
    let dt = (cur.t - prev.t).as_secs();
    if dt <= 0.0 {
        Vec2::ZERO
    } else {
        (cur.pos - prev.pos) / dt
    }
}

impl Compressor for DeadReckoning {
    fn name(&self) -> String {
        format!("dead-reckoning({}m)", self.epsilon)
    }

    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        let n = traj.len();
        if n <= 2 {
            return CompressionResult::identity(n);
        }
        let fixes = traj.fixes();
        let mut kept = vec![0usize];
        let mut anchor = 0usize;
        let mut velocity = commit_velocity(fixes, 0);
        for i in 1..n - 1 {
            let dt = (fixes[i].t - fixes[anchor].t).as_secs();
            let predicted = fixes[anchor].pos + velocity * dt;
            if predicted.distance(fixes[i].pos) > self.epsilon {
                kept.push(i);
                anchor = i;
                velocity = commit_velocity(fixes, i);
            }
        }
        kept.push(n - 1);
        CompressionResult::new(kept, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_velocity_compresses_to_near_endpoints() {
        let t = Trajectory::from_triples((0..50).map(|i| (i as f64 * 10.0, i as f64 * 120.0, 0.0)))
            .unwrap();
        let r = DeadReckoning::new(10.0).compress(&t);
        // The first commit carries zero velocity (no history yet), so the
        // second fix is committed to bootstrap the velocity estimate;
        // from there the linear prediction is exact.
        assert_eq!(r.kept(), &[0, 1, 49]);
    }

    #[test]
    fn keeps_points_after_velocity_changes() {
        // Straight at 10 m/s, then turns 90°: prediction keeps drifting
        // after the turn until recommitted.
        let mut triples = Vec::new();
        for i in 0..10 {
            triples.push((i as f64 * 10.0, i as f64 * 100.0, 0.0));
        }
        for i in 0..10 {
            triples.push((100.0 + i as f64 * 10.0, 900.0, (i + 1) as f64 * 100.0));
        }
        let t = Trajectory::from_triples(triples).unwrap();
        let r = DeadReckoning::new(50.0).compress(&t);
        assert!(r.kept_len() > 2, "turn must force commits: {:?}", r.kept());
        // A commit happens shortly after the turn (index 10 or 11).
        assert!(r.kept().iter().any(|&i| (10..=12).contains(&i)));
    }

    #[test]
    fn postcondition_prediction_error_bounded_between_commits() {
        let t = Trajectory::from_triples((0..60).map(|i| {
            let tt = i as f64 * 10.0;
            (tt, tt * 11.0, 250.0 * (tt / 180.0).sin())
        }))
        .unwrap();
        let eps = 30.0;
        let r = DeadReckoning::new(eps).compress(&t);
        let fixes = t.fixes();
        // Re-simulate: between consecutive kept points every skipped
        // point was within eps of the prediction from the earlier one.
        for w in r.kept().windows(2) {
            let v = commit_velocity(fixes, w[0]);
            for i in w[0] + 1..w[1] {
                let dt = (fixes[i].t - fixes[w[0]].t).as_secs();
                let predicted = fixes[w[0]].pos + v * dt;
                assert!(
                    predicted.distance(fixes[i].pos) <= eps + 1e-9,
                    "skipped point {i} drifted {}",
                    predicted.distance(fixes[i].pos)
                );
            }
        }
    }

    #[test]
    fn stationary_object_with_zero_velocity_start() {
        let t = Trajectory::from_triples((0..20).map(|i| (i as f64, 5.0, 5.0))).unwrap();
        let r = DeadReckoning::new(1.0).compress(&t);
        assert_eq!(r.kept(), &[0, 19]);
    }

    #[test]
    fn tighter_threshold_keeps_more() {
        let t = Trajectory::from_triples((0..80).map(|i| {
            let tt = i as f64 * 10.0;
            (tt, tt * 9.0, 120.0 * (tt / 140.0).cos())
        }))
        .unwrap();
        let loose = DeadReckoning::new(80.0).compress(&t).kept_len();
        let tight = DeadReckoning::new(10.0).compress(&t).kept_len();
        assert!(tight >= loose, "tight {tight} loose {loose}");
    }

    #[test]
    fn degenerate_inputs() {
        let two = Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 5.0, 0.0)]).unwrap();
        assert_eq!(DeadReckoning::new(1.0).compress(&two).kept_len(), 2);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_threshold() {
        let _ = DeadReckoning::new(f64::INFINITY);
    }
}
