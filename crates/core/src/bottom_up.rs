//! Bottom-up compression (the third class of the paper's §2 taxonomy).
//!
//! "Starting from the finest possible representation, successive data
//! points are merged until some halting condition is met. The algorithm
//! may not visit all data points in sequence." (paper §2, after Keogh et
//! al. \[10\].)
//!
//! The implementation starts with every point kept and repeatedly removes
//! the point whose removal is *cheapest* — where the cost of removing an
//! interior point is the worst criterion deviation, over all original
//! points it would leave uncovered, from the segment joining its kept
//! neighbours. Removal continues while the cheapest cost stays within the
//! threshold. A lazy max-heap over candidates with a doubly linked list
//! of surviving indices keeps the loop `O(N log N)` heap operations with
//! `O(span)` cost re-evaluation; all of that state is borrowed from the
//! shared [`Workspace`] on the `compress_into` path.
//!
//! Being a batch algorithm with global choice of merge order, bottom-up
//! typically produces better error/compression trade-offs than the online
//! opening-window family at the same threshold — it is included both for
//! taxonomy completeness and as an ablation point.

use std::collections::BinaryHeap;

use crate::criterion::{max_split_value_view, Criterion, SegmentCriterion};
use crate::obs::AlgoRun;
use crate::result::{CompressionResult, CompressionResultBuf, Compressor};
use crate::workspace::{MergeCand, Workspace};
use traj_geom::TrajView;
use traj_model::{TrajColumns, Trajectory};

/// Bottom-up merging compressor over a pluggable [`Criterion`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BottomUp {
    criterion: Criterion,
}

impl BottomUp {
    /// Creates a bottom-up compressor over `criterion`; points are
    /// removed while the removal cost (worst split value of the merged
    /// segment) stays within the criterion's split threshold.
    ///
    /// # Panics
    /// Panics unless the criterion's thresholds are valid.
    pub fn new(criterion: Criterion) -> Self {
        criterion.validate();
        BottomUp { criterion }
    }

    /// Bottom-up with the synchronized time-ratio metric — the
    /// spatiotemporally sound configuration.
    pub fn time_ratio(epsilon: f64) -> Self {
        BottomUp::new(Criterion::TimeRatio { epsilon })
    }

    /// Bottom-up with the classic perpendicular metric.
    pub fn perpendicular(epsilon: f64) -> Self {
        BottomUp::new(Criterion::Perpendicular { epsilon })
    }

    /// The active criterion.
    pub fn criterion(&self) -> Criterion {
        self.criterion
    }

    /// Worst deviation of the original interior points `left+1..right`
    /// from the `left`–`right` approximation, in split-value units, plus
    /// criterion-evaluation accounting (`right - left - 1` distance
    /// evaluations per call). Computed by the batched columnar fold —
    /// bit-identical to the former per-point `split_value` max loop.
    #[inline]
    fn merge_cost_counted(&self, v: TrajView<'_>, left: usize, right: usize, run: &mut AlgoRun) -> f64 {
        run.sed_evals((right - left).saturating_sub(1) as u64);
        max_split_value_view(&self.criterion, v, left, right)
    }

    /// The merge loop shared by `compress` and `compress_into`: pops the
    /// cheapest candidate, removes it while `halt` allows, and repairs
    /// the neighbour candidates.
    fn kernel(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        let n = traj.len();
        ws.begin(n);
        if n <= 2 {
            out.set_identity(n);
            return;
        }
        let _span = traj_obs::span!("bottom_up.compress", points = n);
        ws.bind_columns(traj);
        let mut run = AlgoRun::new();
        let threshold = self.criterion.split_threshold();
        // Doubly linked list over surviving indices.
        ws.prev.extend((0..n).map(|i| i.wrapping_sub(1)));
        ws.next.extend(1..=n);
        ws.keep.resize(n, true); // alive mask

        // Field-disjoint borrows: the view reads `ws.cols` while the loop
        // mutates the linked list and the merge heap.
        let v = ws.cols.view();
        for i in 1..n - 1 {
            ws.merge_heap.push(MergeCand {
                cost: self.merge_cost_counted(v, i - 1, i + 1, &mut run),
                idx: i,
                left: i - 1,
                right: i + 1,
            });
        }

        while let Some(c) = ws.merge_heap.pop() {
            run.heap_pop();
            // Lazy invalidation: skip stale entries.
            if !ws.keep[c.idx] || ws.prev[c.idx] != c.left || ws.next[c.idx] != c.right {
                continue;
            }
            if c.cost > threshold {
                break; // cheapest removal already violates: done.
            }
            // Remove c.idx.
            run.merge_step();
            ws.keep[c.idx] = false;
            ws.next[c.left] = c.right;
            ws.prev[c.right] = c.left;
            // Re-evaluate the neighbours' removal costs.
            if c.left > 0 {
                let (l, r) = (ws.prev[c.left], ws.next[c.left]);
                ws.merge_heap.push(MergeCand {
                    cost: self.merge_cost_counted(v, l, r, &mut run),
                    idx: c.left,
                    left: l,
                    right: r,
                });
            }
            if c.right < n - 1 {
                let (l, r) = (ws.prev[c.right], ws.next[c.right]);
                ws.merge_heap.push(MergeCand {
                    cost: self.merge_cost_counted(v, l, r, &mut run),
                    idx: c.right,
                    left: l,
                    right: r,
                });
            }
        }

        out.reset(n);
        out.kept.extend((0..n).filter(|&i| ws.keep[i]));
        run.flush("bottom-up", n, out.kept.len());
    }
}

impl BottomUp {
    /// Bottom-up merging under the paper's third halting condition (§2):
    /// "the sum of the errors of all segments exceeds a user-defined
    /// threshold". Merges cheapest-first while the *total* of
    /// per-segment worst deviations (in the criterion's split-value
    /// units) stays within `total_budget`; the per-point threshold of
    /// `self` is ignored.
    ///
    /// # Panics
    /// Panics unless `total_budget` is finite and non-negative.
    pub fn compress_total_budget(
        &self,
        traj: &Trajectory,
        total_budget: f64,
    ) -> CompressionResult {
        assert!(
            total_budget.is_finite() && total_budget >= 0.0,
            "total_budget must be finite and >= 0"
        );
        let n = traj.len();
        if n <= 2 {
            return CompressionResult::identity(n);
        }
        let cols = TrajColumns::from_fixes(traj.fixes());
        let v = cols.view();
        let mut run = AlgoRun::new();
        let mut prev: Vec<usize> = (0..n).map(|i| i.wrapping_sub(1)).collect();
        let mut next: Vec<usize> = (1..=n).collect();
        let mut alive = vec![true; n];
        let mut total = 0.0f64; // Σ per-segment worst deviations (all 0 initially).

        let mut heap = BinaryHeap::with_capacity(n);
        for i in 1..n - 1 {
            heap.push(MergeCand {
                cost: self.merge_cost_counted(v, i - 1, i + 1, &mut run),
                idx: i,
                left: i - 1,
                right: i + 1,
            });
        }
        while let Some(c) = heap.pop() {
            run.heap_pop();
            if !alive[c.idx] || prev[c.idx] != c.left || next[c.idx] != c.right {
                continue;
            }
            // Replacing the two segments around idx with one changes the
            // total by (merged cost − left cost − right cost).
            let left_cost = self.merge_cost_counted(v, c.left, c.idx, &mut run);
            let right_cost = self.merge_cost_counted(v, c.idx, c.right, &mut run);
            let new_total = total + c.cost - left_cost - right_cost;
            if new_total > total_budget {
                // The cheapest remaining merge overruns the budget; any
                // other merge costs at least as much. Stop.
                break;
            }
            total = new_total;
            run.merge_step();
            alive[c.idx] = false;
            next[c.left] = c.right;
            prev[c.right] = c.left;
            if c.left > 0 {
                let (l, r) = (prev[c.left], next[c.left]);
                heap.push(MergeCand {
                    cost: self.merge_cost_counted(v, l, r, &mut run),
                    idx: c.left,
                    left: l,
                    right: r,
                });
            }
            if c.right < n - 1 {
                let (l, r) = (prev[c.right], next[c.right]);
                heap.push(MergeCand {
                    cost: self.merge_cost_counted(v, l, r, &mut run),
                    idx: c.right,
                    left: l,
                    right: r,
                });
            }
        }
        let kept = (0..n).filter(|&i| alive[i]).collect();
        let result = CompressionResult::new(kept, n);
        run.flush("bottom-up-budget", n, result.kept_len());
        result
    }
}

impl Compressor for BottomUp {
    fn name(&self) -> String {
        format!("bottom-up({})", self.criterion.label())
    }

    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        self.kernel(traj, &mut ws, &mut out);
        out.take()
    }

    fn compress_into(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        self.kernel(traj, ws, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::sed;

    fn wiggle() -> Trajectory {
        Trajectory::from_triples((0..40).map(|i| {
            let t = i as f64 * 10.0;
            let x = i as f64 * 50.0;
            let y = if i % 7 == 3 { 60.0 } else { (i % 3) as f64 };
            (t, x, y)
        }))
        .unwrap()
    }

    #[test]
    fn respects_threshold_postcondition() {
        let t = wiggle();
        let eps = 20.0;
        let r = BottomUp::time_ratio(eps).compress(&t);
        let f = t.fixes();
        for w in r.kept().windows(2) {
            for i in w[0] + 1..w[1] {
                let d = sed(&f[w[0]], &f[w[1]], &f[i]);
                assert!(d <= eps + 1e-9, "point {i} deviates {d}");
            }
        }
    }

    #[test]
    fn keeps_large_excursions() {
        let t = wiggle();
        let r = BottomUp::time_ratio(20.0).compress(&t);
        for i in (3..40).step_by(7) {
            assert!(r.contains(i), "excursion at {i} kept: {:?}", r.kept());
        }
    }

    #[test]
    fn zero_threshold_keeps_all_deviating_points() {
        // Straight constant-speed: everything but endpoints removable
        // even at eps = 0.
        let straight =
            Trajectory::from_triples((0..20).map(|i| (i as f64, i as f64 * 5.0, 0.0))).unwrap();
        let r = BottomUp::time_ratio(0.0).compress(&straight);
        assert_eq!(r.kept(), &[0, 19]);
    }

    #[test]
    fn huge_threshold_keeps_endpoints_only() {
        let t = wiggle();
        let r = BottomUp::time_ratio(1e9).compress(&t);
        assert_eq!(r.kept(), &[0, 39]);
    }

    #[test]
    fn perpendicular_metric_variant_works() {
        let t = wiggle();
        let r = BottomUp::perpendicular(20.0).compress(&t);
        assert!(r.kept_len() < t.len());
        assert!(r.kept_len() >= 2);
    }

    #[test]
    fn compresses_at_least_as_well_as_identity() {
        let t = wiggle();
        let r = BottomUp::time_ratio(5.0).compress(&t);
        assert!(r.kept_len() <= t.len());
        assert_eq!(r.kept()[0], 0);
        assert_eq!(*r.kept().last().unwrap(), t.len() - 1);
    }

    #[test]
    fn compress_into_matches_compress_and_reuses_buffers() {
        let t = wiggle();
        let bu = BottomUp::time_ratio(10.0);
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        for _ in 0..2 {
            bu.compress_into(&t, &mut ws, &mut out);
            assert_eq!(out.take(), bu.compress(&t));
        }
    }

    #[test]
    fn degenerate_inputs() {
        let two = Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]).unwrap();
        assert_eq!(BottomUp::time_ratio(1.0).compress(&two).kept_len(), 2);
    }

    #[test]
    fn total_budget_zero_keeps_all_deviating_points() {
        let t = wiggle();
        let r = BottomUp::time_ratio(0.0).compress_total_budget(&t, 0.0);
        // Only zero-cost merges allowed; wiggle has none except possibly
        // collinear runs.
        let full = BottomUp::time_ratio(0.0).compress(&t);
        assert_eq!(r.kept(), full.kept());
    }

    #[test]
    fn total_budget_controls_sum_of_segment_errors() {
        use crate::distance::sed;
        let t = wiggle();
        let budget = 50.0;
        let r = BottomUp::time_ratio(0.0).compress_total_budget(&t, budget);
        let f = t.fixes();
        let total: f64 = r
            .kept()
            .windows(2)
            .map(|w| {
                (w[0] + 1..w[1])
                    .map(|i| sed(&f[w[0]], &f[w[1]], &f[i]))
                    .fold(0.0f64, f64::max)
            })
            .sum();
        assert!(total <= budget + 1e-9, "total segment error {total} over budget {budget}");
        assert!(r.kept_len() < t.len(), "some compression must happen");
    }

    #[test]
    fn larger_total_budget_compresses_more() {
        let t = wiggle();
        let small = BottomUp::time_ratio(0.0).compress_total_budget(&t, 20.0).kept_len();
        let large = BottomUp::time_ratio(0.0).compress_total_budget(&t, 200.0).kept_len();
        assert!(large <= small, "large-budget kept {large} > small-budget kept {small}");
    }

    #[test]
    fn infinite_is_rejected_huge_budget_keeps_endpoints() {
        let t = wiggle();
        let r = BottomUp::time_ratio(0.0).compress_total_budget(&t, 1e12);
        assert_eq!(r.kept(), &[0, 39]);
    }

    #[test]
    fn name_lists_metric_and_threshold() {
        assert_eq!(BottomUp::time_ratio(25.0).name(), "bottom-up(tr,25m)");
        assert_eq!(BottomUp::perpendicular(25.0).name(), "bottom-up(perp,25m)");
    }
}
