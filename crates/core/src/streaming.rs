//! Online (streaming) compression.
//!
//! The paper stresses that opening-window algorithms "are online
//! algorithms … typically used to compress data streams in real-time"
//! (§2). This module provides the record-at-a-time forms of the batch
//! compressors behind one shared lifecycle trait:
//!
//! * [`StreamingCompressor`] — input validation, accounting, and the
//!   metric flush-on-finish contract, shared by every stream;
//! * [`OwStream`] — the incremental [`crate::OpeningWindow`] (buffers the
//!   open window, optional `max_window` memory valve);
//! * [`OnePassStream`] — the incremental one-pass SED family
//!   ([`crate::OnePassFit`] / [`crate::OnePassCone`]): O(1) state, no
//!   window buffer at all.
//!
//! Feeding a whole trajectory through a stream produces *exactly* the
//! same kept points as the corresponding batch compressor — pinned by
//! equivalence tests and proptests.

use crate::criterion::SegmentCriterion;
use crate::obs::AlgoRun;
use crate::one_pass::{
    cone_apothem, cone_directions, one_pass_step, ConeRegion, FitRegion, Region,
};
use crate::opening_window::{BreakStrategy, Criterion};
use traj_model::{Fix, ModelError, Timestamp};

/// Shared bookkeeping every streaming compressor carries: accepted and
/// emitted fix counts, the last accepted timestamp (for monotonicity
/// checks), and the per-run metric accumulator flushed on
/// [`StreamingCompressor::finish`].
///
/// Constructed internally by the stream types; the fields are not part
/// of the public API.
#[derive(Debug, Clone, Default)]
pub struct StreamCore {
    pub(crate) pushed: usize,
    pub(crate) emitted: usize,
    pub(crate) last_t: Option<Timestamp>,
    pub(crate) run: AlgoRun,
}

impl StreamCore {
    fn new() -> Self {
        StreamCore::default()
    }
}

/// The shared open/flush lifecycle of a record-at-a-time compressor.
///
/// Implementors provide only the algorithm step ([`step`]) and the
/// end-of-stream drain ([`drain`]); the trait supplies the public
/// [`push`]/[`finish`] entry points with uniform input validation
/// (finite fixes, strictly increasing timestamps), accepted/emitted
/// accounting, and the flush-once metrics contract — the lifecycle that
/// `OwStream` and `OnePassStream` would otherwise duplicate.
///
/// [`step`]: StreamingCompressor::step
/// [`drain`]: StreamingCompressor::drain
/// [`push`]: StreamingCompressor::push
/// [`finish`]: StreamingCompressor::finish
///
/// ```
/// use traj_compress::streaming::{OnePassStream, OwStream, StreamingCompressor};
/// use traj_model::Fix;
///
/// // One driver works for every stream kind.
/// fn drive<S: StreamingCompressor>(mut s: S) -> Vec<Fix> {
///     let mut kept = Vec::new();
///     for i in 0..100 {
///         let fix = Fix::from_parts(f64::from(i) * 10.0, f64::from(i) * 120.0, 0.0);
///         kept.extend(s.push(fix).expect("valid fix"));
///     }
///     kept.extend(s.finish());
///     kept
/// }
///
/// // A straight, constant-speed run compresses to its endpoints under
/// // both the opening-window and the one-pass family.
/// assert_eq!(drive(OwStream::opw_tr(30.0)).len(), 2);
/// assert_eq!(drive(OnePassStream::fit(30.0)).len(), 2);
/// assert_eq!(drive(OnePassStream::cone(30.0)).len(), 2);
/// ```
pub trait StreamingCompressor {
    /// Static algorithm-family label used when flushing stream metrics;
    /// by convention the batch family name with a `stream-` prefix, so
    /// online and batch runs stay distinguishable in reports.
    fn family(&self) -> &'static str;

    /// Shared bookkeeping (read side).
    fn core(&self) -> &StreamCore;

    /// Shared bookkeeping (write side).
    fn core_mut(&mut self) -> &mut StreamCore;

    /// Processes one *validated* fix, appending any fixes this step
    /// commits to `out`. Called by [`StreamingCompressor::push`] after
    /// finiteness/monotonicity checks pass; implementations never see
    /// invalid input.
    fn step(&mut self, fix: Fix, out: &mut Vec<Fix>);

    /// Commits whatever the end of the stream decides (typically the
    /// final buffered fix), appending to `out`. Called once by
    /// [`StreamingCompressor::finish`].
    fn drain(&mut self, out: &mut Vec<Fix>);

    /// Feeds the next fix; returns the fixes *committed* (kept) by this
    /// push, in order.
    ///
    /// # Errors
    /// [`ModelError::NonFinite`] for NaN/∞ input and
    /// [`ModelError::NonMonotonicTime`] when `fix.t` is not strictly
    /// later than the previously accepted fix (the index reported is the
    /// running count of accepted fixes). A rejected fix leaves the
    /// stream state untouched and usable.
    fn push(&mut self, fix: Fix) -> Result<Vec<Fix>, ModelError> {
        if !fix.is_finite() {
            return Err(ModelError::NonFinite { index: self.core().pushed });
        }
        if let Some(last) = self.core().last_t {
            // `fix` is already known finite, so >= is a total comparison.
            if last >= fix.t {
                return Err(ModelError::NonMonotonicTime { index: self.core().pushed });
            }
        }
        let core = self.core_mut();
        core.pushed += 1;
        core.last_t = Some(fix.t);
        let mut out = Vec::new();
        self.step(fix, &mut out);
        self.core_mut().emitted += out.len();
        Ok(out)
    }

    /// Flushes the stream: drains the final committed fixes and
    /// publishes the stream's accumulated metrics to the `traj-obs`
    /// registry. A stream dropped without `finish` reports nothing.
    fn finish(mut self) -> Vec<Fix>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        self.drain(&mut out);
        self.core_mut().emitted += out.len();
        let core = self.core();
        core.run.flush(self.family(), core.pushed, core.emitted);
        out
    }

    /// Number of fixes accepted so far.
    fn pushed(&self) -> usize {
        self.core().pushed
    }
}

/// Incremental opening-window compressor.
///
/// Memory: the stream buffers the currently open window. On highly
/// compressible input the window can grow without bound — the price of
/// the OW family's look-back — so a `max_window` safety valve can force
/// a cut just before the float once the buffer reaches a limit, trading
/// a little compression for bounded memory (used by `traj-store`'s
/// ingest path).
///
/// ```
/// use traj_compress::streaming::{OwStream, StreamingCompressor};
/// use traj_compress::{BreakStrategy, Criterion};
/// use traj_model::Fix;
///
/// let mut stream = OwStream::new(
///     Criterion::TimeRatio { epsilon: 30.0 },
///     BreakStrategy::Normal,
/// );
/// let mut kept = Vec::new();
/// for i in 0..100 {
///     let fix = Fix::from_parts(i as f64 * 10.0, i as f64 * 120.0, 0.0);
///     kept.extend(stream.push(fix).unwrap());
/// }
/// kept.extend(stream.finish());
/// // A straight, constant-speed run compresses to its endpoints.
/// assert_eq!(kept.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct OwStream {
    criterion: Criterion,
    strategy: BreakStrategy,
    /// Open window; `window[0]` is the current anchor (already emitted).
    window: Vec<Fix>,
    /// Next float index (relative to `window`) that still needs checking.
    checked: usize,
    /// Optional bound on the open window's length.
    max_window: Option<usize>,
    /// Shared streaming bookkeeping.
    core: StreamCore,
}

impl OwStream {
    /// Creates a stream with the given discarding criterion and break
    /// strategy.
    ///
    /// # Panics
    /// Panics on non-finite or negative thresholds (same contract as
    /// [`crate::OpeningWindow::new`]).
    pub fn new(criterion: Criterion, strategy: BreakStrategy) -> Self {
        // Reuse the batch constructor's validation.
        let _ = crate::opening_window::OpeningWindow::new(criterion, strategy);
        OwStream {
            criterion,
            strategy,
            window: Vec::new(),
            checked: 2,
            max_window: None,
            core: StreamCore::new(),
        }
    }

    /// OPW-TR stream (synchronized distance, break at the violation).
    pub fn opw_tr(epsilon: f64) -> Self {
        OwStream::new(Criterion::TimeRatio { epsilon }, BreakStrategy::Normal)
    }

    /// OPW-SP stream (synchronized distance + derived speed difference).
    pub fn opw_sp(epsilon: f64, speed_epsilon: f64) -> Self {
        OwStream::new(
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon },
            BreakStrategy::Normal,
        )
    }

    /// Bounds the open window to `max` fixes. Once the buffer holds `max`
    /// fixes a cut is forced just before the float, bounding memory at
    /// the cost of compression. Values below 3 are clamped to 3 (anchor,
    /// one intermediate, float).
    ///
    /// ```
    /// use traj_compress::streaming::{OwStream, StreamingCompressor};
    /// use traj_model::Fix;
    ///
    /// // Straight constant-speed data never violates the threshold, so
    /// // an unbounded window would buffer every fix; the valve caps it.
    /// let mut stream = OwStream::opw_tr(100.0).with_max_window(16);
    /// let mut peak = 0;
    /// for i in 0..10_000 {
    ///     stream.push(Fix::from_parts(i as f64, i as f64 * 10.0, 0.0))?;
    ///     peak = peak.max(stream.window_len());
    /// }
    /// assert!(peak <= 16, "memory stayed bounded, window peaked at {peak}");
    /// # Ok::<(), traj_model::ModelError>(())
    /// ```
    #[must_use]
    pub fn with_max_window(mut self, max: usize) -> Self {
        self.max_window = Some(max.max(3));
        self
    }

    /// Number of fixes currently buffered.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The freshest buffered fix (the current float), if any.
    pub fn last_buffered(&self) -> Option<Fix> {
        self.window.last().copied()
    }

    /// Re-establishes the invariant that every float position in the
    /// current window has been checked against the current anchor,
    /// cutting (possibly repeatedly) on violations — the exact loop
    /// structure of the batch algorithm.
    fn advance(&mut self, emitted: &mut Vec<Fix>) {
        let mut e = self.checked.max(2);
        while e < self.window.len() {
            match self.first_violation(e) {
                Some(i) => {
                    // Scanned window indices 1..=i against float `e`.
                    self.core.run.sed_evals(i as u64);
                    self.core.run.window_closed();
                    self.core.run.window_opened();
                    let cut = match self.strategy {
                        BreakStrategy::Normal => i,
                        BreakStrategy::BeforeFloat => e - 1,
                    };
                    debug_assert!(cut > 0);
                    emitted.push(self.window[cut]);
                    self.window.drain(..cut);
                    e = 2;
                }
                None => {
                    self.core.run.sed_evals(e.saturating_sub(1) as u64);
                    e += 1;
                }
            }
        }
        self.checked = e;
    }

    /// First intermediate (window-relative) index violating the criterion
    /// for float `e` — the shared [`SegmentCriterion`] scan with the
    /// buffered window as the slice and the anchor at relative index 0.
    /// (For the speed criterion, `i + 1 <= e` keeps both derived-speed
    /// neighbours inside the window.)
    fn first_violation(&self, e: usize) -> Option<usize> {
        self.criterion.first_violation(&self.window, 0, e)
    }
}

impl StreamingCompressor for OwStream {
    fn family(&self) -> &'static str {
        match (self.criterion, self.strategy) {
            (Criterion::Perpendicular { .. }, BreakStrategy::Normal) => "stream-nopw",
            (Criterion::Perpendicular { .. }, BreakStrategy::BeforeFloat) => "stream-bopw",
            (Criterion::TimeRatio { .. }, BreakStrategy::Normal) => "stream-opw-tr",
            (Criterion::TimeRatio { .. }, BreakStrategy::BeforeFloat) => "stream-bopw-tr",
            (Criterion::TimeRatioSpeed { .. }, BreakStrategy::Normal) => "stream-opw-sp",
            (Criterion::TimeRatioSpeed { .. }, BreakStrategy::BeforeFloat) => "stream-bopw-sp",
        }
    }

    fn core(&self) -> &StreamCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut StreamCore {
        &mut self.core
    }

    fn step(&mut self, fix: Fix, out: &mut Vec<Fix>) {
        if self.window.is_empty() {
            // The very first fix is the initial anchor and is always kept.
            self.window.push(fix);
            self.checked = 2;
            self.core.run.window_opened();
            out.push(fix);
            return;
        }
        self.window.push(fix);
        self.advance(out);
        if let Some(max) = self.max_window {
            if self.window.len() >= max {
                // Forced cut just before the float: the window up to
                // len-2 was fully validated, so this keeps a point known
                // to represent everything before it.
                let cut = self.window.len() - 2;
                if cut > 0 {
                    self.core.run.forced_cut();
                    self.core.run.window_closed();
                    self.core.run.window_opened();
                    out.push(self.window[cut]);
                    self.window.drain(..cut);
                    self.checked = 2;
                    self.advance(out);
                }
            }
        }
    }

    /// The final fix (if any besides the anchor) is committed, mirroring
    /// the batch algorithm's always-keep-the-last countermeasure.
    fn drain(&mut self, out: &mut Vec<Fix>) {
        if self.window.len() >= 2 {
            if let Some(last) = self.window.last() {
                self.core.run.window_closed();
                out.push(*last);
            }
        }
        self.window.clear();
    }
}

/// The one-pass region state: a rectangle for the fit variant, the
/// owned polygon buffers for the cone variant.
#[derive(Debug, Clone)]
enum StreamRegion {
    Fit(FitRegion),
    Cone { dirs: Vec<(f64, f64)>, off: Vec<f64>, apothem: f64 },
}

/// Incremental one-pass SED simplifier — the streaming form of
/// [`crate::OnePassFit`] / [`crate::OnePassCone`].
///
/// Unlike [`OwStream`] this buffers *no window at all*: the state is the
/// current anchor, the previous fix, and the O(1)/O(m) fitting region,
/// so memory is constant regardless of how compressible the input is.
/// Fed fix-by-fix, it emits exactly the fixes the batch kernel keeps
/// (both run the same [`crate::one_pass`] step function; pinned by
/// proptests).
///
/// ```
/// use traj_compress::streaming::{OnePassStream, StreamingCompressor};
/// use traj_compress::{Compressor, OnePassFit};
/// use traj_model::{Fix, Trajectory};
///
/// let traj = Trajectory::from_triples((0..200).map(|i| {
///     let t = f64::from(i) * 5.0;
///     (t, t * 11.0, f64::from(i % 9) * 6.0)
/// })).unwrap();
///
/// let mut stream = OnePassStream::fit(25.0);
/// let mut kept = Vec::new();
/// for fix in traj.fixes() {
///     kept.extend(stream.push(*fix).unwrap());
/// }
/// kept.extend(stream.finish());
///
/// let batch = OnePassFit::new(25.0).compress(&traj);
/// let batch_fixes: Vec<Fix> = batch.kept().iter().map(|&i| traj.fixes()[i]).collect();
/// assert_eq!(kept, batch_fixes);
/// ```
#[derive(Debug, Clone)]
pub struct OnePassStream {
    epsilon: f64,
    region: StreamRegion,
    /// `(anchor, prev)` of the open segment; `None` before the first fix.
    state: Option<(Fix, Fix)>,
    /// Shared streaming bookkeeping.
    core: StreamCore,
}

impl OnePassStream {
    /// OP-FIT stream (rectangular fitting region) with a strict SED
    /// bound of `epsilon` metres.
    ///
    /// # Panics
    /// Panics on non-finite or negative `epsilon`.
    pub fn fit(epsilon: f64) -> Self {
        crate::one_pass::validate_epsilon(epsilon);
        OnePassStream {
            epsilon,
            region: StreamRegion::Fit(FitRegion::new()),
            state: None,
            core: StreamCore::new(),
        }
    }

    /// OP-CONE stream with the default
    /// [`crate::one_pass::CONE_DIRECTIONS`] polygon directions.
    ///
    /// # Panics
    /// Panics on non-finite or negative `epsilon`.
    pub fn cone(epsilon: f64) -> Self {
        OnePassStream::cone_with(epsilon, crate::one_pass::CONE_DIRECTIONS)
    }

    /// OP-CONE stream with `m` polygon directions (clamped to `4..=64`,
    /// matching [`crate::OnePassCone::with_directions`]).
    ///
    /// # Panics
    /// Panics on non-finite or negative `epsilon`.
    pub fn cone_with(epsilon: f64, m: usize) -> Self {
        crate::one_pass::validate_epsilon(epsilon);
        let m = m.clamp(4, 64);
        let mut dirs = Vec::new();
        cone_directions(m, &mut dirs);
        OnePassStream {
            epsilon,
            region: StreamRegion::Cone {
                dirs,
                off: vec![f64::INFINITY; m],
                apothem: cone_apothem(m),
            },
            state: None,
            core: StreamCore::new(),
        }
    }

    /// The declared SED bound, metres.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl StreamingCompressor for OnePassStream {
    fn family(&self) -> &'static str {
        match self.region {
            StreamRegion::Fit(_) => "stream-op-fit",
            StreamRegion::Cone { .. } => "stream-op-cone",
        }
    }

    fn core(&self) -> &StreamCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut StreamCore {
        &mut self.core
    }

    fn step(&mut self, fix: Fix, out: &mut Vec<Fix>) {
        let Some((anchor, prev)) = self.state.as_mut() else {
            // The very first fix is the initial anchor and is always kept.
            self.state = Some((fix, fix));
            out.push(fix);
            return;
        };
        self.core.run.sed_evals(1);
        self.core.run.op_check();
        let closed = match &mut self.region {
            StreamRegion::Fit(r) => one_pass_step(r, self.epsilon, anchor, prev, fix),
            StreamRegion::Cone { dirs, off, apothem } => {
                let mut r = ConeRegion { dirs, off, apothem: *apothem };
                one_pass_step(&mut r, self.epsilon, anchor, prev, fix)
            }
        };
        if closed {
            // The segment closed at the previous fix, which became the
            // new anchor — commit it. The batch kernel keeps the same
            // index (`j - 1`).
            self.core.run.op_close();
            out.push(*anchor);
        }
    }

    /// Commits the final fix, mirroring the batch kernel's
    /// always-keep-the-last countermeasure. A step never emits the
    /// newest fix (closes commit the *previous* one), so this cannot
    /// duplicate — except for a single-fix stream, whose only fix was
    /// already emitted as the anchor.
    fn drain(&mut self, out: &mut Vec<Fix>) {
        if self.core.pushed >= 2 {
            if let Some((_, prev)) = self.state.take() {
                out.push(prev);
            }
        }
        self.state = None;
        match &mut self.region {
            StreamRegion::Fit(r) => r.reset(),
            StreamRegion::Cone { dirs, off, apothem } => {
                let mut r = ConeRegion { dirs, off, apothem: *apothem };
                r.reset();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opening_window::OpeningWindow;
    use crate::result::Compressor;
    use crate::{OnePassCone, OnePassFit};
    use traj_model::Trajectory;

    fn car_like() -> Trajectory {
        let mut triples = Vec::new();
        let mut t = 0.0;
        let (mut x, mut y) = (0.0, 0.0);
        for leg in 0..6 {
            let (dx, dy) = match leg % 4 {
                0 => (110.0, 3.0),
                1 => (5.0, 90.0),
                2 => (-80.0, 10.0),
                _ => (2.0, -60.0),
            };
            for _ in 0..7 {
                triples.push((t, x, y));
                t += 10.0;
                x += dx;
                y += dy;
            }
        }
        triples.push((t, x, y));
        Trajectory::from_triples(triples).unwrap()
    }

    fn run_stream<S: StreamingCompressor>(mut s: S, traj: &Trajectory) -> Vec<Fix> {
        let mut out = Vec::new();
        for f in traj.fixes() {
            out.extend(s.push(*f).unwrap());
        }
        out.extend(s.finish());
        out
    }

    fn kept_fixes(traj: &Trajectory, c: &dyn Compressor) -> Vec<Fix> {
        c.compress(traj).kept().iter().map(|&i| traj.fixes()[i]).collect()
    }

    #[test]
    fn stream_equals_batch_for_all_criteria() {
        let t = car_like();
        let cases = [
            (Criterion::Perpendicular { epsilon: 30.0 }, BreakStrategy::Normal),
            (Criterion::Perpendicular { epsilon: 30.0 }, BreakStrategy::BeforeFloat),
            (Criterion::TimeRatio { epsilon: 30.0 }, BreakStrategy::Normal),
            (Criterion::TimeRatio { epsilon: 60.0 }, BreakStrategy::BeforeFloat),
            (
                Criterion::TimeRatioSpeed { epsilon: 30.0, speed_epsilon: 5.0 },
                BreakStrategy::Normal,
            ),
        ];
        for (criterion, strategy) in cases {
            let batch = kept_fixes(&t, &OpeningWindow::new(criterion, strategy));
            let streamed = run_stream(OwStream::new(criterion, strategy), &t);
            assert_eq!(streamed, batch, "criterion {criterion:?} {strategy:?}");
        }
    }

    #[test]
    fn one_pass_stream_equals_batch() {
        let t = car_like();
        for eps in [5.0, 30.0, 120.0] {
            assert_eq!(
                run_stream(OnePassStream::fit(eps), &t),
                kept_fixes(&t, &OnePassFit::new(eps)),
                "fit eps {eps}"
            );
            assert_eq!(
                run_stream(OnePassStream::cone(eps), &t),
                kept_fixes(&t, &OnePassCone::new(eps)),
                "cone eps {eps}"
            );
            assert_eq!(
                run_stream(OnePassStream::cone_with(eps, 8), &t),
                kept_fixes(&t, &OnePassCone::with_directions(eps, 8)),
                "cone-8 eps {eps}"
            );
        }
    }

    #[test]
    fn first_fix_emitted_immediately() {
        let f0 = Fix::from_parts(0.0, 1.0, 2.0);
        let mut ow = OwStream::opw_tr(10.0);
        assert_eq!(ow.push(f0).unwrap(), vec![f0]);
        let mut op = OnePassStream::fit(10.0);
        assert_eq!(op.push(f0).unwrap(), vec![f0]);
    }

    #[test]
    fn rejects_nonmonotonic_and_nonfinite_input() {
        let mut s = OwStream::opw_tr(10.0);
        s.push(Fix::from_parts(10.0, 0.0, 0.0)).unwrap();
        assert!(matches!(
            s.push(Fix::from_parts(10.0, 1.0, 0.0)),
            Err(ModelError::NonMonotonicTime { index: 1 })
        ));
        assert!(matches!(
            s.push(Fix::from_parts(f64::NAN, 1.0, 0.0)),
            Err(ModelError::NonFinite { .. })
        ));
        // Stream still usable after a rejected fix.
        assert!(s.push(Fix::from_parts(20.0, 1.0, 0.0)).is_ok());
    }

    #[test]
    fn one_pass_rejects_duplicate_timestamps() {
        let mut s = OnePassStream::cone(10.0);
        s.push(Fix::from_parts(5.0, 0.0, 0.0)).unwrap();
        assert!(matches!(
            s.push(Fix::from_parts(5.0, 1.0, 0.0)),
            Err(ModelError::NonMonotonicTime { index: 1 })
        ));
        assert!(matches!(
            s.push(Fix::from_parts(4.0, 1.0, 0.0)),
            Err(ModelError::NonMonotonicTime { index: 1 })
        ));
        assert!(s.push(Fix::from_parts(6.0, 1.0, 0.0)).is_ok());
        assert_eq!(s.pushed(), 2);
    }

    #[test]
    fn finish_emits_final_point() {
        let t = car_like();
        for streamed in [
            run_stream(OwStream::opw_tr(50.0), &t),
            run_stream(OnePassStream::fit(50.0), &t),
            run_stream(OnePassStream::cone(50.0), &t),
        ] {
            assert_eq!(streamed.last().unwrap(), t.last());
        }
    }

    #[test]
    fn single_fix_stream_finish_is_empty() {
        let mut s = OwStream::opw_tr(10.0);
        assert_eq!(s.push(Fix::from_parts(0.0, 0.0, 0.0)).unwrap().len(), 1);
        assert!(s.finish().is_empty(), "anchor already emitted");
        let mut s = OnePassStream::fit(10.0);
        assert_eq!(s.push(Fix::from_parts(0.0, 0.0, 0.0)).unwrap().len(), 1);
        assert!(s.finish().is_empty(), "anchor already emitted");
    }

    #[test]
    fn empty_stream_finish_is_empty() {
        assert!(OwStream::opw_tr(10.0).finish().is_empty());
        assert!(OnePassStream::fit(10.0).finish().is_empty());
        assert!(OnePassStream::cone(10.0).finish().is_empty());
    }

    #[test]
    fn max_window_bounds_memory() {
        // Perfectly straight constant-speed data would grow the window
        // forever; the valve must cap it.
        let mut s = OwStream::opw_tr(100.0).with_max_window(16);
        let mut max_seen = 0usize;
        for i in 0..10_000 {
            s.push(Fix::from_parts(i as f64, i as f64 * 10.0, 0.0)).unwrap();
            max_seen = max_seen.max(s.window_len());
        }
        assert!(max_seen <= 16, "window grew to {max_seen}");
    }

    #[test]
    fn max_window_output_still_within_threshold() {
        let t = car_like();
        let eps = 30.0;
        let mut s = OwStream::opw_tr(eps).with_max_window(8);
        let mut kept = Vec::new();
        for f in t.fixes() {
            kept.extend(s.push(*f).unwrap());
        }
        kept.extend(s.finish());
        // The kept subsequence must still satisfy the per-segment SED
        // bound for all dropped points.
        let mut ki = 0usize;
        let fixes = t.fixes();
        let kept_idx: Vec<usize> = fixes
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                if ki < kept.len() && kept[ki] == **f {
                    ki += 1;
                    true
                } else {
                    false
                }
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(kept_idx.len(), kept.len(), "kept fixes are a subsequence");
        for w in kept_idx.windows(2) {
            for i in w[0] + 1..w[1] {
                let d = crate::distance::sed(&fixes[w[0]], &fixes[w[1]], &fixes[i]);
                assert!(d <= eps + 1e-9, "point {i} deviates {d}");
            }
        }
    }

    #[test]
    fn pushed_counts_accepted_fixes() {
        let mut s = OwStream::opw_tr(10.0);
        s.push(Fix::from_parts(0.0, 0.0, 0.0)).unwrap();
        s.push(Fix::from_parts(1.0, 1.0, 0.0)).unwrap();
        let _ = s.push(Fix::from_parts(0.5, 2.0, 0.0)); // rejected
        assert_eq!(s.pushed(), 2);
    }

    #[test]
    fn one_pass_stream_emits_within_bound() {
        let t = car_like();
        let eps = 40.0;
        for kept in [
            run_stream(OnePassStream::fit(eps), &t),
            run_stream(OnePassStream::cone(eps), &t),
        ] {
            let fixes = t.fixes();
            for w in kept.windows(2) {
                let (a, b) = (&w[0], &w[1]);
                for f in fixes.iter().filter(|f| a.t < f.t && f.t < b.t) {
                    let d = crate::distance::sed(a, b, f);
                    assert!(d <= eps + 1e-9, "deviation {d}");
                }
            }
        }
    }
}
