//! Online (streaming) opening-window compression.
//!
//! The paper stresses that opening-window algorithms "are online
//! algorithms … typically used to compress data streams in real-time"
//! (§2). [`OwStream`] is the incremental form of
//! [`crate::OpeningWindow`]: fixes are pushed one at a time as a
//! positioning device reports them, and the kept fixes are emitted as
//! soon as they are decided. Feeding a whole trajectory through a stream
//! produces *exactly* the same kept points as the batch compressor with
//! the same criterion and strategy (asserted by equivalence tests).
//!
//! Memory: the stream buffers the currently open window. On highly
//! compressible input the window can grow without bound — the price of
//! the OW family's look-back — so a `max_window` safety valve can force a
//! cut just before the float once the buffer reaches a limit, trading a
//! little compression for bounded memory (used by `traj-store`'s ingest
//! path).

use crate::criterion::SegmentCriterion;
use crate::obs::AlgoRun;
use crate::opening_window::{BreakStrategy, Criterion};
use traj_model::{Fix, ModelError};

/// Incremental opening-window compressor.
///
/// ```
/// use traj_compress::streaming::OwStream;
/// use traj_compress::{BreakStrategy, Criterion};
/// use traj_model::Fix;
///
/// let mut stream = OwStream::new(
///     Criterion::TimeRatio { epsilon: 30.0 },
///     BreakStrategy::Normal,
/// );
/// let mut kept = Vec::new();
/// for i in 0..100 {
///     let fix = Fix::from_parts(i as f64 * 10.0, i as f64 * 120.0, 0.0);
///     kept.extend(stream.push(fix).unwrap());
/// }
/// kept.extend(stream.finish());
/// // A straight, constant-speed run compresses to its endpoints.
/// assert_eq!(kept.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct OwStream {
    criterion: Criterion,
    strategy: BreakStrategy,
    /// Open window; `window[0]` is the current anchor (already emitted).
    window: Vec<Fix>,
    /// Next float index (relative to `window`) that still needs checking.
    checked: usize,
    /// Optional bound on the open window's length.
    max_window: Option<usize>,
    /// Total number of accepted fixes (for error reporting).
    pushed: usize,
    /// Total number of fixes committed so far.
    emitted: usize,
    /// Metric accumulator, flushed by [`OwStream::finish`].
    run: AlgoRun,
}

impl OwStream {
    /// Creates a stream with the given discarding criterion and break
    /// strategy.
    ///
    /// # Panics
    /// Panics on non-finite or negative thresholds (same contract as
    /// [`crate::OpeningWindow::new`]).
    pub fn new(criterion: Criterion, strategy: BreakStrategy) -> Self {
        // Reuse the batch constructor's validation.
        let _ = crate::opening_window::OpeningWindow::new(criterion, strategy);
        OwStream {
            criterion,
            strategy,
            window: Vec::new(),
            checked: 2,
            max_window: None,
            pushed: 0,
            emitted: 0,
            run: AlgoRun::new(),
        }
    }

    /// Static algorithm-family label for stream metrics: the batch family
    /// name with a `stream-` prefix, so online and batch runs stay
    /// distinguishable in reports.
    fn family(&self) -> &'static str {
        match (self.criterion, self.strategy) {
            (Criterion::Perpendicular { .. }, BreakStrategy::Normal) => "stream-nopw",
            (Criterion::Perpendicular { .. }, BreakStrategy::BeforeFloat) => "stream-bopw",
            (Criterion::TimeRatio { .. }, BreakStrategy::Normal) => "stream-opw-tr",
            (Criterion::TimeRatio { .. }, BreakStrategy::BeforeFloat) => "stream-bopw-tr",
            (Criterion::TimeRatioSpeed { .. }, BreakStrategy::Normal) => "stream-opw-sp",
            (Criterion::TimeRatioSpeed { .. }, BreakStrategy::BeforeFloat) => "stream-bopw-sp",
        }
    }

    /// OPW-TR stream (synchronized distance, break at the violation).
    pub fn opw_tr(epsilon: f64) -> Self {
        OwStream::new(Criterion::TimeRatio { epsilon }, BreakStrategy::Normal)
    }

    /// OPW-SP stream (synchronized distance + derived speed difference).
    pub fn opw_sp(epsilon: f64, speed_epsilon: f64) -> Self {
        OwStream::new(
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon },
            BreakStrategy::Normal,
        )
    }

    /// Bounds the open window to `max` fixes. Once the buffer holds `max`
    /// fixes a cut is forced just before the float, bounding memory at
    /// the cost of compression. Values below 3 are clamped to 3 (anchor,
    /// one intermediate, float).
    ///
    /// ```
    /// use traj_compress::streaming::OwStream;
    /// use traj_model::Fix;
    ///
    /// // Straight constant-speed data never violates the threshold, so
    /// // an unbounded window would buffer every fix; the valve caps it.
    /// let mut stream = OwStream::opw_tr(100.0).with_max_window(16);
    /// let mut peak = 0;
    /// for i in 0..10_000 {
    ///     stream.push(Fix::from_parts(i as f64, i as f64 * 10.0, 0.0))?;
    ///     peak = peak.max(stream.window_len());
    /// }
    /// assert!(peak <= 16, "memory stayed bounded, window peaked at {peak}");
    /// # Ok::<(), traj_model::ModelError>(())
    /// ```
    #[must_use]
    pub fn with_max_window(mut self, max: usize) -> Self {
        self.max_window = Some(max.max(3));
        self
    }

    /// Number of fixes currently buffered.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The freshest buffered fix (the current float), if any.
    pub fn last_buffered(&self) -> Option<Fix> {
        self.window.last().copied()
    }

    /// Number of fixes accepted so far.
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Feeds the next fix; returns the fixes *committed* (kept) by this
    /// push, in order.
    ///
    /// # Errors
    /// [`ModelError::NonFinite`] for NaN/∞ input and
    /// [`ModelError::NonMonotonicTime`] when `fix.t` is not strictly
    /// later than the previous fix (the index reported is the running
    /// input position).
    pub fn push(&mut self, fix: Fix) -> Result<Vec<Fix>, ModelError> {
        if !fix.is_finite() {
            return Err(ModelError::NonFinite { index: self.pushed });
        }
        if let Some(last) = self.window.last() {
            // `fix` is already known finite, so >= is a total comparison.
            if last.t >= fix.t {
                return Err(ModelError::NonMonotonicTime { index: self.pushed });
            }
        }
        self.pushed += 1;
        let mut emitted = Vec::new();
        if self.window.is_empty() {
            // The very first fix is the initial anchor and is always kept.
            self.window.push(fix);
            self.checked = 2;
            self.run.window_opened();
            emitted.push(fix);
            self.emitted += 1;
            return Ok(emitted);
        }
        self.window.push(fix);
        self.advance(&mut emitted);
        if let Some(max) = self.max_window {
            if self.window.len() >= max {
                // Forced cut just before the float: the window up to
                // len-2 was fully validated, so this keeps a point known
                // to represent everything before it.
                let cut = self.window.len() - 2;
                if cut > 0 {
                    self.run.forced_cut();
                    self.run.window_closed();
                    self.run.window_opened();
                    emitted.push(self.window[cut]);
                    self.window.drain(..cut);
                    self.checked = 2;
                    self.advance(&mut emitted);
                }
            }
        }
        self.emitted += emitted.len();
        Ok(emitted)
    }

    /// Re-establishes the invariant that every float position in the
    /// current window has been checked against the current anchor,
    /// cutting (possibly repeatedly) on violations — the exact loop
    /// structure of the batch algorithm.
    fn advance(&mut self, emitted: &mut Vec<Fix>) {
        let mut e = self.checked.max(2);
        while e < self.window.len() {
            match self.first_violation(e) {
                Some(i) => {
                    // Scanned window indices 1..=i against float `e`.
                    self.run.sed_evals(i as u64);
                    self.run.window_closed();
                    self.run.window_opened();
                    let cut = match self.strategy {
                        BreakStrategy::Normal => i,
                        BreakStrategy::BeforeFloat => e - 1,
                    };
                    debug_assert!(cut > 0);
                    emitted.push(self.window[cut]);
                    self.window.drain(..cut);
                    e = 2;
                }
                None => {
                    self.run.sed_evals(e.saturating_sub(1) as u64);
                    e += 1;
                }
            }
        }
        self.checked = e;
    }

    /// First intermediate (window-relative) index violating the criterion
    /// for float `e` — the shared [`SegmentCriterion`] scan with the
    /// buffered window as the slice and the anchor at relative index 0.
    /// (For the speed criterion, `i + 1 <= e` keeps both derived-speed
    /// neighbours inside the window.)
    fn first_violation(&self, e: usize) -> Option<usize> {
        self.criterion.first_violation(&self.window, 0, e)
    }

    /// Flushes the stream: the final fix (if any besides the anchor) is
    /// committed, mirroring the batch algorithm's always-keep-the-last
    /// countermeasure. Returns the remaining kept fixes.
    ///
    /// This also publishes the stream's accumulated metrics (criterion
    /// evaluations, windows, forced cuts) to the `traj-obs` registry;
    /// a stream dropped without `finish` reports nothing.
    pub fn finish(mut self) -> Vec<Fix> {
        let out = match self.window.last() {
            Some(last) if self.window.len() >= 2 => {
                self.run.window_closed();
                vec![*last]
            }
            _ => Vec::new(),
        };
        self.emitted += out.len();
        self.run.flush(self.family(), self.pushed, self.emitted);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opening_window::OpeningWindow;
    use crate::result::Compressor;
    use traj_model::Trajectory;

    fn car_like() -> Trajectory {
        let mut triples = Vec::new();
        let mut t = 0.0;
        let (mut x, mut y) = (0.0, 0.0);
        for leg in 0..6 {
            let (dx, dy) = match leg % 4 {
                0 => (110.0, 3.0),
                1 => (5.0, 90.0),
                2 => (-80.0, 10.0),
                _ => (2.0, -60.0),
            };
            for _ in 0..7 {
                triples.push((t, x, y));
                t += 10.0;
                x += dx;
                y += dy;
            }
        }
        triples.push((t, x, y));
        Trajectory::from_triples(triples).unwrap()
    }

    fn run_stream(mut s: OwStream, traj: &Trajectory) -> Vec<Fix> {
        let mut out = Vec::new();
        for f in traj.fixes() {
            out.extend(s.push(*f).unwrap());
        }
        out.extend(s.finish());
        out
    }

    #[test]
    fn stream_equals_batch_for_all_criteria() {
        let t = car_like();
        let cases = [
            (Criterion::Perpendicular { epsilon: 30.0 }, BreakStrategy::Normal),
            (Criterion::Perpendicular { epsilon: 30.0 }, BreakStrategy::BeforeFloat),
            (Criterion::TimeRatio { epsilon: 30.0 }, BreakStrategy::Normal),
            (Criterion::TimeRatio { epsilon: 60.0 }, BreakStrategy::BeforeFloat),
            (
                Criterion::TimeRatioSpeed { epsilon: 30.0, speed_epsilon: 5.0 },
                BreakStrategy::Normal,
            ),
        ];
        for (criterion, strategy) in cases {
            let batch = OpeningWindow::new(criterion, strategy).compress(&t);
            let batch_fixes: Vec<Fix> =
                batch.kept().iter().map(|&i| t.fixes()[i]).collect();
            let streamed = run_stream(OwStream::new(criterion, strategy), &t);
            assert_eq!(streamed, batch_fixes, "criterion {criterion:?} {strategy:?}");
        }
    }

    #[test]
    fn first_fix_emitted_immediately() {
        let mut s = OwStream::opw_tr(10.0);
        let f0 = Fix::from_parts(0.0, 1.0, 2.0);
        assert_eq!(s.push(f0).unwrap(), vec![f0]);
    }

    #[test]
    fn rejects_nonmonotonic_and_nonfinite_input() {
        let mut s = OwStream::opw_tr(10.0);
        s.push(Fix::from_parts(10.0, 0.0, 0.0)).unwrap();
        assert!(matches!(
            s.push(Fix::from_parts(10.0, 1.0, 0.0)),
            Err(ModelError::NonMonotonicTime { index: 1 })
        ));
        assert!(matches!(
            s.push(Fix::from_parts(f64::NAN, 1.0, 0.0)),
            Err(ModelError::NonFinite { .. })
        ));
        // Stream still usable after a rejected fix.
        assert!(s.push(Fix::from_parts(20.0, 1.0, 0.0)).is_ok());
    }

    #[test]
    fn finish_emits_final_point() {
        let t = car_like();
        let streamed = run_stream(OwStream::opw_tr(50.0), &t);
        assert_eq!(streamed.last().unwrap(), t.last());
    }

    #[test]
    fn single_fix_stream_finish_is_empty() {
        let mut s = OwStream::opw_tr(10.0);
        let out = s.push(Fix::from_parts(0.0, 0.0, 0.0)).unwrap();
        assert_eq!(out.len(), 1);
        assert!(s.finish().is_empty(), "anchor already emitted");
    }

    #[test]
    fn max_window_bounds_memory() {
        // Perfectly straight constant-speed data would grow the window
        // forever; the valve must cap it.
        let mut s = OwStream::opw_tr(100.0).with_max_window(16);
        let mut max_seen = 0usize;
        for i in 0..10_000 {
            s.push(Fix::from_parts(i as f64, i as f64 * 10.0, 0.0)).unwrap();
            max_seen = max_seen.max(s.window_len());
        }
        assert!(max_seen <= 16, "window grew to {max_seen}");
    }

    #[test]
    fn max_window_output_still_within_threshold() {
        let t = car_like();
        let eps = 30.0;
        let mut s = OwStream::opw_tr(eps).with_max_window(8);
        let mut kept = Vec::new();
        for f in t.fixes() {
            kept.extend(s.push(*f).unwrap());
        }
        kept.extend(s.finish());
        // The kept subsequence must still satisfy the per-segment SED
        // bound for all dropped points.
        let mut ki = 0usize;
        let fixes = t.fixes();
        let kept_idx: Vec<usize> = fixes
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                if ki < kept.len() && kept[ki] == **f {
                    ki += 1;
                    true
                } else {
                    false
                }
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(kept_idx.len(), kept.len(), "kept fixes are a subsequence");
        for w in kept_idx.windows(2) {
            for i in w[0] + 1..w[1] {
                let d = crate::distance::sed(&fixes[w[0]], &fixes[w[1]], &fixes[i]);
                assert!(d <= eps + 1e-9, "point {i} deviates {d}");
            }
        }
    }

    #[test]
    fn pushed_counts_accepted_fixes() {
        let mut s = OwStream::opw_tr(10.0);
        s.push(Fix::from_parts(0.0, 0.0, 0.0)).unwrap();
        s.push(Fix::from_parts(1.0, 1.0, 0.0)).unwrap();
        let _ = s.push(Fix::from_parts(0.5, 2.0, 0.0)); // rejected
        assert_eq!(s.pushed(), 2);
    }
}
