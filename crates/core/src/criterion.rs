//! The unified discarding-criterion layer.
//!
//! Every compressor in this crate answers the same two questions about a
//! candidate approximation segment `anchor → float`:
//!
//! 1. **Violation** — does intermediate point `i` deviate beyond the
//!    configured threshold(s)? (The opening-window, sliding-window and
//!    streaming families stop growing a segment on the first violation.)
//! 2. **Split ranking** — *how badly* does point `i` deviate, on a scale
//!    where exceeding [`SegmentCriterion::split_threshold`] means the
//!    point must be kept? (The top-down and bottom-up families pick the
//!    worst-ranked point.)
//!
//! [`SegmentCriterion`] captures both; the three implementations —
//! [`Perpendicular`], [`TimeRatio`] and [`TimeRatioSpeed`] — cover the
//! paper's whole algorithm matrix (§2 line-generalization baselines, §3.2
//! time-ratio, §3.3 spatiotemporal). The [`Criterion`] enum is the
//! value-level form carried by compressor structs and dispatches to the
//! same implementations, so there is exactly one copy of each distance
//! decision in the crate.
//!
//! All methods take a *slice* of fixes with indices relative to that
//! slice: batch compressors pass the full trajectory, while
//! [`crate::streaming::OwStream`] passes its buffered window — the
//! decisions are identical because a window always contains the anchor
//! and the scanned point's immediate neighbours.

use crate::distance::{perpendicular_distance, sed};
use traj_geom::numeric::approx_zero;
use traj_geom::soa::{perp_dists_into, sed_dists_into};
use traj_geom::TrajView;
use traj_model::Fix;

/// Distance values staged per batch by the `scan_segment` family: small
/// enough to live on the stack (no allocation on the hot path), large
/// enough for the batched kernels in `traj-geom` to vectorize.
const SCAN_CHUNK: usize = 64;

/// Result of a batched [`SegmentCriterion::scan_segment`] over the
/// interior points `lo+1 .. hi` of one candidate segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitDecision {
    /// First interior index attaining the maximum split value — the
    /// farthest-point selection of the top-down kernels (`lo + 1` when
    /// the segment has no interior points).
    pub split: usize,
    /// The maximum split value, in [`SegmentCriterion::split_threshold`]
    /// units (`f64::NEG_INFINITY` when the segment has no interior).
    pub value: f64,
    /// First interior index violating the criterion, if any — the
    /// window families' stop condition.
    pub first_violation: Option<usize>,
}

/// Absolute derived-speed difference `‖vᵢ − vᵢ₋₁‖` at slice index `i`
/// (paper §3.3), or `None` when `i` has no two adjacent segments.
#[inline]
pub(crate) fn speed_difference_at(fixes: &[Fix], i: usize) -> Option<f64> {
    if i == 0 || i + 1 >= fixes.len() {
        return None;
    }
    let v_prev = fixes[i - 1].speed_to(&fixes[i])?;
    let v_next = fixes[i].speed_to(&fixes[i + 1])?;
    Some((v_next - v_prev).abs())
}

/// Columnar twin of [`speed_difference_at`], reading a [`TrajView`]
/// instead of fix structs. Same operation sequence (elapsed seconds,
/// point distance, quotient, absolute difference), hence the same bits.
#[inline]
pub(crate) fn speed_difference_view(v: TrajView<'_>, i: usize) -> Option<f64> {
    if i == 0 || i + 1 >= v.len() {
        return None;
    }
    let v_prev = speed_between(v, i - 1, i)?;
    let v_next = speed_between(v, i, i + 1)?;
    Some((v_next - v_prev).abs())
}

/// `Fix::speed_to` over columns: average speed from point `a` to `b`,
/// `None` on a zero (or NaN) time step.
#[inline]
fn speed_between(v: TrajView<'_>, a: usize, b: usize) -> Option<f64> {
    // Checked lookups: the callers pass in-bounds indices, so the `?`
    // never fires — it just keeps this kernel provably panic-free.
    let dt = *v.ts.get(b)? - *v.ts.get(a)?;
    if approx_zero(dt, 0.0) {
        return None;
    }
    let dx = *v.xs.get(a)? - *v.xs.get(b)?;
    let dy = *v.ys.get(a)? - *v.ys.get(b)?;
    Some((dx * dx + dy * dy).sqrt() / dt.abs())
}

/// The dimensionless [`TimeRatioSpeed`] blend for one interior point,
/// given its already-computed SED — the columnar twin of
/// `TimeRatioSpeed::split_value` past the distance lookup.
#[inline]
fn trs_blend(d: f64, dv: Option<f64>, epsilon: f64, speed_epsilon: f64) -> f64 {
    let ds = if epsilon > 0.0 {
        d / epsilon
    } else if d > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    let vs = dv.map(|x| x / speed_epsilon).unwrap_or(0.0);
    ds.max(vs)
}

/// Shared chunked scan for the single-distance criteria: stages up to
/// [`SCAN_CHUNK`] distances on the stack via `fill`, then reduces them
/// in index order — first strict argmax (seeded at `NEG_INFINITY`, the
/// top-down selection rule) and first value strictly above `eps` (the
/// window families' violation predicate, which for these criteria *is*
/// the distance comparison).
fn scan_dists(
    v: TrajView<'_>,
    lo: usize,
    hi: usize,
    eps: f64,
    fill: fn(TrajView<'_>, usize, usize, usize, &mut [f64]),
) -> SplitDecision {
    let mut best = (lo + 1, f64::NEG_INFINITY);
    let mut first_violation = None;
    let mut buf = [0.0f64; SCAN_CHUNK];
    let mut i = lo + 1;
    while i < hi {
        let len = SCAN_CHUNK.min(hi - i);
        // `len <= SCAN_CHUNK` by construction, so the checked reborrow
        // always succeeds; `get_mut` keeps the scan provably panic-free.
        let Some(chunk) = buf.get_mut(..len) else {
            break;
        };
        fill(v, lo, hi, i, chunk);
        // Branch-free chunk max first (lane-independent folds the
        // backend keeps in vector registers), then rescan the staged
        // chunk for an index only when it can actually contribute —
        // the common chunk costs no per-element branches at all.
        let m = chunk_max(chunk);
        if m > best.1 {
            // First in-chunk occurrence of the max == the index the
            // first-strict-argmax loop would have picked. NaN distances
            // never exceed `best.1`, exactly as in the scalar loop.
            let k = chunk.iter().position(|&d| d == m).unwrap_or(0);
            best = (i + k, m);
        }
        if first_violation.is_none() && m > eps {
            first_violation = chunk.iter().position(|&d| d > eps).map(|k| i + k);
        }
        i += len;
    }
    SplitDecision { split: best.0, value: best.1, first_violation }
}

/// Maximum of a staged distance chunk, NaN entries ignored (they can
/// never win a `>` comparison in the scalar loops either). Four
/// independent lane accumulators so the fold vectorizes without FP
/// reassociation; max is associative over the non-NaN reals, so the
/// lane-combine order cannot change the result.
#[inline]
fn chunk_max(chunk: &[f64]) -> f64 {
    let mut lanes = [f64::NEG_INFINITY; 4];
    for q in chunk.chunks_exact(4) {
        for (lane, &d) in lanes.iter_mut().zip(q) {
            if d > *lane {
                *lane = d;
            }
        }
    }
    let [l0, l1, l2, l3] = lanes;
    let mut m = l0.max(l1).max(l2.max(l3));
    for &d in chunk.iter().skip(chunk.len() - chunk.len() % 4) {
        if d > m {
            m = d;
        }
    }
    m
}

/// Early-exit twin of [`scan_dists`] for callers that only need the
/// first violation: stops at the first staged chunk containing one, so
/// a violation near the anchor costs at most one chunk of distances.
fn first_violation_dists(
    v: TrajView<'_>,
    anchor: usize,
    float: usize,
    eps: f64,
    fill: fn(TrajView<'_>, usize, usize, usize, &mut [f64]),
) -> Option<usize> {
    let mut buf = [0.0f64; SCAN_CHUNK];
    let mut i = anchor + 1;
    while i < float {
        let len = SCAN_CHUNK.min(float - i);
        // See `scan_dists`: `len <= SCAN_CHUNK`, so this never breaks.
        let Some(chunk) = buf.get_mut(..len) else {
            break;
        };
        fill(v, anchor, float, i, chunk);
        if chunk_max(chunk) > eps {
            return chunk.iter().position(|&d| d > eps).map(|k| i + k);
        }
        i += len;
    }
    None
}

/// A discarding criterion for one approximation segment.
///
/// Implementations decide whether intermediate points of a candidate
/// segment `fixes[anchor] → fixes[float]` are representable by that
/// segment. See the [module docs](self) for the two query families.
///
/// ```
/// use traj_compress::criterion::{SegmentCriterion, TimeRatio};
/// use traj_model::Fix;
///
/// // A straight constant-speed run: no point violates a 1 m SED budget.
/// let fixes: Vec<Fix> = (0..5)
///     .map(|i| Fix::from_parts(i as f64 * 10.0, i as f64 * 100.0, 0.0))
///     .collect();
/// let c = TimeRatio { epsilon: 1.0 };
/// assert_eq!(c.first_violation(&fixes, 0, 4), None);
/// assert!(c.split_value(&fixes, 0, 4, 2) <= c.split_threshold());
/// ```
pub trait SegmentCriterion {
    /// Report label fragment, e.g. `"tr,30m"`.
    fn label(&self) -> String;

    /// Whether intermediate point `i` of the window `anchor..float`
    /// violates the criterion.
    fn violates(&self, fixes: &[Fix], anchor: usize, float: usize, i: usize) -> bool;

    /// Split-ranking value of interior point `i` for the segment
    /// `lo → hi`: comparable across points, in the units fixed by
    /// [`SegmentCriterion::split_threshold`]. A value strictly above the
    /// threshold means the point violates.
    fn split_value(&self, fixes: &[Fix], lo: usize, hi: usize, i: usize) -> f64;

    /// The threshold [`SegmentCriterion::split_value`] is compared
    /// against (the distance epsilon for single-threshold criteria, `1`
    /// for the dimensionless blended score of [`TimeRatioSpeed`]).
    fn split_threshold(&self) -> f64;

    /// First intermediate index violating the criterion for the window
    /// `anchor..float`, scanning forward (the paper's inner loop order).
    #[inline]
    fn first_violation(&self, fixes: &[Fix], anchor: usize, float: usize) -> Option<usize> {
        (anchor + 1..float).find(|&i| self.violates(fixes, anchor, float, i))
    }

    /// Batched scan of every interior point of the segment `lo → hi`
    /// over trajectory columns: one call replaces the per-point
    /// [`SegmentCriterion::split_value`] /
    /// [`SegmentCriterion::violates`] loop of the scalar kernels, with
    /// the criterion dispatched **once per segment** instead of once per
    /// point and distances computed by the chunk-vectorized kernels in
    /// `traj_geom::soa`.
    ///
    /// The view must hold the same series the scalar methods would see
    /// as `fixes`; results are then bitwise identical to the scalar
    /// loop (pinned by the layout-equivalence proptests).
    fn scan_segment(&self, v: TrajView<'_>, lo: usize, hi: usize) -> SplitDecision;

    /// Columnar twin of [`SegmentCriterion::first_violation`]. The
    /// default derives it from [`SegmentCriterion::scan_segment`];
    /// implementations override with an early-exit scan so a violation
    /// near the anchor does not pay for the whole window.
    #[inline]
    fn first_violation_view(&self, v: TrajView<'_>, anchor: usize, float: usize) -> Option<usize> {
        self.scan_segment(v, anchor, float).first_violation
    }
}

/// Perpendicular distance to the anchor–float line — the classic
/// line-generalization criterion (paper §2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perpendicular {
    /// Distance threshold, metres.
    pub epsilon: f64,
}

impl SegmentCriterion for Perpendicular {
    fn label(&self) -> String {
        format!("perp,{}m", self.epsilon)
    }

    #[inline]
    fn violates(&self, fixes: &[Fix], anchor: usize, float: usize, i: usize) -> bool {
        debug_assert!(anchor < i && i < float);
        perpendicular_distance(&fixes[anchor], &fixes[float], &fixes[i]) > self.epsilon
    }

    #[inline]
    fn split_value(&self, fixes: &[Fix], lo: usize, hi: usize, i: usize) -> f64 {
        perpendicular_distance(&fixes[lo], &fixes[hi], &fixes[i])
    }

    #[inline]
    fn split_threshold(&self) -> f64 {
        self.epsilon
    }

    fn scan_segment(&self, v: TrajView<'_>, lo: usize, hi: usize) -> SplitDecision {
        scan_dists(v, lo, hi, self.epsilon, perp_dists_into)
    }

    fn first_violation_view(&self, v: TrajView<'_>, anchor: usize, float: usize) -> Option<usize> {
        first_violation_dists(v, anchor, float, self.epsilon, perp_dists_into)
    }
}

/// Synchronized (time-ratio) Euclidean distance — the spatiotemporal
/// criterion of §3.2, equations (1)–(2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeRatio {
    /// Distance threshold, metres.
    pub epsilon: f64,
}

impl SegmentCriterion for TimeRatio {
    fn label(&self) -> String {
        format!("tr,{}m", self.epsilon)
    }

    #[inline]
    fn violates(&self, fixes: &[Fix], anchor: usize, float: usize, i: usize) -> bool {
        debug_assert!(anchor < i && i < float);
        sed(&fixes[anchor], &fixes[float], &fixes[i]) > self.epsilon
    }

    #[inline]
    fn split_value(&self, fixes: &[Fix], lo: usize, hi: usize, i: usize) -> f64 {
        sed(&fixes[lo], &fixes[hi], &fixes[i])
    }

    #[inline]
    fn split_threshold(&self) -> f64 {
        self.epsilon
    }

    fn scan_segment(&self, v: TrajView<'_>, lo: usize, hi: usize) -> SplitDecision {
        scan_dists(v, lo, hi, self.epsilon, sed_dists_into)
    }

    fn first_violation_view(&self, v: TrajView<'_>, anchor: usize, float: usize) -> Option<usize> {
        first_violation_dists(v, anchor, float, self.epsilon, sed_dists_into)
    }
}

/// Synchronized distance **or** derived speed difference — the paper's
/// §3.3 spatiotemporal criteria (SPT / OPW-SP / TD-SP).
///
/// A point violates when its SED exceeds `epsilon` or its derived speed
/// difference exceeds `speed_epsilon`. The split-ranking value is the
/// dimensionless blend `max(sed/epsilon, |Δv|/speed_epsilon)` (threshold
/// `1`), which reduces to plain time-ratio ranking when `speed_epsilon`
/// is infinite; the design rationale is recorded in `DESIGN.md`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeRatioSpeed {
    /// Distance threshold, metres.
    pub epsilon: f64,
    /// Speed-difference threshold, metres/second.
    pub speed_epsilon: f64,
}

impl SegmentCriterion for TimeRatioSpeed {
    fn label(&self) -> String {
        format!("tr,{}m,{}m/s", self.epsilon, self.speed_epsilon)
    }

    #[inline]
    fn violates(&self, fixes: &[Fix], anchor: usize, float: usize, i: usize) -> bool {
        debug_assert!(anchor < i && i < float);
        sed(&fixes[anchor], &fixes[float], &fixes[i]) > self.epsilon
            || speed_difference_at(fixes, i).is_some_and(|dv| dv > self.speed_epsilon)
    }

    #[inline]
    fn split_value(&self, fixes: &[Fix], lo: usize, hi: usize, i: usize) -> f64 {
        let d = sed(&fixes[lo], &fixes[hi], &fixes[i]);
        let ds = if self.epsilon > 0.0 {
            d / self.epsilon
        } else if d > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        let vs = speed_difference_at(fixes, i)
            .map(|dv| dv / self.speed_epsilon)
            .unwrap_or(0.0);
        ds.max(vs)
    }

    #[inline]
    fn split_threshold(&self) -> f64 {
        1.0
    }

    fn scan_segment(&self, v: TrajView<'_>, lo: usize, hi: usize) -> SplitDecision {
        // The SEDs batch; the speed-difference term is inherently
        // point-local (three neighbours), so it stays scalar per
        // element. The violation predicate is the scalar disjunction
        // `sed > ε || Δv > ε_v` — *not* `blend > 1`, which can differ
        // in the last bit when the ratio rounds across the threshold.
        let mut best = (lo + 1, f64::NEG_INFINITY);
        let mut first_violation = None;
        let mut buf = [0.0f64; SCAN_CHUNK];
        let mut i = lo + 1;
        while i < hi {
            let len = SCAN_CHUNK.min(hi - i);
            let chunk = &mut buf[..len];
            sed_dists_into(v, lo, hi, i, chunk);
            for (k, &d) in chunk.iter().enumerate() {
                let dv = speed_difference_view(v, i + k);
                let val = trs_blend(d, dv, self.epsilon, self.speed_epsilon);
                if val > best.1 {
                    best = (i + k, val);
                }
                if first_violation.is_none()
                    && (d > self.epsilon || dv.is_some_and(|x| x > self.speed_epsilon))
                {
                    first_violation = Some(i + k);
                }
            }
            i += len;
        }
        SplitDecision { split: best.0, value: best.1, first_violation }
    }

    fn first_violation_view(&self, v: TrajView<'_>, anchor: usize, float: usize) -> Option<usize> {
        let mut buf = [0.0f64; SCAN_CHUNK];
        let mut i = anchor + 1;
        while i < float {
            let len = SCAN_CHUNK.min(float - i);
            let chunk = &mut buf[..len];
            sed_dists_into(v, anchor, float, i, chunk);
            for (k, &d) in chunk.iter().enumerate() {
                if d > self.epsilon
                    || speed_difference_view(v, i + k).is_some_and(|x| x > self.speed_epsilon)
                {
                    return Some(i + k);
                }
            }
            i += len;
        }
        None
    }
}

/// The discarding criterion carried by the compressor structs, evaluated
/// for every intermediate point of a candidate segment.
///
/// This is the value-level (enum) form of the three
/// [`SegmentCriterion`] implementations; it implements the trait by
/// dispatch, so enum-carrying compressors and trait-generic code share
/// the same distance decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Criterion {
    /// Perpendicular distance to the anchor–float line exceeds `epsilon`
    /// (classic line generalization; NOPW/BOPW baselines).
    Perpendicular {
        /// Distance threshold, metres.
        epsilon: f64,
    },
    /// Synchronized (time-ratio) distance exceeds `epsilon` (OPW-TR).
    TimeRatio {
        /// Distance threshold, metres.
        epsilon: f64,
    },
    /// Synchronized distance exceeds `epsilon` **or** the derived speed
    /// difference at the point exceeds `speed_epsilon` (OPW-SP / SPT).
    TimeRatioSpeed {
        /// Distance threshold, metres.
        epsilon: f64,
        /// Speed-difference threshold, metres/second.
        speed_epsilon: f64,
    },
}

impl Criterion {
    /// Asserts the thresholds are usable: the distance threshold must be
    /// finite and non-negative; the speed threshold must be non-negative
    /// and not NaN (`+∞` is allowed and disables the speed check).
    pub(crate) fn validate(&self) {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        match *self {
            Criterion::Perpendicular { epsilon } | Criterion::TimeRatio { epsilon } => {
                assert!(ok(epsilon), "epsilon must be finite and >= 0");
            }
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon } => {
                assert!(ok(epsilon), "epsilon must be finite and >= 0");
                assert!(
                    speed_epsilon >= 0.0 && !speed_epsilon.is_nan(),
                    "speed_epsilon must be >= 0"
                );
            }
        }
    }

    /// The distance threshold, metres.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        match *self {
            Criterion::Perpendicular { epsilon }
            | Criterion::TimeRatio { epsilon }
            | Criterion::TimeRatioSpeed { epsilon, .. } => epsilon,
        }
    }

    /// The speed-difference threshold (m/s), if this criterion has one.
    #[inline]
    pub fn speed_epsilon(&self) -> Option<f64> {
        match *self {
            Criterion::TimeRatioSpeed { speed_epsilon, .. } => Some(speed_epsilon),
            _ => None,
        }
    }

    /// The same criterion with the distance threshold replaced (the
    /// speed threshold, if any, is preserved) — how a threshold sweep
    /// derives its per-threshold compressors.
    #[must_use]
    pub fn with_epsilon(self, epsilon: f64) -> Self {
        match self {
            Criterion::Perpendicular { .. } => Criterion::Perpendicular { epsilon },
            Criterion::TimeRatio { .. } => Criterion::TimeRatio { epsilon },
            Criterion::TimeRatioSpeed { speed_epsilon, .. } => {
                Criterion::TimeRatioSpeed { epsilon, speed_epsilon }
            }
        }
    }
}

impl SegmentCriterion for Criterion {
    fn label(&self) -> String {
        match *self {
            Criterion::Perpendicular { epsilon } => Perpendicular { epsilon }.label(),
            Criterion::TimeRatio { epsilon } => TimeRatio { epsilon }.label(),
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon } => {
                TimeRatioSpeed { epsilon, speed_epsilon }.label()
            }
        }
    }

    #[inline]
    fn violates(&self, fixes: &[Fix], anchor: usize, float: usize, i: usize) -> bool {
        match *self {
            Criterion::Perpendicular { epsilon } => {
                Perpendicular { epsilon }.violates(fixes, anchor, float, i)
            }
            Criterion::TimeRatio { epsilon } => {
                TimeRatio { epsilon }.violates(fixes, anchor, float, i)
            }
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon } => {
                TimeRatioSpeed { epsilon, speed_epsilon }.violates(fixes, anchor, float, i)
            }
        }
    }

    #[inline]
    fn split_value(&self, fixes: &[Fix], lo: usize, hi: usize, i: usize) -> f64 {
        match *self {
            Criterion::Perpendicular { epsilon } => {
                Perpendicular { epsilon }.split_value(fixes, lo, hi, i)
            }
            Criterion::TimeRatio { epsilon } => {
                TimeRatio { epsilon }.split_value(fixes, lo, hi, i)
            }
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon } => {
                TimeRatioSpeed { epsilon, speed_epsilon }.split_value(fixes, lo, hi, i)
            }
        }
    }

    #[inline]
    fn split_threshold(&self) -> f64 {
        match *self {
            Criterion::Perpendicular { epsilon } | Criterion::TimeRatio { epsilon } => epsilon,
            Criterion::TimeRatioSpeed { .. } => 1.0,
        }
    }

    fn scan_segment(&self, v: TrajView<'_>, lo: usize, hi: usize) -> SplitDecision {
        // One dispatch per *segment*; the struct impls loop.
        match *self {
            Criterion::Perpendicular { epsilon } => {
                Perpendicular { epsilon }.scan_segment(v, lo, hi)
            }
            Criterion::TimeRatio { epsilon } => TimeRatio { epsilon }.scan_segment(v, lo, hi),
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon } => {
                TimeRatioSpeed { epsilon, speed_epsilon }.scan_segment(v, lo, hi)
            }
        }
    }

    fn first_violation_view(&self, v: TrajView<'_>, anchor: usize, float: usize) -> Option<usize> {
        match *self {
            Criterion::Perpendicular { epsilon } => {
                Perpendicular { epsilon }.first_violation_view(v, anchor, float)
            }
            Criterion::TimeRatio { epsilon } => {
                TimeRatio { epsilon }.first_violation_view(v, anchor, float)
            }
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon } => {
                TimeRatioSpeed { epsilon, speed_epsilon }.first_violation_view(v, anchor, float)
            }
        }
    }
}

/// Batched twin of the bottom-up merge cost: folds
/// `worst.max(split_value(i))` over the interior of `lo → hi` in index
/// order, seeded at `0.0` — exactly the scalar accumulation in
/// `bottom_up.rs`, with distances staged chunk-wise.
pub(crate) fn max_split_value_view(c: &Criterion, v: TrajView<'_>, lo: usize, hi: usize) -> f64 {
    let mut worst = 0.0f64;
    let mut buf = [0.0f64; SCAN_CHUNK];
    let mut i = lo + 1;
    while i < hi {
        let len = SCAN_CHUNK.min(hi - i);
        let chunk = &mut buf[..len];
        match *c {
            Criterion::Perpendicular { .. } => {
                perp_dists_into(v, lo, hi, i, chunk);
                for &d in chunk.iter() {
                    worst = worst.max(d);
                }
            }
            Criterion::TimeRatio { .. } => {
                sed_dists_into(v, lo, hi, i, chunk);
                for &d in chunk.iter() {
                    worst = worst.max(d);
                }
            }
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon } => {
                sed_dists_into(v, lo, hi, i, chunk);
                for (k, &d) in chunk.iter().enumerate() {
                    let dv = speed_difference_view(v, i + k);
                    worst = worst.max(trs_blend(d, dv, epsilon, speed_epsilon));
                }
            }
        }
        i += len;
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(t: f64, x: f64, y: f64) -> Fix {
        Fix::from_parts(t, x, y)
    }

    /// Straight in space, early in time: perp sees nothing, SED does.
    fn temporal_outlier() -> Vec<Fix> {
        vec![
            fix(0.0, 0.0, 0.0),
            fix(2.0, 8.0, 0.0),
            fix(10.0, 10.0, 0.0),
        ]
    }

    #[test]
    fn perpendicular_ignores_time_time_ratio_does_not() {
        let f = temporal_outlier();
        assert!(!Perpendicular { epsilon: 1.0 }.violates(&f, 0, 2, 1));
        assert!(TimeRatio { epsilon: 1.0 }.violates(&f, 0, 2, 1));
        assert_eq!(TimeRatio { epsilon: 1.0 }.split_value(&f, 0, 2, 1), 6.0);
    }

    #[test]
    fn enum_dispatch_matches_struct_impls() {
        let f = temporal_outlier();
        let cases: [(Criterion, bool); 3] = [
            (Criterion::Perpendicular { epsilon: 1.0 }, false),
            (Criterion::TimeRatio { epsilon: 1.0 }, true),
            (
                Criterion::TimeRatioSpeed { epsilon: 1.0, speed_epsilon: 1e9 },
                true,
            ),
        ];
        for (c, expect) in cases {
            assert_eq!(c.violates(&f, 0, 2, 1), expect, "{c:?}");
        }
        assert_eq!(
            Criterion::TimeRatio { epsilon: 1.0 }.split_value(&f, 0, 2, 1),
            TimeRatio { epsilon: 1.0 }.split_value(&f, 0, 2, 1),
        );
    }

    #[test]
    fn speed_blend_reduces_to_time_ratio_at_infinite_speed_threshold() {
        let f = temporal_outlier();
        let trs = TimeRatioSpeed { epsilon: 3.0, speed_epsilon: f64::INFINITY };
        let tr = TimeRatio { epsilon: 3.0 };
        assert_eq!(
            trs.split_value(&f, 0, 2, 1),
            tr.split_value(&f, 0, 2, 1) / 3.0,
        );
        assert_eq!(trs.violates(&f, 0, 2, 1), tr.violates(&f, 0, 2, 1));
    }

    #[test]
    fn speed_difference_slice_matches_trajectory_form() {
        let f = vec![
            fix(0.0, 0.0, 0.0),
            fix(10.0, 10.0, 0.0),
            fix(20.0, 40.0, 0.0),
        ];
        assert_eq!(speed_difference_at(&f, 1), Some(2.0));
        assert_eq!(speed_difference_at(&f, 0), None);
        assert_eq!(speed_difference_at(&f, 2), None);
    }

    #[test]
    fn labels() {
        assert_eq!(Criterion::Perpendicular { epsilon: 30.0 }.label(), "perp,30m");
        assert_eq!(Criterion::TimeRatio { epsilon: 30.0 }.label(), "tr,30m");
        assert_eq!(
            Criterion::TimeRatioSpeed { epsilon: 30.0, speed_epsilon: 5.0 }.label(),
            "tr,30m,5m/s"
        );
    }

    #[test]
    fn with_epsilon_preserves_shape_and_speed() {
        let c = Criterion::TimeRatioSpeed { epsilon: 30.0, speed_epsilon: 5.0 };
        assert_eq!(
            c.with_epsilon(60.0),
            Criterion::TimeRatioSpeed { epsilon: 60.0, speed_epsilon: 5.0 }
        );
        assert_eq!(
            Criterion::Perpendicular { epsilon: 1.0 }.with_epsilon(2.0).epsilon(),
            2.0
        );
    }

    #[test]
    fn split_thresholds() {
        assert_eq!(Criterion::TimeRatio { epsilon: 30.0 }.split_threshold(), 30.0);
        assert_eq!(
            Criterion::TimeRatioSpeed { epsilon: 30.0, speed_epsilon: 5.0 }.split_threshold(),
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn validate_rejects_nan() {
        Criterion::TimeRatio { epsilon: f64::NAN }.validate();
    }

    #[test]
    fn validate_allows_infinite_speed_threshold() {
        Criterion::TimeRatioSpeed { epsilon: 1.0, speed_epsilon: f64::INFINITY }.validate();
    }

    /// The scalar reference for [`SegmentCriterion::scan_segment`]: the
    /// exact per-point loops the batched path replaced.
    fn scalar_scan<C: SegmentCriterion>(
        c: &C,
        fixes: &[Fix],
        lo: usize,
        hi: usize,
    ) -> SplitDecision {
        let mut best = (lo + 1, f64::NEG_INFINITY);
        for i in lo + 1..hi {
            let d = c.split_value(fixes, lo, hi, i);
            if d > best.1 {
                best = (i, d);
            }
        }
        SplitDecision {
            split: best.0,
            value: best.1,
            first_violation: c.first_violation(fixes, lo, hi),
        }
    }

    fn wiggly(n: usize) -> Vec<Fix> {
        // Irregular timestamps and a few dwell points so the speed term
        // has structure; > SCAN_CHUNK points to cross chunk boundaries.
        (0..n)
            .map(|i| {
                let t = i as f64 * 7.0 + (i % 5) as f64;
                let x = (i as f64 * 0.37).sin() * 200.0 + i as f64 * 3.0;
                let y = if i % 11 == 0 { 0.0 } else { (i as f64 * 0.71).cos() * 150.0 };
                fix(t, x, y)
            })
            .collect()
    }

    #[test]
    fn scan_segment_matches_scalar_loops_bitwise() {
        let fixes = wiggly(200);
        let cols = traj_model::TrajColumns::from_fixes(&fixes);
        let v = cols.view();
        let criteria = [
            Criterion::Perpendicular { epsilon: 40.0 },
            Criterion::TimeRatio { epsilon: 40.0 },
            Criterion::TimeRatioSpeed { epsilon: 40.0, speed_epsilon: 2.0 },
            Criterion::TimeRatioSpeed { epsilon: 0.0, speed_epsilon: 0.0 },
            Criterion::TimeRatioSpeed { epsilon: 40.0, speed_epsilon: f64::INFINITY },
        ];
        for c in criteria {
            for (lo, hi) in [(0, 199), (0, 1), (3, 130), (63, 129), (100, 101), (10, 75)] {
                let got = c.scan_segment(v, lo, hi);
                let want = scalar_scan(&c, &fixes, lo, hi);
                assert_eq!(got.split, want.split, "{c:?} [{lo},{hi}]");
                assert_eq!(
                    got.value.to_bits(),
                    want.value.to_bits(),
                    "{c:?} [{lo},{hi}] got {} want {}",
                    got.value,
                    want.value
                );
                assert_eq!(got.first_violation, want.first_violation, "{c:?} [{lo},{hi}]");
                assert_eq!(
                    c.first_violation_view(v, lo, hi),
                    c.first_violation(&fixes, lo, hi),
                    "{c:?} [{lo},{hi}] early-exit"
                );
            }
        }
    }

    #[test]
    fn max_split_value_view_matches_scalar_fold() {
        let fixes = wiggly(150);
        let cols = traj_model::TrajColumns::from_fixes(&fixes);
        let v = cols.view();
        for c in [
            Criterion::Perpendicular { epsilon: 40.0 },
            Criterion::TimeRatio { epsilon: 40.0 },
            Criterion::TimeRatioSpeed { epsilon: 40.0, speed_epsilon: 2.0 },
        ] {
            for (lo, hi) in [(0, 149), (5, 6), (20, 90)] {
                let mut worst = 0.0f64;
                for i in lo + 1..hi {
                    worst = worst.max(c.split_value(&fixes, lo, hi, i));
                }
                let got = max_split_value_view(&c, v, lo, hi);
                assert_eq!(got.to_bits(), worst.to_bits(), "{c:?} [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn speed_difference_view_matches_slice_form() {
        let fixes = wiggly(40);
        let cols = traj_model::TrajColumns::from_fixes(&fixes);
        let v = cols.view();
        for i in 0..fixes.len() {
            assert_eq!(speed_difference_view(v, i), speed_difference_at(&fixes, i), "i={i}");
        }
    }
}
