//! The unified discarding-criterion layer.
//!
//! Every compressor in this crate answers the same two questions about a
//! candidate approximation segment `anchor → float`:
//!
//! 1. **Violation** — does intermediate point `i` deviate beyond the
//!    configured threshold(s)? (The opening-window, sliding-window and
//!    streaming families stop growing a segment on the first violation.)
//! 2. **Split ranking** — *how badly* does point `i` deviate, on a scale
//!    where exceeding [`SegmentCriterion::split_threshold`] means the
//!    point must be kept? (The top-down and bottom-up families pick the
//!    worst-ranked point.)
//!
//! [`SegmentCriterion`] captures both; the three implementations —
//! [`Perpendicular`], [`TimeRatio`] and [`TimeRatioSpeed`] — cover the
//! paper's whole algorithm matrix (§2 line-generalization baselines, §3.2
//! time-ratio, §3.3 spatiotemporal). The [`Criterion`] enum is the
//! value-level form carried by compressor structs and dispatches to the
//! same implementations, so there is exactly one copy of each distance
//! decision in the crate.
//!
//! All methods take a *slice* of fixes with indices relative to that
//! slice: batch compressors pass the full trajectory, while
//! [`crate::streaming::OwStream`] passes its buffered window — the
//! decisions are identical because a window always contains the anchor
//! and the scanned point's immediate neighbours.

use crate::distance::{perpendicular_distance, sed};
use traj_model::Fix;

/// Absolute derived-speed difference `‖vᵢ − vᵢ₋₁‖` at slice index `i`
/// (paper §3.3), or `None` when `i` has no two adjacent segments.
#[inline]
pub(crate) fn speed_difference_at(fixes: &[Fix], i: usize) -> Option<f64> {
    if i == 0 || i + 1 >= fixes.len() {
        return None;
    }
    let v_prev = fixes[i - 1].speed_to(&fixes[i])?;
    let v_next = fixes[i].speed_to(&fixes[i + 1])?;
    Some((v_next - v_prev).abs())
}

/// A discarding criterion for one approximation segment.
///
/// Implementations decide whether intermediate points of a candidate
/// segment `fixes[anchor] → fixes[float]` are representable by that
/// segment. See the [module docs](self) for the two query families.
///
/// ```
/// use traj_compress::criterion::{SegmentCriterion, TimeRatio};
/// use traj_model::Fix;
///
/// // A straight constant-speed run: no point violates a 1 m SED budget.
/// let fixes: Vec<Fix> = (0..5)
///     .map(|i| Fix::from_parts(i as f64 * 10.0, i as f64 * 100.0, 0.0))
///     .collect();
/// let c = TimeRatio { epsilon: 1.0 };
/// assert_eq!(c.first_violation(&fixes, 0, 4), None);
/// assert!(c.split_value(&fixes, 0, 4, 2) <= c.split_threshold());
/// ```
pub trait SegmentCriterion {
    /// Report label fragment, e.g. `"tr,30m"`.
    fn label(&self) -> String;

    /// Whether intermediate point `i` of the window `anchor..float`
    /// violates the criterion.
    fn violates(&self, fixes: &[Fix], anchor: usize, float: usize, i: usize) -> bool;

    /// Split-ranking value of interior point `i` for the segment
    /// `lo → hi`: comparable across points, in the units fixed by
    /// [`SegmentCriterion::split_threshold`]. A value strictly above the
    /// threshold means the point violates.
    fn split_value(&self, fixes: &[Fix], lo: usize, hi: usize, i: usize) -> f64;

    /// The threshold [`SegmentCriterion::split_value`] is compared
    /// against (the distance epsilon for single-threshold criteria, `1`
    /// for the dimensionless blended score of [`TimeRatioSpeed`]).
    fn split_threshold(&self) -> f64;

    /// First intermediate index violating the criterion for the window
    /// `anchor..float`, scanning forward (the paper's inner loop order).
    #[inline]
    fn first_violation(&self, fixes: &[Fix], anchor: usize, float: usize) -> Option<usize> {
        (anchor + 1..float).find(|&i| self.violates(fixes, anchor, float, i))
    }
}

/// Perpendicular distance to the anchor–float line — the classic
/// line-generalization criterion (paper §2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perpendicular {
    /// Distance threshold, metres.
    pub epsilon: f64,
}

impl SegmentCriterion for Perpendicular {
    fn label(&self) -> String {
        format!("perp,{}m", self.epsilon)
    }

    #[inline]
    fn violates(&self, fixes: &[Fix], anchor: usize, float: usize, i: usize) -> bool {
        debug_assert!(anchor < i && i < float);
        perpendicular_distance(&fixes[anchor], &fixes[float], &fixes[i]) > self.epsilon
    }

    #[inline]
    fn split_value(&self, fixes: &[Fix], lo: usize, hi: usize, i: usize) -> f64 {
        perpendicular_distance(&fixes[lo], &fixes[hi], &fixes[i])
    }

    #[inline]
    fn split_threshold(&self) -> f64 {
        self.epsilon
    }
}

/// Synchronized (time-ratio) Euclidean distance — the spatiotemporal
/// criterion of §3.2, equations (1)–(2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeRatio {
    /// Distance threshold, metres.
    pub epsilon: f64,
}

impl SegmentCriterion for TimeRatio {
    fn label(&self) -> String {
        format!("tr,{}m", self.epsilon)
    }

    #[inline]
    fn violates(&self, fixes: &[Fix], anchor: usize, float: usize, i: usize) -> bool {
        debug_assert!(anchor < i && i < float);
        sed(&fixes[anchor], &fixes[float], &fixes[i]) > self.epsilon
    }

    #[inline]
    fn split_value(&self, fixes: &[Fix], lo: usize, hi: usize, i: usize) -> f64 {
        sed(&fixes[lo], &fixes[hi], &fixes[i])
    }

    #[inline]
    fn split_threshold(&self) -> f64 {
        self.epsilon
    }
}

/// Synchronized distance **or** derived speed difference — the paper's
/// §3.3 spatiotemporal criteria (SPT / OPW-SP / TD-SP).
///
/// A point violates when its SED exceeds `epsilon` or its derived speed
/// difference exceeds `speed_epsilon`. The split-ranking value is the
/// dimensionless blend `max(sed/epsilon, |Δv|/speed_epsilon)` (threshold
/// `1`), which reduces to plain time-ratio ranking when `speed_epsilon`
/// is infinite; the design rationale is recorded in `DESIGN.md`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeRatioSpeed {
    /// Distance threshold, metres.
    pub epsilon: f64,
    /// Speed-difference threshold, metres/second.
    pub speed_epsilon: f64,
}

impl SegmentCriterion for TimeRatioSpeed {
    fn label(&self) -> String {
        format!("tr,{}m,{}m/s", self.epsilon, self.speed_epsilon)
    }

    #[inline]
    fn violates(&self, fixes: &[Fix], anchor: usize, float: usize, i: usize) -> bool {
        debug_assert!(anchor < i && i < float);
        sed(&fixes[anchor], &fixes[float], &fixes[i]) > self.epsilon
            || speed_difference_at(fixes, i).is_some_and(|dv| dv > self.speed_epsilon)
    }

    #[inline]
    fn split_value(&self, fixes: &[Fix], lo: usize, hi: usize, i: usize) -> f64 {
        let d = sed(&fixes[lo], &fixes[hi], &fixes[i]);
        let ds = if self.epsilon > 0.0 {
            d / self.epsilon
        } else if d > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        let vs = speed_difference_at(fixes, i)
            .map(|dv| dv / self.speed_epsilon)
            .unwrap_or(0.0);
        ds.max(vs)
    }

    #[inline]
    fn split_threshold(&self) -> f64 {
        1.0
    }
}

/// The discarding criterion carried by the compressor structs, evaluated
/// for every intermediate point of a candidate segment.
///
/// This is the value-level (enum) form of the three
/// [`SegmentCriterion`] implementations; it implements the trait by
/// dispatch, so enum-carrying compressors and trait-generic code share
/// the same distance decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Criterion {
    /// Perpendicular distance to the anchor–float line exceeds `epsilon`
    /// (classic line generalization; NOPW/BOPW baselines).
    Perpendicular {
        /// Distance threshold, metres.
        epsilon: f64,
    },
    /// Synchronized (time-ratio) distance exceeds `epsilon` (OPW-TR).
    TimeRatio {
        /// Distance threshold, metres.
        epsilon: f64,
    },
    /// Synchronized distance exceeds `epsilon` **or** the derived speed
    /// difference at the point exceeds `speed_epsilon` (OPW-SP / SPT).
    TimeRatioSpeed {
        /// Distance threshold, metres.
        epsilon: f64,
        /// Speed-difference threshold, metres/second.
        speed_epsilon: f64,
    },
}

impl Criterion {
    /// Asserts the thresholds are usable: the distance threshold must be
    /// finite and non-negative; the speed threshold must be non-negative
    /// and not NaN (`+∞` is allowed and disables the speed check).
    pub(crate) fn validate(&self) {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        match *self {
            Criterion::Perpendicular { epsilon } | Criterion::TimeRatio { epsilon } => {
                assert!(ok(epsilon), "epsilon must be finite and >= 0");
            }
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon } => {
                assert!(ok(epsilon), "epsilon must be finite and >= 0");
                assert!(
                    speed_epsilon >= 0.0 && !speed_epsilon.is_nan(),
                    "speed_epsilon must be >= 0"
                );
            }
        }
    }

    /// The distance threshold, metres.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        match *self {
            Criterion::Perpendicular { epsilon }
            | Criterion::TimeRatio { epsilon }
            | Criterion::TimeRatioSpeed { epsilon, .. } => epsilon,
        }
    }

    /// The speed-difference threshold (m/s), if this criterion has one.
    #[inline]
    pub fn speed_epsilon(&self) -> Option<f64> {
        match *self {
            Criterion::TimeRatioSpeed { speed_epsilon, .. } => Some(speed_epsilon),
            _ => None,
        }
    }

    /// The same criterion with the distance threshold replaced (the
    /// speed threshold, if any, is preserved) — how a threshold sweep
    /// derives its per-threshold compressors.
    #[must_use]
    pub fn with_epsilon(self, epsilon: f64) -> Self {
        match self {
            Criterion::Perpendicular { .. } => Criterion::Perpendicular { epsilon },
            Criterion::TimeRatio { .. } => Criterion::TimeRatio { epsilon },
            Criterion::TimeRatioSpeed { speed_epsilon, .. } => {
                Criterion::TimeRatioSpeed { epsilon, speed_epsilon }
            }
        }
    }
}

impl SegmentCriterion for Criterion {
    fn label(&self) -> String {
        match *self {
            Criterion::Perpendicular { epsilon } => Perpendicular { epsilon }.label(),
            Criterion::TimeRatio { epsilon } => TimeRatio { epsilon }.label(),
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon } => {
                TimeRatioSpeed { epsilon, speed_epsilon }.label()
            }
        }
    }

    #[inline]
    fn violates(&self, fixes: &[Fix], anchor: usize, float: usize, i: usize) -> bool {
        match *self {
            Criterion::Perpendicular { epsilon } => {
                Perpendicular { epsilon }.violates(fixes, anchor, float, i)
            }
            Criterion::TimeRatio { epsilon } => {
                TimeRatio { epsilon }.violates(fixes, anchor, float, i)
            }
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon } => {
                TimeRatioSpeed { epsilon, speed_epsilon }.violates(fixes, anchor, float, i)
            }
        }
    }

    #[inline]
    fn split_value(&self, fixes: &[Fix], lo: usize, hi: usize, i: usize) -> f64 {
        match *self {
            Criterion::Perpendicular { epsilon } => {
                Perpendicular { epsilon }.split_value(fixes, lo, hi, i)
            }
            Criterion::TimeRatio { epsilon } => {
                TimeRatio { epsilon }.split_value(fixes, lo, hi, i)
            }
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon } => {
                TimeRatioSpeed { epsilon, speed_epsilon }.split_value(fixes, lo, hi, i)
            }
        }
    }

    #[inline]
    fn split_threshold(&self) -> f64 {
        match *self {
            Criterion::Perpendicular { epsilon } | Criterion::TimeRatio { epsilon } => epsilon,
            Criterion::TimeRatioSpeed { .. } => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(t: f64, x: f64, y: f64) -> Fix {
        Fix::from_parts(t, x, y)
    }

    /// Straight in space, early in time: perp sees nothing, SED does.
    fn temporal_outlier() -> Vec<Fix> {
        vec![
            fix(0.0, 0.0, 0.0),
            fix(2.0, 8.0, 0.0),
            fix(10.0, 10.0, 0.0),
        ]
    }

    #[test]
    fn perpendicular_ignores_time_time_ratio_does_not() {
        let f = temporal_outlier();
        assert!(!Perpendicular { epsilon: 1.0 }.violates(&f, 0, 2, 1));
        assert!(TimeRatio { epsilon: 1.0 }.violates(&f, 0, 2, 1));
        assert_eq!(TimeRatio { epsilon: 1.0 }.split_value(&f, 0, 2, 1), 6.0);
    }

    #[test]
    fn enum_dispatch_matches_struct_impls() {
        let f = temporal_outlier();
        let cases: [(Criterion, bool); 3] = [
            (Criterion::Perpendicular { epsilon: 1.0 }, false),
            (Criterion::TimeRatio { epsilon: 1.0 }, true),
            (
                Criterion::TimeRatioSpeed { epsilon: 1.0, speed_epsilon: 1e9 },
                true,
            ),
        ];
        for (c, expect) in cases {
            assert_eq!(c.violates(&f, 0, 2, 1), expect, "{c:?}");
        }
        assert_eq!(
            Criterion::TimeRatio { epsilon: 1.0 }.split_value(&f, 0, 2, 1),
            TimeRatio { epsilon: 1.0 }.split_value(&f, 0, 2, 1),
        );
    }

    #[test]
    fn speed_blend_reduces_to_time_ratio_at_infinite_speed_threshold() {
        let f = temporal_outlier();
        let trs = TimeRatioSpeed { epsilon: 3.0, speed_epsilon: f64::INFINITY };
        let tr = TimeRatio { epsilon: 3.0 };
        assert_eq!(
            trs.split_value(&f, 0, 2, 1),
            tr.split_value(&f, 0, 2, 1) / 3.0,
        );
        assert_eq!(trs.violates(&f, 0, 2, 1), tr.violates(&f, 0, 2, 1));
    }

    #[test]
    fn speed_difference_slice_matches_trajectory_form() {
        let f = vec![
            fix(0.0, 0.0, 0.0),
            fix(10.0, 10.0, 0.0),
            fix(20.0, 40.0, 0.0),
        ];
        assert_eq!(speed_difference_at(&f, 1), Some(2.0));
        assert_eq!(speed_difference_at(&f, 0), None);
        assert_eq!(speed_difference_at(&f, 2), None);
    }

    #[test]
    fn labels() {
        assert_eq!(Criterion::Perpendicular { epsilon: 30.0 }.label(), "perp,30m");
        assert_eq!(Criterion::TimeRatio { epsilon: 30.0 }.label(), "tr,30m");
        assert_eq!(
            Criterion::TimeRatioSpeed { epsilon: 30.0, speed_epsilon: 5.0 }.label(),
            "tr,30m,5m/s"
        );
    }

    #[test]
    fn with_epsilon_preserves_shape_and_speed() {
        let c = Criterion::TimeRatioSpeed { epsilon: 30.0, speed_epsilon: 5.0 };
        assert_eq!(
            c.with_epsilon(60.0),
            Criterion::TimeRatioSpeed { epsilon: 60.0, speed_epsilon: 5.0 }
        );
        assert_eq!(
            Criterion::Perpendicular { epsilon: 1.0 }.with_epsilon(2.0).epsilon(),
            2.0
        );
    }

    #[test]
    fn split_thresholds() {
        assert_eq!(Criterion::TimeRatio { epsilon: 30.0 }.split_threshold(), 30.0);
        assert_eq!(
            Criterion::TimeRatioSpeed { epsilon: 30.0, speed_epsilon: 5.0 }.split_threshold(),
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn validate_rejects_nan() {
        Criterion::TimeRatio { epsilon: f64::NAN }.validate();
    }

    #[test]
    fn validate_allows_infinite_speed_threshold() {
        Criterion::TimeRatioSpeed { epsilon: 1.0, speed_epsilon: f64::INFINITY }.validate();
    }
}
