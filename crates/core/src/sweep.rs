//! One-pass threshold sweeps for the top-down family.
//!
//! The reproduction (and the paper's §4 experiments) evaluate every
//! algorithm over a *grid* of thresholds — 15 distance epsilons × several
//! speed epsilons. Running [`TopDown::compress`] once per threshold
//! repeats the identical farthest-point searches `thresholds.len()`
//! times: the split choice of Douglas–Peucker and TD-TR is
//! **threshold-independent** (the split is the argmax of the raw
//! distance; `epsilon` only decides how deep the recursion goes).
//!
//! [`TopDown::sweep`] exploits that: it builds the full split tree once,
//! recording for each split the *path-inclusive minimum* of the node
//! maxima along its root path — exactly the largest `epsilon` for which
//! the split survives — then derives the kept set for every threshold by
//! a sorted-prefix lookup. Cost: one `epsilon = 0` tree build plus
//! `O(kept log kept)` per threshold, instead of one full build per
//! threshold.
//!
//! TD-SP's blended criterion is *not* threshold-independent (the split
//! ranks by `max(sed/ε, Δv/ε_v)`, so the argmax moves with `ε`), but the
//! per-interval extremes it is derived from are: `sweep` memoizes one
//! scan per distinct interval (max SED + argmax, first positive SED,
//! max speed difference + argmax) and re-derives each threshold's split
//! decision from those in `O(1)`, sharing scans across thresholds.
//!
//! **Contract:** for every supported criterion the sweep output is
//! byte-identical to calling `compress` separately per threshold —
//! pinned by tests here and in `traj-eval`.

use std::collections::HashMap;

use crate::criterion::{speed_difference_view, Criterion};
use crate::douglas_peucker::TopDown;
use crate::result::{CompressionResult, CompressionResultBuf, Compressor};
use crate::workspace::{SpStats, Workspace};
use traj_geom::soa::sed_dists_into;
use traj_geom::TrajView;
use traj_model::Trajectory;

impl TopDown {
    /// Compresses `traj` once per threshold in `thresholds`, returning
    /// results in the same order. For each `eps` the result is
    /// byte-identical to
    /// `TopDown::new(self.criterion().with_epsilon(eps)).compress(traj)`,
    /// but the farthest-point work is shared across thresholds.
    ///
    /// ```
    /// use traj_compress::{Compressor, TopDown};
    /// use traj_model::Trajectory;
    ///
    /// let t = Trajectory::from_triples(
    ///     (0..60).map(|i| (i as f64 * 10.0, i as f64 * 80.0, ((i % 7) * (i % 5)) as f64 * 9.0)),
    /// )
    /// .unwrap();
    /// let td = TopDown::time_ratio(0.0);
    /// let grid = [10.0, 30.0, 50.0];
    /// let swept = td.sweep(&t, &grid);
    /// for (r, &eps) in swept.iter().zip(&grid) {
    ///     assert_eq!(r.kept(), TopDown::time_ratio(eps).compress(&t).kept());
    /// }
    /// ```
    ///
    /// # Panics
    /// Panics if any threshold is NaN, infinite or negative.
    pub fn sweep(&self, traj: &Trajectory, thresholds: &[f64]) -> Vec<CompressionResult> {
        let mut ws = Workspace::new();
        self.sweep_with(traj, thresholds, &mut ws)
    }

    /// [`TopDown::sweep`] borrowing scratch space from `ws`, for callers
    /// sweeping many trajectories in a loop.
    pub fn sweep_with(
        &self,
        traj: &Trajectory,
        thresholds: &[f64],
        ws: &mut Workspace,
    ) -> Vec<CompressionResult> {
        for &eps in thresholds {
            self.criterion().with_epsilon(eps).validate();
        }
        let n = traj.len();
        ws.begin(n);
        if n <= 2 {
            return thresholds.iter().map(|_| CompressionResult::identity(n)).collect();
        }
        let _span = traj_obs::span!("sweep.compress", points = n);
        ws.bind_columns(traj);
        match self.criterion() {
            Criterion::Perpendicular { .. } | Criterion::TimeRatio { .. } => {
                self.sweep_static_tree(traj, thresholds, ws)
            }
            Criterion::TimeRatioSpeed { speed_epsilon, .. } if speed_epsilon > 0.0 => {
                self.sweep_blended(traj, thresholds, speed_epsilon, ws)
            }
            Criterion::TimeRatioSpeed { .. } => {
                // speed_epsilon == 0 makes the blend ratio NaN/∞-valued;
                // fall back to the plain kernel so the byte-identical
                // contract holds even for this pathological setting.
                let mut out = CompressionResultBuf::new();
                thresholds
                    .iter()
                    .map(|&eps| {
                        let td = TopDown::new(self.criterion().with_epsilon(eps));
                        td.compress_into(traj, ws, &mut out);
                        out.take()
                    })
                    .collect()
            }
        }
    }

    /// Threshold-independent criteria: build the split tree once with
    /// path-inclusive minima, then answer each threshold by prefix.
    fn sweep_static_tree(
        &self,
        traj: &Trajectory,
        thresholds: &[f64],
        ws: &mut Workspace,
    ) -> Vec<CompressionResult> {
        let n = traj.len();
        // Tree build: every node records (path-min of split maxima, split
        // index). A split survives threshold eps iff its path-min > eps —
        // the same strict comparison the single-threshold kernel applies
        // at every ancestor. Field-disjoint borrows: the view reads
        // `ws.cols` while the loop mutates `ws.fstack` / `ws.nodes`.
        let v = ws.cols.view();
        ws.fstack.push((0, n - 1, f64::INFINITY));
        while let Some((lo, hi, pmin)) = ws.fstack.pop() {
            if let Some((split, value)) = self.farthest_view(v, lo, hi) {
                let m = value.min(pmin);
                ws.nodes.push((m, split));
                ws.fstack.push((lo, split, m));
                ws.fstack.push((split, hi, m));
            }
        }
        // Descending by survival threshold → per-eps kept set is a prefix.
        ws.nodes.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
        thresholds
            .iter()
            .map(|&eps| {
                let k = ws.nodes.partition_point(|&(m, _)| m > eps);
                let mut kept = Vec::with_capacity(k + 2);
                kept.push(0);
                kept.extend(ws.nodes[..k].iter().map(|&(_, s)| s));
                kept.push(n - 1);
                kept.sort_unstable();
                CompressionResult::new(kept, n)
            })
            .collect()
    }

    /// Blended (TD-SP) criterion: per-threshold descent over memoized
    /// per-interval extremes.
    fn sweep_blended(
        &self,
        traj: &Trajectory,
        thresholds: &[f64],
        speed_epsilon: f64,
        ws: &mut Workspace,
    ) -> Vec<CompressionResult> {
        let n = traj.len();
        // Field-disjoint borrows: the view reads `ws.cols` while the
        // loop mutates `ws.stack` and the `ws.sp_stats` memo table.
        let ws = &mut *ws;
        let v = ws.cols.view();
        thresholds
            .iter()
            .map(|&eps| {
                let mut kept = vec![0, n - 1];
                ws.stack.clear();
                ws.stack.push((0, n - 1, 0));
                while let Some((lo, hi, _)) = ws.stack.pop() {
                    if hi <= lo + 1 {
                        continue;
                    }
                    let st = interval_stats(v, lo, hi, &mut ws.sp_stats);
                    let (split, max_ratio) = decide_split(&st, eps, speed_epsilon);
                    if max_ratio > 1.0 {
                        kept.push(split);
                        ws.stack.push((lo, split, 0));
                        ws.stack.push((split, hi, 0));
                    }
                }
                kept.sort_unstable();
                CompressionResult::new(kept, n)
            })
            .collect()
    }
}

/// Per-interval extremes of the blended criterion's two components,
/// memoized in `cache` (the workspace's `sp_stats` table): one scan per
/// distinct interval no matter how many thresholds query it. The SED
/// column is produced by the batched kernel in chunk-sized strips; the
/// running extremes use the same strict `>` updates as the former
/// per-point loop, so the results are bit-identical.
fn interval_stats(
    v: TrajView<'_>,
    lo: usize,
    hi: usize,
    cache: &mut HashMap<(usize, usize), SpStats>,
) -> SpStats {
    if let Some(st) = cache.get(&(lo, hi)) {
        return *st;
    }
    let mut st = SpStats {
        i_s: lo + 1,
        s: f64::NEG_INFINITY,
        i_pos: None,
        i_v: lo + 1,
        v: f64::NEG_INFINITY,
    };
    const CHUNK: usize = 64;
    let mut buf = [0.0f64; CHUNK];
    let mut start = lo + 1;
    while start < hi {
        let len = (hi - start).min(CHUNK);
        let dists = &mut buf[..len];
        sed_dists_into(v, lo, hi, start, dists);
        for (k, &d) in dists.iter().enumerate() {
            let i = start + k;
            if d > st.s {
                st.i_s = i;
                st.s = d;
            }
            if d > 0.0 && st.i_pos.is_none() {
                st.i_pos = Some(i);
            }
            let dv = speed_difference_view(v, i).unwrap_or(0.0);
            if dv > st.v {
                st.i_v = i;
                st.v = dv;
            }
        }
        start += len;
    }
    cache.insert((lo, hi), st);
    st
}

/// Re-derives the single-threshold kernel's split decision — the first
/// argmax of `max(sed/eps, Δv/veps)` over the interior, and that
/// maximum — from the interval extremes. The first argmax of a pointwise
/// max is the earlier of the two components' first argmaxes when they
/// tie, else the dominating component's.
fn decide_split(st: &SpStats, eps: f64, veps: f64) -> (usize, f64) {
    let (ms, s_first) = if eps > 0.0 {
        (st.s / eps, st.i_s)
    } else if let Some(ip) = st.i_pos {
        // eps == 0: any positive SED scales to ∞; the first argmax is
        // the first strictly positive SED, not the overall SED argmax.
        (f64::INFINITY, ip)
    } else {
        (0.0, st.i_s)
    };
    let mv = st.v / veps;
    if ms > mv {
        (s_first, ms)
    } else if mv > ms {
        (st.i_v, mv)
    } else {
        (s_first.min(st.i_v), ms)
    }
}

impl crate::DouglasPeucker {
    /// One-pass multi-threshold compression; see [`TopDown::sweep`].
    pub fn sweep(&self, traj: &Trajectory, thresholds: &[f64]) -> Vec<CompressionResult> {
        self.inner().sweep(traj, thresholds)
    }
}

impl crate::TdTr {
    /// One-pass multi-threshold compression; see [`TopDown::sweep`].
    pub fn sweep(&self, traj: &Trajectory, thresholds: &[f64]) -> Vec<CompressionResult> {
        self.inner().sweep(traj, thresholds)
    }
}

impl crate::TdSp {
    /// One-pass multi-threshold compression over the *distance*
    /// thresholds (the speed threshold stays fixed); see
    /// [`TopDown::sweep`].
    pub fn sweep(&self, traj: &Trajectory, thresholds: &[f64]) -> Vec<CompressionResult> {
        self.inner().sweep(traj, thresholds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TdSp;

    fn noisy(n: usize, seed: u64) -> Trajectory {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        Trajectory::from_triples((0..n).map(|i| {
            let t = i as f64 * 10.0;
            (t, t * 9.0 + 60.0 * next(), 250.0 * (t / 400.0).sin() + 60.0 * next())
        }))
        .unwrap()
    }

    const GRID: [f64; 7] = [0.0, 5.0, 15.0, 30.0, 55.0, 90.0, 1e6];

    #[test]
    fn sweep_matches_per_threshold_compress_dp_and_tdtr() {
        for seed in [1, 2, 3] {
            let t = noisy(250, seed);
            for make in [TopDown::perpendicular as fn(f64) -> TopDown, TopDown::time_ratio] {
                let swept = make(0.0).sweep(&t, &GRID);
                for (r, &eps) in swept.iter().zip(&GRID) {
                    assert_eq!(
                        r.kept(),
                        make(eps).compress(&t).kept(),
                        "seed={seed} eps={eps}"
                    );
                }
            }
        }
    }

    #[test]
    fn sweep_matches_per_threshold_compress_tdsp() {
        for seed in [1, 2] {
            let t = noisy(200, seed);
            for veps in [0.5, 5.0, 25.0, f64::INFINITY] {
                let swept = TopDown::time_ratio_speed(0.0, veps).sweep(&t, &GRID);
                for (r, &eps) in swept.iter().zip(&GRID) {
                    assert_eq!(
                        r.kept(),
                        TopDown::time_ratio_speed(eps, veps).compress(&t).kept(),
                        "seed={seed} eps={eps} veps={veps}"
                    );
                }
            }
        }
    }

    #[test]
    fn sweep_matches_even_for_zero_speed_threshold_fallback() {
        let t = noisy(80, 4);
        let swept = TopDown::time_ratio_speed(0.0, 0.0).sweep(&t, &[10.0, 40.0]);
        for (r, &eps) in swept.iter().zip(&[10.0, 40.0]) {
            assert_eq!(r.kept(), TopDown::time_ratio_speed(eps, 0.0).compress(&t).kept());
        }
    }

    #[test]
    fn wrapper_sweeps_delegate() {
        let t = noisy(120, 7);
        let grid = [20.0, 60.0];
        assert_eq!(
            crate::DouglasPeucker::new(0.0).sweep(&t, &grid),
            TopDown::perpendicular(0.0).sweep(&t, &grid)
        );
        assert_eq!(
            crate::TdTr::new(0.0).sweep(&t, &grid),
            TopDown::time_ratio(0.0).sweep(&t, &grid)
        );
        let sp = TdSp::new(1.0, 5.0);
        let swept = sp.sweep(&t, &grid);
        for (r, &eps) in swept.iter().zip(&grid) {
            assert_eq!(r.kept(), TdSp::new(eps, 5.0).compress(&t).kept());
        }
    }

    #[test]
    fn sweep_with_reuses_workspace_across_trajectories() {
        let mut ws = Workspace::new();
        let td = TopDown::time_ratio(0.0);
        for seed in [11, 12, 13] {
            let t = noisy(150, seed);
            let swept = td.sweep_with(&t, &GRID, &mut ws);
            for (r, &eps) in swept.iter().zip(&GRID) {
                assert_eq!(r.kept(), TopDown::time_ratio(eps).compress(&t).kept());
            }
        }
    }

    #[test]
    fn degenerate_inputs_and_grids() {
        let one = Trajectory::from_triples([(0.0, 0.0, 0.0)]).unwrap();
        let two = Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 9.0, 0.0)]).unwrap();
        for t in [&one, &two] {
            let swept = TopDown::time_ratio(0.0).sweep(t, &[0.0, 10.0]);
            assert_eq!(swept.len(), 2);
            for r in swept {
                assert_eq!(r.kept_len(), t.len());
            }
        }
        assert!(TopDown::time_ratio(0.0).sweep(&noisy(50, 1), &[]).is_empty());
    }

    #[test]
    fn unsorted_grids_are_answered_in_input_order() {
        let t = noisy(100, 2);
        let grid = [50.0, 5.0, 20.0];
        let swept = TopDown::time_ratio(0.0).sweep(&t, &grid);
        for (r, &eps) in swept.iter().zip(&grid) {
            assert_eq!(r.kept(), TopDown::time_ratio(eps).compress(&t).kept());
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_nan_threshold() {
        let _ = TopDown::time_ratio(0.0).sweep(&noisy(20, 1), &[10.0, f64::NAN]);
    }
}
