//! Sequential single-pass baselines (paper §2).
//!
//! These are the "very simple in nature" algorithms the paper surveys
//! first: they do not relate a point to a proposed approximation line,
//! only to its neighbours, and are "computationally efficient … but not
//! so popular" because they frequently drop important points such as
//! sharp angles.

use crate::result::{CompressionResult, Compressor};
use traj_model::Trajectory;

/// Keep every *i*-th data point (Tobler \[11\]): the crudest compression.
///
/// The first point is always kept, then every `step`-th point, and the
/// last point is always kept regardless of phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformSample {
    step: usize,
}

impl UniformSample {
    /// Keep one point in every `step` (`step >= 1`; `1` keeps everything).
    ///
    /// # Panics
    /// Panics if `step == 0`.
    pub fn new(step: usize) -> Self {
        assert!(step >= 1, "step must be at least 1");
        UniformSample { step }
    }
}

impl Compressor for UniformSample {
    fn name(&self) -> String {
        format!("uniform({})", self.step)
    }

    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        let n = traj.len();
        let mut kept: Vec<usize> = (0..n).step_by(self.step).collect();
        // Empty only when n == 0; then there is no last sample to force.
        if n >= 1 && kept.last() != Some(&(n - 1)) {
            kept.push(n - 1);
        }
        CompressionResult::new(kept, n)
    }
}

/// Drop a point when its Euclidean distance to the *previously kept*
/// point is below a threshold (the "neighbour distance" class of §2).
///
/// Points are visited in sequence; a point closer than `min_dist` metres
/// to the last kept point is discarded. Endpoints are always kept.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceThreshold {
    min_dist: f64,
}

impl DistanceThreshold {
    /// Keep only points at least `min_dist` metres from the last kept
    /// point.
    ///
    /// # Panics
    /// Panics if `min_dist` is not a finite, non-negative number.
    pub fn new(min_dist: f64) -> Self {
        assert!(
            min_dist.is_finite() && min_dist >= 0.0,
            "min_dist must be finite and >= 0"
        );
        DistanceThreshold { min_dist }
    }
}

impl Compressor for DistanceThreshold {
    fn name(&self) -> String {
        format!("dist-threshold({}m)", self.min_dist)
    }

    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        let n = traj.len();
        if n <= 2 {
            return CompressionResult::identity(n);
        }
        let fixes = traj.fixes();
        let mut kept = vec![0usize];
        let mut last = 0usize;
        for (i, f) in fixes.iter().enumerate().take(n - 1).skip(1) {
            if fixes[last].pos.distance(f.pos) >= self.min_dist {
                kept.push(i);
                last = i;
            }
        }
        kept.push(n - 1);
        CompressionResult::new(kept, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Trajectory {
        Trajectory::from_triples((0..n).map(|i| (i as f64, i as f64 * 10.0, 0.0))).unwrap()
    }

    #[test]
    fn uniform_keeps_every_step() {
        let t = line(10);
        let r = UniformSample::new(3).compress(&t);
        assert_eq!(r.kept(), &[0, 3, 6, 9]);
    }

    #[test]
    fn uniform_always_keeps_last() {
        let t = line(11);
        let r = UniformSample::new(3).compress(&t);
        assert_eq!(r.kept(), &[0, 3, 6, 9, 10]);
    }

    #[test]
    fn uniform_step_one_is_identity() {
        let t = line(5);
        let r = UniformSample::new(1).compress(&t);
        assert_eq!(r.kept_len(), 5);
        assert_eq!(r.compression_pct(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn uniform_rejects_zero_step() {
        let _ = UniformSample::new(0);
    }

    #[test]
    fn distance_threshold_drops_close_points() {
        // Points every 10 m; threshold 25 m keeps every third point.
        let t = line(10);
        let r = DistanceThreshold::new(25.0).compress(&t);
        assert_eq!(r.kept(), &[0, 3, 6, 9]);
    }

    #[test]
    fn distance_threshold_zero_keeps_all() {
        let t = line(6);
        let r = DistanceThreshold::new(0.0).compress(&t);
        assert_eq!(r.kept_len(), 6);
    }

    #[test]
    fn distance_threshold_huge_keeps_endpoints_only() {
        let t = line(10);
        let r = DistanceThreshold::new(1e9).compress(&t);
        assert_eq!(r.kept(), &[0, 9]);
    }

    #[test]
    fn degenerate_inputs_pass_through() {
        let one = Trajectory::from_triples([(0.0, 0.0, 0.0)]).unwrap();
        let two = Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]).unwrap();
        for c in [&DistanceThreshold::new(100.0) as &dyn Compressor, &UniformSample::new(5)] {
            assert_eq!(c.compress(&one).kept_len(), 1);
            assert_eq!(c.compress(&two).kept_len(), 2);
        }
    }

    #[test]
    fn stationary_object_compresses_to_endpoints() {
        let t = Trajectory::from_triples((0..20).map(|i| (i as f64, 5.0, 5.0))).unwrap();
        let r = DistanceThreshold::new(1.0).compress(&t);
        assert_eq!(r.kept(), &[0, 19]);
    }
}
