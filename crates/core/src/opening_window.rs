//! The opening-window family: NOPW, BOPW, OPW-TR and OPW-SP.
//!
//! Opening-window (OW) algorithms (paper §2.2) anchor the start of a
//! potential segment and grow ("open") a window by advancing a float
//! point until some intermediate point violates the discarding criterion.
//! On violation, either
//!
//! * the violating point itself becomes the break point
//!   ([`BreakStrategy::Normal`], NOPW — the paper's preferred strategy),
//!   or
//! * the point *just before the float* — the last float position for
//!   which the whole window was still representable —
//!   ([`BreakStrategy::BeforeFloat`], BOPW, which the paper finds
//!   compresses more but errs more, Fig. 8).
//!
//! The criterion is pluggable ([`Criterion`], re-exported from
//! [`crate::criterion`]): perpendicular distance yields the classic
//! baselines, the synchronized time-ratio distance yields **OPW-TR**
//! (§3.2), and time-ratio plus the derived speed-difference threshold
//! yields **OPW-SP**, the opening-window form of the paper's SPT
//! algorithm (§3.3).
//!
//! OW algorithms are *online*: they never look past the current float.
//! [`crate::streaming::OwStream`] exposes exactly this engine
//! incrementally. The batch form here is `O(N·w)` for maximum window
//! size `w` (`O(N²)` worst case), matching the paper.
//!
//! The paper notes OW algorithms "may lose the last few data points";
//! as countermeasure the final data point is always emitted.

pub use crate::criterion::Criterion;
use crate::criterion::SegmentCriterion;
use crate::obs::AlgoRun;
use crate::result::{CompressionResult, CompressionResultBuf, Compressor};
use crate::workspace::Workspace;
use traj_model::Trajectory;

/// What becomes the break point when the window can no longer be opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakStrategy {
    /// Break at the data point causing the threshold excess (NOPW).
    Normal,
    /// Break at the data point just before the float — the last float
    /// position for which the window was still valid (BOPW; paper Fig. 3).
    BeforeFloat,
}

/// Generic opening-window compressor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpeningWindow {
    criterion: Criterion,
    strategy: BreakStrategy,
}

impl OpeningWindow {
    /// General constructor.
    ///
    /// # Panics
    /// Panics on non-finite or negative thresholds.
    pub fn new(criterion: Criterion, strategy: BreakStrategy) -> Self {
        criterion.validate();
        OpeningWindow { criterion, strategy }
    }

    /// NOPW: perpendicular criterion, break at the excess point.
    pub fn nopw(epsilon: f64) -> Self {
        OpeningWindow::new(Criterion::Perpendicular { epsilon }, BreakStrategy::Normal)
    }

    /// BOPW: perpendicular criterion, break just before the float.
    pub fn bopw(epsilon: f64) -> Self {
        OpeningWindow::new(Criterion::Perpendicular { epsilon }, BreakStrategy::BeforeFloat)
    }

    /// OPW-TR: synchronized-distance criterion (paper §3.2).
    pub fn opw_tr(epsilon: f64) -> Self {
        OpeningWindow::new(Criterion::TimeRatio { epsilon }, BreakStrategy::Normal)
    }

    /// OPW-SP: synchronized distance + derived speed difference — the
    /// opening-window spatiotemporal algorithm (paper §3.3).
    pub fn opw_sp(epsilon: f64, speed_epsilon: f64) -> Self {
        OpeningWindow::new(
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon },
            BreakStrategy::Normal,
        )
    }

    /// The active criterion.
    pub fn criterion(&self) -> Criterion {
        self.criterion
    }

    /// The active break strategy.
    pub fn strategy(&self) -> BreakStrategy {
        self.strategy
    }

    /// Static algorithm-family name (the threshold-free prefix of
    /// [`Compressor::name`]) used as metric label.
    pub(crate) fn family(&self) -> &'static str {
        match (self.criterion, self.strategy) {
            (Criterion::Perpendicular { .. }, BreakStrategy::Normal) => "nopw",
            (Criterion::Perpendicular { .. }, BreakStrategy::BeforeFloat) => "bopw",
            (Criterion::TimeRatio { .. }, BreakStrategy::Normal) => "opw-tr",
            (Criterion::TimeRatio { .. }, BreakStrategy::BeforeFloat) => "bopw-tr",
            (Criterion::TimeRatioSpeed { .. }, BreakStrategy::Normal) => "opw-sp",
            (Criterion::TimeRatioSpeed { .. }, BreakStrategy::BeforeFloat) => "bopw-sp",
        }
    }

    /// The shared kernel: grows windows over `traj`, appending break
    /// points directly to `out`.
    fn kernel(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        let n = traj.len();
        ws.begin(n);
        if n <= 2 {
            out.set_identity(n);
            return;
        }
        let _span = traj_obs::span!("ow.compress", points = n);
        let mut run = AlgoRun::new();
        ws.bind_columns(traj);
        let v = ws.cols.view();
        out.reset(n);
        out.kept.push(0);
        let mut anchor = 0usize;
        let mut float = anchor + 2;
        run.window_opened();
        while float < n {
            match self.criterion.first_violation_view(v, anchor, float) {
                Some(i) => {
                    // `first_violation` evaluated anchor+1..=i.
                    run.sed_evals((i - anchor) as u64);
                    let cut = match self.strategy {
                        BreakStrategy::Normal => i,
                        BreakStrategy::BeforeFloat => float - 1,
                    };
                    debug_assert!(cut > anchor, "opening window must make progress");
                    out.kept.push(cut);
                    anchor = cut;
                    float = anchor + 2;
                    run.window_closed();
                    run.window_opened();
                }
                None => {
                    run.sed_evals((float - anchor).saturating_sub(1) as u64);
                    float += 1;
                }
            }
        }
        run.window_closed();
        // `out.kept` starts with the anchor 0, so last() always exists.
        if out.kept.last() != Some(&(n - 1)) {
            out.kept.push(n - 1);
        }
        run.flush(self.family(), n, out.kept.len());
    }
}

impl Compressor for OpeningWindow {
    fn name(&self) -> String {
        format!("{}({})", self.family(), self.criterion.label())
    }

    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        self.kernel(traj, &mut ws, &mut out);
        out.take()
    }

    fn compress_into(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        self.kernel(traj, ws, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::sed as sed_dist;

    /// Zig-zag line: straight runs of 4 points, then a 90° turn.
    fn zigzag() -> Trajectory {
        let mut triples = Vec::new();
        let mut t = 0.0;
        let (mut x, mut y) = (0.0, 0.0);
        for leg in 0..4 {
            for _ in 0..4 {
                triples.push((t, x, y));
                t += 10.0;
                if leg % 2 == 0 {
                    x += 100.0;
                } else {
                    y += 100.0;
                }
            }
        }
        triples.push((t, x, y));
        Trajectory::from_triples(triples).unwrap()
    }

    #[test]
    fn nopw_breaks_at_turns() {
        let t = zigzag();
        let r = OpeningWindow::nopw(30.0).compress(&t);
        // Must keep far fewer than all 17 points but more than endpoints.
        assert!(r.kept_len() < t.len());
        assert!(r.kept_len() > 2);
        assert_eq!(*r.kept().last().unwrap(), t.len() - 1);
    }

    #[test]
    fn bopw_compresses_at_least_as_much_as_nopw_here() {
        // The paper finds BOPW gives higher compression at worse error.
        let t = zigzag();
        let n = OpeningWindow::nopw(30.0).compress(&t).kept_len();
        let b = OpeningWindow::bopw(30.0).compress(&t).kept_len();
        assert!(b <= n, "BOPW kept {b} > NOPW kept {n}");
    }

    #[test]
    fn opw_tr_respects_sed_threshold_per_window() {
        let t = zigzag();
        let eps = 25.0;
        let r = OpeningWindow::opw_tr(eps).compress(&t);
        // Each kept segment must have been a valid open window at the
        // moment it was cut — in particular all interior SEDs are bounded
        // at the final float... Note: OW does NOT guarantee the *final*
        // segment SEDs are below eps at break-at-violation cuts, but with
        // Normal strategy the violating point becomes an anchor, so
        // interior points of emitted segments were all checked. Verify
        // the weaker, true invariant: no interior point of a kept segment
        // violates against that segment.
        let f = t.fixes();
        for w in r.kept().windows(2) {
            let (lo, hi) = (w[0], w[1]);
            for i in lo + 1..hi {
                let d = sed_dist(&f[lo], &f[hi], &f[i]);
                assert!(
                    d <= eps + 1e-9,
                    "interior point {i} of segment {lo}-{hi} deviates {d}"
                );
            }
        }
    }

    #[test]
    fn straight_constant_speed_collapses_to_endpoints() {
        let t = Trajectory::from_triples((0..30).map(|i| (i as f64 * 10.0, i as f64 * 50.0, 0.0)))
            .unwrap();
        for c in [
            OpeningWindow::nopw(10.0),
            OpeningWindow::opw_tr(10.0),
            OpeningWindow::opw_sp(10.0, 5.0),
        ] {
            let r = c.compress(&t);
            assert_eq!(r.kept(), &[0, 29], "{}", c.name());
        }
    }

    #[test]
    fn opw_sp_keeps_speed_kinks_opw_tr_misses() {
        // Straight line with a dramatic speed change at point 5: the
        // object halts (same positions advancing slowly).
        let mut triples = Vec::new();
        for i in 0..5 {
            triples.push((i as f64 * 10.0, i as f64 * 100.0, 0.0)); // 10 m/s
        }
        // Abrupt acceleration to 30 m/s.
        for i in 0..5 {
            triples.push((50.0 + i as f64 * 10.0, 400.0 + (i + 1) as f64 * 300.0, 0.0));
        }
        let t = Trajectory::from_triples(triples).unwrap();
        // Huge SED threshold so only speed matters.
        let sp = OpeningWindow::opw_sp(1e9, 5.0).compress(&t);
        let tr = OpeningWindow::opw_tr(1e9).compress(&t);
        assert_eq!(tr.kept(), &[0, 9], "SED alone sees nothing at eps=1e9");
        assert!(sp.kept_len() > 2, "speed criterion must fire: {:?}", sp.kept());
    }

    #[test]
    fn opw_sp_with_huge_speed_threshold_equals_opw_tr() {
        // Paper Fig. 10: OPW-SP(25 m/s) coincides with OPW-TR on their
        // car data. With an unbounded speed threshold they coincide
        // exactly by construction.
        let t = zigzag();
        for eps in [10.0, 30.0, 60.0] {
            let sp = OpeningWindow::opw_sp(eps, f64::MAX).compress(&t);
            let tr = OpeningWindow::opw_tr(eps).compress(&t);
            assert_eq!(sp.kept(), tr.kept(), "eps={eps}");
        }
    }

    #[test]
    fn compress_into_matches_compress() {
        let t = zigzag();
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        for c in [
            OpeningWindow::nopw(30.0),
            OpeningWindow::bopw(30.0),
            OpeningWindow::opw_tr(25.0),
            OpeningWindow::opw_sp(25.0, 5.0),
        ] {
            c.compress_into(&t, &mut ws, &mut out);
            assert_eq!(out.take(), c.compress(&t), "{}", c.name());
        }
    }

    #[test]
    fn degenerate_inputs() {
        let one = Trajectory::from_triples([(0.0, 0.0, 0.0)]).unwrap();
        let two = Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]).unwrap();
        let three =
            Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 1.0, 1.0), (2.0, 2.0, 2.0)])
                .unwrap();
        for c in [OpeningWindow::nopw(5.0), OpeningWindow::opw_tr(5.0)] {
            assert_eq!(c.compress(&one).kept_len(), 1);
            assert_eq!(c.compress(&two).kept_len(), 2);
            let r = c.compress(&three);
            assert_eq!(r.kept()[0], 0);
            assert_eq!(*r.kept().last().unwrap(), 2);
        }
    }

    #[test]
    fn epsilon_zero_keeps_all_nontrivial_points() {
        // With eps = 0 any deviation violates, so every point that is not
        // exactly on its window's approximation is kept.
        let t = zigzag();
        let r = OpeningWindow::opw_tr(0.0).compress(&t);
        // The zig-zag has straight constant-speed runs: interior points of
        // a run have SED 0 against the run, so some compression remains.
        assert!(r.kept_len() > 2);
    }

    #[test]
    fn names() {
        assert_eq!(OpeningWindow::nopw(30.0).name(), "nopw(perp,30m)");
        assert_eq!(OpeningWindow::bopw(30.0).name(), "bopw(perp,30m)");
        assert_eq!(OpeningWindow::opw_tr(30.0).name(), "opw-tr(tr,30m)");
        assert_eq!(OpeningWindow::opw_sp(30.0, 5.0).name(), "opw-sp(tr,30m,5m/s)");
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_nan_threshold() {
        let _ = OpeningWindow::nopw(f64::NAN);
    }
}
