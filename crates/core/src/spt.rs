//! The paper's SPT pseudocode (§3.3), transcribed faithfully.
//!
//! `SPT(s, max_dist_error, max_speed_error)` opens a window from the
//! anchor `s[1]`, checking every intermediate point against two halting
//! conditions: the synchronized (time-ratio) distance against
//! `max_dist_error` and the derived speed difference against
//! `max_speed_error`. On the first violation at index `i` it returns
//! `[s[1]] ++ SPT(s[i, len(s)], …)` — i.e. the violating point becomes
//! the next anchor — and without violation it returns
//! `[s[1], s[len(s)]]`.
//!
//! This module is the *executable specification*: a direct recursive
//! transcription used to validate the production engine
//! ([`crate::OpeningWindow::opw_sp`]) against the paper. Property tests
//! assert the two produce identical index sets; the production engine is
//! iterative and allocation-conscious, while this one mirrors the paper
//! line by line.

use crate::result::CompressionResult;
use traj_model::{Fix, Trajectory};

/// Runs the paper's SPT algorithm on `traj`, returning the kept original
/// indices.
///
/// `max_dist_error` is the synchronized-distance threshold in metres;
/// `max_speed_error` the derived-speed-difference threshold in m/s.
///
/// # Panics
/// Panics on non-finite or negative thresholds.
pub fn spt(traj: &Trajectory, max_dist_error: f64, max_speed_error: f64) -> CompressionResult {
    assert!(
        max_dist_error.is_finite() && max_dist_error >= 0.0,
        "max_dist_error must be finite and >= 0"
    );
    assert!(
        max_speed_error >= 0.0 && !max_speed_error.is_nan(),
        "max_speed_error must be >= 0"
    );
    let n = traj.len();
    let mut kept = Vec::new();
    spt_rec(traj.fixes(), 0, max_dist_error, max_speed_error, &mut kept);
    // The recursion emits indices relative to the original series and
    // always terminates with the final point.
    CompressionResult::new(kept, n)
}

/// The recursion over the subseries `s = fixes[base..]`, pushing *global*
/// kept indices.
///
/// Pseudocode correspondence (paper indices are 1-based; `base + 0` is
/// the paper's `s[1]`):
///
/// ```text
/// if len(s) <= 2 then return s
/// else e ← 2; while e ≤ len(s) ∧ ¬is_error: i ← 2; while i < e ∧ ¬is_error: …
/// ```
fn spt_rec(fixes: &[Fix], base: usize, max_dist: f64, max_speed: f64, kept: &mut Vec<usize>) {
    let s = &fixes[base..];
    let len = s.len();
    // if len(s) ≤ 2 then return s
    if len <= 2 {
        for j in 0..len {
            kept.push(base + j);
        }
        return;
    }
    let mut is_error = false;
    // e ← 2 (1-based) ⇒ float index 1 (0-based).
    let mut e = 1usize;
    let mut violation = 0usize;
    // while e ≤ len(s) ∧ ¬is_error
    while e < len && !is_error {
        // i ← 2 (1-based) ⇒ 0-based 1.
        let mut i = 1usize;
        // while i < e ∧ ¬is_error
        while i < e && !is_error {
            // Δe ← s[e]t − s[1]t ; Δi ← s[i]t − s[1]t ;
            // (x'ᵢ, y'ᵢ) ← s[1]loc + (s[e]loc − s[1]loc)·Δi/Δe
            let approx = Fix::interpolate(&s[0], &s[e], s[i].t);
            // vᵢ₋₁ ← dist(s[i], s[i−1]) / (s[i]t − s[i−1]t) and
            // vᵢ ← dist(s[i+1], s[i]) / (s[i+1]t − s[i]t). Validated
            // trajectories have strictly increasing timestamps, so the
            // speeds exist; a duplicate timestamp that slipped through
            // is treated as a speed violation (cut here) rather than a
            // panic.
            let speeds = (s[i - 1].speed_to(&s[i]), s[i].speed_to(&s[i + 1]));
            let (Some(v_prev), Some(v_next)) = speeds else {
                is_error = true;
                violation = i;
                continue;
            };
            // if dist(s[i], (x'ᵢ, y'ᵢ)) > max_dist ∨ ‖vᵢ − vᵢ₋₁‖ > max_speed
            if approx.distance(s[i].pos) > max_dist || (v_next - v_prev).abs() > max_speed {
                is_error = true;
                violation = i;
            } else {
                i += 1;
            }
        }
        if is_error {
            // return [s[1]] ++ SPT(s[i, len(s)], …)
            kept.push(base);
            spt_rec(fixes, base + violation, max_dist, max_speed, kept);
            return;
        }
        e += 1;
    }
    // if ¬is_error then return [s[1], s[len(s)]]
    kept.push(base);
    kept.push(base + len - 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opening_window::OpeningWindow;
    use crate::result::Compressor;

    fn sample() -> Trajectory {
        // Car-like: straight run, turn, dwell, straight run.
        let mut triples = Vec::new();
        let mut t = 0.0;
        for i in 0..6 {
            triples.push((t, i as f64 * 120.0, 0.0));
            t += 10.0;
        }
        for i in 1..5 {
            triples.push((t, 600.0, i as f64 * 80.0));
            t += 10.0;
        }
        // Dwell (slow creep).
        for i in 1..4 {
            triples.push((t, 600.0 + i as f64, 320.0));
            t += 10.0;
        }
        for i in 1..6 {
            triples.push((t, 600.0 + i as f64 * 150.0, 320.0 + i as f64 * 30.0));
            t += 10.0;
        }
        Trajectory::from_triples(triples).unwrap()
    }

    #[test]
    fn spt_matches_production_opw_sp() {
        let t = sample();
        for (eps, v) in [(30.0, 5.0), (50.0, 15.0), (80.0, 25.0), (30.0, 1.0)] {
            let spec = spt(&t, eps, v);
            let prod = OpeningWindow::opw_sp(eps, v).compress(&t);
            assert_eq!(spec.kept(), prod.kept(), "eps={eps} v={v}");
        }
    }

    #[test]
    fn spt_short_series_returned_verbatim() {
        let two = Trajectory::from_triples([(0.0, 0.0, 0.0), (10.0, 50.0, 0.0)]).unwrap();
        assert_eq!(spt(&two, 1.0, 1.0).kept(), &[0, 1]);
        let one = Trajectory::from_triples([(0.0, 0.0, 0.0)]).unwrap();
        assert_eq!(spt(&one, 1.0, 1.0).kept(), &[0]);
    }

    #[test]
    fn spt_no_violation_returns_endpoints() {
        let straight =
            Trajectory::from_triples((0..10).map(|i| (i as f64 * 10.0, i as f64 * 100.0, 0.0)))
                .unwrap();
        assert_eq!(spt(&straight, 5.0, 2.0).kept(), &[0, 9]);
    }

    #[test]
    fn spt_zero_speed_threshold_keeps_every_kink() {
        // Speeds alternate between 1 and 2 m/s: every interior point has
        // a 1 m/s speed difference.
        let t = Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 10.0, 0.0),
            (20.0, 30.0, 0.0),
            (30.0, 40.0, 0.0),
            (40.0, 60.0, 0.0),
        ])
        .unwrap();
        let r = spt(&t, 1e9, 0.5);
        assert_eq!(r.kept(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn spt_always_keeps_last_point() {
        let t = sample();
        let r = spt(&t, 40.0, 10.0);
        assert_eq!(*r.kept().last().unwrap(), t.len() - 1);
    }
}
