//! # traj-compress — spatiotemporal trajectory compression
//!
//! Implementation of the compression algorithms and error calculus of
//! *Meratnia & de By, "Spatiotemporal Compression Techniques for Moving
//! Point Objects" (EDBT 2004)*.
//!
//! ## Algorithms
//!
//! Line-generalization baselines (paper §2):
//!
//! * [`UniformSample`] — keep every *i*-th point (Tobler);
//! * [`DistanceThreshold`] — drop points too close to the last kept point;
//! * [`DouglasPeucker`] — classic top-down split on perpendicular
//!   distance ("NDP" in the paper's experiments), with recursive,
//!   iterative and keep-best-N variants;
//! * [`OpeningWindow`] with [`Criterion::Perpendicular`] — the NOPW /
//!   BOPW online baselines (§2.2);
//! * [`SlidingWindow`], [`BottomUp`] — the two remaining classes of the
//!   §2 taxonomy (after Keogh et al.).
//!
//! The paper's spatiotemporal algorithms (§3):
//!
//! * [`TdTr`] — top-down time-ratio: Douglas–Peucker splitting on the
//!   *synchronized* (time-ratio) distance of §3.2;
//! * [`OpeningWindow`] with [`Criterion::TimeRatio`] — OPW-TR;
//! * [`spt()`] / [`OpeningWindow`] with [`Criterion::TimeRatioSpeed`] — the
//!   §3.3 SPT algorithm (OPW-SP), combining the synchronized-distance and
//!   derived-speed-difference thresholds;
//! * [`TdSp`] — top-down variant of the spatiotemporal criteria (named in
//!   the paper's §4.3; split rule documented in `DESIGN.md`).
//!
//! Beyond the paper, the one-pass SED family (Lin et al., arXiv
//! 1801.05360) removes the OW family's O(n²) worst case:
//!
//! * [`OnePassFit`] — OPERB-style rectangular fitting region, O(n) with
//!   a *strict* SED bound;
//! * [`OnePassCone`] — CISED-style inscribed-polygon region, tighter fit
//!   at O(m) state (see `DESIGN.md` §2e).
//!
//! All batch algorithms implement [`Compressor`] and return a
//! [`CompressionResult`] — the *subset of original sample indices kept* —
//! so that any error notion can be evaluated against the original series.
//! The opening-window and one-pass families are also available in true
//! online form via [`streaming::OwStream`] and
//! [`streaming::OnePassStream`], which share the
//! [`streaming::StreamingCompressor`] lifecycle.
//!
//! ## Error calculus
//!
//! [`error`] implements the paper's §4 measures, most importantly the
//! **average synchronous error** `α(p, a)` (§4.2): the time-average
//! distance between the original and approximated object travelling
//! synchronously, in closed form (with the paper's full case analysis)
//! and cross-validated by adaptive quadrature.
//!
//! ## Example
//!
//! ```
//! use traj_compress::{Compressor, TdTr, evaluate};
//! use traj_model::Trajectory;
//!
//! // A car driving east, dwelling, then driving on: spatially a straight
//! // line, temporally anything but.
//! let trip = Trajectory::from_triples([
//!     (0.0, 0.0, 0.0),
//!     (10.0, 150.0, 0.0),
//!     (20.0, 300.0, 0.0),
//!     (30.0, 305.0, 0.0),   // dwell
//!     (40.0, 310.0, 0.0),   // dwell
//!     (50.0, 460.0, 0.0),
//!     (60.0, 610.0, 0.0),
//! ]).unwrap();
//!
//! let result = TdTr::new(20.0).compress(&trip);       // 20 m SED budget
//! let eval = evaluate(&trip, &result);
//! assert!(result.kept_len() < trip.len());            // compression happened
//! assert!(eval.max_sed_m <= 20.0);                    // within budget
//! // The dwell survives: a perpendicular-only simplifier would erase it.
//! assert!(result.kept_len() > 2);
//! ```

#![deny(missing_docs)]

pub mod bottom_up;
pub mod criterion;
pub mod dead_reckoning;
pub(crate) mod obs;
pub mod distance;
pub mod douglas_peucker;
pub mod error;
pub mod hull_dp;
pub mod one_pass;
pub mod opening_window;
pub mod parallel;
pub mod result;
pub mod segmentation;
pub mod simple;
pub mod sliding_window;
pub mod spt;
pub mod streaming;
pub mod sweep;
pub mod td_sp;
pub mod workspace;

pub use bottom_up::BottomUp;
pub use criterion::{
    Criterion, Perpendicular, SegmentCriterion, SplitDecision, TimeRatio, TimeRatioSpeed,
};
pub use dead_reckoning::DeadReckoning;
pub use distance::{perpendicular_distance, sed, speed_difference};
pub use douglas_peucker::{DouglasPeucker, TdTr, TopDown};
pub use error::{
    average_synchronous_error, evaluate, evaluate_sweep, evaluate_with, ErrorEval, EvalWorkspace,
    Evaluation,
};
pub use hull_dp::HullDouglasPeucker;
pub use one_pass::{OnePassCone, OnePassFit, CONE_DIRECTIONS};
pub use opening_window::{BreakStrategy, OpeningWindow};
pub use parallel::{auto_workers, compress_all, MIN_AUTO_PARALLEL_WORK};
pub use result::{CompressionResult, CompressionResultBuf, Compressor, InvalidResult};
pub use segmentation::{detect_stops, segment_stops_moves, stop_ratio, Episode, Stop};
pub use simple::{DistanceThreshold, UniformSample};
pub use sliding_window::SlidingWindow;
pub use spt::spt;
pub use streaming::{OnePassStream, OwStream, StreamingCompressor};
pub use td_sp::TdSp;
pub use workspace::Workspace;
