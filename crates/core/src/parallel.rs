//! Fleet-scale batch compression across OS threads.
//!
//! The paper's motivating arithmetic is a *fleet*: hundreds of objects
//! reporting every 10 seconds. Trajectories are independent, so batch
//! compression parallelizes embarrassingly; this module spreads a
//! dataset over `std::thread::scope` workers with a simple striped
//! partition (no work stealing — compression cost per trajectory is
//! roughly proportional to its length, and striping balances mixed
//! lengths well in practice). Each worker owns one [`Workspace`] and one
//! [`CompressionResultBuf`] for its whole stripe, so scratch allocations
//! amortise across trajectories instead of repeating per call.

use crate::result::{CompressionResult, CompressionResultBuf, Compressor};
use crate::workspace::Workspace;
use traj_model::Trajectory;

/// Compresses every trajectory with `compressor`, using up to
/// `threads` worker threads. Results are returned in input order.
///
/// `threads == 0` means "use all available parallelism": it resolves to
/// [`std::thread::available_parallelism`] (falling back to 1 if that is
/// unknown). `threads == 1` (or a single-trajectory input) runs inline
/// with no thread overhead. The order and content of each result are
/// identical to sequential compression — parallelism is observable only
/// in wall time.
///
/// ```
/// use traj_compress::{compress_all, Compressor, TdTr};
/// use traj_model::Trajectory;
///
/// let fleet: Vec<Trajectory> = (0..8)
///     .map(|v| {
///         Trajectory::from_triples(
///             (0..50).map(|i| (i as f64 * 10.0, (i * i) as f64, v as f64 * 100.0)),
///         )
///         .unwrap()
///     })
///     .collect();
/// let compressor = TdTr::new(30.0);
/// let parallel = compress_all(&fleet, &compressor, 4);
/// // Same results as the sequential path, in input order.
/// let sequential: Vec<_> = fleet.iter().map(|t| compressor.compress(t)).collect();
/// assert_eq!(parallel, sequential);
/// // threads == 0 auto-sizes to the machine and changes nothing else.
/// assert_eq!(compress_all(&fleet, &compressor, 0), sequential);
/// ```
///
/// # Panics
/// Panics if a worker panics (propagated).
pub fn compress_all<C>(
    trajectories: &[Trajectory],
    compressor: &C,
    threads: usize,
) -> Vec<CompressionResult>
where
    C: Compressor + Sync + ?Sized,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };
    let n = trajectories.len();
    if threads == 1 || n <= 1 {
        let mut ws = Workspace::new();
        let mut buf = CompressionResultBuf::new();
        return trajectories
            .iter()
            .map(|t| {
                compressor.compress_into(t, &mut ws, &mut buf);
                buf.take()
            })
            .collect();
    }
    let workers = threads.min(n);
    let mut slots: Vec<Option<CompressionResult>> = vec![None; n];
    std::thread::scope(|scope| {
        // Striped partition: worker w takes items w, w+workers, …
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            handles.push(scope.spawn(move || {
                let mut ws = Workspace::new();
                let mut buf = CompressionResultBuf::new();
                let mut out = Vec::new();
                let mut i = w;
                while i < n {
                    compressor.compress_into(&trajectories[i], &mut ws, &mut buf);
                    out.push((i, buf.take()));
                    i += workers;
                }
                out
            }));
        }
        for h in handles {
            // lint: allow(panic) a worker panic is a compressor bug; re-raising
            // it on the caller thread is deliberate panic propagation
            for (i, r) in h.join().expect("worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    // Every index 0..n was assigned by exactly one worker stride, so
    // flatten defensively instead of asserting on each slot.
    slots.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::douglas_peucker::TdTr;

    fn dataset(k: usize) -> Vec<Trajectory> {
        (0..k)
            .map(|j| {
                Trajectory::from_triples((0..(40 + j * 7)).map(|i| {
                    let t = i as f64 * 10.0;
                    (t, t * (5.0 + j as f64), ((i * (j + 3)) % 11) as f64 * 12.0)
                }))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_equals_sequential() {
        let ds = dataset(17);
        let c = TdTr::new(25.0);
        let seq = compress_all(&ds, &c, 1);
        for threads in [2, 4, 8] {
            let par = compress_all(&ds, &c, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn order_is_preserved() {
        let ds = dataset(9);
        let c = TdTr::new(25.0);
        let results = compress_all(&ds, &c, 4);
        for (t, r) in ds.iter().zip(&results) {
            assert_eq!(r.original_len(), t.len(), "result aligned with its input");
        }
    }

    #[test]
    fn handles_more_threads_than_items() {
        let ds = dataset(2);
        let c = TdTr::new(25.0);
        assert_eq!(compress_all(&ds, &c, 64).len(), 2);
    }

    #[test]
    fn empty_dataset() {
        let c = TdTr::new(25.0);
        assert!(compress_all(&[], &c, 4).is_empty());
    }

    #[test]
    fn threads_zero_uses_available_parallelism() {
        let ds = dataset(11);
        let c = TdTr::new(25.0);
        assert_eq!(compress_all(&ds, &c, 0), compress_all(&ds, &c, 1));
    }

    #[test]
    fn works_through_dyn_compressor() {
        let ds = dataset(5);
        let c: Box<dyn Compressor + Sync> = Box::new(TdTr::new(25.0));
        let results = compress_all(&ds, c.as_ref(), 3);
        assert_eq!(results.len(), 5);
    }
}
