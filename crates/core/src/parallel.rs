//! Fleet-scale batch compression across OS threads.
//!
//! The paper's motivating arithmetic is a *fleet*: hundreds of objects
//! reporting every 10 seconds. Trajectories are independent, so batch
//! compression parallelizes embarrassingly; this module spreads a
//! dataset over `std::thread::scope` workers with a simple striped
//! partition (no work stealing — compression cost per trajectory is
//! roughly proportional to its length, and striping balances mixed
//! lengths well in practice). Each worker owns one [`Workspace`] and one
//! [`CompressionResultBuf`] for its whole stripe, so scratch allocations
//! amortise across trajectories instead of repeating per call.

use crate::result::{CompressionResult, CompressionResultBuf, Compressor};
use crate::workspace::Workspace;
use traj_model::Trajectory;

/// Minimum total work (input points) below which `threads == 0`
/// auto-sizing stays serial.
///
/// Spawning scoped workers and giving each its own [`Workspace`] costs
/// on the order of a hundred microseconds; a batch this small
/// compresses in less. Benchmarks on the paper grid showed the parallel
/// path *losing* to serial for small batches (and on single-core hosts
/// at any size), so `auto_workers` refuses to fan out beneath this
/// floor. An explicit `threads >= 1` request always overrides it.
pub const MIN_AUTO_PARALLEL_WORK: usize = 16_384;

/// Resolves a requested thread count into the worker count to actually
/// spawn for `items` independent tasks totalling `work_units` of work
/// (input points, or points × thresholds for sweeps).
///
/// - `requested >= 1` is honored (clamped to `items` — more workers
///   than tasks would idle).
/// - `requested == 0` means "auto": all available cores, but *serial*
///   when the machine has a single core or `work_units` is below
///   [`MIN_AUTO_PARALLEL_WORK`], where thread startup dominates.
///
/// Returns at least 1; a return of 1 means "run inline, spawn nothing".
pub fn auto_workers(requested: usize, items: usize, work_units: usize) -> usize {
    if items <= 1 {
        return 1;
    }
    if requested >= 1 {
        return requested.min(items);
    }
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if cores <= 1 || work_units < MIN_AUTO_PARALLEL_WORK {
        1
    } else {
        cores.min(items)
    }
}

/// Compresses every trajectory with `compressor`, using up to
/// `threads` worker threads. Results are returned in input order.
///
/// `threads == 0` means "auto": up to
/// [`std::thread::available_parallelism`] workers, falling back to the
/// inline path on single-core hosts or when the batch is too small to
/// amortise thread startup (see [`auto_workers`]). `threads == 1` (or a
/// single-trajectory input) runs inline with no thread overhead. The
/// order and content of each result are identical to sequential
/// compression — parallelism is observable only in wall time.
///
/// When a [`traj_obs::trace`] session is active, each worker labels its
/// own timeline track (`compress-worker-{w}`) and brackets its stripe
/// in a `parallel.stripe` span whose value is the stripe's item count.
///
/// ```
/// use traj_compress::{compress_all, Compressor, TdTr};
/// use traj_model::Trajectory;
///
/// let fleet: Vec<Trajectory> = (0..8)
///     .map(|v| {
///         Trajectory::from_triples(
///             (0..50).map(|i| (i as f64 * 10.0, (i * i) as f64, v as f64 * 100.0)),
///         )
///         .unwrap()
///     })
///     .collect();
/// let compressor = TdTr::new(30.0);
/// let parallel = compress_all(&fleet, &compressor, 4);
/// // Same results as the sequential path, in input order.
/// let sequential: Vec<_> = fleet.iter().map(|t| compressor.compress(t)).collect();
/// assert_eq!(parallel, sequential);
/// // threads == 0 auto-sizes to the machine and changes nothing else.
/// assert_eq!(compress_all(&fleet, &compressor, 0), sequential);
/// ```
///
/// # Panics
/// Panics if a worker panics (propagated).
pub fn compress_all<C>(
    trajectories: &[Trajectory],
    compressor: &C,
    threads: usize,
) -> Vec<CompressionResult>
where
    C: Compressor + Sync + ?Sized,
{
    let n = trajectories.len();
    let total_points: usize = trajectories.iter().map(Trajectory::len).sum();
    let workers = auto_workers(threads, n, total_points);
    if workers == 1 {
        let _stripe = traj_obs::trace_span!("parallel.stripe", n);
        let mut ws = Workspace::new();
        let mut buf = CompressionResultBuf::new();
        return trajectories
            .iter()
            .map(|t| {
                compressor.compress_into(t, &mut ws, &mut buf);
                buf.take()
            })
            .collect();
    }
    let mut slots: Vec<Option<CompressionResult>> = vec![None; n];
    std::thread::scope(|scope| {
        // Striped partition: worker w takes items w, w+workers, …
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            handles.push(scope.spawn(move || {
                if traj_obs::trace::is_active() {
                    traj_obs::trace::set_track_label(&format!("compress-worker-{w}"));
                }
                let _stripe = traj_obs::trace_span!("parallel.stripe", (n - w).div_ceil(workers));
                let mut ws = Workspace::new();
                let mut buf = CompressionResultBuf::new();
                let mut out = Vec::new();
                let mut i = w;
                while i < n {
                    compressor.compress_into(&trajectories[i], &mut ws, &mut buf);
                    out.push((i, buf.take()));
                    i += workers;
                }
                out
            }));
        }
        for h in handles {
            // lint: allow(panic) a worker panic is a compressor bug; re-raising
            // it on the caller thread is deliberate panic propagation
            for (i, r) in h.join().expect("worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    // Every index 0..n was assigned by exactly one worker stride, so
    // flatten defensively instead of asserting on each slot.
    slots.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::douglas_peucker::TdTr;

    fn dataset(k: usize) -> Vec<Trajectory> {
        (0..k)
            .map(|j| {
                Trajectory::from_triples((0..(40 + j * 7)).map(|i| {
                    let t = i as f64 * 10.0;
                    (t, t * (5.0 + j as f64), ((i * (j + 3)) % 11) as f64 * 12.0)
                }))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_equals_sequential() {
        let ds = dataset(17);
        let c = TdTr::new(25.0);
        let seq = compress_all(&ds, &c, 1);
        for threads in [2, 4, 8] {
            let par = compress_all(&ds, &c, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn order_is_preserved() {
        let ds = dataset(9);
        let c = TdTr::new(25.0);
        let results = compress_all(&ds, &c, 4);
        for (t, r) in ds.iter().zip(&results) {
            assert_eq!(r.original_len(), t.len(), "result aligned with its input");
        }
    }

    #[test]
    fn handles_more_threads_than_items() {
        let ds = dataset(2);
        let c = TdTr::new(25.0);
        assert_eq!(compress_all(&ds, &c, 64).len(), 2);
    }

    #[test]
    fn empty_dataset() {
        let c = TdTr::new(25.0);
        assert!(compress_all(&[], &c, 4).is_empty());
    }

    #[test]
    fn threads_zero_uses_available_parallelism() {
        let ds = dataset(11);
        let c = TdTr::new(25.0);
        assert_eq!(compress_all(&ds, &c, 0), compress_all(&ds, &c, 1));
    }

    #[test]
    fn auto_workers_honors_explicit_requests() {
        // An explicit request is clamped to the item count only.
        assert_eq!(auto_workers(4, 100, 10), 4);
        assert_eq!(auto_workers(4, 2, 10), 2);
        assert_eq!(auto_workers(1, 100, usize::MAX), 1);
    }

    #[test]
    fn auto_workers_stays_serial_below_the_work_floor() {
        assert_eq!(auto_workers(0, 100, MIN_AUTO_PARALLEL_WORK - 1), 1);
        assert_eq!(auto_workers(0, 1, usize::MAX), 1);
        assert_eq!(auto_workers(0, 0, usize::MAX), 1);
    }

    #[test]
    fn auto_workers_scales_with_cores_for_big_work() {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert_eq!(auto_workers(0, 1000, MIN_AUTO_PARALLEL_WORK), cores.min(1000));
        // Never more workers than items, whatever the machine.
        assert!(auto_workers(0, 2, usize::MAX) <= 2);
    }

    #[test]
    fn works_through_dyn_compressor() {
        let ds = dataset(5);
        let c: Box<dyn Compressor + Sync> = Box::new(TdTr::new(25.0));
        let results = compress_all(&ds, c.as_ref(), 3);
        assert_eq!(results.len(), 5);
    }
}
