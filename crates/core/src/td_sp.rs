//! TD-SP: top-down splitting under the spatiotemporal criteria.
//!
//! The paper applies its spatiotemporal criteria (synchronized distance
//! *and* derived speed difference, §3.3) "in both opening window and
//! top-down fashion" and reports TD-SP results in §4.3 (Fig. 10), but
//! gives pseudocode only for the opening-window form. This module defines
//! the top-down form; the design decision, recorded in `DESIGN.md`, is:
//!
//! * a point *violates* when its synchronized distance to the anchor–float
//!   approximation exceeds `epsilon` **or** its derived speed difference
//!   exceeds `speed_epsilon`;
//! * among violating configurations the split point is the one with the
//!   largest **violation score** `max(sed/epsilon, |Δv|/speed_epsilon)` —
//!   a dimensionless blend that reduces to plain TD-TR when the speed
//!   threshold is infinite;
//! * the recursion stops when no interior point violates.
//!
//! Both rules live in [`crate::criterion::TimeRatioSpeed`]; this type is
//! a thin wrapper over the shared [`TopDown`] kernel, exactly like
//! [`crate::DouglasPeucker`] and [`crate::TdTr`].
//!
//! Like TD-TR this is a batch algorithm; the paper observes TD-SP is
//! highly sensitive to the speed threshold (only 5 m/s gave reasonable
//! results on their data), which the reproduction in `traj-eval`
//! confirms.

use crate::douglas_peucker::TopDown;
use crate::result::{CompressionResult, CompressionResultBuf, Compressor};
use crate::workspace::Workspace;
use traj_model::Trajectory;

/// Top-down spatiotemporal splitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdSp(TopDown);

impl TdSp {
    /// Creates a TD-SP compressor with synchronized-distance threshold
    /// `epsilon` (metres) and speed-difference threshold `speed_epsilon`
    /// (m/s).
    ///
    /// # Panics
    /// Panics if `epsilon` is not finite-positive-or-zero, or
    /// `speed_epsilon` is not strictly positive (a zero speed threshold
    /// would force every interior point to be kept and makes the
    /// violation score unbounded).
    pub fn new(epsilon: f64, speed_epsilon: f64) -> Self {
        assert!(
            speed_epsilon > 0.0 && !speed_epsilon.is_nan(),
            "speed_epsilon must be > 0"
        );
        TdSp(TopDown::time_ratio_speed(epsilon, speed_epsilon))
    }

    /// The synchronized-distance threshold, metres.
    pub fn epsilon(&self) -> f64 {
        self.0.epsilon()
    }

    /// The speed-difference threshold, m/s.
    pub fn speed_epsilon(&self) -> f64 {
        // TdSp::new only ever constructs the blended criterion; the
        // fallback is unreachable but keeps this accessor panic-free.
        self.0.criterion().speed_epsilon().unwrap_or(f64::INFINITY)
    }

    /// The underlying generic splitter.
    pub fn inner(&self) -> &TopDown {
        &self.0
    }
}

impl Compressor for TdSp {
    fn name(&self) -> String {
        self.0.name()
    }

    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        self.0.compress(traj)
    }

    fn compress_into(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        self.0.compress_into(traj, ws, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{sed as sed_dist, speed_difference};
    use crate::douglas_peucker::TdTr;

    fn kinked() -> Trajectory {
        // Straight in space, two abrupt speed regimes (10 m/s → 40 m/s),
        // plus one spatial spike.
        let mut triples = Vec::new();
        let mut x = 0.0;
        for i in 0..6 {
            triples.push((i as f64 * 10.0, x, 0.0));
            x += 100.0;
        }
        for i in 6..12 {
            triples.push((i as f64 * 10.0, x, if i == 8 { 80.0 } else { 0.0 }));
            x += 400.0;
        }
        Trajectory::from_triples(triples).unwrap()
    }

    #[test]
    fn keeps_spatial_spike_and_speed_kink() {
        let r = TdSp::new(30.0, 5.0).compress(&kinked());
        assert!(r.contains(8), "spatial spike kept: {:?}", r.kept());
        // The 10→40 m/s transition is around index 5/6.
        assert!(
            r.contains(5) || r.contains(6),
            "speed kink kept: {:?}",
            r.kept()
        );
    }

    #[test]
    fn infinite_speed_threshold_reduces_to_td_tr() {
        let t = kinked();
        for eps in [10.0, 30.0, 80.0] {
            let sp = TdSp::new(eps, f64::INFINITY).compress(&t);
            let tr = TdTr::new(eps).compress(&t);
            assert_eq!(sp.kept(), tr.kept(), "eps={eps}");
        }
    }

    #[test]
    fn postcondition_no_violating_interior_point() {
        let t = kinked();
        let (eps, veps) = (30.0, 5.0);
        let r = TdSp::new(eps, veps).compress(&t);
        let f = t.fixes();
        for w in r.kept().windows(2) {
            for i in w[0] + 1..w[1] {
                let d = sed_dist(&f[w[0]], &f[w[1]], &f[i]);
                assert!(d <= eps, "point {i}: sed {d} > {eps}");
                if let Some(dv) = speed_difference(&t, i) {
                    assert!(dv <= veps, "point {i}: dv {dv} > {veps}");
                }
            }
        }
    }

    #[test]
    fn tighter_speed_threshold_keeps_more_points() {
        let t = kinked();
        let loose = TdSp::new(30.0, 25.0).compress(&t).kept_len();
        let tight = TdSp::new(30.0, 1.0).compress(&t).kept_len();
        assert!(tight >= loose, "tight={tight} loose={loose}");
    }

    #[test]
    fn accessors_round_trip() {
        let sp = TdSp::new(30.0, 5.0);
        assert_eq!(sp.epsilon(), 30.0);
        assert_eq!(sp.speed_epsilon(), 5.0);
    }

    #[test]
    fn degenerate_inputs() {
        let two = Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]).unwrap();
        assert_eq!(TdSp::new(5.0, 5.0).compress(&two).kept_len(), 2);
    }

    #[test]
    fn name_mentions_both_thresholds() {
        assert_eq!(TdSp::new(30.0, 5.0).name(), "td-sp(30m,5m/s)");
    }

    #[test]
    #[should_panic(expected = "speed_epsilon")]
    fn rejects_zero_speed_threshold() {
        let _ = TdSp::new(5.0, 0.0);
    }
}
