//! TD-SP: top-down splitting under the spatiotemporal criteria.
//!
//! The paper applies its spatiotemporal criteria (synchronized distance
//! *and* derived speed difference, §3.3) "in both opening window and
//! top-down fashion" and reports TD-SP results in §4.3 (Fig. 10), but
//! gives pseudocode only for the opening-window form. This module defines
//! the top-down form; the design decision, recorded in `DESIGN.md`, is:
//!
//! * a point *violates* when its synchronized distance to the anchor–float
//!   approximation exceeds `epsilon` **or** its derived speed difference
//!   exceeds `speed_epsilon`;
//! * among violating configurations the split point is the one with the
//!   largest **violation score** `max(sed/epsilon, |Δv|/speed_epsilon)` —
//!   a dimensionless blend that reduces to plain TD-TR when the speed
//!   threshold is infinite;
//! * the recursion stops when no interior point violates.
//!
//! Like TD-TR this is a batch algorithm; the paper observes TD-SP is
//! highly sensitive to the speed threshold (only 5 m/s gave reasonable
//! results on their data), which the reproduction in `traj-eval`
//! confirms.

use crate::distance::{sed, speed_difference};
use crate::result::{CompressionResult, Compressor};
use traj_model::Trajectory;

/// Top-down spatiotemporal splitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdSp {
    epsilon: f64,
    speed_epsilon: f64,
}

impl TdSp {
    /// Creates a TD-SP compressor with synchronized-distance threshold
    /// `epsilon` (metres) and speed-difference threshold `speed_epsilon`
    /// (m/s).
    ///
    /// # Panics
    /// Panics if `epsilon` is not finite-positive-or-zero, or
    /// `speed_epsilon` is not strictly positive (a zero speed threshold
    /// would force every interior point to be kept and makes the
    /// violation score unbounded).
    pub fn new(epsilon: f64, speed_epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and >= 0"
        );
        assert!(
            speed_epsilon > 0.0 && !speed_epsilon.is_nan(),
            "speed_epsilon must be > 0"
        );
        TdSp { epsilon, speed_epsilon }
    }

    /// The synchronized-distance threshold, metres.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The speed-difference threshold, m/s.
    pub fn speed_epsilon(&self) -> f64 {
        self.speed_epsilon
    }

    /// Violation score of interior point `i` for window `lo..hi`:
    /// `max(sed/eps_d, |Δv|/eps_v)`; `> 1` means the point violates.
    ///
    /// With `epsilon == 0`, any positive SED is an infinite score (the
    /// point must be kept), mirroring the threshold semantics `sed > 0`.
    fn score(&self, traj: &Trajectory, lo: usize, hi: usize, i: usize) -> f64 {
        let f = traj.fixes();
        let d = sed(&f[lo], &f[hi], &f[i]);
        let ds = if self.epsilon > 0.0 {
            d / self.epsilon
        } else if d > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        let vs = speed_difference(traj, i)
            .map(|dv| dv / self.speed_epsilon)
            .unwrap_or(0.0);
        ds.max(vs)
    }
}

impl Compressor for TdSp {
    fn name(&self) -> String {
        format!("td-sp({}m,{}m/s)", self.epsilon, self.speed_epsilon)
    }

    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        let n = traj.len();
        if n <= 2 {
            return CompressionResult::identity(n);
        }
        let mut keep = vec![false; n];
        keep[0] = true;
        keep[n - 1] = true;
        let mut stack = vec![(0usize, n - 1)];
        while let Some((lo, hi)) = stack.pop() {
            if hi <= lo + 1 {
                continue;
            }
            let mut best = (lo + 1, f64::NEG_INFINITY);
            for i in lo + 1..hi {
                let s = self.score(traj, lo, hi, i);
                if s > best.1 {
                    best = (i, s);
                }
            }
            if best.1 > 1.0 {
                keep[best.0] = true;
                stack.push((lo, best.0));
                stack.push((best.0, hi));
            }
        }
        let kept = keep
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect();
        CompressionResult::new(kept, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::douglas_peucker::TdTr;
    use crate::distance::sed as sed_dist;

    fn kinked() -> Trajectory {
        // Straight in space, two abrupt speed regimes (10 m/s → 40 m/s),
        // plus one spatial spike.
        let mut triples = Vec::new();
        let mut x = 0.0;
        for i in 0..6 {
            triples.push((i as f64 * 10.0, x, 0.0));
            x += 100.0;
        }
        for i in 6..12 {
            triples.push((i as f64 * 10.0, x, if i == 8 { 80.0 } else { 0.0 }));
            x += 400.0;
        }
        Trajectory::from_triples(triples).unwrap()
    }

    #[test]
    fn keeps_spatial_spike_and_speed_kink() {
        let r = TdSp::new(30.0, 5.0).compress(&kinked());
        assert!(r.contains(8), "spatial spike kept: {:?}", r.kept());
        // The 10→40 m/s transition is around index 5/6.
        assert!(
            r.contains(5) || r.contains(6),
            "speed kink kept: {:?}",
            r.kept()
        );
    }

    #[test]
    fn infinite_speed_threshold_reduces_to_td_tr() {
        let t = kinked();
        for eps in [10.0, 30.0, 80.0] {
            let sp = TdSp::new(eps, f64::INFINITY).compress(&t);
            let tr = TdTr::new(eps).compress(&t);
            assert_eq!(sp.kept(), tr.kept(), "eps={eps}");
        }
    }

    #[test]
    fn postcondition_no_violating_interior_point() {
        let t = kinked();
        let (eps, veps) = (30.0, 5.0);
        let r = TdSp::new(eps, veps).compress(&t);
        let f = t.fixes();
        for w in r.kept().windows(2) {
            for i in w[0] + 1..w[1] {
                let d = sed_dist(&f[w[0]], &f[w[1]], &f[i]);
                assert!(d <= eps, "point {i}: sed {d} > {eps}");
                if let Some(dv) = speed_difference(&t, i) {
                    assert!(dv <= veps, "point {i}: dv {dv} > {veps}");
                }
            }
        }
    }

    #[test]
    fn tighter_speed_threshold_keeps_more_points() {
        let t = kinked();
        let loose = TdSp::new(30.0, 25.0).compress(&t).kept_len();
        let tight = TdSp::new(30.0, 1.0).compress(&t).kept_len();
        assert!(tight >= loose, "tight={tight} loose={loose}");
    }

    #[test]
    fn degenerate_inputs() {
        let two = Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]).unwrap();
        assert_eq!(TdSp::new(5.0, 5.0).compress(&two).kept_len(), 2);
    }

    #[test]
    fn name_mentions_both_thresholds() {
        assert_eq!(TdSp::new(30.0, 5.0).name(), "td-sp(30m,5m/s)");
    }

    #[test]
    #[should_panic(expected = "speed_epsilon")]
    fn rejects_zero_speed_threshold() {
        let _ = TdSp::new(5.0, 0.0);
    }
}
