//! Stop/move segmentation of trajectories.
//!
//! The experiments make one thing obvious: *dwells* — the paper's urban
//! cars waiting at lights — are exactly what separates the
//! spatiotemporal algorithms from line generalization (a dwell is
//! spatially a point but temporally a long stretch). This module makes
//! that structure first-class: [`detect_stops`] finds maximal episodes
//! during which the object stays within a radius for at least a minimum
//! duration, and [`segment_stops_moves`] partitions a trajectory into
//! alternating stop/move pieces.
//!
//! The detector is the standard trajectory-mining formulation (maximal
//! windows of bounded spatial diameter and minimal duration), evaluated
//! greedily left to right in `O(n·w)` where `w` is the longest stop's
//! sample count.

use traj_model::{TimeDelta, Timestamp, Trajectory};
use traj_geom::Point2;

/// One detected stop episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stop {
    /// Index of the first fix of the episode.
    pub start_idx: usize,
    /// Index of the last fix of the episode (inclusive).
    pub end_idx: usize,
    /// Episode start instant.
    pub start: Timestamp,
    /// Episode end instant.
    pub end: Timestamp,
    /// Mean position over the episode.
    pub centroid: Point2,
}

impl Stop {
    /// Episode duration.
    pub fn duration(&self) -> TimeDelta {
        self.end - self.start
    }

    /// Number of fixes in the episode.
    pub fn len(&self) -> usize {
        self.end_idx - self.start_idx + 1
    }

    /// Whether the episode spans fewer than two fixes (cannot happen for
    /// detector output; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.end_idx <= self.start_idx
    }
}

/// A piece of a stop/move partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Episode {
    /// The object dwells (indices inclusive).
    Stop {
        /// First fix index.
        start_idx: usize,
        /// Last fix index (inclusive).
        end_idx: usize,
    },
    /// The object travels (indices inclusive).
    Move {
        /// First fix index.
        start_idx: usize,
        /// Last fix index (inclusive).
        end_idx: usize,
    },
}

/// Detects maximal stop episodes: windows of fixes all within
/// `max_radius` metres of the window's *first* fix, lasting at least
/// `min_duration`. Greedy left-to-right; episodes never overlap.
///
/// # Panics
/// Panics unless `max_radius` is finite-positive and `min_duration` is
/// positive.
pub fn detect_stops(traj: &Trajectory, max_radius: f64, min_duration: TimeDelta) -> Vec<Stop> {
    assert!(
        max_radius.is_finite() && max_radius > 0.0,
        "max_radius must be finite and > 0"
    );
    assert!(min_duration.is_positive(), "min_duration must be > 0");
    let fixes = traj.fixes();
    let n = fixes.len();
    let mut stops = Vec::new();
    let mut i = 0usize;
    while i + 1 < n {
        // Grow the window while every fix stays near the window anchor.
        let anchor = fixes[i].pos;
        let mut j = i;
        while j + 1 < n && anchor.distance(fixes[j + 1].pos) <= max_radius {
            j += 1;
        }
        if j > i && fixes[j].t - fixes[i].t >= min_duration {
            let k = (j - i + 1) as f64;
            let centroid = fixes[i..=j]
                .iter()
                .fold(Point2::ORIGIN, |acc, f| Point2::new(acc.x + f.pos.x / k, acc.y + f.pos.y / k));
            stops.push(Stop {
                start_idx: i,
                end_idx: j,
                start: fixes[i].t,
                end: fixes[j].t,
                centroid,
            });
            i = j + 1;
        } else {
            i += 1;
        }
    }
    stops
}

/// Partitions the trajectory into alternating [`Episode::Stop`] /
/// [`Episode::Move`] pieces covering every index (moves fill the gaps
/// between detected stops; adjacent pieces share their boundary fix so
/// each piece is a valid sub-trajectory).
pub fn segment_stops_moves(
    traj: &Trajectory,
    max_radius: f64,
    min_duration: TimeDelta,
) -> Vec<Episode> {
    let stops = detect_stops(traj, max_radius, min_duration);
    let n = traj.len();
    let mut out = Vec::with_capacity(stops.len() * 2 + 1);
    let mut cursor = 0usize;
    for s in &stops {
        if s.start_idx > cursor {
            out.push(Episode::Move { start_idx: cursor, end_idx: s.start_idx });
        }
        out.push(Episode::Stop { start_idx: s.start_idx, end_idx: s.end_idx });
        cursor = s.end_idx;
    }
    if cursor < n - 1 {
        out.push(Episode::Move { start_idx: cursor, end_idx: n - 1 });
    }
    out
}

/// Fraction of the trajectory's duration spent in detected stops,
/// in `[0, 1]` — a one-number behavioural signature (urban trips score
/// high, rural transits low), useful for per-class threshold guidance
/// (paper §5).
pub fn stop_ratio(traj: &Trajectory, max_radius: f64, min_duration: TimeDelta) -> f64 {
    let total = traj.duration().as_secs();
    if total <= 0.0 {
        return 0.0;
    }
    let stopped: f64 = detect_stops(traj, max_radius, min_duration)
        .iter()
        .map(|s| s.duration().as_secs())
        .sum();
    stopped / total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 100 s drive, 120 s dwell, 100 s drive.
    fn drive_dwell_drive() -> Trajectory {
        let mut triples = Vec::new();
        let mut t = 0.0;
        let mut x = 0.0;
        for _ in 0..10 {
            triples.push((t, x, 0.0));
            t += 10.0;
            x += 150.0;
        }
        for k in 0..12 {
            triples.push((t, x + (k % 3) as f64, (k % 2) as f64)); // GPS jitter
            t += 10.0;
        }
        for _ in 0..10 {
            triples.push((t, x, 0.0));
            t += 10.0;
            x += 150.0;
        }
        Trajectory::from_triples(triples).unwrap()
    }

    #[test]
    fn finds_the_dwell() {
        let t = drive_dwell_drive();
        let stops = detect_stops(&t, 25.0, TimeDelta::from_secs(60.0));
        assert_eq!(stops.len(), 1, "{stops:?}");
        let s = stops[0];
        assert!(s.duration().as_secs() >= 110.0, "duration {}", s.duration());
        assert!(s.len() >= 11);
        // Centroid sits at the dwell location (x = 1500).
        assert!((s.centroid.x - 1500.0).abs() < 5.0, "centroid {:?}", s.centroid);
    }

    #[test]
    fn no_stops_in_constant_motion() {
        let t = Trajectory::from_triples((0..50).map(|i| (i as f64 * 10.0, i as f64 * 120.0, 0.0)))
            .unwrap();
        assert!(detect_stops(&t, 25.0, TimeDelta::from_secs(30.0)).is_empty());
        assert_eq!(stop_ratio(&t, 25.0, TimeDelta::from_secs(30.0)), 0.0);
    }

    #[test]
    fn fully_stationary_is_one_long_stop() {
        let t = Trajectory::from_triples((0..30).map(|i| (i as f64 * 10.0, 5.0, 5.0))).unwrap();
        let stops = detect_stops(&t, 10.0, TimeDelta::from_secs(60.0));
        assert_eq!(stops.len(), 1);
        assert_eq!(stops[0].start_idx, 0);
        assert_eq!(stops[0].end_idx, 29);
        let ratio = stop_ratio(&t, 10.0, TimeDelta::from_secs(60.0));
        assert!((ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_duration_filters_brief_pauses() {
        let t = drive_dwell_drive();
        // Dwell lasts ~110 s: a 300 s minimum must reject it.
        assert!(detect_stops(&t, 25.0, TimeDelta::from_secs(300.0)).is_empty());
    }

    #[test]
    fn partition_covers_everything_alternating() {
        let t = drive_dwell_drive();
        let episodes = segment_stops_moves(&t, 25.0, TimeDelta::from_secs(60.0));
        assert_eq!(episodes.len(), 3, "{episodes:?}");
        assert!(matches!(episodes[0], Episode::Move { start_idx: 0, .. }));
        assert!(matches!(episodes[1], Episode::Stop { .. }));
        let last = episodes.last().unwrap();
        match last {
            Episode::Move { end_idx, .. } => assert_eq!(*end_idx, t.len() - 1),
            other => panic!("expected trailing move, got {other:?}"),
        }
        // Consecutive episodes share their boundary fix.
        for w in episodes.windows(2) {
            let end = match w[0] {
                Episode::Stop { end_idx, .. } | Episode::Move { end_idx, .. } => end_idx,
            };
            let start = match w[1] {
                Episode::Stop { start_idx, .. } | Episode::Move { start_idx, .. } => start_idx,
            };
            assert_eq!(end, start);
        }
    }

    #[test]
    fn paper_dataset_trips_have_stop_structure() {
        // The calibrated car trips include junction stops; at least some
        // trips must show a nonzero stop ratio.
        let ds = traj_gen::paper_dataset(42);
        let with_stops = ds
            .iter()
            .filter(|t| stop_ratio(t, 30.0, TimeDelta::from_secs(20.0)) > 0.0)
            .count();
        assert!(with_stops >= 5, "only {with_stops}/10 trips show stops");
    }

    #[test]
    #[should_panic(expected = "max_radius")]
    fn rejects_bad_radius() {
        let t = drive_dwell_drive();
        let _ = detect_stops(&t, 0.0, TimeDelta::from_secs(10.0));
    }
}
